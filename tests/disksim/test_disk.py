"""Disk model: seek profile, rotation, sequential detection, calibration."""

from __future__ import annotations

import pytest

from repro.disksim.disk import DiskModel, DiskParameters
from repro.disksim.request import IOKind, IORequest

_MB = 1024 * 1024


@pytest.fixture
def disk(savvio):
    return DiskModel(0, savvio)


# ----------------------------------------------------------------------
# parameters
# ----------------------------------------------------------------------


def test_savvio_figures(savvio):
    assert savvio.seq_read_mbps == pytest.approx(54.8)
    assert savvio.seq_write_mbps == pytest.approx(130.0)
    assert savvio.rpm == 10_000
    assert savvio.capacity_bytes == 300 * 10**9


def test_rotational_latency(savvio):
    assert savvio.rotation_time_s == pytest.approx(0.006)
    assert savvio.avg_rotational_latency_s == pytest.approx(0.003)


def test_seek_profile_monotone(savvio):
    assert savvio.seek_time_s(0) == 0.0
    short = savvio.seek_time_s(4 * _MB)
    mid = savvio.seek_time_s(savvio.capacity_bytes // 4)
    full = savvio.seek_time_s(savvio.capacity_bytes)
    assert 0 < short < mid < full
    assert full == pytest.approx(savvio.full_stroke_seek_ms / 1e3)
    # beyond-capacity distances are clamped to full stroke
    assert savvio.seek_time_s(10 * savvio.capacity_bytes) == pytest.approx(full)


def test_transfer_rates(savvio):
    assert savvio.transfer_time_s(54_8 * _MB // 10, IOKind.READ) == pytest.approx(1.0, rel=0.01)
    assert savvio.transfer_time_s(130 * _MB, IOKind.WRITE) == pytest.approx(1.0)


def test_ideal_parameters_strip_all_overheads():
    ideal = DiskParameters.ideal()
    assert ideal.seek_time_s(ideal.capacity_bytes) == 0.0
    assert ideal.scattered_overhead_s(IOKind.READ) == 0.0


def test_with_overrides():
    p = DiskParameters.savvio_10k3().with_overrides(seq_read_mbps=100.0)
    assert p.seq_read_mbps == 100.0
    assert p.seq_write_mbps == 130.0  # untouched


# ----------------------------------------------------------------------
# service-time decomposition
# ----------------------------------------------------------------------


def test_first_access_is_scattered(disk, savvio):
    req = IORequest(0, 0, 4 * _MB, IOKind.READ)
    t = disk.service_time(req)
    transfer = savvio.transfer_time_s(4 * _MB, IOKind.READ)
    assert t > transfer  # rotation + scattered overhead at least


def test_sequential_continuation_is_pure_transfer(disk, savvio):
    first = IORequest(0, 0, 4 * _MB, IOKind.READ)
    disk.serve(first)
    second = IORequest(0, 4 * _MB, 4 * _MB, IOKind.READ)
    assert disk.is_sequential(second)
    assert disk.service_time(second) == pytest.approx(
        savvio.transfer_time_s(4 * _MB, IOKind.READ)
    )


def test_kind_switch_breaks_sequentiality(disk):
    disk.serve(IORequest(0, 0, _MB, IOKind.READ))
    w = IORequest(0, _MB, _MB, IOKind.WRITE)
    assert not disk.is_sequential(w)


def test_gap_breaks_sequentiality(disk):
    disk.serve(IORequest(0, 0, _MB, IOKind.READ))
    r = IORequest(0, 3 * _MB, _MB, IOKind.READ)
    assert not disk.is_sequential(r)


def test_writes_skip_scattered_overhead(savvio):
    """Write-back caching: scattered writes pay seek+rotation only."""
    disk = DiskModel(0, savvio)
    disk.serve(IORequest(0, 0, _MB, IOKind.WRITE))
    far = IORequest(0, 100 * _MB, _MB, IOKind.WRITE)
    t = disk.service_time(far)
    expected = (
        savvio.seek_time_s(99 * _MB)
        + savvio.avg_rotational_latency_s
        + savvio.transfer_time_s(_MB, IOKind.WRITE)
    )
    assert t == pytest.approx(expected)


def test_request_beyond_capacity_rejected(disk, savvio):
    req = IORequest(0, savvio.capacity_bytes - 10, 100, IOKind.READ)
    with pytest.raises(ValueError, match="capacity"):
        disk.service_time(req)


# ----------------------------------------------------------------------
# accounting
# ----------------------------------------------------------------------


def test_serve_updates_counters(disk):
    disk.serve(IORequest(0, 0, 2 * _MB, IOKind.READ))
    disk.serve(IORequest(0, 2 * _MB, _MB, IOKind.READ))  # sequential
    disk.serve(IORequest(0, 100 * _MB, _MB, IOKind.WRITE))
    assert disk.bytes_read == 3 * _MB
    assert disk.bytes_written == _MB
    assert disk.n_sequential == 1
    assert disk.n_scattered == 2
    assert disk.busy_time > 0
    assert disk.head_position == 101 * _MB


def test_reset_position_clears_stream_state(disk):
    disk.serve(IORequest(0, 0, _MB, IOKind.READ))
    disk.reset_position(0)
    nxt = IORequest(0, _MB, _MB, IOKind.READ)
    assert not disk.is_sequential(nxt)


def test_effective_rates_match_calibration(savvio):
    """The two numbers EXPERIMENTS.md quotes: ~54.8 MB/s streaming and
    ~35 MB/s for scattered 4 MB element reads."""
    disk = DiskModel(0, savvio)
    # long stream
    t_stream = sum(
        disk.serve(IORequest(0, k * 4 * _MB, 4 * _MB, IOKind.READ)) for k in range(100)
    )
    stream_rate = 100 * 4 * _MB / t_stream / _MB
    assert stream_rate == pytest.approx(54.8, rel=0.02)
    disk2 = DiskModel(1, savvio)
    t_scattered = sum(
        disk2.serve(IORequest(1, 2 * k * 4 * _MB, 4 * _MB, IOKind.READ))
        for k in range(100)
    )
    scattered_rate = 100 * 4 * _MB / t_scattered / _MB
    assert 28 < scattered_rate < 42
