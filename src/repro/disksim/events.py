"""Discrete-event engine driving a set of independent disk servers.

Each disk is a single server with its own scheduler queue.  The engine
advances a global clock through request-completion events; completion
callbacks may submit further requests (this is how the RAID layer
implements read-before-write dependencies and windowed reconstruction
pipelines).

The engine is deterministic: ties are broken by event sequence number.
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..obs import default_registry, default_tracer, obs_enabled
from ..obs.tracing import Tracer
from .disk import DiskModel, DiskParameters
from .request import IOKind, IORequest
from .scheduler import ElevatorScheduler, Scheduler

__all__ = ["Simulation"]

Callback = Callable[[IORequest], None]


class _SimObs:
    """One simulation's observability hooks.

    Instantiated only when observability is on (or a tracer is
    attached); the engine otherwise carries ``_obs = None`` and its hot
    path pays a single ``is not None`` check per completion — the
    null-sink contract gated by ``perfbench --obs-overhead``.
    """

    __slots__ = (
        "group",
        "qd",
        "reads",
        "writes",
        "bytes_read",
        "bytes_written",
        "errors",
        "retries",
        "latency",
        "dispatched",
    )

    def __init__(self, sim: "Simulation", trace) -> None:
        reg = default_registry()
        requests = reg.counter("sim.requests", "completed I/O requests by kind")
        self.reads = requests.labels(kind="read")
        self.writes = requests.labels(kind="write")
        moved = reg.counter("sim.bytes", "bytes moved by completed requests")
        self.bytes_read = moved.labels(kind="read")
        self.bytes_written = moved.labels(kind="write")
        self.errors = reg.counter(
            "sim.request_errors", "requests completed carrying an error flag"
        ).labels()
        self.retries = reg.counter(
            "sim.request_retries", "completed requests that were retries (attempt > 0)"
        ).labels()
        self.latency = reg.histogram(
            "sim.request_latency_s", "submit-to-finish latency of completed requests"
        ).labels()
        self.dispatched = reg.counter(
            "sim.events_dispatched", "calendar events popped by the run loop"
        ).labels()
        qd = reg.gauge(
            "sim.queue_depth", "per-disk scheduler queue depth at last completion"
        )
        self.qd = [qd.labels(disk=str(d)) for d in range(len(sim.disks))]
        # a bare Tracer gets its own track group; a TraceGroup (handed
        # down by the RAID controller, already labelled) is used as-is
        group = trace.group("array") if isinstance(trace, Tracer) else trace
        if group is not None:
            for d in range(len(sim.disks)):
                group.name_track(d, f"disk {d}")
        self.group = group

    def on_complete(self, request: IORequest, server: "_DiskServer") -> None:
        """Per-completion metrics plus the request's span (if tracing)."""
        if request.kind is IOKind.READ:
            self.reads.inc()
            self.bytes_read.inc(request.size)
        else:
            self.writes.inc()
            self.bytes_written.inc(request.size)
        if request.error:
            self.errors.inc()
        if request.attempt:
            self.retries.inc()
        self.latency.observe(request.finish_time - request.submit_time)
        self.qd[request.disk].set(len(server.scheduler))
        group = self.group
        if group is not None:
            args = {
                "kind": request.kind.value,
                "tag": request.tag,
                "attempt": request.attempt,
                "priority": request.priority,
                "bytes": request.size,
            }
            if request.error:
                args["error"] = request.error_kind
            group.complete(
                request.tag or request.kind.value,
                request.start_time,
                request.finish_time - request.start_time,
                pid=request.disk,
                cat="io",
                **args,
            )


class _DiskServer:
    """One disk plus its queue and busy state."""

    __slots__ = ("model", "scheduler", "busy", "current")

    def __init__(self, model: DiskModel, scheduler: Scheduler) -> None:
        self.model = model
        self.scheduler = scheduler
        self.busy = False
        self.current: IORequest | None = None


class Simulation:
    """Event-driven simulation of an array of disks.

    Parameters
    ----------
    n_disks:
        Number of disks, ids ``0 .. n_disks - 1``.
    params:
        Disk parameters shared by all disks (homogeneous array, as in
        the paper's testbed).
    scheduler_factory:
        Zero-argument callable producing a fresh scheduler per disk;
        defaults to the elevator.
    """

    def __init__(
        self,
        n_disks: int,
        params: DiskParameters | None = None,
        scheduler_factory: Callable[[], Scheduler] = ElevatorScheduler,
        faults=None,
        tracer=None,
    ) -> None:
        if n_disks < 1:
            raise ValueError(f"need at least one disk, got {n_disks}")
        self.params = params if params is not None else DiskParameters.savvio_10k3()
        #: optional fault model: a
        #: :class:`repro.disksim.faults.LatentSectorErrors` or the
        #: richer :class:`repro.disksim.faultplan.ActiveFaults` (duck
        #: typed — ``on_completion`` is required, ``service_factor``
        #: consulted when present)
        self.faults = faults
        #: hoisted fail-slow hook — resolving the attribute once instead
        #: of a ``getattr`` per request start
        self._service_factor = getattr(faults, "service_factor", None)
        self.disks = [
            _DiskServer(DiskModel(d, self.params), scheduler_factory())
            for d in range(n_disks)
        ]
        self.now: float = 0.0
        self._events: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = 0
        self.completed: list[IORequest] = []
        self._callbacks: dict[int, Callback] = {}
        #: observability hooks: a ``_SimObs`` when metrics/tracing are
        #: on, else ``None`` — the null-sink fast path.  ``tracer`` may
        #: be a :class:`~repro.obs.tracing.Tracer` or an
        #: already-labelled :class:`~repro.obs.tracing.TraceGroup`;
        #: with no explicit tracer the process default tracer applies,
        #: and ``tracer=False`` opts this simulation out of tracing
        #: even when a default tracer is installed.
        if tracer is False:
            trace = None
        elif tracer is not None:
            trace = tracer
        else:
            trace = default_tracer()
        self._obs = (
            _SimObs(self, trace) if (trace is not None or obs_enabled()) else None
        )

    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` seconds from now."""
        self.schedule_call(delay, action)

    def schedule_call(self, delay: float, action: Callable[..., None], *args) -> None:
        """Run ``action(*args)`` ``delay`` seconds from now.

        Passing the arguments through the event tuple lets hot paths
        schedule bound methods directly instead of allocating a closure
        per event (one per request completion, previously).
        """
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self._seq += 1
        heapq.heappush(self._events, (self.now + delay, self._seq, action, args))

    def submit(self, request: IORequest, callback: Callback | None = None) -> None:
        """Enqueue a request on its disk, starting service if idle."""
        if not 0 <= request.disk < len(self.disks):
            raise ValueError(f"request targets unknown disk {request.disk}")
        request.submit_time = self.now
        if callback is not None:
            self._callbacks[request.req_id] = callback
        server = self.disks[request.disk]
        server.scheduler.add(request)
        if not server.busy:
            self._start_next(server)

    def submit_many(self, requests, callback: Callback | None = None) -> None:
        """Enqueue a pre-built batch of requests in one engine call.

        Semantically identical to calling :meth:`submit` per request in
        order (idle disks start serving as soon as their first request
        lands, so scheduler decisions are unchanged); the batch form
        hoists the attribute lookups and bounds bookkeeping out of the
        per-request path, which is what the vectorized
        :meth:`~repro.disksim.array.ElementArray.submit_batch` wants.
        """
        disks = self.disks
        n = len(disks)
        callbacks = self._callbacks
        now = self.now
        for request in requests:
            d = request.disk
            if not 0 <= d < n:
                raise ValueError(f"request targets unknown disk {d}")
            request.submit_time = now
            if callback is not None:
                callbacks[request.req_id] = callback
            server = disks[d]
            server.scheduler.add(request)
            if not server.busy:
                self._start_next(server)

    def submit_at(self, time: float, request: IORequest, callback: Callback | None = None) -> None:
        """Submit a request at an absolute future simulation time."""
        if time < self.now:
            raise ValueError(f"cannot submit in the past ({time} < {self.now})")
        self.schedule_call(time - self.now, self.submit, request, callback)

    # ------------------------------------------------------------------
    def _start_next(self, server: _DiskServer) -> None:
        if server.busy or not server.scheduler:
            return
        request = server.scheduler.pop(server.model.head_position)
        duration = server.model.serve(request)
        if self._service_factor is not None:
            factor = self._service_factor(request.disk, self.now)
            if factor != 1.0:
                # fail-slow inflation counts as busy time too
                server.model.busy_time += duration * (factor - 1.0)
                duration *= factor
        request.start_time = self.now
        request.finish_time = self.now + duration
        server.busy = True
        server.current = request
        self.schedule_call(duration, self._complete, server, request)

    def _complete(self, server: _DiskServer, request: IORequest) -> None:
        server.busy = False
        server.current = None
        if self.faults is not None:
            self.faults.on_completion(request)
        self.completed.append(request)
        if self._obs is not None:
            self._obs.on_complete(request, server)
        cb = self._callbacks.pop(request.req_id, None)
        if cb is not None:
            cb(request)
        self._start_next(server)

    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Process events until quiescence (or ``until``); returns the clock.

        The clock is monotone: ``until`` earlier than ``now`` is a no-op
        (time never moves backwards), and an idle engine still advances
        to ``until`` — ``run(until=t)`` on an empty calendar models
        waiting out wall-clock time with no I/O in flight.
        """
        # the dispatch loop exists twice: the bare body below, and an
        # instrumented twin that additionally counts popped events.
        # Folding the counter into one shared loop costs ~5% even with
        # observability off (a per-event increment plus the try/finally
        # needed to flush it), which would break the null-sink ≤2%
        # contract gated by ``perfbench --obs-overhead``.
        if self._obs is not None:
            return self._run_instrumented(until)
        events = self._events
        if until is not None and until <= self.now:
            return self.now
        while events:
            t = events[0][0]
            if until is not None and t > until:
                self.now = until
                return self.now
            _, _, action, args = heapq.heappop(events)
            self.now = t
            action(*args)
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def _run_instrumented(self, until: float | None = None) -> float:
        """:meth:`run`'s twin with the events-dispatched counter."""
        events = self._events
        if until is not None and until <= self.now:
            return self.now
        dispatched = 0
        try:
            while events:
                t = events[0][0]
                if until is not None and t > until:
                    self.now = until
                    return self.now
                _, _, action, args = heapq.heappop(events)
                self.now = t
                dispatched += 1
                action(*args)
            if until is not None and until > self.now:
                self.now = until
            return self.now
        finally:
            # one counter update per run() call, not per event
            if dispatched:
                self._obs.dispatched.inc(dispatched)

    def max_finish_time_since(self, index: int, default: float = 0.0) -> float:
        """Latest completion time among ``completed[index:]`` — no copy.

        The rebuild loop asks this after every pass; slicing the
        completion log there made the aggregation quadratic in the
        number of requests.
        """
        completed = self.completed
        latest = default
        for k in range(index, len(completed)):
            ft = completed[k].finish_time
            if ft > latest:
                latest = ft
        return latest

    def drain(self) -> float:
        """Alias of :meth:`run` to quiescence."""
        return self.run()

    # ------------------------------------------------------------------
    @property
    def n_disks(self) -> int:
        return len(self.disks)

    def disk(self, disk_id: int) -> DiskModel:
        return self.disks[disk_id].model

    @property
    def total_bytes_read(self) -> int:
        return sum(s.model.bytes_read for s in self.disks)

    @property
    def total_bytes_written(self) -> int:
        return sum(s.model.bytes_written for s in self.disks)

    def pending_count(self) -> int:
        in_service = sum(1 for s in self.disks if s.busy)
        return in_service + sum(len(s.scheduler) for s in self.disks)
