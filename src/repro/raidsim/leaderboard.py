"""Cross-layout leaderboard: every registered layout under one storm.

The campaign and serve tiers answer pairwise questions — traditional vs
shifted, baseline vs variant.  The leaderboard asks the operator's
*selection* question: across every layout the registry admits
(:func:`repro.core.registry.leaderboard_layouts`), which arrangement
keeps the most reads flowing while a disk is being rebuilt?

Every layout faces the **identical** seeded scenario: the same
:func:`~repro.raidsim.campaign.default_fault_plan` storm (LSE burst,
fail-slow survivor, transient errors — no second whole-disk death, so
single-fault-tolerant mirrors and double-fault-tolerant codes compete
on the same terms), the same open-loop arrival stream
(:func:`~repro.workloads.openloop.open_arrivals` is a pure function of
``(n, stripes, duration, seed)``, so the byte-for-byte same reads land
at the same simulated instants on every contestant), over the same
serve window (sized off the *slowest* clean rebuild in the roster so
nobody's window ends early).

Everything is a pure function of the frozen :class:`LeaderboardConfig`:
two same-config runs are bit-identical, and ``jobs=1`` vs ``jobs=N``
fan-outs produce the same entries (the window is sized serially in the
parent, each entry runs under its own scoped metrics registry, and no
wall-clock value enters an entry).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.registry import LAYOUTS, build_layout, leaderboard_layouts
from ..disksim.array import DEFAULT_ELEMENT_SIZE
from ..disksim.scheduler import PriorityScheduler
from ..obs import scoped_registry
from ..parallel import parallel_map
from ..workloads.generator import UserRead
from ..workloads.openloop import SLOAccountant, TenantSpec, open_arrivals
from .campaign import clean_rebuild_makespan, default_fault_plan
from .controller import RaidController
from .reconstruction import OnlineReconstruction

__all__ = [
    "LeaderboardConfig",
    "LeaderboardEntry",
    "LeaderboardResult",
    "leaderboard_duration_s",
    "run_leaderboard_entry",
    "run_leaderboard",
]


@dataclass(frozen=True)
class LeaderboardConfig:
    """One leaderboard experiment, frozen and picklable.

    ``layouts`` pins an explicit roster (registry names); ``None``
    sweeps everything :func:`~repro.core.registry.leaderboard_layouts`
    admits at this ``n``.  The storm knobs mirror
    :func:`~repro.raidsim.campaign.default_fault_plan` minus the second
    whole-disk failure, which would be unrecoverable for the
    single-fault-tolerant half of the roster and turn the comparison
    into a fault-tolerance quiz instead of an arrangement race.
    """

    n: int = 5
    n_stripes: int = 12
    seed: int = 7
    failed_disk: int = 0
    rate_per_s: float = 40.0
    duration_factor: float = 1.5
    window: int = 4
    lse_burst: int = 2
    fail_slow_multiplier: float = 4.0
    transient_rate: float = 0.02
    element_size: int = DEFAULT_ELEMENT_SIZE
    payload_bytes: int = 16
    layouts: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.duration_factor <= 0:
            raise ValueError(
                f"duration_factor must be positive, got {self.duration_factor}"
            )
        if self.layouts is not None:
            for name in self.layouts:
                if name not in LAYOUTS:
                    raise ValueError(
                        f"unknown layout {name!r}; choose from "
                        f"{', '.join(sorted(LAYOUTS))}"
                    )

    def layout_names(self) -> tuple[str, ...]:
        """The roster: explicit ``layouts``, or every eligible layout."""
        if self.layouts is not None:
            return tuple(self.layouts)
        return tuple(leaderboard_layouts(self.n))


@dataclass(frozen=True)
class LeaderboardEntry:
    """One layout's outcome under the shared storm + serve mix."""

    layout: str
    description: str
    n_disks: int
    fault_tolerance: int
    storage_efficiency: float
    #: completed user reads that did not fail outright, as a fraction
    availability: float
    rebuild_makespan_s: float
    #: p99 user-read latency in milliseconds; ``NaN`` when nothing served
    degraded_p99_ms: float
    #: stripe-columns that survived the storm (1.0 = no data loss)
    data_survival: float
    served: int
    failed_reads: int
    degraded_reads: int
    rebuild_verified: bool
    rebuild_aborted: bool

    def to_dict(self) -> dict:
        """Plain-dict form; the CLI applies its non-finite -> null rule."""
        from dataclasses import asdict

        return asdict(self)

    @property
    def rank_key(self) -> tuple:
        """Sort key: availability down, then makespan, p99, name up.

        ``NaN`` p99 (nothing served) ranks last among ties; the name
        tiebreak makes the full ordering total and deterministic.
        """
        p99 = self.degraded_p99_ms
        if math.isnan(p99):
            p99 = float("inf")
        return (-self.availability, self.rebuild_makespan_s, p99, self.layout)


def leaderboard_duration_s(config: LeaderboardConfig) -> float:
    """The shared serve window: ``duration_factor`` × the *slowest* roster
    member's clean rebuild, so every contestant's storm covers its whole
    rebuild and all of them face the identical arrival stream."""
    sizing = dict(
        failed_disks=(config.failed_disk,),
        n_stripes=config.n_stripes,
        element_size=config.element_size,
        payload_bytes=config.payload_bytes,
        window=config.window,
    )
    return config.duration_factor * max(
        clean_rebuild_makespan(build_layout(name, config.n), **sizing)
        for name in config.layout_names()
    )


def run_leaderboard_entry(
    name: str, config: LeaderboardConfig, duration_s: float
) -> LeaderboardEntry:
    """One layout through the shared scenario: rebuild under fire + load.

    The arrival stream is regenerated here from the config seed (not
    threaded through) so a pool worker handed only ``(name, config,
    duration_s)`` reproduces the serial run bit for bit.
    """
    from ..core.registry import REGISTRY

    layout = build_layout(name, config.n)
    plan = default_fault_plan(
        layout.n_disks,
        seed=config.seed,
        lse_burst=config.lse_burst,
        fail_slow_multiplier=config.fail_slow_multiplier,
        second_failure_time_s=None,
        transient_rate=config.transient_rate,
    )
    ctrl = RaidController(
        layout,
        n_stripes=config.n_stripes,
        element_size=config.element_size,
        scheduler_factory=PriorityScheduler,
        payload_bytes=config.payload_bytes,
        fault_plan=plan,
    )
    arrivals = open_arrivals(
        config.n,
        config.n_stripes,
        duration_s,
        (TenantSpec("default", rate_per_s=config.rate_per_s),),
        seed=config.seed,
    )
    slo = SLOAccountant()
    sim = ctrl.array.sim

    def on_latency(read: UserRead, latency_s: float) -> None:
        slo.record(latency_s, tenant=read.tenant, t_s=sim.now)

    online = OnlineReconstruction(
        ctrl,
        (config.failed_disk,),
        arrivals,
        window=config.window,
        on_latency=on_latency,
    ).run()
    slo.record_failure(online.failed_user_reads)
    summary = slo.summary(duration_s)
    served = summary.served
    availability = (
        1.0 - online.failed_user_reads / served if served > 0 else 1.0
    )
    stats = online.fault_stats
    lost = len(stats.lost_columns) if stats is not None else 0
    total_columns = layout.n_disks * config.n_stripes
    return LeaderboardEntry(
        layout=name,
        description=REGISTRY[name].description,
        n_disks=layout.n_disks,
        fault_tolerance=layout.fault_tolerance,
        storage_efficiency=layout.storage_efficiency(),
        availability=availability,
        rebuild_makespan_s=online.rebuild.makespan_s,
        degraded_p99_ms=summary.p99_s * 1e3,
        data_survival=1.0 - lost / total_columns,
        served=served,
        failed_reads=online.failed_user_reads,
        degraded_reads=online.degraded_reads,
        rebuild_verified=online.rebuild.verified,
        rebuild_aborted=online.rebuild.aborted,
    )


def _entry_point(task) -> LeaderboardEntry:
    """Pool worker: one roster member, metrics-isolated.

    Module-level (picklable), and scoped so an entry's instruments
    never leak into the parent registry — serial and pooled runs then
    make the identical (non-)contribution to ambient observability.
    """
    name, config, duration_s = task
    with scoped_registry():
        return run_leaderboard_entry(name, config, duration_s)


@dataclass(frozen=True)
class LeaderboardResult:
    """Every roster member's outcome, plus the derived ranking."""

    config: LeaderboardConfig
    duration_s: float
    #: entries in roster order (stable registry registration order)
    entries: tuple[LeaderboardEntry, ...]

    def __len__(self) -> int:
        return len(self.entries)

    def ranked(self) -> tuple[LeaderboardEntry, ...]:
        """Entries best-first by availability / makespan / p99 / name."""
        return tuple(sorted(self.entries, key=lambda e: e.rank_key))

    @property
    def ranking(self) -> tuple[str, ...]:
        """Layout names, best first."""
        return tuple(e.layout for e in self.ranked())

    def to_dict(self) -> dict:
        return {
            "n": self.config.n,
            "n_stripes": self.config.n_stripes,
            "seed": self.config.seed,
            "duration_s": self.duration_s,
            "ranking": list(self.ranking),
            "entries": [e.to_dict() for e in self.ranked()],
        }


def run_leaderboard(
    config: LeaderboardConfig,
    jobs: int | None = None,
    pool=None,
) -> LeaderboardResult:
    """The full sweep: every roster member under the identical scenario.

    The serve window is sized serially in the parent (one yardstick for
    everyone), then entries fan across ``jobs`` processes — or a
    persistent :class:`~repro.parallel.WorkerPool` — with results
    merged in roster order, bit-identical to the serial run.
    """
    names = config.layout_names()
    if not names:
        raise ValueError(
            f"no registered layout is leaderboard-eligible at n={config.n}"
        )
    duration_s = leaderboard_duration_s(config)
    tasks = [(name, config, duration_s) for name in names]
    entries = parallel_map(_entry_point, tasks, jobs=jobs, pool=pool)
    return LeaderboardResult(
        config=config, duration_s=duration_s, entries=tuple(entries)
    )
