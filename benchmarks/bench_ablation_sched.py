"""Ablation: I/O scheduler under the shifted arrangement's scattered reads.

DESIGN.md §5: the elevator merges the shifted rebuild's scattered
element reads into ascending sweeps; FIFO serves them in arrival order
and pays more head movement.  The traditional rebuild is one stream and
should not care.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.layouts import shifted_mirror, traditional_mirror
from repro.disksim.scheduler import ElevatorScheduler, FIFOScheduler
from repro.raidsim.controller import RaidController


def _rebuild_makespan(builder, scheduler_factory, window):
    ctrl = RaidController(
        builder(5),
        n_stripes=24,
        payload_bytes=8,
        scheduler_factory=scheduler_factory,
    )
    return ctrl.rebuild([0], window=window).makespan_s


def test_bench_scheduler_shifted(benchmark):
    def sweep():
        return {
            "fifo": _rebuild_makespan(shifted_mirror, FIFOScheduler, window=12),
            "elevator": _rebuild_makespan(shifted_mirror, ElevatorScheduler, window=12),
        }

    res = run_once(benchmark, sweep)
    assert res["elevator"] <= res["fifo"] * 1.02
    benchmark.extra_info.update(res)


def test_bench_scheduler_traditional_insensitive(benchmark):
    def sweep():
        return {
            "fifo": _rebuild_makespan(traditional_mirror, FIFOScheduler, window=12),
            "elevator": _rebuild_makespan(traditional_mirror, ElevatorScheduler, window=12),
        }

    res = run_once(benchmark, sweep)
    # a single sequential stream: scheduling policy is irrelevant
    assert abs(res["elevator"] - res["fifo"]) / res["fifo"] < 0.02
    benchmark.extra_info.update(res)
