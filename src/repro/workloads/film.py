"""Deterministic synthetic element content (the paper's film file).

The authors "encoded a film file and stored 17 GB data on each data
disk" — the content itself only matters for the post-reconstruction
correctness check ("we also compared the original data on the virtual
failed disk and the recovered data").  We substitute a deterministic
pseudo-random payload: every data element's bytes are a pure function
of ``(stripe, data disk, row)``, so any recovered element can be
checked against regeneration without storing 17 GB.

Payloads are deliberately small (default 64 bytes per element): the
*timing* of a 4 MB element is the simulator's business; the *value*
only needs enough entropy to make silent corruption vanishingly
unlikely.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FilmSource", "DEFAULT_PAYLOAD_BYTES"]

DEFAULT_PAYLOAD_BYTES = 64


class FilmSource:
    """Deterministic content generator for data elements.

    Parameters
    ----------
    payload_bytes:
        Bytes of verifiable content per element.
    seed:
        Base seed; two sources with equal seeds generate identical
        "films".
    """

    def __init__(self, payload_bytes: int = DEFAULT_PAYLOAD_BYTES, seed: int = 2012) -> None:
        if payload_bytes < 1:
            raise ValueError(f"payload must be >= 1 byte, got {payload_bytes}")
        self.payload_bytes = payload_bytes
        self.seed = seed

    def element(self, stripe: int, i: int, j: int) -> np.ndarray:
        """The payload of data element ``a[i, j]`` of ``stripe``."""
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, stripe, i, j])
        )
        return rng.integers(0, 256, self.payload_bytes, dtype=np.uint8)

    def fresh(self, rng: np.random.Generator) -> np.ndarray:
        """A new payload for an overwriting user write."""
        return rng.integers(0, 256, self.payload_bytes, dtype=np.uint8)
