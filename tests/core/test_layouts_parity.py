"""Mirror-with-parity layouts: Table I semantics case by case."""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.core.errors import LayoutError, UnrecoverableFailureError
from repro.core.layouts import (
    MirrorParityLayout,
    shifted_mirror_parity,
    traditional_mirror_parity,
)
from repro.core.reconstruction import RecoveryMethod


def test_counts_and_names():
    lay = shifted_mirror_parity(5)
    assert lay.n_disks == 11
    assert lay.parity_disk == 10
    assert lay.fault_tolerance == 2
    assert lay.name == "shifted-mirror-parity"
    assert traditional_mirror_parity(5).name == "mirror-parity"


def test_needs_two_data_disks():
    with pytest.raises(LayoutError):
        MirrorParityLayout(1)


def test_storage_efficiency():
    assert shifted_mirror_parity(5).storage_efficiency() == 5 / 11
    assert traditional_mirror_parity(3).storage_efficiency() == 3 / 7


def test_content_includes_parity_column():
    lay = shifted_mirror_parity(3)
    for j in range(3):
        c = lay.content(6, j)
        assert c.kind == "parity" and c.j == j


# ----------------------------------------------------------------------
# write plans (§VI-C): optimal small and large writes
# ----------------------------------------------------------------------


@pytest.mark.parametrize("builder", [traditional_mirror_parity, shifted_mirror_parity])
def test_small_write_three_elements_one_access(builder):
    lay = builder(5)
    plan = lay.write_plan([(1, 2)])
    assert plan.total_elements_written == 3  # data + replica + parity
    assert plan.num_write_accesses == 1
    # read-modify-write inputs: old data + old parity
    assert plan.total_elements_read == 2


@pytest.mark.parametrize("builder", [traditional_mirror_parity, shifted_mirror_parity])
def test_large_write_one_access_no_reads(builder):
    lay = builder(4)
    plan = lay.large_write_plan(2)
    assert plan.num_write_accesses == 1
    assert plan.total_elements_written == 9  # n data + n replicas + parity
    assert plan.total_elements_read == 0  # parity computed from new data


def test_reconstruct_write_reads_untouched_row_elements():
    lay = shifted_mirror_parity(5)
    plan = lay.write_plan([(0, 1), (1, 1)], strategy="reconstruct")
    # reads the 3 untouched data elements of row 1, not the old parity
    assert plan.total_elements_read == 3
    read_cells = {(d, r) for d, rows in plan.reads.items() for r in rows}
    assert read_cells == {(2, 1), (3, 1), (4, 1)}


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError, match="strategy"):
        shifted_mirror_parity(3).write_plan([(0, 0)], strategy="wombat")


def test_multi_row_write_parity_per_row():
    lay = shifted_mirror_parity(4)
    plan = lay.write_plan([(0, 0), (0, 1)])
    parity_writes = plan.writes.get(lay.parity_disk, [])
    assert parity_writes == [0, 1]


# ----------------------------------------------------------------------
# reconstruction: all single failures
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [2, 3, 5, 7])
def test_single_failure_accesses(n):
    trad, shif = traditional_mirror_parity(n), shifted_mirror_parity(n)
    for f in range(2 * n):  # array disks
        assert trad.data_recovery_read_accesses([f]) == n
        assert shif.data_recovery_read_accesses([f]) == 1
    # parity disk alone: no data lost
    assert trad.data_recovery_read_accesses([2 * n]) == 0
    assert shif.data_recovery_read_accesses([2 * n]) == 0


def test_parity_failure_recomputes_from_all_data():
    lay = shifted_mirror_parity(3)
    plan = lay.reconstruction_plan([6])
    assert all(s.method is RecoveryMethod.RECOMPUTE for s in plan.steps)
    assert plan.num_read_accesses == 3  # each data disk surrenders its column


# ----------------------------------------------------------------------
# reconstruction: all double failures, classified per Table I
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7])
def test_table1_access_counts_by_situation(n):
    lay = shifted_mirror_parity(n)
    parity = 2 * n
    for failed in combinations(range(lay.n_disks), 2):
        accesses = lay.data_recovery_read_accesses(failed)
        if parity in failed:
            assert accesses == 1, failed  # F1
        else:
            assert accesses == 2, failed  # F2 and F3


@pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7])
def test_traditional_always_n_accesses(n):
    lay = traditional_mirror_parity(n)
    for failed in combinations(range(lay.n_disks), 2):
        assert lay.data_recovery_read_accesses(failed) == n, failed


def test_f3_plan_detail_shifted():
    """§V-B4 for n=5, data disk 1 and mirror disk 3 failed: the doubly
    failed element is a[1, <3-1>_5] = a[1, 2]; it is rebuilt from row 2
    and the parity element; everything else is replica copies."""
    n = 5
    lay = shifted_mirror_parity(n)
    plan = lay.reconstruction_plan([1, n + 3])
    xor_steps = [s for s in plan.steps if s.method is RecoveryMethod.XOR]
    assert len(xor_steps) == 1
    assert xor_steps[0].target == (1, 2)
    assert (lay.parity_disk, 2) in xor_steps[0].sources
    copy_steps = [s for s in plan.steps if s.method is RecoveryMethod.COPY]
    assert len(copy_steps) == 2 * n - 1


def test_replica_pair_failure_traditional_goes_through_parity():
    """Traditional arrangement, data disk x and mirror disk x: every
    element is doubly lost, so all recovery flows through parity."""
    n = 4
    lay = traditional_mirror_parity(n)
    plan = lay.reconstruction_plan([1, n + 1])
    xor_targets = {s.target for s in plan.steps if s.method is RecoveryMethod.XOR}
    assert xor_targets == {(1, j) for j in range(n)}
    # the mirror column is then copied from the recovered data column
    copy_steps = [s for s in plan.steps if s.method is RecoveryMethod.COPY]
    assert all(s.sources[0][0] == 1 for s in copy_steps)


def test_replica_pair_plus_parity_is_unrecoverable():
    n = 3
    lay = traditional_mirror_parity(n)
    with pytest.raises(UnrecoverableFailureError):
        lay.reconstruction_plan([0, n + 0, 2 * n])


def test_triple_failure_rejected():
    with pytest.raises(UnrecoverableFailureError):
        shifted_mirror_parity(4).reconstruction_plan([0, 1, 2])


@pytest.mark.parametrize("n", [2, 3, 4, 5])
@pytest.mark.parametrize("builder", [traditional_mirror_parity, shifted_mirror_parity])
def test_all_double_failure_plans_validate(n, builder):
    lay = builder(n)
    for failed in combinations(range(lay.n_disks), 2):
        plan = lay.reconstruction_plan(failed)
        plan.validate(lay.n_disks, lay.rows)
        # every element of every failed disk is recovered exactly once
        targets = [s.target for s in plan.steps]
        assert len(targets) == len(set(targets))
        expected = {(f, r) for f in failed for r in range(lay.rows)}
        assert set(targets) == expected
