"""Layout registry: typed specs, comparison pairs, and leaderboard rosters.

Campaign sweeps ship their work to process-pool workers as plain
picklable specs; a :class:`~repro.core.layouts.Layout` instance (and
especially a closure over one) is not a good wire format, so workers
rebuild layouts from the registry name.  The CLI re-exports this table
as its ``--layout`` choices.

Beyond the name -> builder map, every entry is a :class:`LayoutSpec`
declaring what *kind* of redundancy the layout places (``mirror``
replica maps, ``parity``, or ``code`` symbol placement) and whether it
belongs on the cross-layout leaderboard.  Families that exist in a
baseline/variant pairing — the paper's traditional-vs-shifted
comparisons, plus the competitor layouts measured against their natural
baselines — are declared in :data:`COMPARISONS` and resolved through
:func:`comparison_pair`, which is what the fault-campaign, serve, and
nemesis tiers use instead of assuming a ``shifted-`` name prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .arrangement import (
    GroupRotatedArrangement,
    IdentityArrangement,
    PermutationArrangement,
    ShiftedArrangement,
)
from .layouts import (
    DeclusteredMirrorLayout,
    Layout,
    MirrorLayout,
    MirrorParityLayout,
    RAID5Layout,
    RAID6Layout,
    RebuildOptimalRDPLayout,
    ThreeMirrorLayout,
    XCodeLayout,
)

__all__ = [
    "LayoutSpec",
    "REGISTRY",
    "LAYOUTS",
    "COMPARISONS",
    "register",
    "build_layout",
    "comparison_pair",
    "comparison_families",
    "shifted_variant_name",
    "leaderboard_layouts",
]


@dataclass(frozen=True)
class LayoutSpec:
    """One registered layout: builder plus the metadata tooling needs.

    ``redundancy`` names the placement kind the layout declares —
    ``"mirror"`` (a replica placement map), ``"parity"`` (replicas plus
    a parity column), or ``"code"`` (erasure-code symbol placement).
    ``leaderboard`` admits the layout to :func:`leaderboard_layouts`
    rosters; ``min_n`` is the smallest data-disk count the builder
    accepts.
    """

    name: str
    builder: Callable[[int], Layout]
    description: str
    redundancy: str = "mirror"
    leaderboard: bool = True
    min_n: int = 2


#: registry name -> :class:`LayoutSpec`, in registration order
REGISTRY: dict[str, LayoutSpec] = {}

#: layout name -> builder taking the data-disk count (kept in sync with
#: :data:`REGISTRY`; the historical wire format of sweep workers)
LAYOUTS: dict[str, Callable[[int], Layout]] = {}


def register(spec: LayoutSpec) -> LayoutSpec:
    """Add a layout spec to the registry (rejecting duplicate names)."""
    if spec.name in REGISTRY:
        raise ValueError(f"layout {spec.name!r} already registered")
    REGISTRY[spec.name] = spec
    LAYOUTS[spec.name] = spec.builder
    return spec


def _reverse_shift(n: int) -> PermutationArrangement:
    return PermutationArrangement(
        n, {(i, j): ((i - j) % n, i) for i in range(n) for j in range(n)}
    )


register(LayoutSpec(
    "mirror", lambda n: MirrorLayout(n, IdentityArrangement(n)),
    "traditional mirror method (identity arrangement, §II-B)",
))
register(LayoutSpec(
    "shifted-mirror", lambda n: MirrorLayout(n, ShiftedArrangement(n)),
    "the paper's shifted mirror method (§IV)",
))
register(LayoutSpec(
    "group-rotated-mirror",
    lambda n: MirrorLayout(
        n, GroupRotatedArrangement(n, 2), name="group-rotated-mirror"
    ),
    "mirror with replicas rotated by row groups of 2 — a cheap middle "
    "point between traditional and shifted",
))
register(LayoutSpec(
    "declustered-mirror", DeclusteredMirrorLayout,
    "parity-declustered mirroring over a pooled 2n-disk array "
    "(t-design placement, uniform rebuild load on every survivor)",
))
register(LayoutSpec(
    "mirror-parity", lambda n: MirrorParityLayout(n, IdentityArrangement(n)),
    "traditional mirror method with a parity disk (§II-C1)",
    redundancy="parity",
))
register(LayoutSpec(
    "shifted-mirror-parity", lambda n: MirrorParityLayout(n, ShiftedArrangement(n)),
    "shifted mirror method with a parity disk (§V)",
    redundancy="parity",
))
register(LayoutSpec(
    "three-mirror", lambda n: ThreeMirrorLayout(n),
    "three-way mirroring, identity arrangements (§VIII)",
))
register(LayoutSpec(
    "shifted-three-mirror",
    lambda n: ThreeMirrorLayout(n, ShiftedArrangement(n), _reverse_shift(n)),
    "three-way mirroring with shifted and inverse-shifted arrays (§VIII)",
))
register(LayoutSpec(
    "raid5", RAID5Layout,
    "RAID 5 with a dedicated parity disk (§II-C)",
    redundancy="parity",
))
register(LayoutSpec(
    "raid6-evenodd", lambda n: RAID6Layout(n, "evenodd"),
    "RAID 6 via the EVENODD code (§II-C2)",
    redundancy="code",
))
register(LayoutSpec(
    "raid6-rdp", lambda n: RAID6Layout(n, "rdp"),
    "RAID 6 via Row-Diagonal Parity (§II-C2)",
    redundancy="code",
))
register(LayoutSpec(
    "rebuild-optimal-rdp", RebuildOptimalRDPLayout,
    "RDP with minimum-read hybrid row/diagonal single-disk rebuild "
    "(Wang/Tamo/Bruck spirit)",
    redundancy="code",
))
register(LayoutSpec(
    "xcode", XCodeLayout,
    "vertical RAID 6 via X-Code; n must be prime >= 5",
    redundancy="code",
    # vertical geometry: data rows < n, so the shared user-read streams
    # (which index j < n) do not apply — excluded from leaderboards
    leaderboard=False,
    min_n=5,
))


#: comparison family -> (baseline layout name, variant layout name).
#: The paper's families pit traditional against shifted; the competitor
#: families pit each new layout against its natural baseline.
COMPARISONS: dict[str, tuple[str, str]] = {
    "mirror": ("mirror", "shifted-mirror"),
    "mirror-parity": ("mirror-parity", "shifted-mirror-parity"),
    "three-mirror": ("three-mirror", "shifted-three-mirror"),
    "group-rotated": ("mirror", "group-rotated-mirror"),
    "declustered": ("mirror", "declustered-mirror"),
    "rebuild-optimal": ("raid6-rdp", "rebuild-optimal-rdp"),
}


def build_layout(name: str, n: int) -> Layout:
    """Instantiate a layout by registry name."""
    try:
        builder = LAYOUTS[name]
    except KeyError:
        raise SystemExit(
            f"unknown layout {name!r}; choose from {', '.join(sorted(LAYOUTS))}"
        ) from None
    return builder(n)


def comparison_pair(family: str) -> tuple[str, str]:
    """The ``(baseline, variant)`` layout names of a comparison family.

    This is the registry-declared replacement for the historical
    ``LAYOUTS[family]`` / ``LAYOUTS[f"shifted-{family}"]`` pairing: a
    family's two sides no longer need to share a name prefix, so
    competitor layouts (declustered, group-rotated, rebuild-optimal)
    are selectable everywhere a traditional-vs-shifted comparison runs.
    Raises :class:`ValueError` for names without a declared pair —
    including registered layout names like ``raid5`` or ``xcode`` that
    are layouts but not families.
    """
    try:
        return COMPARISONS[family]
    except KeyError:
        raise ValueError(
            f"family {family!r} has no registered comparison pair; "
            f"choose from {', '.join(comparison_families())}"
        ) from None


def comparison_families() -> list[str]:
    """Sorted names of every declared comparison family."""
    return sorted(COMPARISONS)


def shifted_variant_name(family: str) -> str:
    """The shifted counterpart of a traditional family name.

    Back-compat shim for the paper's three original families; new code
    should use :func:`comparison_pair`, which also covers families
    whose variant is not named ``shifted-*``.
    """
    name = f"shifted-{family}"
    if name not in LAYOUTS:
        raise ValueError(f"family {family!r} has no shifted variant in the registry")
    return name


def leaderboard_layouts(n: int) -> list[str]:
    """Registry names eligible for an ``n``-data-disk leaderboard sweep.

    Registration order (stable and deterministic), filtered by each
    spec's ``leaderboard`` flag and ``min_n`` floor — plus a geometry
    check: the shared arrival stream addresses data cells ``(i, j)``
    with ``j < n``, so a layout whose stripe holds fewer than ``n``
    data rows (EVENODD at prime ``n``, where ``p = n`` leaves ``n - 1``
    rows) cannot serve the mix and sits the sweep out.
    """
    eligible = []
    for name, spec in REGISTRY.items():
        if not spec.leaderboard or n < spec.min_n:
            continue
        layout = spec.builder(n)
        if getattr(layout, "data_rows", layout.rows) < n:
            continue
        eligible.append(name)
    return eligible
