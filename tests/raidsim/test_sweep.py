"""Seeded campaign sweeps: parallel == serial, bit for bit.

The fan-out contract (docs/performance.md) is that ``jobs=N`` is purely
a scheduling decision: per-point randomness derives from
``SeedSequence`` children of the root seed, workers are handed plain
integers, and results merge in seed order — so a pool run must produce
*exactly* the object the serial loop does.
"""

from __future__ import annotations

from repro.raidsim.campaign import (
    SweepResult,
    compare_sweep,
    derive_sweep_seeds,
)

_KW = dict(n_stripes=4, user_read_rate_per_s=20.0)


def test_derive_sweep_seeds_is_deterministic_and_distinct():
    a = derive_sweep_seeds(2012, 8)
    assert a == derive_sweep_seeds(2012, 8)
    assert len(set(a)) == 8  # independent storms, no seed collisions
    assert derive_sweep_seeds(2013, 8) != a


def test_derive_sweep_seeds_prefix_stable():
    """Growing a sweep keeps the earlier points' seeds unchanged."""
    assert derive_sweep_seeds(7, 3) == derive_sweep_seeds(7, 6)[:3]


def test_parallel_sweep_bit_identical_to_serial():
    serial = compare_sweep("mirror", 3, n_seeds=3, jobs=1, **_KW)
    pooled = compare_sweep("mirror", 3, n_seeds=3, jobs=2, **_KW)
    # recursive dataclass equality: every latency, counter and verdict
    assert serial == pooled


def test_persistent_pool_sweep_bit_identical_to_serial():
    """A WorkerPool with a shared film block is still a pure scheduling
    decision — two sweeps on one pool both match the serial run."""
    from repro.parallel import WorkerPool

    serial = compare_sweep("mirror", 3, n_seeds=3, jobs=1, **_KW)
    with WorkerPool(jobs=2) as pool:
        # campaign film: controller seed 2012, payload 16 (run_campaign
        # default), sized for the sweep's stripes and mirror geometry
        pool.share_film(2012, 16, n_stripes=_KW["n_stripes"], n_i=3, n_j=3)
        first = compare_sweep("mirror", 3, n_seeds=3, pool=pool, **_KW)
        second = compare_sweep("mirror", 3, n_seeds=3, pool=pool, **_KW)
    assert serial == first == second


def test_sweep_points_carry_their_seeds_in_order():
    sweep = compare_sweep("mirror", 3, n_seeds=3, jobs=1, **_KW)
    assert isinstance(sweep, SweepResult)
    assert [p.seed_index for p in sweep.points] == [0, 1, 2]
    expected = derive_sweep_seeds(sweep.root_seed, 3)
    assert [(p.fault_seed, p.user_read_seed) for p in sweep.points] == list(expected)
    assert len(sweep) == 3


def test_sweep_aggregates_are_well_defined():
    sweep = compare_sweep("mirror", 3, n_seeds=2, jobs=1, **_KW)
    worst_traditional, worst_shifted = sweep.worst_data_survival
    assert 0.0 <= worst_traditional <= 1.0
    assert 0.0 <= worst_shifted <= 1.0
    assert 0 <= sweep.shifted_wins <= len(sweep)
    assert sweep.mean_latency_speedup > 0


def test_unknown_family_rejected_before_any_work():
    import pytest

    with pytest.raises(ValueError, match="no registered comparison pair"):
        compare_sweep("raid5", 4, n_seeds=2, jobs=1, **_KW)
