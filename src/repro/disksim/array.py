"""Element-granular disk array on top of the event engine.

:class:`ElementArray` is the substrate the RAID layer drives: an array
of identical disks addressed in fixed-size *elements* (the paper uses
4 MB).  It provides batch submission, dependency-free barriers and the
strict parallel-round execution mode that realises the paper's
"one element per disk per access" model.

Batch submission contract
-------------------------
Both :meth:`ElementArray.submit_elements` and the vectorized
:meth:`ElementArray.submit_batch` **coalesce**: repeated ``(disk,
slot)`` operations deduplicate and contiguous slots on one disk merge
into a single larger request, exactly like the I/O merging real block
layers perform.  Consequences callers must honour:

* the returned :class:`BatchSubmission` (a list of the actual
  :class:`~repro.disksim.request.IORequest` objects) is the
  *authoritative* batch — its length may be smaller than the number of
  submitted operations;
* the per-request ``callback`` fires once per **coalesced request**,
  never once per operation — counting callback firings against the
  operation count miscounts;
* ``on_complete`` fires exactly once when the whole batch settled
  (immediately for an empty batch) and is the right completion hook;
* :meth:`BatchSubmission.op_requests` maps every submitted operation
  (in input order) to the request that covers it, for callers that do
  need per-operation attribution.

The batch path can be globally disabled (``REPRO_BATCH=0`` or
:func:`set_batch_enabled`) to fall back to the per-element Python
loop; ``benchmarks/perfbench.py --no-batch`` uses this for ablation.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from ..obs import default_registry, obs_enabled
from .disk import DiskParameters
from .events import Simulation
from .request import IOKind, IORequest
from .scheduler import ElevatorScheduler, Scheduler
from .trace import TraceStats, summarize

__all__ = [
    "ElementArray",
    "BatchSubmission",
    "DEFAULT_ELEMENT_SIZE",
    "set_batch_enabled",
    "batch_enabled",
]

_MB = 1024 * 1024

#: 4 MB, "a typical choice in storage systems" (§VII citing Atropos).
DEFAULT_ELEMENT_SIZE = 4 * _MB

#: below this many ops the tuned scalar coalescer beats numpy's fixed
#: per-call overhead (asarray/lexsort on tiny inputs).  Calibrated per
#: machine by :mod:`repro.disksim.autotune` at the first batch that has
#: to make the choice; ``REPRO_BATCH_THRESHOLD`` pins it explicitly.
_numpy_min_ops: int | None = None


def _resolve_numpy_min_ops() -> int:
    global _numpy_min_ops
    if _numpy_min_ops is None:
        from .autotune import batch_threshold

        _numpy_min_ops = batch_threshold()
    return _numpy_min_ops

_batch_enabled = os.environ.get("REPRO_BATCH", "1") != "0"


def set_batch_enabled(enabled: bool) -> bool:
    """Toggle the vectorized batch path globally; returns the old value.

    With the path disabled every submission runs the per-element Python
    loop the seed engine used — the ablation switch behind
    ``perfbench --no-batch`` and the ``REPRO_BATCH=0`` environment
    variable.  Coalescing semantics are identical either way.
    """
    global _batch_enabled
    old = _batch_enabled
    _batch_enabled = bool(enabled)
    return old


def batch_enabled() -> bool:
    """Whether the vectorized batch path is currently enabled."""
    return _batch_enabled


class BatchSubmission(list):
    """The coalesced requests of one batch submission.

    A plain ``list`` of :class:`~repro.disksim.request.IORequest` (the
    authoritative batch — see the module docstring for the coalescing
    contract) plus the operation→request mapping.
    """

    __slots__ = ("_op_req_index",)

    def __init__(self, requests=(), op_req_index=None) -> None:
        super().__init__(requests)
        #: request index (into ``self``) covering each input op, in
        #: input order; ``None`` when the submission had no op list
        self._op_req_index = op_req_index

    def op_requests(self) -> list[IORequest]:
        """The request covering each submitted op, in input order.

        Repeated or contiguous ops map to the same request object, so
        ``len(op_requests()) >= len(self)`` in general — this is the
        mapping callers should use to attribute a completion back to
        the operations that asked for it.
        """
        if self._op_req_index is None:
            raise ValueError("this submission did not record an op mapping")
        return [self[k] for k in self._op_req_index]


class _BatchGroup:
    """Per-request callback that fires ``on_complete`` once at the end.

    One slotted object per batch instead of a closure cell — this
    callback runs once per request on the engine's hot path.
    """

    __slots__ = ("remaining", "user_cb", "on_complete")

    def __init__(self, remaining: int, user_cb, on_complete) -> None:
        self.remaining = remaining
        self.user_cb = user_cb
        self.on_complete = on_complete

    def __call__(self, req: IORequest) -> None:
        if self.user_cb is not None:
            self.user_cb(req)
        self.remaining -= 1
        if self.remaining == 0:
            self.on_complete()


class _ArrayObs:
    """Batch-path instruments; ``None`` on the array when obs is off."""

    __slots__ = ("coalesce_ratio", "scalar_path", "numpy_path", "batch_ops")

    #: dimensionless ops-per-request ratio buckets (1 = nothing merged)
    _RATIO_BUCKETS = (1.0, 1.5, 2.0, 3.0, 4.0, 8.0, 16.0, 32.0, 64.0)

    def __init__(self) -> None:
        reg = default_registry()
        self.coalesce_ratio = reg.histogram(
            "array.coalesce_ratio",
            "submitted ops per coalesced request, per batch",
            buckets=self._RATIO_BUCKETS,
        ).labels()
        path = reg.counter(
            "array.batch_path", "batches coalesced by the scalar vs numpy path"
        )
        self.scalar_path = path.labels(path="scalar")
        self.numpy_path = path.labels(path="numpy")
        self.batch_ops = reg.counter(
            "array.batch_ops", "element operations submitted through batches"
        ).labels()

    def on_batch(self, n_ops: int, n_requests: int, used_numpy: bool) -> None:
        if used_numpy:
            self.numpy_path.inc()
        else:
            self.scalar_path.inc()
        self.batch_ops.inc(n_ops)
        if n_requests > 0:
            self.coalesce_ratio.observe(n_ops / n_requests)


class ElementArray:
    """An array of disks addressed by (disk, element slot).

    Parameters
    ----------
    n_disks:
        Disks in the array (the architecture's global disk count).
    element_size:
        Bytes per element; offset of slot ``k`` is ``k * element_size``.
    params, scheduler_factory, calendar:
        Forwarded to the underlying :class:`Simulation` (``calendar``
        picks the event-calendar implementation, overriding
        ``REPRO_CALENDAR``).
    """

    def __init__(
        self,
        n_disks: int,
        element_size: int = DEFAULT_ELEMENT_SIZE,
        params: DiskParameters | None = None,
        scheduler_factory: Callable[[], Scheduler] = ElevatorScheduler,
        faults=None,
        tracer=None,
        calendar: str | None = None,
    ) -> None:
        if element_size <= 0:
            raise ValueError(f"element size must be positive, got {element_size}")
        self.element_size = element_size
        self.sim = Simulation(
            n_disks,
            params=params,
            scheduler_factory=scheduler_factory,
            faults=faults,
            tracer=tracer,
            calendar=calendar,
        )
        self._obs = _ArrayObs() if obs_enabled() else None

    # ------------------------------------------------------------------
    @property
    def n_disks(self) -> int:
        return self.sim.n_disks

    @property
    def now(self) -> float:
        return self.sim.now

    def element_request(
        self,
        disk: int,
        slot: int,
        kind: IOKind,
        n_elements: int = 1,
        priority: int = 10,
        tag: str = "",
    ) -> IORequest:
        """Build a request covering ``n_elements`` contiguous slots."""
        if slot < 0 or n_elements < 1:
            raise ValueError(f"bad element range: slot={slot}, n={n_elements}")
        # positional call: the keyword form costs ~30% more per request
        # and this sits on the scalar submission hot path
        element_size = self.element_size
        return IORequest(
            disk, slot * element_size, n_elements * element_size, kind, priority, tag
        )

    # ------------------------------------------------------------------
    def submit(self, request: IORequest, callback=None) -> None:
        self.sim.submit(request, callback)

    def submit_elements(
        self,
        ops,
        kind: IOKind,
        priority: int = 10,
        tag: str = "",
        callback=None,
        on_complete=None,
    ) -> "BatchSubmission":
        """Submit a batch of single-element operations.

        ``ops`` is an iterable of ``(disk, slot)``.  Contiguous slots on
        the same disk are *coalesced* into one larger request — the I/O
        merging real block layers perform for adjacent element accesses
        — and repeated ``(disk, slot)`` pairs deduplicate into the same
        request (see the module docstring for the full contract).

        ``callback`` fires per coalesced request; ``on_complete`` fires
        once after the whole batch finished (immediately if the batch is
        empty).  The returned :class:`BatchSubmission` is the
        authoritative request list and carries the op→request mapping.
        """
        if not isinstance(ops, list):
            ops = list(ops)
        disks = [op[0] for op in ops]
        slots = [op[1] for op in ops]
        return self.submit_batch(
            disks,
            slots,
            kind,
            priority=priority,
            tag=tag,
            callback=callback,
            on_complete=on_complete,
        )

    def submit_batch(
        self,
        disks,
        slots,
        kind: IOKind,
        n_elements=None,
        priority: int = 10,
        tag: str = "",
        callback=None,
        on_complete=None,
    ) -> "BatchSubmission":
        """Vectorized batch submission from parallel disk/slot arrays.

        ``disks``/``slots`` (and optionally ``n_elements``, per-op run
        lengths defaulting to 1) are parallel sequences — lists or numpy
        arrays — describing one operation per position.  Overlapping and
        adjacent element ranges on the same disk coalesce into single
        requests, submitted in deterministic ``(disk asc, start slot
        asc)`` order — byte-identical to what the per-element loop
        produced, so scheduler decisions and timings are unchanged.

        Large batches coalesce with numpy array ops (lexsort + segmented
        running-max); small ones use a tuned scalar loop that beats
        numpy's fixed per-call overhead.  ``REPRO_BATCH=0`` (or
        :func:`set_batch_enabled`) forces the scalar loop with
        per-request engine submission — the ablation baseline.
        """
        m = len(disks)
        if len(slots) != m or (n_elements is not None and len(n_elements) != m):
            raise ValueError("disks, slots and n_elements must be parallel")
        threshold = _numpy_min_ops
        if threshold is None:
            threshold = _resolve_numpy_min_ops()
        use_numpy = _batch_enabled and m >= threshold
        if use_numpy:
            runs, op_req = self._coalesce_numpy(disks, slots, n_elements)
        else:
            runs, op_req = self._coalesce_scalar(disks, slots, n_elements)
        if self._obs is not None:
            self._obs.on_batch(m, len(runs), use_numpy)
        esize = self.element_size
        requests = [
            IORequest(
                disk=d,
                offset=start * esize,
                size=(end - start) * esize,
                kind=kind,
                priority=priority,
                tag=tag,
            )
            for d, start, end in runs
        ]
        submission = BatchSubmission(requests, op_req)
        if on_complete is not None:
            if not requests:
                on_complete()
                return submission
            cb = _BatchGroup(len(requests), callback, on_complete)
        else:
            cb = callback
        if _batch_enabled:
            self.sim.submit_many(requests, cb)
        else:
            for r in requests:
                self.sim.submit(r, cb)
        return submission

    def _coalesce_scalar(self, disks, slots, n_elements):
        """Merge ops into (disk, start, end) runs with a Python loop."""
        m = len(disks)
        if n_elements is None:
            order = sorted(range(m), key=lambda k: (disks[k], slots[k]))
        else:
            order = sorted(range(m), key=lambda k: (disks[k], slots[k], n_elements[k]))
        runs: list[tuple[int, int, int]] = []
        op_req = [0] * m
        cur_disk = -1
        cur_start = cur_end = 0
        for k in order:
            d = disks[k]
            s = slots[k]
            e = s + (1 if n_elements is None else n_elements[k])
            if s < 0 or e <= s:
                raise ValueError(f"bad element range: slot={s}, n={e - s}")
            if d == cur_disk and s <= cur_end:
                if e > cur_end:
                    cur_end = e
            else:
                if cur_disk >= 0:
                    runs.append((cur_disk, cur_start, cur_end))
                cur_disk, cur_start, cur_end = d, s, e
            op_req[k] = len(runs)
        if cur_disk >= 0:
            runs.append((cur_disk, cur_start, cur_end))
        return runs, op_req

    def _coalesce_numpy(self, disks, slots, n_elements):
        """Merge ops into (disk, start, end) runs with array ops.

        Runs are found without a Python-level pass over the ops: lexsort
        by (disk, start), take a segmented running maximum of interval
        ends (the segment offset trick keeps one ``maximum.accumulate``
        global), and break a run wherever the disk changes or a start
        exceeds every prior end in its segment.
        """
        d = np.asarray(disks, dtype=np.int64)
        s = np.asarray(slots, dtype=np.int64)
        if n_elements is None:
            e = s + 1
        else:
            e = s + np.asarray(n_elements, dtype=np.int64)
        if s.min() < 0 or (e <= s).any():
            raise ValueError("bad element range in batch")
        order = np.lexsort((s, d))
        ds = d[order]
        ss = s[order]
        es = e[order]
        m = len(ds)
        disk_break = np.empty(m, dtype=bool)
        disk_break[0] = True
        np.not_equal(ds[1:], ds[:-1], out=disk_break[1:])
        # segmented running max of ends: offset each disk-segment into
        # its own value band so one global accumulate stays segmented
        seg = np.cumsum(disk_break)
        big = int(es.max()) + 1
        run_end = np.maximum.accumulate(es + seg * big) - seg * big
        new_run = disk_break.copy()
        np.logical_or(new_run[1:], ss[1:] > run_end[:-1], out=new_run[1:])
        run_id = np.cumsum(new_run) - 1
        first = np.flatnonzero(new_run)
        last = np.empty(len(first), dtype=np.int64)
        last[:-1] = first[1:] - 1
        last[-1] = m - 1
        run_disks = ds[first].tolist()
        run_starts = ss[first].tolist()
        run_ends = run_end[last].tolist()
        runs = list(zip(run_disks, run_starts, run_ends))
        op_req = np.empty(m, dtype=np.int64)
        op_req[order] = run_id
        return runs, op_req.tolist()

    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Advance the simulation; returns the clock."""
        return self.sim.run(until)

    def run_rounds(self, rounds, kind: IOKind, tag: str = "") -> float:
        """Strict parallel-round execution (the paper's access model).

        Each round is a list of ``(disk, slot)``; every operation of a
        round is submitted together and the next round starts only when
        all of them completed — one "access" per round.  Returns the
        total elapsed time.
        """
        start = self.sim.now
        for batch in rounds:
            if batch:
                self.submit_batch(
                    [d for d, _ in batch], [s for _, s in batch], kind, tag=tag
                )
            self.sim.run()
        return self.sim.now - start

    # ------------------------------------------------------------------
    def stats(self, tag: str | None = None) -> TraceStats:
        return summarize(self.sim, tag)

    def park_heads(self) -> None:
        """Reset every disk's head state (between experiment repetitions)."""
        for server in self.sim.disks:
            server.model.reset_position(0)

    @classmethod
    def for_paper_testbed(
        cls, n_disks: int, element_size: int = DEFAULT_ELEMENT_SIZE
    ) -> "ElementArray":
        """Array of Savvio 10K.3 disks, the paper's configuration."""
        return cls(n_disks, element_size, DiskParameters.savvio_10k3())
