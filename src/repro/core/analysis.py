"""Closed-form performance analysis (paper §VI, Table I, Fig. 7).

Everything here is exact arithmetic from the paper's counting arguments
— no simulation.  The test suite cross-checks these formulas against
brute-force enumeration of :meth:`Layout.reconstruction_plan` over all
failure combinations, which is precisely how the paper derives them
("rigorous counting and averaging on a simple stripe" [14]).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..codes.evenodd import smallest_prime_at_least
from .layouts import (
    MirrorParityLayout,
    shifted_mirror_parity,
    traditional_mirror_parity,
)

__all__ = [
    "Table1Row",
    "table1",
    "avg_read_accesses_shifted_parity",
    "avg_read_accesses_traditional_parity",
    "avg_read_accesses_raid6",
    "avg_read_accesses_enumerated",
    "mirror_reconstruction_gain",
    "mirror_parity_reconstruction_gain",
    "fig7_ratio_vs_traditional",
    "fig7_ratio_vs_raid6",
    "fig7_series",
    "storage_efficiency_mirror",
    "storage_efficiency_mirror_parity",
    "storage_efficiency_raid6",
    "small_write_cost",
    "large_write_accesses",
]


# ======================================================================
# Table I — double-failure cases of the shifted mirror method w/ parity
# ======================================================================


@dataclass(frozen=True)
class Table1Row:
    """One failure situation ``F_i`` of Table I."""

    situation: str
    description: str
    num_cases: int
    num_read_accesses: int


def table1(n: int) -> list[Table1Row]:
    """Table I for ``n`` data disks.

    F1: the two failed disks include the parity disk  — 2n cases, 1 access.
    F2: both failed disks in the same disk array      — n(n-1) cases, 2.
    F3: one failed disk in each disk array            — n^2 cases, 2.
    """
    if n < 2:
        raise ValueError(f"Table I needs n >= 2, got {n}")
    return [
        Table1Row(
            "F1",
            "The two failed disks include the parity disk",
            2 * n,
            1,
        ),
        Table1Row(
            "F2",
            "The two failed disks are in the same disk array",
            n * (n - 1),
            2,
        ),
        Table1Row(
            "F3",
            "Each disk array contains one failed disk",
            n * n,
            2,
        ),
    ]


def avg_read_accesses_shifted_parity(n: int) -> Fraction:
    """Expectation of Table I: ``4n / (2n + 1)`` (paper §VI-A)."""
    rows = table1(n)
    total_cases = sum(r.num_cases for r in rows)
    weighted = sum(r.num_cases * r.num_read_accesses for r in rows)
    result = Fraction(weighted, total_cases)
    assert result == Fraction(4 * n, 2 * n + 1)
    return result


def avg_read_accesses_traditional_parity(n: int) -> Fraction:
    """Every double-failure case of the traditional arrangement costs
    ``n`` accesses (a full column read from a single disk), so the
    average is ``n``."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    return Fraction(n)


def avg_read_accesses_raid6(n: int, code: str = "rdp") -> Fraction:
    """RAID 6 double-failure read accesses under the "shorten" method.

    Every reconstruction reads all intact elements; with each surviving
    disk holding ``p - 1`` elements, that is ``p - 1`` accesses, where
    ``p`` is the smallest prime admitting ``n`` data columns
    (``p >= n`` for EVENODD, ``p >= n + 1`` for RDP).  The shortening
    gap ``p - 1 >= n`` (RDP) is exactly why the paper's Fig. 7 shows
    the RAID 6 curve slightly below the traditional mirror-with-parity
    curve.
    """
    if code == "evenodd":
        p = smallest_prime_at_least(max(n, 3))
    elif code == "rdp":
        p = smallest_prime_at_least(max(n + 1, 3))
    else:
        raise ValueError(f"unknown RAID 6 code {code!r}")
    return Fraction(p - 1)


def avg_read_accesses_enumerated(layout: MirrorParityLayout, n_failed: int = 2) -> Fraction:
    """Brute-force average of Table I's metric over all failure sets.

    Enumerates every combination of ``n_failed`` disks and averages
    :meth:`MirrorParityLayout.data_recovery_read_accesses` — the
    ground truth the closed forms must match.
    """
    cases = layout.all_failure_sets(n_failed)
    total = sum(layout.data_recovery_read_accesses(c) for c in cases)
    return Fraction(total, len(cases))


# ======================================================================
# Reconstruction gains (§IV-B, §VI-A)
# ======================================================================


def mirror_reconstruction_gain(n: int) -> Fraction:
    """Shifted over traditional mirror method: a factor of ``n``.

    Traditional single-disk reconstruction reads ``n`` elements from
    one disk (n accesses); shifted reads one element from each of the
    ``n`` disks of the other array (1 access).
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    return Fraction(n)


def mirror_parity_reconstruction_gain(n: int) -> Fraction:
    """Shifted over traditional mirror-with-parity: ``(2n + 1) / 4``."""
    gain = avg_read_accesses_traditional_parity(n) / avg_read_accesses_shifted_parity(n)
    assert gain == Fraction(2 * n + 1, 4)
    return gain


def three_mirror_single_failure_accesses(n: int, shifted: bool) -> int:
    """Read accesses to rebuild one disk of a three-mirror array (§VIII).

    Traditional triple replication can split the failed column between
    its *two* verbatim copy disks — ``ceil(n/2)`` accesses; the shifted
    extension (paper future work) scatters both replica sets, reaching
    the one-access optimum.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    return 1 if shifted else (n + 1) // 2


def three_mirror_reconstruction_gain(n: int) -> Fraction:
    """Shifted over traditional three-mirror: ``ceil(n/2)``."""
    return Fraction(
        three_mirror_single_failure_accesses(n, shifted=False),
        three_mirror_single_failure_accesses(n, shifted=True),
    )


# ======================================================================
# Fig. 7 — relative read accesses during reconstruction
# ======================================================================


def fig7_ratio_vs_traditional(n: int) -> float:
    """Shifted-with-parity accesses over traditional-with-parity, in percent."""
    ratio = avg_read_accesses_shifted_parity(n) / avg_read_accesses_traditional_parity(n)
    return float(ratio) * 100.0


def fig7_ratio_vs_raid6(n: int, code: str = "rdp") -> float:
    """Shifted-with-parity accesses over RAID 6, in percent."""
    ratio = avg_read_accesses_shifted_parity(n) / avg_read_accesses_raid6(n, code)
    return float(ratio) * 100.0


def fig7_series(n_min: int = 2, n_max: int = 50, code: str = "rdp") -> dict[str, list[float]]:
    """The two Fig. 7 curves over a range of data-disk counts."""
    ns = list(range(n_min, n_max + 1))
    return {
        "n": [float(n) for n in ns],
        "vs_traditional_percent": [fig7_ratio_vs_traditional(n) for n in ns],
        "vs_raid6_percent": [fig7_ratio_vs_raid6(n, code) for n in ns],
    }


# ======================================================================
# Storage efficiency (§VI-D) and write cost (§VI-C)
# ======================================================================


def storage_efficiency_mirror(n: int) -> Fraction:
    """``n / 2n`` — half, independent of n."""
    return Fraction(n, 2 * n)


def storage_efficiency_mirror_parity(n: int) -> Fraction:
    """``n / (2n + 1)`` — approaches one half from below."""
    return Fraction(n, 2 * n + 1)


def storage_efficiency_raid6(n: int) -> Fraction:
    """``n / (n + 2)`` — the MDS optimum for two-fault tolerance."""
    return Fraction(n, n + 2)


def raid6_avg_small_write_updates(n: int, code: str = "rdp") -> Fraction:
    """Average elements written by a single-element update in RAID 6.

    The mirror methods write exactly 2 (without parity) or 3 (with)
    elements per small write — the theoretical optima.  RAID 6 cannot
    match that (§II-C2, citing Blaum et al.): every update rewrites the
    element, its row parity, and one *or more* diagonal parities
    (EVENODD's adjuster diagonal rewrites them all; RDP's P cascade
    dirties a second diagonal).  Enumerated exactly over the stripe.
    """
    from .layouts import RAID6Layout

    lay = RAID6Layout(n, code)
    total = 0
    cells = 0
    for i in range(n):
        for j in range(lay.rows):
            total += lay.write_plan([(i, j)]).total_elements_written
            cells += 1
    return Fraction(total, cells)


def small_write_cost(layout_kind: str) -> int:
    """Elements written by a single-element modification.

    ``mirror`` -> 2 (data + replica), ``mirror-parity`` -> 3 (data +
    replica + parity), both the theoretical optima for their fault
    tolerance; the paper contrasts RAID 6 codes, which cannot reach 3
    in general [19, 20].
    """
    table = {"mirror": 2, "mirror-parity": 3, "three-mirror": 3}
    if layout_kind not in table:
        raise ValueError(f"unknown layout kind {layout_kind!r}")
    return table[layout_kind]


def large_write_accesses(layout, j: int = 0) -> int:
    """Write accesses for a full-row write under a layout.

    1 for any arrangement satisfying Property 3 (identity, shifted);
    more when Property 3 fails — the §VI-E iterate-3 arrangement is the
    canonical counterexample.
    """
    return layout.large_write_plan(j).num_write_accesses


# ======================================================================
# Convenience: direct construction of the compared layouts
# ======================================================================


def compared_parity_layouts(n: int) -> tuple[MirrorParityLayout, MirrorParityLayout]:
    """The (traditional, shifted) mirror-with-parity pair for size n."""
    return traditional_mirror_parity(n), shifted_mirror_parity(n)
