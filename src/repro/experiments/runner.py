"""Run every table/figure reproduction in one go.

Usage::

    python -m repro.experiments.runner            # full run
    python -m repro.experiments.runner --quick    # smaller sweeps

Prints each experiment's artifact (a table or figure-as-columns) in
paper order: Table I, Fig. 7, Fig. 8, Fig. 9(a)/(b), Fig. 10(a)/(b).
"""

from __future__ import annotations

import argparse
import sys
import time

from ..parallel import parallel_map
from . import ext_lse, ext_raid6, ext_three_mirror, fig7, fig8, fig9, fig10, table1
from .reporting import ExperimentResult

__all__ = ["run_all", "main"]


def _experiment_specs(quick: bool) -> list[tuple]:
    """(callable, args, kwargs) per experiment — plain picklable data.

    Every experiment is independent and deterministic (each owns its
    seeds), so the battery is an embarrassingly parallel unit of work.
    """
    n_values = (3, 4, 5) if quick else (3, 4, 5, 6, 7)
    n_ops = 60 if quick else 200
    return [
        (table1.run, (n_values,), {}),
        (fig7.run, (2, 20 if quick else 50), {}),
        (fig8.run, (), {}),
        (fig9.run_a, (n_values,), {"n_stripes": 8 if quick else 16}),
        (fig9.run_b, (n_values,), {"n_stripes": 6 if quick else 12}),
        (fig10.run_a, (n_values,), {"n_ops": n_ops}),
        (fig10.run_b, (n_values,), {"n_ops": n_ops}),
        (ext_three_mirror.run, (n_values,), {"n_stripes": 8 if quick else 12}),
        (
            ext_lse.run,
            (),
            {
                "n": 5,
                "error_counts": (0, 4, 8) if quick else (0, 2, 4, 8, 16),
                "trials": 8 if quick else 20,
            },
        ),
        (
            ext_raid6.run,
            (),
            {
                "n_values": (4, 5) if quick else (4, 5, 6, 7),
                "n_stripes": 6 if quick else 8,
            },
        ),
    ]


def _run_spec(spec: tuple) -> ExperimentResult:
    fn, args, kwargs = spec
    return fn(*args, **kwargs)


def run_all(
    quick: bool = False, jobs: int | None = None, pool=None
) -> list[ExperimentResult]:
    """All experiments: paper order, then the §VIII extension.

    ``jobs`` fans the battery across a process pool (``None``/1 serial,
    0 = all cores); ``pool`` (a :class:`repro.parallel.WorkerPool`)
    reuses persistent workers instead.  Results always come back in
    paper order.
    """
    return parallel_map(_run_spec, _experiment_specs(quick), jobs=jobs, pool=pool)


def main(argv=None) -> int:
    """CLI entry point: print every experiment artifact."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller sweeps for CI")
    parser.add_argument(
        "--svg",
        metavar="DIR",
        help="also render Figs. 7/9/10 as SVG files into DIR",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="fan experiments across this many processes (0 = all cores)",
    )
    args = parser.parse_args(argv)
    t0 = time.time()
    for result in run_all(quick=args.quick, jobs=args.jobs):
        print(result)
        print()
    if args.svg:
        from .svgplot import render_all

        for path in render_all(args.svg, quick=args.quick):
            print(f"wrote {path}")
    print(f"[all experiments done in {time.time() - t0:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
