"""Active-fault timelines: activation/deactivation as first-class objects.

The ydb-style nemesis pattern separates *doing* harm from *knowing*
what harm is currently being done: every injected fault is recorded as
a :class:`FaultInterval` on a :class:`FaultTimeline`, so the anomaly
detector can ask "what was hurting the array at time *t*?" — the
question attribution is made of.

The timeline exports through the observability layer:

* :meth:`FaultTimeline.export_spans` emits one trace span per fault
  interval (category ``"nemesis"``), so a chrome://tracing view shows
  fault windows right above the per-disk I/O tracks;
* :meth:`FaultTimeline.export_metrics` publishes
  ``nemesis.faults_recorded_total{kind=…}`` counters and the
  ``nemesis.active_faults`` gauge (updated per observation time), all
  scrapable live via ``--metrics-port``;
* :meth:`FaultTimeline.to_dict` is the schema-versioned wire form the
  CLI embeds in ``--json`` reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..disksim.faultplan import FaultPlan
from ..obs import default_registry
from .schedule import NemesisSchedule

__all__ = [
    "TIMELINE_SCHEMA_VERSION",
    "FaultInterval",
    "FaultTimeline",
    "timeline_from_plan",
]

#: bump when the ``to_dict`` wire format changes shape
TIMELINE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FaultInterval:
    """One fault's recorded activation window (``end_s`` = inf if open)."""

    fault_id: int
    kind: str
    disk: int
    start_s: float
    end_s: float
    magnitude: float = 1.0

    def active_at(self, t: float, margin: float = 0.0) -> bool:
        return self.start_s - margin <= t < self.end_s + margin

    def overlaps(self, t0: float, t1: float, margin: float = 0.0) -> bool:
        return self.start_s - margin < t1 and t0 < self.end_s + margin

    def to_dict(self) -> dict:
        return {
            "fault_id": self.fault_id,
            "kind": self.kind,
            "disk": self.disk,
            "start_s": self.start_s,
            "end_s": None if math.isinf(self.end_s) else self.end_s,
            "magnitude": self.magnitude,
        }


class FaultTimeline:
    """An append-only record of fault activations and deactivations.

    Intervals can be recorded whole (:meth:`record`, from a frozen
    schedule) or live (:meth:`activate` … :meth:`deactivate`, from a
    driver reacting to events).  Queries treat a still-open interval as
    extending to infinity.
    """

    def __init__(self) -> None:
        self._intervals: dict[int, FaultInterval] = {}

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self):
        return iter(self.intervals)

    @property
    def intervals(self) -> tuple[FaultInterval, ...]:
        return tuple(
            sorted(
                self._intervals.values(),
                key=lambda iv: (iv.start_s, iv.fault_id),
            )
        )

    # ------------------------------------------------------------------
    def record(self, interval: FaultInterval) -> FaultInterval:
        """Record a complete interval (idempotent per ``fault_id``)."""
        if interval.fault_id in self._intervals:
            raise ValueError(f"fault_id {interval.fault_id} already recorded")
        self._intervals[interval.fault_id] = interval
        return interval

    def activate(
        self,
        fault_id: int,
        kind: str,
        disk: int,
        start_s: float,
        magnitude: float = 1.0,
    ) -> FaultInterval:
        """Open an interval; close it later with :meth:`deactivate`."""
        return self.record(
            FaultInterval(fault_id, kind, disk, start_s, math.inf, magnitude)
        )

    def deactivate(self, fault_id: int, end_s: float) -> FaultInterval:
        iv = self._intervals.get(fault_id)
        if iv is None:
            raise ValueError(f"fault_id {fault_id} was never activated")
        if not math.isinf(iv.end_s):
            raise ValueError(f"fault_id {fault_id} already deactivated")
        if end_s < iv.start_s:
            raise ValueError(
                f"deactivation at {end_s} precedes activation at {iv.start_s}"
            )
        closed = FaultInterval(
            iv.fault_id, iv.kind, iv.disk, iv.start_s, end_s, iv.magnitude
        )
        self._intervals[fault_id] = closed
        return closed

    @classmethod
    def from_schedule(cls, schedule: NemesisSchedule) -> "FaultTimeline":
        """The timeline a schedule *promises* (pre-recorded intervals)."""
        tl = cls()
        for f in schedule.faults:
            tl.record(
                FaultInterval(
                    f.fault_id, f.kind, f.disk, f.start_s, f.end_s, f.magnitude
                )
            )
        return tl

    # ------------------------------------------------------------------
    def active_at(self, t: float, margin: float = 0.0) -> tuple[FaultInterval, ...]:
        """Intervals covering time ``t`` (padded by ``margin`` both ways)."""
        return tuple(iv for iv in self.intervals if iv.active_at(t, margin))

    def overlapping(
        self, t0: float, t1: float, margin: float = 0.0
    ) -> tuple[FaultInterval, ...]:
        return tuple(iv for iv in self.intervals if iv.overlaps(t0, t1, margin))

    def n_active_at(self, t: float, margin: float = 0.0) -> int:
        return len(self.active_at(t, margin))

    # ------------------------------------------------------------------
    # observability exports
    # ------------------------------------------------------------------
    def export_spans(self, group, horizon_s: float | None = None) -> int:
        """Emit one complete span per interval onto a trace group.

        Open intervals are clamped to ``horizon_s`` (required if any
        are open).  Returns the number of spans emitted.
        """
        emitted = 0
        for iv in self.intervals:
            end = iv.end_s
            if math.isinf(end):
                if horizon_s is None:
                    raise ValueError(
                        "open interval needs horizon_s to clamp its span"
                    )
                end = horizon_s
            group.complete(
                iv.kind,
                ts=iv.start_s,
                dur=max(0.0, end - iv.start_s),
                cat="nemesis",
                disk=iv.disk,
                fault_id=iv.fault_id,
                magnitude=iv.magnitude,
            )
            emitted += 1
        return emitted

    def overlay_bands(self, horizon_s: float | None = None) -> tuple[dict, ...]:
        """Intervals as plain-data overlay bands for dashboard charts.

        Each band is ``{"t0", "t1", "kind", "disk", "label"}`` in
        simulated seconds; open intervals clamp to ``horizon_s``
        (required if any are open).  This is the shape
        ``repro.obs.report`` draws as translucent rectangles behind
        the latency/progress curves.
        """
        bands = []
        for iv in self.intervals:
            end = iv.end_s
            if math.isinf(end):
                if horizon_s is None:
                    raise ValueError(
                        "open interval needs horizon_s to clamp its band"
                    )
                end = horizon_s
            label = iv.kind if iv.disk < 0 else f"{iv.kind} (disk {iv.disk})"
            bands.append(
                {
                    "t0": iv.start_s,
                    "t1": max(iv.start_s, end),
                    "kind": iv.kind,
                    "disk": iv.disk,
                    "label": label,
                }
            )
        return tuple(bands)

    def export_metrics(self, registry=None) -> None:
        """Publish per-kind recorded-fault counters on ``registry``."""
        reg = registry if registry is not None else default_registry()
        counter = reg.counter(
            "nemesis.faults_recorded_total", "fault intervals on the timeline"
        )
        for iv in self.intervals:
            counter.inc(1.0, kind=iv.kind)

    def observe_gauge(self, t: float, registry=None, **labels) -> int:
        """Set the currently-active-faults gauge as of time ``t``."""
        reg = registry if registry is not None else default_registry()
        n = self.n_active_at(t)
        reg.gauge(
            "nemesis.active_faults", "faults active at the last observed tick"
        ).set(float(n), **labels)
        return n

    def to_dict(self) -> dict:
        """Schema-versioned wire form for JSON reports."""
        return {
            "schema_version": TIMELINE_SCHEMA_VERSION,
            "n_faults": len(self._intervals),
            "faults": [iv.to_dict() for iv in self.intervals],
        }


def timeline_from_plan(plan: FaultPlan, horizon_s: float) -> FaultTimeline:
    """Project a static :class:`FaultPlan` onto a fault timeline.

    This is what lets the classic ``faultcampaign`` report carry the
    same schema-versioned timeline block a nemesis campaign emits:
    fail-slow windows map directly, scheduled disk deaths open at their
    failure time (clamped to the horizon), a nonzero transient rate
    covers the whole run, and LSE cells/bursts land as a t=0 storm.
    """
    tl = FaultTimeline()
    next_id = 0
    for df in plan.disk_failures:
        tl.record(
            FaultInterval(next_id, "disk-death", df.disk, df.time_s, horizon_s, 1.0)
        )
        next_id += 1
    for fs in plan.fail_slow:
        tl.record(
            FaultInterval(
                next_id,
                "fail-slow",
                fs.disk,
                fs.start_s,
                min(fs.end_s, horizon_s),
                fs.multiplier,
            )
        )
        next_id += 1
    if plan.transient is not None and plan.transient.rate > 0:
        tl.record(
            FaultInterval(
                next_id, "transient-burst", -1, 0.0, horizon_s, plan.transient.rate
            )
        )
        next_id += 1
    n_lses = plan.n_random_lses + len(plan.lse_cells)
    if n_lses:
        tl.record(
            FaultInterval(next_id, "lse-storm", -1, 0.0, horizon_s, float(n_lses))
        )
        next_id += 1
    return tl
