"""Core layout algebra: the paper's contribution and its analysis.

The public surface re-exports the arrangement classes, property
checkers, layout/architecture classes, plans, stacks and closed-form
analysis used throughout the reproduction.
"""

from .addressing import LogicalAddressSpace
from .arrangement import (
    Arrangement,
    IdentityArrangement,
    IteratedArrangement,
    PermutationArrangement,
    ShiftedArrangement,
    transform_once,
)
from .errors import LayoutError, ReproError, UnrecoverableFailureError
from .layouts import (
    Content,
    Layout,
    MirrorLayout,
    MirrorParityLayout,
    RAID5Layout,
    RAID6Layout,
    ThreeMirrorLayout,
    XCodeLayout,
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
    traditional_mirror_parity,
)
from .plancache import PlanCache
from .planner import schedule_read_rounds, schedule_rounds, schedule_write_rounds
from .properties import (
    is_equally_powerful,
    property_report,
    satisfies_property1,
    satisfies_property2,
    satisfies_property3,
)
from .reconstruction import ReconstructionPlan, RecoveryMethod, RecoveryStep
from .stack import RotatedStack
from .stripe import ArrayKind, ElementAddr, StripeGeometry
from .writes import WritePlan

from . import analysis, reliability

__all__ = [
    "Arrangement",
    "IdentityArrangement",
    "ShiftedArrangement",
    "IteratedArrangement",
    "PermutationArrangement",
    "transform_once",
    "satisfies_property1",
    "satisfies_property2",
    "satisfies_property3",
    "property_report",
    "is_equally_powerful",
    "ArrayKind",
    "ElementAddr",
    "StripeGeometry",
    "LogicalAddressSpace",
    "Content",
    "Layout",
    "MirrorLayout",
    "MirrorParityLayout",
    "ThreeMirrorLayout",
    "RAID5Layout",
    "RAID6Layout",
    "XCodeLayout",
    "traditional_mirror",
    "shifted_mirror",
    "traditional_mirror_parity",
    "shifted_mirror_parity",
    "ReconstructionPlan",
    "RecoveryMethod",
    "RecoveryStep",
    "WritePlan",
    "PlanCache",
    "RotatedStack",
    "schedule_rounds",
    "schedule_read_rounds",
    "schedule_write_rounds",
    "ReproError",
    "UnrecoverableFailureError",
    "LayoutError",
    "analysis",
    "reliability",
]
