"""Rotated stacks: logical/physical mapping and placement."""

from __future__ import annotations

import pytest

from repro.core.layouts import shifted_mirror, shifted_mirror_parity
from repro.core.stack import RotatedStack


def test_default_stack_has_one_stripe_per_disk():
    lay = shifted_mirror_parity(3)
    stack = RotatedStack(lay)
    assert stack.n_stripes == lay.n_disks == 7


def test_rotation_roundtrip():
    stack = RotatedStack(shifted_mirror(4), n_stripes=8)
    for s in range(8):
        for l in range(stack.n_disks):
            p = stack.physical_disk(s, l)
            assert stack.logical_disk(s, p) == l


def test_rotation_shifts_by_stripe_index():
    stack = RotatedStack(shifted_mirror(3), n_stripes=6)
    assert stack.physical_disk(0, 2) == 2
    assert stack.physical_disk(1, 2) == 3
    assert stack.physical_disk(5, 5) == (5 + 5) % 6


def test_no_rotation_mode_is_identity():
    stack = RotatedStack(shifted_mirror(3), n_stripes=4, rotate=False)
    for s in range(4):
        for d in range(6):
            assert stack.physical_disk(s, d) == d
            assert stack.logical_disk(s, d) == d


def test_bounds_checked():
    stack = RotatedStack(shifted_mirror(3), n_stripes=2)
    with pytest.raises(IndexError):
        stack.physical_disk(2, 0)
    with pytest.raises(IndexError):
        stack.physical_disk(0, 6)
    with pytest.raises(IndexError):
        stack.element_offset(0, 3)
    with pytest.raises(ValueError):
        RotatedStack(shifted_mirror(3), n_stripes=0)


def test_element_offsets_are_per_stripe_contiguous():
    lay = shifted_mirror(4)
    stack = RotatedStack(lay, n_stripes=3)
    assert stack.element_offset(0, 0) == 0
    assert stack.element_offset(0, 3) == 3
    assert stack.element_offset(1, 0) == 4
    assert stack.element_offset(2, 3) == 11
    assert stack.elements_per_disk() == 12


def test_place_combines_rotation_and_offset():
    lay = shifted_mirror(3)
    stack = RotatedStack(lay, n_stripes=6)
    disk, slot = stack.place(2, 1, 0)
    assert disk == (1 + 2) % 6
    assert slot == 2 * 3


def test_full_stack_covers_every_logical_role():
    lay = shifted_mirror_parity(3)
    stack = RotatedStack(lay)
    assert stack.covers_all_single_failures()
    # physical disk 0 plays every logical role across the stack
    roles = {stack.logical_disk(s, 0) for s in range(stack.n_stripes)}
    assert roles == set(range(lay.n_disks))


def test_partial_or_unrotated_stack_does_not_cover():
    lay = shifted_mirror(3)
    assert not RotatedStack(lay, n_stripes=3).covers_all_single_failures()
    assert not RotatedStack(lay, rotate=False).covers_all_single_failures()


def test_logical_failures_enumeration():
    lay = shifted_mirror(3)
    stack = RotatedStack(lay, n_stripes=6)
    cases = stack.logical_failures([0, 1])
    assert len(cases) == 6
    # stripe 0: identity; later stripes rotate backwards
    assert cases[0] == (0, 1)
    assert cases[1] == (0, 5)  # (0-1)%6=5, (1-1)%6=0 -> sorted
    for case in cases:
        assert len(case) == 2
