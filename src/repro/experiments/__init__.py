"""Per-table / per-figure reproduction drivers (see DESIGN.md §4)."""

from . import ext_lse, ext_raid6, ext_three_mirror, fig7, fig8, fig9, fig10, table1
from .reporting import ExperimentResult, Table, format_series
from .runner import run_all
from .svgplot import LineChart, render_all

__all__ = [
    "table1",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "ext_three_mirror",
    "ext_lse",
    "ext_raid6",
    "run_all",
    "render_all",
    "LineChart",
    "ExperimentResult",
    "Table",
    "format_series",
]
