"""EVENODD: geometry, adjuster algebra, exhaustive double-erasure decode."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.evenodd import EvenOdd, is_prime, smallest_prime_at_least

GEOMETRIES = [(3, 3), (5, 5), (5, 3), (7, 7), (7, 4), (11, 8)]


def _stripe(rng, p, n, size=8):
    return rng.integers(0, 256, (p - 1, n, size)).astype(np.uint8)


def _devices(code, data):
    P, Q = code.encode(data)
    return [data[:, j].copy() for j in range(code.n)], P, Q


# ----------------------------------------------------------------------
# primes
# ----------------------------------------------------------------------


def test_is_prime_basics():
    primes = {2, 3, 5, 7, 11, 13, 17, 19, 23}
    for x in range(25):
        assert is_prime(x) == (x in primes)


def test_smallest_prime_at_least():
    assert smallest_prime_at_least(1) == 2
    assert smallest_prime_at_least(4) == 5
    assert smallest_prime_at_least(7) == 7
    assert smallest_prime_at_least(8) == 11
    assert smallest_prime_at_least(50) == 53


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------


def test_rejects_non_prime_p():
    with pytest.raises(ValueError, match="odd prime"):
        EvenOdd(4)
    with pytest.raises(ValueError, match="odd prime"):
        EvenOdd(2)  # needs p >= 3


def test_rejects_bad_shortening():
    with pytest.raises(ValueError, match="1 <= n <= p"):
        EvenOdd(5, 6)
    with pytest.raises(ValueError, match="1 <= n <= p"):
        EvenOdd(5, 0)


def test_rejects_wrong_stripe_shape(rng):
    code = EvenOdd(5, 4)
    with pytest.raises(ValueError, match="shape"):
        code.encode(rng.integers(0, 256, (4, 5, 8)).astype(np.uint8))


# ----------------------------------------------------------------------
# encoding algebra
# ----------------------------------------------------------------------


def test_row_parity_is_row_xor(rng):
    p, n = 5, 5
    code = EvenOdd(p, n)
    data = _stripe(rng, p, n)
    P, _ = code.encode(data)
    assert np.array_equal(P, np.bitwise_xor.reduce(data, axis=1))


def test_adjuster_is_special_diagonal_xor(rng):
    p, n = 5, 5
    code = EvenOdd(p, n)
    data = _stripe(rng, p, n)
    s = code.adjuster(data)
    expected = np.zeros(data.shape[2], dtype=np.uint8)
    for j in range(1, p):
        row = p - 1 - j
        if row != p - 1:
            expected ^= data[row, j]
    assert np.array_equal(s, expected)


def test_q_parity_definition(rng):
    """Q_d = S XOR (XOR of diagonal d), with the imaginary zero row."""
    p, n = 5, 5
    code = EvenOdd(p, n)
    data = _stripe(rng, p, n)
    _, Q = code.encode(data)
    s = code.adjuster(data)
    for d in range(p - 1):
        acc = s.copy()
        for j in range(p):
            row = (d - j) % p
            if row != p - 1:
                acc ^= data[row, j]
        assert np.array_equal(Q[d], acc)


def test_shortened_code_matches_zero_padded_full_code(rng):
    p, n = 7, 4
    short = EvenOdd(p, n)
    full = EvenOdd(p, p)
    data = _stripe(rng, p, n)
    padded = np.concatenate(
        [data, np.zeros((p - 1, p - n, data.shape[2]), dtype=np.uint8)], axis=1
    )
    ps, qs = short.encode(data)
    pf, qf = full.encode(padded)
    assert np.array_equal(ps, pf)
    assert np.array_equal(qs, qf)


def test_all_zero_data_gives_all_zero_parity():
    code = EvenOdd(5, 5)
    data = np.zeros((4, 5, 8), dtype=np.uint8)
    P, Q = code.encode(data)
    assert not P.any() and not Q.any()


# ----------------------------------------------------------------------
# decoding — exhaustive over erasure patterns
# ----------------------------------------------------------------------


@pytest.mark.parametrize("p,n", GEOMETRIES)
def test_decode_every_single_and_double_erasure(p, n, rng):
    code = EvenOdd(p, n)
    data = _stripe(rng, p, n)
    devs, P, Q = _devices(code, data)
    patterns = list(combinations(range(n + 2), 1)) + list(combinations(range(n + 2), 2))
    for lost in patterns:
        cols = [None if j in lost else devs[j] for j in range(n)]
        rp = None if n in lost else P
        dq = None if n + 1 in lost else Q
        d2, p2, q2 = code.decode(cols, rp, dq)
        assert np.array_equal(d2, data), lost
        assert np.array_equal(p2, P), lost
        assert np.array_equal(q2, Q), lost


def test_decode_nothing_lost_roundtrips(rng):
    code = EvenOdd(5, 5)
    data = _stripe(rng, 5, 5)
    devs, P, Q = _devices(code, data)
    d2, p2, q2 = code.decode(devs, P, Q)
    assert np.array_equal(d2, data)


def test_decode_rejects_triple_erasure(rng):
    code = EvenOdd(5, 5)
    data = _stripe(rng, 5, 5)
    devs, P, Q = _devices(code, data)
    with pytest.raises(ValueError, match="exceed"):
        code.decode([None, None, *devs[2:]], None, Q)


def test_decode_rejects_wrong_column_count():
    code = EvenOdd(5, 5)
    with pytest.raises(ValueError, match="data columns"):
        code.decode([None] * 4, None, None)


def test_element_size_inferred_from_parity_survivor(rng):
    """n=1 with data and P lost: size must come from the Q column."""
    code = EvenOdd(3, 1)
    data = _stripe(rng, 3, 1)
    _, Q = code.encode(data)
    d2, _, _ = code.decode([None], None, Q)
    assert np.array_equal(d2, data)


@given(seed=st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_random_content_random_double_erasure(seed):
    rng = np.random.default_rng(seed)
    p, n = 7, 6
    code = EvenOdd(p, n)
    data = _stripe(rng, p, n, size=4)
    devs, P, Q = _devices(code, data)
    lost = sorted(rng.choice(n + 2, size=2, replace=False).tolist())
    cols = [None if j in lost else devs[j] for j in range(n)]
    rp = None if n in lost else P
    dq = None if n + 1 in lost else Q
    d2, _, _ = code.decode(cols, rp, dq)
    assert np.array_equal(d2, data)
