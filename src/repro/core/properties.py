"""Checkers for the paper's three arrangement properties (§IV-B, §VI-C).

* **Property 1** — the replicas of the elements on one data disk are
  allocated on all the mirror disks, one per mirror disk.
* **Property 2** — the elements on one mirror disk are replicas from
  all the data disks, one per data disk.
* **Property 3** — the replicas of the elements of one data *row* are
  allocated on all the mirror disks, one per mirror disk (this is what
  keeps large writes one-access).

Property 1 enables one-access reconstruction of a failed data disk;
Property 2 the same for a failed mirror disk; Property 3 preserves the
theoretically optimal large-write cost.  An arrangement satisfying all
three is "equally powerful" to the shifted arrangement (§VI-E).
"""

from __future__ import annotations

from .arrangement import Arrangement

__all__ = [
    "satisfies_property1",
    "satisfies_property2",
    "satisfies_property3",
    "property_report",
    "is_equally_powerful",
]


def satisfies_property1(arrangement: Arrangement) -> bool:
    """Each data disk's replicas land on all ``n`` distinct mirror disks."""
    n = arrangement.n
    return all(
        sorted(arrangement.replica_disks_of_data_disk(i)) == list(range(n)) for i in range(n)
    )


def satisfies_property2(arrangement: Arrangement) -> bool:
    """Each mirror disk holds replicas from all ``n`` distinct data disks."""
    n = arrangement.n
    return all(
        sorted(arrangement.source_disks_of_mirror_disk(mi)) == list(range(n))
        for mi in range(n)
    )


def satisfies_property3(arrangement: Arrangement) -> bool:
    """Each data row's replicas land on all ``n`` distinct mirror disks."""
    n = arrangement.n
    return all(
        sorted(arrangement.replica_disks_of_data_row(j)) == list(range(n)) for j in range(n)
    )


def property_report(arrangement: Arrangement) -> dict[str, bool]:
    """All three properties at once, keyed ``"P1"``/``"P2"``/``"P3"``."""
    return {
        "P1": satisfies_property1(arrangement),
        "P2": satisfies_property2(arrangement),
        "P3": satisfies_property3(arrangement),
    }


def is_equally_powerful(arrangement: Arrangement) -> bool:
    """Whether the arrangement has every feature of the shifted one.

    "Other arrangements that satisfy the three properties could also be
    used in mirror disk arrays to provide the same features" (§VI-E).
    """
    return all(property_report(arrangement).values())
