"""Matrices over GF(2^w): inversion, generators, MDS structure."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.galois import GF
from repro.codes.matrix import (
    cauchy_matrix,
    identity,
    invert,
    is_invertible,
    matmul,
    matvec_regions,
    rs_distribution_matrix,
    vandermonde,
)


@pytest.fixture(scope="module")
def gf():
    return GF(8)


# ----------------------------------------------------------------------
# matmul
# ----------------------------------------------------------------------


def test_matmul_identity(gf, rng=np.random.default_rng(0)):
    m = rng.integers(0, 256, (5, 5)).astype(np.uint8)
    assert np.array_equal(matmul(m, identity(5, gf), gf), m)
    assert np.array_equal(matmul(identity(5, gf), m, gf), m)


def test_matmul_shape_mismatch(gf):
    with pytest.raises(ValueError, match="shape mismatch"):
        matmul(np.zeros((2, 3)), np.zeros((2, 3)), gf)


def test_matmul_associative(gf):
    rng = np.random.default_rng(1)
    a = rng.integers(0, 256, (3, 4))
    b = rng.integers(0, 256, (4, 2))
    c = rng.integers(0, 256, (2, 5))
    left = matmul(matmul(a, b, gf), c, gf)
    right = matmul(a, matmul(b, c, gf), gf)
    assert np.array_equal(left, right)


def test_matmul_against_manual_expansion(gf):
    a = np.array([[1, 2], [3, 4]], dtype=np.uint8)
    b = np.array([[5, 6], [7, 8]], dtype=np.uint8)
    out = matmul(a, b, gf)
    for i in range(2):
        for j in range(2):
            want = gf.multiply(int(a[i, 0]), int(b[0, j])) ^ gf.multiply(
                int(a[i, 1]), int(b[1, j])
            )
            assert out[i, j] == want


# ----------------------------------------------------------------------
# inversion
# ----------------------------------------------------------------------


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40)
def test_invert_roundtrip_random(seed):
    gf = GF(8)
    rng = np.random.default_rng(seed)
    m = rng.integers(0, 256, (4, 4))
    if not is_invertible(m, gf):
        return
    inv = invert(m, gf)
    assert np.array_equal(matmul(m, inv, gf), identity(4, gf))
    assert np.array_equal(matmul(inv, m, gf), identity(4, gf))


def test_invert_singular_raises(gf):
    m = np.array([[1, 2], [1, 2]], dtype=np.uint8)  # equal rows
    with pytest.raises(np.linalg.LinAlgError):
        invert(m, gf)
    assert not is_invertible(m, gf)


def test_invert_zero_matrix_raises(gf):
    with pytest.raises(np.linalg.LinAlgError):
        invert(np.zeros((3, 3), dtype=np.uint8), gf)


def test_invert_non_square_raises(gf):
    with pytest.raises(ValueError, match="non-square"):
        invert(np.zeros((2, 3), dtype=np.uint8), gf)


def test_invert_needs_row_swap(gf):
    # zero pivot in position (0, 0) forces the row-swap path
    m = np.array([[0, 1], [1, 0]], dtype=np.uint8)
    inv = invert(m, gf)
    assert np.array_equal(matmul(m, inv, gf), identity(2, gf))


def test_invert_identity_is_identity(gf):
    assert np.array_equal(invert(identity(6, gf), gf), identity(6, gf))


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------


def test_vandermonde_entries(gf):
    v = vandermonde(4, 3, gf)
    assert v[0, 0] == 1  # 0^0 convention
    assert np.all(v[0, 1:] == 0)
    for i in range(1, 4):
        for j in range(3):
            assert v[i, j] == gf.power(i, j)


def test_vandermonde_too_many_rows(gf):
    with pytest.raises(ValueError, match="Vandermonde"):
        vandermonde(gf.size + 1, 2, gf)


@pytest.mark.parametrize("k,m", [(3, 2), (5, 3), (6, 4), (10, 4)])
def test_rs_distribution_matrix_systematic_and_mds(k, m, gf):
    dist = rs_distribution_matrix(k, m, gf)
    assert dist.shape == (k + m, k)
    assert np.array_equal(dist[:k], identity(k, gf))
    # MDS: every k-subset of rows is invertible
    for rows in combinations(range(k + m), k):
        assert is_invertible(dist[list(rows)], gf), rows


def test_rs_distribution_matrix_field_too_small():
    with pytest.raises(ValueError, match="exceeds field size"):
        rs_distribution_matrix(14, 3, GF(4))


@pytest.mark.parametrize("k,m", [(4, 2), (5, 3)])
def test_cauchy_matrix_every_square_submatrix_invertible(k, m, gf):
    c = cauchy_matrix(k, m, gf)
    assert c.shape == (m, k)
    # all 1x1 submatrices nonzero and all 2x2 invertible
    assert np.all(c != 0)
    for r in combinations(range(m), 2):
        for cols in combinations(range(k), 2):
            sub = c[np.ix_(r, cols)]
            assert is_invertible(sub, gf)


def test_cauchy_stacked_under_identity_is_mds(gf):
    k, m = 4, 2
    dist = np.concatenate([identity(k, gf), cauchy_matrix(k, m, gf)], axis=0)
    for rows in combinations(range(k + m), k):
        assert is_invertible(dist[list(rows)], gf)


# ----------------------------------------------------------------------
# region application
# ----------------------------------------------------------------------


def test_matvec_regions_matches_scalar_matmul(gf):
    rng = np.random.default_rng(3)
    mat = rng.integers(0, 256, (3, 4)).astype(np.uint8)
    regions = [rng.integers(0, 256, 8).astype(np.uint8) for _ in range(4)]
    outs = matvec_regions(mat, regions, gf)
    # compare column-by-column with scalar matmul
    stacked = np.stack(regions)  # (4, 8)
    for col in range(8):
        vec = stacked[:, col : col + 1]  # (4, 1)
        want = matmul(mat, vec, gf)[:, 0]
        got = np.array([o[col] for o in outs])
        assert np.array_equal(got, want)


def test_matvec_regions_validates_count(gf):
    with pytest.raises(ValueError, match="columns"):
        matvec_regions(np.zeros((2, 3), dtype=np.uint8), [np.zeros(4, dtype=np.uint8)], gf)
