"""Spread invariants of the competitor layouts (ISSUE 10).

The declustered mirror must load every survivor *equally* during a
rebuild (the t-design promise); the rebuild-optimal RDP must read
exactly the analytic minimum of elements for a single data-disk
rebuild (the Wang/Tamo/Bruck promise); the group-rotated arrangement
must sit between traditional and shifted on replica spread.
"""

from __future__ import annotations

import pytest

from repro.core.arrangement import GroupRotatedArrangement
from repro.core.layouts import (
    DeclusteredMirrorLayout,
    MirrorLayout,
    RAID6Layout,
    RebuildOptimalRDPLayout,
)
from repro.core.properties import property_report
from repro.raidsim.controller import RaidController


# ----------------------------------------------------------------------
# declustered mirror: uniform rebuild load on every survivor
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_declustered_every_survivor_contributes_equally(n):
    lay = DeclusteredMirrorLayout(n)
    for failed in range(lay.n_disks):
        loads = lay.rebuild_read_loads(failed)
        assert failed not in loads
        survivors = set(range(lay.n_disks)) - {failed}
        assert set(loads) == survivors
        assert set(loads.values()) == {1}, (failed, loads)


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_declustered_rebuild_is_one_parallel_access(n):
    """Uniform load of 1 means the whole rebuild is one access round."""
    lay = DeclusteredMirrorLayout(n)
    for failed in range(lay.n_disks):
        plan = lay.reconstruction_plan([failed])
        assert plan.num_read_accesses == 1
        assert plan.total_elements_read == lay.rows


@pytest.mark.parametrize("n", [2, 3, 4])
def test_declustered_every_disk_pair_meets_exactly_once(n):
    """The 1-factorization property behind the uniform load: over the
    stripe's rows, each pair of distinct disks shares exactly one
    mirrored element."""
    lay = DeclusteredMirrorLayout(n)
    met: dict[frozenset, int] = {}
    for i in range(lay.n):
        for j in range(lay.rows):
            primary, _ = lay.data_cell(i, j)
            ((replica, _),) = lay.replica_cells(i, j)
            pair = frozenset((primary, replica))
            met[pair] = met.get(pair, 0) + 1
    all_pairs = {
        frozenset((a, b))
        for a in range(lay.n_disks)
        for b in range(a + 1, lay.n_disks)
    }
    assert set(met) == all_pairs
    assert set(met.values()) == {1}


def test_declustered_controller_rebuild_bit_verified():
    lay = DeclusteredMirrorLayout(4)
    for failed in range(lay.n_disks):
        ctrl = RaidController(lay, n_stripes=2, payload_bytes=16, tracer=False)
        assert ctrl.rebuild([failed]).verified


def test_declustered_single_element_write_touches_two_disks():
    lay = DeclusteredMirrorLayout(3)
    plan = lay.write_plan([(1, 2)])
    assert len(plan.writes) == 2  # primary disk + partner disk
    assert plan.num_write_accesses == 1
    assert lay.storage_efficiency() == 0.5


def test_declustered_needs_two_data_disks():
    from repro.core.errors import LayoutError

    with pytest.raises(LayoutError):
        DeclusteredMirrorLayout(1)


# ----------------------------------------------------------------------
# rebuild-optimal RDP: analytic minimum element reads
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [4, 6])
def test_rebuild_optimal_matches_analytic_minimum(n):
    """Unshortened RDP (n = p-1): the hybrid row/diagonal rebuild of any
    single data disk reads exactly 3/4 of the row-only (p-1)^2 — the
    known optimum for RDP single-disk recovery."""
    lay = RebuildOptimalRDPLayout(n)
    assert lay.p == n + 1  # unshortened: the formula below applies
    row_only = (lay.p - 1) ** 2
    optimum = 3 * row_only // 4
    for failed in range(lay.n):
        assert lay.rebuild_elements_read(failed) == optimum


@pytest.mark.parametrize("n", [3, 4, 6])
def test_rebuild_optimal_never_worse_than_row_only(n):
    lay = RebuildOptimalRDPLayout(n)
    base = RAID6Layout(n, "rdp")
    for failed in range(lay.n):
        opt = lay.reconstruction_plan([failed]).total_elements_read
        row = base.reconstruction_plan([failed]).total_elements_read
        assert opt < row, (failed, opt, row)
    # parity disks have no diagonal alternative — identical plans
    for failed in (lay.p_disk, lay.q_disk):
        assert (
            lay.reconstruction_plan([failed]).total_elements_read
            == base.reconstruction_plan([failed]).total_elements_read
        )


def test_rebuild_optimal_minimum_confirmed_by_independent_search():
    """Brute-force every row/diagonal assignment independently of the
    implementation and confirm nothing reads fewer elements."""
    lay = RebuildOptimalRDPLayout(4)
    failed = 0
    rows = lay.rows
    best = None
    for mask in range(1 << rows):
        sources: set[tuple[int, int]] = set()
        ok = True
        for t in range(rows):
            if (mask >> t) & 1:
                diag = lay._diagonal_sources(failed, t)
                if diag is None:
                    ok = False
                    break
                sources.update(diag)
            else:
                sources.update(lay._row_sources(failed, t))
        if ok:
            if best is None or len(sources) < best:
                best = len(sources)
    assert best == lay.rebuild_elements_read(failed)


@pytest.mark.parametrize("n", [3, 4, 6])
def test_rebuild_optimal_controller_rebuild_bit_verified(n):
    lay = RebuildOptimalRDPLayout(n)
    for failed in range(lay.n_disks):
        ctrl = RaidController(lay, n_stripes=2, payload_bytes=16, tracer=False)
        assert ctrl.rebuild([failed]).verified, failed


def test_rebuild_optimal_double_failure_falls_back_to_decode():
    """Two failures exceed the hybrid search's remit; the RDP decoder
    path must still recover bit-exactly."""
    lay = RebuildOptimalRDPLayout(4)
    ctrl = RaidController(lay, n_stripes=2, payload_bytes=16, tracer=False)
    assert ctrl.rebuild([0, 3]).verified


# ----------------------------------------------------------------------
# group-rotated arrangement: the middle point
# ----------------------------------------------------------------------


def test_group_rotated_is_bijective_for_all_groups():
    for n in (2, 3, 4, 5, 6):
        for g in range(1, n + 1):
            arr = GroupRotatedArrangement(n, g)
            arr._ensure_maps()  # raises if not a bijection


def test_group_rotated_properties_middle_point():
    """g strictly between 1 and n: replicas spread over ceil(n/g) disks,
    so P1/P2 fail but P3 (row-aligned replicas) always holds."""
    rep = property_report(GroupRotatedArrangement(5, 2))
    assert rep == {"P1": False, "P2": False, "P3": True}
    # g=1 advances the mirror disk every row — full spread, P1-2 hold
    rep1 = property_report(GroupRotatedArrangement(5, 1))
    assert rep1["P1"] and rep1["P2"] and rep1["P3"]


@pytest.mark.parametrize("n,g", [(4, 2), (5, 2), (6, 3)])
def test_group_rotated_replica_spread_is_ceil_n_over_g(n, g):
    arr = GroupRotatedArrangement(n, g)
    for i in range(n):
        spread = set(arr.replica_disks_of_data_disk(i))
        assert len(spread) == -(-n // g)


def test_group_rotated_mirror_layout_rebuilds():
    lay = MirrorLayout(
        4, GroupRotatedArrangement(4, 2), name="group-rotated-mirror"
    )
    assert lay.name == "group-rotated-mirror"
    for failed in range(lay.n_disks):
        plan = lay.reconstruction_plan([failed])
        # g parallel accesses per stripe: between shifted's 1 and
        # traditional's n
        assert plan.num_read_accesses == 2
        ctrl = RaidController(lay, n_stripes=2, payload_bytes=16, tracer=False)
        assert ctrl.rebuild([failed]).verified


def test_group_rotated_rejects_bad_group():
    with pytest.raises(ValueError):
        GroupRotatedArrangement(4, 0)
