"""API surface hygiene: exports resolve, docs stay in sync."""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

import pytest

PACKAGES = [
    "repro.core",
    "repro.codes",
    "repro.disksim",
    "repro.raidsim",
    "repro.workloads",
    "repro.experiments",
    "repro.nemesis",
]


def _all_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg_name, pkg
        for m in pkgutil.iter_modules(pkg.__path__):
            if not m.ispkg:
                yield f"{pkg_name}.{m.name}", importlib.import_module(
                    f"{pkg_name}.{m.name}"
                )


@pytest.mark.parametrize("qualname,module", list(_all_modules()))
def test_every_export_resolves(qualname, module):
    """Every name in __all__ must exist on the module."""
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{qualname}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("qualname,module", list(_all_modules()))
def test_every_module_has_a_docstring(qualname, module):
    assert module.__doc__ and module.__doc__.strip(), f"{qualname} lacks a docstring"


@pytest.mark.parametrize("qualname,module", list(_all_modules()))
def test_every_public_callable_documented(qualname, module):
    """Every exported class/function carries a docstring."""
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if obj.__module__.startswith("repro"):
                assert inspect.getdoc(obj), f"{qualname}.{name} lacks a docstring"


def test_api_docs_in_sync():
    """docs/api.md matches a fresh generation (regenerate with
    ``python tools/gen_api_docs.py`` after public-API changes)."""
    root = Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(root / "tools"))
    try:
        import gen_api_docs

        generated = gen_api_docs.generate()
    finally:
        sys.path.pop(0)
    committed = (root / "docs" / "api.md").read_text(encoding="utf-8")
    assert committed == generated, (
        "docs/api.md is stale — run `python tools/gen_api_docs.py`"
    )
