"""Extension experiment: the measured RAID 6 comparison (§VII-A's footnote).

The paper measured only the traditional mirror-with-parity baseline and
noted "the comparison between our method and RAID 6 is similar",
leaning on the theoretical Fig. 7.  With the simulator we can run the
measurement they skipped: average reconstruction throughput of RAID 6
(RDP, shortened) against both mirror-with-parity variants under every
double-disk failure.

The availability metric here is **recovered data per second**: RAID 6
reads the entire stripe from all intact disks (high raw read MB/s!) but
recovers only the two failed columns' worth of data — raw read
throughput would flatter it absurdly, which is exactly why the paper
defines availability as *recovered* data read out per unit time (§III).
"""

from __future__ import annotations

from itertools import combinations

from ..core.layouts import (
    RAID6Layout,
    shifted_mirror_parity,
    traditional_mirror_parity,
)
from ..raidsim.availability import measure_case
from .reporting import ExperimentResult, format_series

__all__ = ["run"]


def _avg_recovered_mbps(layout_factory, n_stripes: int) -> float:
    layout = layout_factory()
    cases = list(combinations(range(layout.n_disks), 2))
    total = 0.0
    for failed in cases:
        res = measure_case(layout_factory(), failed, n_stripes=n_stripes)
        assert res.verified
        total += res.recovered_throughput_mbps
    return total / len(cases)


def run(n_values=(4, 5, 6, 7), n_stripes: int = 8) -> ExperimentResult:
    """Recovered-data throughput under all double failures, three ways."""
    builders = {
        "RAID 6 rdp (MB/s)": lambda n: RAID6Layout(n, "rdp"),
        "traditional mirror+parity (MB/s)": traditional_mirror_parity,
        "shifted mirror+parity (MB/s)": shifted_mirror_parity,
    }
    series = {name: [] for name in builders}
    for n in n_values:
        for name, builder in builders.items():
            series[name].append(
                _avg_recovered_mbps(lambda n=n, b=builder: b(n), n_stripes)
            )
    shifted = series["shifted mirror+parity (MB/s)"]
    raid6 = series["RAID 6 rdp (MB/s)"]
    series["shifted over RAID 6 (x)"] = [s / r for s, r in zip(shifted, raid6)]
    text = format_series("n", list(n_values), series, precision=2)
    text += (
        "\nRecovered-data throughput, averaged over every double-disk failure."
        "\nRAID 6 pays a full-stripe read for two columns of recovery; the"
        "\nshifted arrangement recovers the same data from targeted reads."
    )
    return ExperimentResult(
        experiment_id="ext-raid6",
        description="Measured RAID 6 vs mirror-with-parity reconstruction availability",
        text=text,
        data={"n": list(n_values), **series},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
