"""Reliability analysis: what faster reconstruction buys in MTTDL.

The paper motivates its work with reliability ("the probability of one
or concurrent multiple disk failures is becoming higher and higher",
§I): while a failed disk rebuilds, the array runs with reduced
redundancy, and a further failure during that *vulnerability window*
can lose data.  Faster reconstruction — the shifted arrangement's whole
point — shrinks the window and therefore raises the mean time to data
loss (MTTDL).

This module provides the classic Markov-model MTTDL closed forms
(Patterson/Gibson/Katz-style, exponential failure and repair rates) and
a bridge from simulated rebuild throughput to repair time, so the
Fig. 9 measurements translate directly into reliability factors.

All times are in hours, matching datasheet MTTF conventions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "mttdl_single_fault",
    "mttdl_double_fault",
    "repair_time_hours",
    "ReliabilityComparison",
    "compare_architectures",
]


def mttdl_single_fault(n_disks: int, mttf_hours: float, repair_hours: float) -> float:
    """MTTDL of a one-fault-tolerant array (e.g. the mirror method).

    Markov model: data loss when a second disk (of the remaining
    ``n_disks - 1``) fails within the repair window of the first.  With
    failure rate ``l = 1/MTTF`` per disk and repair rate ``u = 1/repair``:

    .. math::  MTTDL = \\frac{(2n-1)\\lambda + \\mu}{n(n-1)\\lambda^2}
               \\approx \\frac{MTTF^2}{n(n-1) \\cdot repair}

    (the standard approximation for ``u >> l``, which we return in its
    exact small-chain form).
    """
    if n_disks < 2:
        raise ValueError(f"a redundant array needs >= 2 disks, got {n_disks}")
    if mttf_hours <= 0 or repair_hours <= 0:
        raise ValueError("MTTF and repair time must be positive")
    lam = 1.0 / mttf_hours
    mu = 1.0 / repair_hours
    n = n_disks
    return ((2 * n - 1) * lam + mu) / (n * (n - 1) * lam**2)


def mttdl_double_fault(n_disks: int, mttf_hours: float, repair_hours: float) -> float:
    """MTTDL of a two-fault-tolerant array (mirror+parity, RAID 6).

    Three-state Markov chain (all disks up -> one down -> two down ->
    loss), exponential rates, one concurrent repair:

    .. math::  MTTDL \\approx \\frac{MTTF^3}{n(n-1)(n-2)\\,repair^2}

    computed here from the exact chain solution.
    """
    if n_disks < 3:
        raise ValueError(f"a two-fault-tolerant array needs >= 3 disks, got {n_disks}")
    if mttf_hours <= 0 or repair_hours <= 0:
        raise ValueError("MTTF and repair time must be positive")
    lam = 1.0 / mttf_hours
    mu = 1.0 / repair_hours
    n = n_disks
    # Exact expected absorption time from state 0 of the chain
    #   0 --n*lam--> 1 --(n-1)lam--> 2 --(n-2)lam--> loss
    # with repairs 1 --mu--> 0 and 2 --mu--> 1.
    a0, a1, a2 = n * lam, (n - 1) * lam, (n - 2) * lam
    # Solve T_i = 1/r_i + sum_j P_ij T_j for expected times to absorption.
    # r_0 = a0; r_1 = a1 + mu; r_2 = a2 + mu.
    # T_2 = 1/r_2 + (mu/r_2) T_1
    # T_1 = 1/r_1 + (a1/r_1) T_2 + (mu/r_1) T_0
    # T_0 = 1/a0 + T_1
    r1 = a1 + mu
    r2 = a2 + mu
    # substitute T_0 and T_2 into T_1:
    # T_1 = 1/r1 + (a1/r1)(1/r2 + (mu/r2) T_1) + (mu/r1)(1/a0 + T_1)
    coeff = 1.0 - (a1 * mu) / (r1 * r2) - mu / r1
    const = 1.0 / r1 + a1 / (r1 * r2) + mu / (r1 * a0)
    t1 = const / coeff
    return 1.0 / a0 + t1


def repair_time_hours(
    disk_capacity_bytes: float, rebuild_throughput_mbps: float
) -> float:
    """Repair window implied by a measured rebuild throughput.

    The rebuild must regenerate the failed disk's full capacity; the
    data is produced as fast as its inputs can be read, so the Fig. 9
    read throughput (per failed disk) bounds the repair rate.
    """
    if rebuild_throughput_mbps <= 0:
        raise ValueError("rebuild throughput must be positive")
    seconds = disk_capacity_bytes / (rebuild_throughput_mbps * 1024 * 1024)
    return seconds / 3600.0


@dataclass(frozen=True)
class ReliabilityComparison:
    """MTTDL of one architecture under two rebuild speeds."""

    name: str
    n_disks: int
    repair_hours_traditional: float
    repair_hours_shifted: float
    mttdl_traditional_hours: float
    mttdl_shifted_hours: float

    @property
    def improvement(self) -> float:
        return self.mttdl_shifted_hours / self.mttdl_traditional_hours


def compare_architectures(
    n_disks: int,
    traditional_mbps: float,
    shifted_mbps: float,
    fault_tolerance: int,
    disk_capacity_bytes: float = 300e9,
    mttf_hours: float = 1.0e6,
    name: str = "",
) -> ReliabilityComparison:
    """MTTDL impact of the shifted arrangement's faster rebuild.

    Feeds two measured rebuild throughputs (e.g. a Fig. 9 point) into
    the matching Markov model.  For a one-fault array the MTTDL scales
    ~1/repair, so the reliability gain approaches the throughput gain;
    for two-fault arrays it scales ~1/repair^2 and the gain compounds.
    """
    model = mttdl_single_fault if fault_tolerance == 1 else mttdl_double_fault
    rt = repair_time_hours(disk_capacity_bytes, traditional_mbps)
    rs = repair_time_hours(disk_capacity_bytes, shifted_mbps)
    return ReliabilityComparison(
        name=name or f"{n_disks}-disk ft{fault_tolerance}",
        n_disks=n_disks,
        repair_hours_traditional=rt,
        repair_hours_shifted=rs,
        mttdl_traditional_hours=model(n_disks, mttf_hours, rt),
        mttdl_shifted_hours=model(n_disks, mttf_hours, rs),
    )
