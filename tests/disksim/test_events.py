"""Event engine: clock, queueing, callbacks, determinism."""

from __future__ import annotations

import pytest

from repro.disksim.disk import DiskParameters
from repro.disksim.events import Simulation
from repro.disksim.request import IOKind, IORequest

_MB = 1024 * 1024


def _sim(n=2, params=None):
    return Simulation(n, params or DiskParameters.ideal())


def test_needs_at_least_one_disk():
    with pytest.raises(ValueError):
        Simulation(0)


def test_submit_to_unknown_disk_rejected():
    sim = _sim(1)
    with pytest.raises(ValueError, match="unknown disk"):
        sim.submit(IORequest(3, 0, 1, IOKind.READ))


def test_single_request_completes_with_timing():
    sim = _sim(1)
    req = IORequest(0, 0, 54 * _MB, IOKind.READ)
    sim.submit(req)
    sim.run()
    assert sim.completed == [req]
    assert req.finish_time > 0
    assert req.finish_time == pytest.approx(54 / 54.8, rel=0.01)


def test_requests_on_one_disk_serialize():
    sim = _sim(1)
    a = IORequest(0, 0, 10 * _MB, IOKind.READ)
    b = IORequest(0, 10 * _MB, 10 * _MB, IOKind.READ)
    sim.submit(a)
    sim.submit(b)
    sim.run()
    assert b.start_time >= a.finish_time


def test_requests_on_distinct_disks_overlap():
    sim = _sim(2)
    a = IORequest(0, 0, 10 * _MB, IOKind.READ)
    b = IORequest(1, 0, 10 * _MB, IOKind.READ)
    sim.submit(a)
    sim.submit(b)
    sim.run()
    assert a.start_time == b.start_time == 0.0
    assert a.finish_time == pytest.approx(b.finish_time)


def test_completion_callback_fires_once_with_request():
    sim = _sim(1)
    seen = []
    req = IORequest(0, 0, _MB, IOKind.READ)
    sim.submit(req, callback=seen.append)
    sim.run()
    assert seen == [req]


def test_callback_can_submit_more_work():
    sim = _sim(1)
    order = []

    def chain(req):
        order.append(req.offset)
        if req.offset < 2 * _MB:
            sim.submit(
                IORequest(0, req.offset + _MB, _MB, IOKind.READ), callback=chain
            )

    sim.submit(IORequest(0, 0, _MB, IOKind.READ), callback=chain)
    sim.run()
    assert order == [0, _MB, 2 * _MB]


def test_submit_at_future_time():
    sim = _sim(1)
    req = IORequest(0, 0, _MB, IOKind.READ)
    sim.submit_at(1.5, req)
    sim.run()
    assert req.submit_time == pytest.approx(1.5)
    with pytest.raises(ValueError, match="past"):
        sim.submit_at(0.5, IORequest(0, 0, _MB, IOKind.READ))


def test_schedule_negative_delay_rejected():
    sim = _sim(1)
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_run_until_pauses_clock():
    sim = _sim(1)
    sim.submit(IORequest(0, 0, 54 * _MB, IOKind.READ))  # ~1 s at 54.8 MB/s ideal? uses ideal params: 54/54.8 s
    t = sim.run(until=0.1)
    assert t == pytest.approx(0.1)
    assert not sim.completed
    sim.run()
    assert len(sim.completed) == 1


def test_run_until_never_moves_clock_backwards():
    """Regression: ``run(until=2.0)`` after the clock reached ~1 s used
    to rewind ``now`` — time must be monotone."""
    sim = _sim(1)
    sim.submit(IORequest(0, 0, 54 * _MB, IOKind.READ))
    t_done = sim.run()  # quiescent near 1 s
    assert t_done > 0.5
    assert sim.run(until=0.2) == t_done
    assert sim.now == t_done


def test_run_until_advances_idle_clock():
    """Regression: ``run(until=9.0)`` with no events left ``now`` at 0
    — an idle engine must still wait out the wall-clock."""
    sim = _sim(1)
    assert sim.run(until=9.0) == pytest.approx(9.0)
    assert sim.now == pytest.approx(9.0)
    # and a later submission is stamped at the advanced clock
    req = IORequest(0, 0, _MB, IOKind.READ)
    sim.submit(req)
    sim.run()
    assert req.submit_time == pytest.approx(9.0)


def test_submit_many_matches_sequential_submits():
    """The batch entry point is pure mechanics: identical schedules,
    service starts and completion order as one ``submit`` per request."""
    def build():
        return [
            IORequest(k % 2, (7 * k % 5) * _MB, _MB, IOKind.READ) for k in range(12)
        ]

    loop_sim, batch_sim = _sim(2), _sim(2)
    loop_reqs, batch_reqs = build(), build()
    for r in loop_reqs:
        loop_sim.submit(r)
    batch_sim.submit_many(batch_reqs)
    loop_sim.run()
    batch_sim.run()
    timings = lambda reqs: [(r.start_time, r.finish_time) for r in reqs]
    assert timings(loop_reqs) == timings(batch_reqs)


def test_submit_many_rejects_unknown_disk_and_fires_callbacks():
    sim = _sim(1)
    with pytest.raises(ValueError, match="unknown disk"):
        sim.submit_many([IORequest(5, 0, _MB, IOKind.READ)])
    seen = []
    reqs = [IORequest(0, k * _MB, _MB, IOKind.READ) for k in range(3)]
    sim.submit_many(reqs, callback=seen.append)
    sim.run()
    assert sorted(r.offset for r in seen) == [0, _MB, 2 * _MB]


def test_pending_count_tracks_in_flight():
    sim = _sim(1)
    sim.submit(IORequest(0, 0, _MB, IOKind.READ))
    sim.submit(IORequest(0, 2 * _MB, _MB, IOKind.READ))
    assert sim.pending_count() == 2
    sim.run()
    assert sim.pending_count() == 0


def test_total_byte_counters():
    sim = _sim(2)
    sim.submit(IORequest(0, 0, 3 * _MB, IOKind.READ))
    sim.submit(IORequest(1, 0, 2 * _MB, IOKind.WRITE))
    sim.run()
    assert sim.total_bytes_read == 3 * _MB
    assert sim.total_bytes_written == 2 * _MB


def test_deterministic_replay():
    def run_once():
        sim = Simulation(3, DiskParameters.savvio_10k3())
        import numpy as np

        rng = np.random.default_rng(5)
        for _ in range(50):
            sim.submit(
                IORequest(
                    int(rng.integers(0, 3)),
                    int(rng.integers(0, 1000)) * _MB,
                    _MB,
                    IOKind.READ,
                )
            )
        sim.run()
        return [(r.req_id - sim.completed[0].req_id, r.finish_time) for r in sim.completed]

    assert run_once() == run_once()
