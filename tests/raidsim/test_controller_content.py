"""Controller content store: initialization, placement, redundancy checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.layouts import (
    RAID5Layout,
    RAID6Layout,
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror_parity,
)
from repro.raidsim.controller import RaidController


def _ctrl(layout, **kw):
    kw.setdefault("n_stripes", 3)
    kw.setdefault("payload_bytes", 8)
    return RaidController(layout, **kw)


@pytest.mark.parametrize(
    "layout_factory",
    [
        lambda: shifted_mirror(3),
        lambda: shifted_mirror_parity(3),
        lambda: traditional_mirror_parity(4),
        lambda: RAID5Layout(4),
        lambda: RAID6Layout(4, "evenodd"),
        lambda: RAID6Layout(4, "rdp"),
    ],
)
def test_initial_content_satisfies_redundancy(layout_factory):
    assert _ctrl(layout_factory()).verify_redundancy()


def test_data_elements_come_from_film():
    ctrl = _ctrl(shifted_mirror(3))
    want = ctrl.film.element(1, 2, 0)
    got = ctrl.element_content(1, ctrl.layout.data_cell(2, 0))
    assert np.array_equal(got, want)


def test_replicas_equal_their_data():
    ctrl = _ctrl(shifted_mirror(4))
    lay = ctrl.layout
    for stripe in range(ctrl.n_stripes):
        for i in range(4):
            for j in range(4):
                data = ctrl.element_content(stripe, lay.data_cell(i, j))
                (rep_cell,) = lay.replica_cells(i, j)
                rep = ctrl.element_content(stripe, rep_cell)
                assert np.array_equal(data, rep)


def test_parity_column_is_row_xor():
    ctrl = _ctrl(shifted_mirror_parity(3))
    lay = ctrl.layout
    for stripe in range(ctrl.n_stripes):
        for j in range(3):
            want = np.zeros(8, dtype=np.uint8)
            for i in range(3):
                want ^= ctrl.element_content(stripe, lay.data_cell(i, j))
            got = ctrl.element_content(stripe, lay.parity_cell(j))
            assert np.array_equal(got, want)


def test_rotation_moves_physical_placement():
    ctrl = _ctrl(shifted_mirror(3), rotate=True, n_stripes=6)
    # logical disk 0 of stripe 2 lives on physical disk 2
    pd, slot = ctrl.place(2, (0, 1))
    assert pd == 2
    assert slot == 2 * 3 + 1
    assert ctrl.verify_redundancy()  # content placed consistently


def test_corruption_detected_by_verify():
    ctrl = _ctrl(shifted_mirror_parity(3))
    ctrl.content[0, 0, 0] ^= 0xFF
    assert not ctrl.verify_redundancy()


def test_raid6_corruption_detected():
    ctrl = _ctrl(RAID6Layout(4, "rdp"))
    qd = ctrl.layout.q_disk
    ctrl.content[qd, 0, 0] ^= 1
    assert not ctrl.verify_redundancy()


def test_same_seed_same_film():
    a = _ctrl(shifted_mirror(3), film_seed=99)
    b = _ctrl(shifted_mirror(3), film_seed=99)
    assert np.array_equal(a.content, b.content)
    c = _ctrl(shifted_mirror(3), film_seed=100)
    assert not np.array_equal(a.content, c.content)
