"""Rolling metric baselines for anomaly detection.

The nemesis daemon (:mod:`repro.nemesis`) needs to decide, tick by
tick, whether a latency/throughput sample is *ordinary* or an
*excursion*.  :class:`RollingBaseline` holds a bounded window of
recent quiet-period samples and answers that question with a combined
relative + z-score test:

* the sample must deviate from the rolling mean by more than
  ``rel_threshold`` (a fraction of the mean) — this filters the tiny
  absolute wiggles of a near-constant series whose standard deviation
  is almost zero, and
* when the window has any spread, the sample must also sit more than
  ``z_threshold`` standard deviations out — this filters ordinary
  Poisson-arrival jitter on noisy series.

Both tests are directional (``"high"`` flags inflated samples such as
latency, ``"low"`` flags collapsed ones such as throughput).  The
window only ever receives samples the caller deems quiet, so a fault
can never teach the baseline that its own degradation is normal.
"""

from __future__ import annotations

import math
from collections import deque

__all__ = ["RollingBaseline"]


class RollingBaseline:
    """Windowed mean/std over the most recent ``window`` samples.

    ``min_samples`` gates readiness: until that many samples arrived
    the baseline abstains (nothing is an excursion), so campaign
    warm-up can never produce false positives.
    """

    __slots__ = ("window", "min_samples", "_samples", "_sum", "_sumsq")

    def __init__(self, window: int = 64, min_samples: int = 8) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if not 2 <= min_samples <= window:
            raise ValueError(
                f"min_samples must be in [2, window], got {min_samples}"
            )
        self.window = window
        self.min_samples = min_samples
        self._samples: deque[float] = deque(maxlen=window)
        self._sum = 0.0
        self._sumsq = 0.0

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def ready(self) -> bool:
        """Whether enough quiet samples arrived to judge excursions."""
        return len(self._samples) >= self.min_samples

    @property
    def mean(self) -> float:
        n = len(self._samples)
        return self._sum / n if n else 0.0

    @property
    def std(self) -> float:
        n = len(self._samples)
        if n < 2:
            return 0.0
        var = self._sumsq / n - self.mean**2
        return var**0.5 if var > 0.0 else 0.0

    def update(self, value: float) -> None:
        """Admit a quiet-period sample into the window.

        Non-finite samples are rejected: a single NaN would poison the
        running sums for the lifetime of the window (NaN means "no
        measurement" — callers abstain instead of feeding it).
        """
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"baseline samples must be finite, got {value}")
        if len(self._samples) == self._samples.maxlen:
            old = self._samples[0]
            self._sum -= old
            self._sumsq -= old * old
        self._samples.append(value)
        self._sum += value
        self._sumsq += value * value

    def is_excursion(
        self,
        value: float,
        rel_threshold: float = 0.5,
        z_threshold: float = 4.0,
        direction: str = "high",
    ) -> bool:
        """Judge ``value`` against the baseline without admitting it."""
        if direction not in ("high", "low"):
            raise ValueError(f"direction must be 'high' or 'low', got {direction!r}")
        if not self.ready:
            return False
        mean, std = self.mean, self.std
        if direction == "high":
            beyond_rel = value > mean + rel_threshold * abs(mean)
            beyond_z = std == 0.0 or value > mean + z_threshold * std
        else:
            beyond_rel = value < mean - rel_threshold * abs(mean)
            beyond_z = std == 0.0 or value < mean - z_threshold * std
        return beyond_rel and beyond_z
