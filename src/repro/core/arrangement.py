"""Element arrangements for mirror disk arrays (paper §IV-A, §VI-E).

An *arrangement* describes where, inside one ``n x n`` stripe of the
mirror disk array, the replica of each data element lives.  With
``a[i, j]`` the ``j``-th element of data disk ``i`` and ``b[i', j']``
the ``j'``-th element of mirror disk ``i'``, an arrangement is a
bijection of the ``n^2`` stripe cells.

Two concrete arrangements matter to the paper:

* :class:`IdentityArrangement` — the traditional mirror method,
  ``b[i, j] = a[i, j]``;
* :class:`ShiftedArrangement` — the paper's contribution,
  ``a[i, j] -> b[<i + j>_n, i]`` (transpose, then loop-shift row ``j``
  by its row index).

Section VI-E generalises: the shifted map is one application of a
*transformation function* T that can be iterated to generate further
arrangements (:class:`IteratedArrangement`); odd iterates keep
Properties 1-2, but only some keep Property 3 (see
:mod:`repro.core.properties` and the Fig. 8 experiment).

All index arithmetic uses Python's non-negative ``%``, matching the
paper's ⟨x⟩_y notation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Arrangement",
    "IdentityArrangement",
    "ShiftedArrangement",
    "GroupRotatedArrangement",
    "IteratedArrangement",
    "PermutationArrangement",
    "transform_once",
]


class Arrangement:
    """A bijection of stripe cells from the data array to the mirror array.

    Subclasses implement :meth:`mirror_location`.  The inverse map and
    the dense matrices are derived.

    Parameters
    ----------
    n:
        Number of disks per array (and rows per stripe).
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"need n >= 1 disks, got {n}")
        self.n = n
        self._forward: dict[tuple[int, int], tuple[int, int]] | None = None
        self._inverse: dict[tuple[int, int], tuple[int, int]] | None = None

    # ------------------------------------------------------------------
    def mirror_location(self, i: int, j: int) -> tuple[int, int]:
        """Mirror cell ``(disk, row)`` holding the replica of ``a[i, j]``."""
        raise NotImplementedError

    def data_location(self, mi: int, mj: int) -> tuple[int, int]:
        """Data cell ``(disk, row)`` whose replica is ``b[mi, mj]``."""
        self._ensure_maps()
        return self._inverse[(mi, mj)]

    # ------------------------------------------------------------------
    def _check(self, i: int, j: int) -> None:
        if not (0 <= i < self.n and 0 <= j < self.n):
            raise IndexError(f"cell ({i}, {j}) outside stripe of n={self.n}")

    def _ensure_maps(self) -> None:
        if self._forward is not None:
            return
        fwd: dict[tuple[int, int], tuple[int, int]] = {}
        inv: dict[tuple[int, int], tuple[int, int]] = {}
        for i in range(self.n):
            for j in range(self.n):
                m = self.mirror_location(i, j)
                if m in inv:
                    raise ValueError(
                        f"arrangement is not a bijection: cells {inv[m]} and "
                        f"({i}, {j}) both map to {m}"
                    )
                fwd[(i, j)] = m
                inv[m] = (i, j)
        self._forward = fwd
        self._inverse = inv

    # ------------------------------------------------------------------
    def as_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """Dense ``(n, n)`` arrays ``(mirror_disk, mirror_row)`` indexed ``[i, j]``."""
        n = self.n
        disk = np.empty((n, n), dtype=np.int64)
        row = np.empty((n, n), dtype=np.int64)
        for i in range(n):
            for j in range(n):
                disk[i, j], row[i, j] = self.mirror_location(i, j)
        return disk, row

    def mirror_layout_labels(self) -> np.ndarray:
        """``(n, n, 2)`` array: ``labels[mi, mj] = (data_disk, data_row)``.

        This is the picture the paper draws in Figs. 3-5: the content of
        the mirror array expressed as data-array coordinates.
        """
        self._ensure_maps()
        n = self.n
        out = np.empty((n, n, 2), dtype=np.int64)
        for (mi, mj), (i, j) in self._inverse.items():
            out[mi, mj] = (i, j)
        return out

    def replica_disks_of_data_disk(self, i: int) -> list[int]:
        """Mirror disks that hold replicas of data disk ``i``'s elements."""
        return [self.mirror_location(i, j)[0] for j in range(self.n)]

    def replica_disks_of_data_row(self, j: int) -> list[int]:
        """Mirror disks that hold replicas of the data elements in row ``j``."""
        return [self.mirror_location(i, j)[0] for i in range(self.n)]

    def source_disks_of_mirror_disk(self, mi: int) -> list[int]:
        """Data disks whose elements are replicated on mirror disk ``mi``."""
        return [self.data_location(mi, mj)[0] for mj in range(self.n)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Arrangement) or other.n != self.n:
            return NotImplemented
        self._ensure_maps()
        other._ensure_maps()
        return self._forward == other._forward

    def __hash__(self) -> int:
        self._ensure_maps()
        return hash((self.n, tuple(sorted(self._forward.items()))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"


class IdentityArrangement(Arrangement):
    """Traditional mirroring: the mirror array is a verbatim copy."""

    def mirror_location(self, i: int, j: int) -> tuple[int, int]:
        self._check(i, j)
        return (i, j)


class ShiftedArrangement(Arrangement):
    """The paper's shifted arrangement: ``a[i, j] = b[<i + j>_n, i]``.

    Visualised: take each data *column* onto a mirror *row*, then loop
    shift row ``j`` of the mirror array right by ``j``.
    """

    def mirror_location(self, i: int, j: int) -> tuple[int, int]:
        self._check(i, j)
        return ((i + j) % self.n, i)


class GroupRotatedArrangement(Arrangement):
    """Replica rotation by row *groups*: ``a[i, j] -> b[<i + j div g>_n, j]``.

    A cheap middle point between the traditional and the shifted
    arrangement: the mirror disk advances by one every ``group`` rows
    instead of every row.  A data disk's replicas therefore spread over
    ``ceil(n / g)`` mirror disks (each holding at most ``g`` of them),
    so rebuilding one data disk costs ``g`` parallel read accesses per
    stripe — between the traditional ``n`` and the shifted ``1``.

    ``group=1`` spreads replicas over all mirror disks (Properties 1-2
    hold, like the shifted arrangement); ``group=n`` degenerates to a
    column permutation of the traditional method.  Property 3 holds for
    every ``group`` because rows are never split across mirror rows.
    """

    def __init__(self, n: int, group: int = 2) -> None:
        super().__init__(n)
        if group < 1:
            raise ValueError(f"group size must be >= 1, got {group}")
        self.group = group

    def mirror_location(self, i: int, j: int) -> tuple[int, int]:
        self._check(i, j)
        return ((i + j // self.group) % self.n, j)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GroupRotatedArrangement(n={self.n}, group={self.group})"


class PermutationArrangement(Arrangement):
    """An arrangement given by an explicit cell permutation.

    Parameters
    ----------
    mapping:
        Dict or ``(n, n, 2)`` array giving the mirror ``(disk, row)``
        of every data cell ``(i, j)``.
    """

    def __init__(self, n: int, mapping) -> None:
        super().__init__(n)
        if isinstance(mapping, dict):
            self._map = dict(mapping)
        else:
            arr = np.asarray(mapping)
            if arr.shape != (n, n, 2):
                raise ValueError(f"mapping must have shape ({n}, {n}, 2), got {arr.shape}")
            self._map = {
                (i, j): (int(arr[i, j, 0]), int(arr[i, j, 1]))
                for i in range(n)
                for j in range(n)
            }
        self._ensure_maps()  # validates bijectivity eagerly

    def mirror_location(self, i: int, j: int) -> tuple[int, int]:
        self._check(i, j)
        return self._map[(i, j)]


def transform_once(arrangement: Arrangement) -> PermutationArrangement:
    """Apply the paper's transformation function T once (§VI-E).

    T sends the cell at ``(i, j)`` of the *previous* array to the cell
    ``(<i + j>_n, i)`` of the *next* array — i.e. the next array relates
    to the previous one exactly as the shifted mirror array relates to
    the data array.  Composing T with an arrangement yields the next
    arrangement in Fig. 8's sequence.
    """
    n = arrangement.n
    shift = ShiftedArrangement(n)
    mapping = {}
    for i in range(n):
        for j in range(n):
            mid = arrangement.mirror_location(i, j)
            mapping[(i, j)] = shift.mirror_location(*mid)
    return PermutationArrangement(n, mapping)


class IteratedArrangement(Arrangement):
    """The arrangement after ``k`` applications of the transform T.

    ``IteratedArrangement(n, 1)`` equals :class:`ShiftedArrangement`;
    ``k = 0`` is the identity.  Fig. 8 of the paper displays the
    sequence for ``n = 3``; only odd ``k`` can satisfy Properties 1-2,
    and Property 3 additionally depends on ``k`` and ``n`` (checked
    empirically in the Fig. 8 experiment).
    """

    def __init__(self, n: int, k: int) -> None:
        super().__init__(n)
        if k < 0:
            raise ValueError(f"iteration count must be >= 0, got {k}")
        self.k = k
        current: Arrangement = IdentityArrangement(n)
        for _ in range(k):
            current = transform_once(current)
        self._delegate = current

    def mirror_location(self, i: int, j: int) -> tuple[int, int]:
        self._check(i, j)
        return self._delegate.mirror_location(i, j)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IteratedArrangement(n={self.n}, k={self.k})"
