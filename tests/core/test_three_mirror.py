"""Three-mirror layout: the paper's §VIII future-work extension."""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.core.arrangement import PermutationArrangement, ShiftedArrangement
from repro.core.errors import UnrecoverableFailureError
from repro.core.layouts import ThreeMirrorLayout
from repro.core.reconstruction import RecoveryMethod


def reverse_shift(n: int) -> PermutationArrangement:
    """The inverse-shift twin: a[i, j] -> (<i - j>_n, i)."""
    return PermutationArrangement(
        n, {(i, j): ((i - j) % n, i) for i in range(n) for j in range(n)}
    )


def shifted_three_mirror(n: int) -> ThreeMirrorLayout:
    return ThreeMirrorLayout(n, ShiftedArrangement(n), reverse_shift(n))


def test_counts():
    lay = shifted_three_mirror(4)
    assert lay.n_disks == 12
    assert lay.fault_tolerance == 2
    assert lay.storage_efficiency() == pytest.approx(1 / 3)
    assert lay.name == "shifted-three-mirror"
    assert ThreeMirrorLayout(4).name == "three-mirror"


def test_replica_cells_one_per_mirror_array():
    lay = shifted_three_mirror(3)
    for i in range(3):
        for j in range(3):
            cells = lay.replica_cells(i, j)
            assert len(cells) == 2
            assert 3 <= cells[0][0] < 6
            assert 6 <= cells[1][0] < 9


def test_small_write_three_copies_one_access():
    lay = shifted_three_mirror(5)
    plan = lay.write_plan([(2, 3)])
    assert plan.total_elements_written == 3
    assert plan.num_write_accesses == 1


def test_large_write_one_access():
    """Both shifted arrangements satisfy P3, so a row write is still
    one parallel access across all three arrays."""
    lay = shifted_three_mirror(5)
    assert lay.large_write_plan(2).num_write_accesses == 1


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_every_double_failure_recoverable_with_copies(n):
    lay = shifted_three_mirror(n)
    for failed in combinations(range(lay.n_disks), 2):
        plan = lay.reconstruction_plan(failed)
        plan.validate(lay.n_disks, lay.rows)
        assert all(s.method is RecoveryMethod.COPY for s in plan.steps)
        targets = {s.target for s in plan.steps}
        assert targets == {(f, r) for f in failed for r in range(n)}


@pytest.mark.parametrize("n", [3, 5, 7])
def test_shifted_three_mirror_single_failure_one_access(n):
    """Both arrangements spread any disk's replicas across a full
    array, so single-disk recovery stays one parallel access."""
    lay = shifted_three_mirror(n)
    for f in range(lay.n_disks):
        assert lay.reconstruction_plan([f]).num_read_accesses == 1


@pytest.mark.parametrize("n", [3, 5])
def test_traditional_three_mirror_single_failure_splits_two_disks(n):
    """With two verbatim replicas, the best the traditional layout can
    do is split the column between the two replica disks: ceil(n/2)
    accesses — still n/2 times worse than the shifted variant's one."""
    lay = ThreeMirrorLayout(n)
    for f in range(lay.n_disks):
        plan = lay.reconstruction_plan([f])
        assert plan.num_read_accesses == (n + 1) // 2
        # and only two disks ever carry the load
        assert len(plan.reads) <= 2


def test_double_failure_balances_load_across_arrays():
    """With two failed disks the planner spreads copy sources so no
    surviving disk reads more than a balanced share."""
    n = 5
    lay = shifted_three_mirror(n)
    for failed in combinations(range(lay.n_disks), 2):
        plan = lay.reconstruction_plan(failed)
        assert plan.num_read_accesses <= 2, failed


def test_triple_failure_rejected():
    with pytest.raises(UnrecoverableFailureError):
        shifted_three_mirror(3).reconstruction_plan([0, 1, 2])


def test_content_map_covers_both_mirror_arrays():
    lay = shifted_three_mirror(3)
    replicas = {}
    for disk in range(lay.n_disks):
        for row in range(3):
            c = lay.content(disk, row)
            if c.kind == "replica":
                replicas.setdefault((c.i, c.j), []).append(disk)
    assert all(len(v) == 2 for v in replicas.values())
    assert len(replicas) == 9
