"""SVG chart rendering: structure, scaling, figure drivers."""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET

import pytest

from repro.experiments.svgplot import LineChart, render_all

SVG_NS = "{http://www.w3.org/2000/svg}"


def _chart():
    c = LineChart("Title", "x", "y")
    c.add_series("a", [1, 2, 3], [10.0, 20.0, 15.0])
    c.add_series("b", [1, 2, 3], [5.0, 8.0, 30.0])
    return c


def test_svg_is_wellformed_xml():
    root = ET.fromstring(_chart().to_svg())
    assert root.tag == f"{SVG_NS}svg"


def test_one_polyline_per_series():
    root = ET.fromstring(_chart().to_svg())
    polylines = root.findall(f"{SVG_NS}polyline")
    assert len(polylines) == 2


def test_markers_per_point():
    root = ET.fromstring(_chart().to_svg())
    circles = root.findall(f"{SVG_NS}circle")
    assert len(circles) == 6


def test_title_and_labels_present():
    svg = _chart().to_svg()
    assert "Title" in svg and ">x<" in svg and ">y<" in svg


def test_text_is_escaped():
    c = LineChart("a < b & c", "x", "y")
    c.add_series("s<1>", [0, 1], [0, 1])
    svg = c.to_svg()
    assert "a &lt; b &amp; c" in svg
    assert "s&lt;1&gt;" in svg
    ET.fromstring(svg)  # still valid XML


def test_points_stay_inside_plot_area():
    c = _chart()
    root = ET.fromstring(c.to_svg())
    for circle in root.findall(f"{SVG_NS}circle"):
        cx, cy = float(circle.get("cx")), float(circle.get("cy"))
        assert c.margin_left - 1 <= cx <= c.width - c.margin_right + 1
        assert c.margin_top - 1 <= cy <= c.height - c.margin_bottom + 1


def test_empty_chart_rejected():
    with pytest.raises(ValueError, match="no series"):
        LineChart("t", "x", "y").to_svg()


def test_mismatched_series_rejected():
    c = LineChart("t", "x", "y")
    with pytest.raises(ValueError, match="xs vs"):
        c.add_series("s", [1, 2], [1])
    with pytest.raises(ValueError, match="empty"):
        c.add_series("s", [], [])


def test_nice_ticks_cover_range():
    ticks = LineChart._nice_ticks(0.0, 97.3)
    assert ticks[0] <= 0.0
    assert ticks[-1] >= 97.3
    steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
    assert len(steps) == 1  # uniform spacing


def test_nice_ticks_degenerate_range():
    ticks = LineChart._nice_ticks(5.0, 5.0)
    assert len(ticks) >= 2


def test_save_writes_file(tmp_path):
    path = tmp_path / "chart.svg"
    _chart().save(str(path))
    assert path.read_text().startswith("<svg")


@pytest.mark.slow
def test_render_all_writes_five_figures(tmp_path):
    written = render_all(str(tmp_path), quick=True)
    assert len(written) == 5
    names = {os.path.basename(p) for p in written}
    assert names == {"fig7.svg", "fig9a.svg", "fig9b.svg", "fig10a.svg", "fig10b.svg"}
    for p in written:
        ET.fromstring(open(p).read())  # all well-formed


# ----------------------------------------------------------------------
# Gantt timelines
# ----------------------------------------------------------------------


def test_gantt_structure():
    from repro.experiments.svgplot import GanttChart

    g = GanttChart("T")
    g.add_request(0, 0.0, 0.5, "rebuild")
    g.add_request(1, 0.1, 0.3, "user")
    root = ET.fromstring(g.to_svg())
    rects = [
        r for r in root.findall(f"{SVG_NS}rect") if r.get("fill", "").startswith("#")
    ]
    assert len(rects) == 2 + 2  # 2 bars + 2 legend swatches


def test_gantt_rejects_empty_and_negative():
    from repro.experiments.svgplot import GanttChart

    g = GanttChart("T")
    with pytest.raises(ValueError, match="no requests"):
        g.to_svg()
    with pytest.raises(ValueError, match="before start"):
        g.add_request(0, 1.0, 0.5)


def test_gantt_from_simulation_filters_by_tag():
    from repro.disksim.array import ElementArray
    from repro.disksim.disk import DiskParameters
    from repro.disksim.request import IOKind
    from repro.experiments.svgplot import GanttChart

    arr = ElementArray(2, 4 * 1024 * 1024, DiskParameters.ideal())
    arr.submit_elements([(0, 0)], IOKind.READ, tag="a")
    arr.submit_elements([(1, 0)], IOKind.READ, tag="b")
    arr.run()
    only_a = GanttChart.from_simulation(arr.sim, "t", tag="a")
    assert len(only_a._bars) == 1


@pytest.mark.slow
def test_render_rebuild_timelines(tmp_path):
    from repro.experiments.svgplot import render_rebuild_timelines

    written = render_rebuild_timelines(str(tmp_path), n=3, n_stripes=3)
    assert len(written) == 2
    for p in written:
        root = ET.fromstring(open(p).read())
        assert root.tag == f"{SVG_NS}svg"
