"""Closed-form analysis vs brute-force enumeration (Table I, Fig. 7, §VI)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core import analysis
from repro.core.arrangement import IteratedArrangement
from repro.core.layouts import (
    MirrorLayout,
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror_parity,
)


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", range(2, 9))
def test_table1_counts(n):
    rows = {r.situation: r for r in analysis.table1(n)}
    assert rows["F1"].num_cases == 2 * n and rows["F1"].num_read_accesses == 1
    assert rows["F2"].num_cases == n * (n - 1) and rows["F2"].num_read_accesses == 2
    assert rows["F3"].num_cases == n * n and rows["F3"].num_read_accesses == 2


@pytest.mark.parametrize("n", range(2, 9))
def test_table1_cases_sum_to_all_pairs(n):
    total = sum(r.num_cases for r in analysis.table1(n))
    d = 2 * n + 1
    assert total == d * (d - 1) // 2


def test_table1_rejects_tiny_n():
    with pytest.raises(ValueError):
        analysis.table1(1)


@pytest.mark.parametrize("n", range(2, 9))
def test_avg_read_closed_form(n):
    assert analysis.avg_read_accesses_shifted_parity(n) == Fraction(4 * n, 2 * n + 1)


@pytest.mark.parametrize("n", range(2, 7))
def test_avg_read_matches_enumeration_shifted(n):
    got = analysis.avg_read_accesses_enumerated(shifted_mirror_parity(n))
    assert got == Fraction(4 * n, 2 * n + 1)


@pytest.mark.parametrize("n", range(2, 7))
def test_avg_read_matches_enumeration_traditional(n):
    got = analysis.avg_read_accesses_enumerated(traditional_mirror_parity(n))
    assert got == Fraction(n)


# ----------------------------------------------------------------------
# gains (the abstract's headline factors)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", range(1, 9))
def test_mirror_gain_is_n(n):
    assert analysis.mirror_reconstruction_gain(n) == n


@pytest.mark.parametrize("n", range(2, 9))
def test_parity_gain_is_2n_plus_1_over_4(n):
    assert analysis.mirror_parity_reconstruction_gain(n) == Fraction(2 * n + 1, 4)


# ----------------------------------------------------------------------
# Fig. 7 curves
# ----------------------------------------------------------------------


def test_fig7_vs_traditional_formula():
    # 4/(2n+1) * 100
    assert analysis.fig7_ratio_vs_traditional(2) == pytest.approx(80.0)
    assert analysis.fig7_ratio_vs_traditional(50) == pytest.approx(400 / 101)


def test_fig7_reaches_about_five_percent_at_fifty_disks():
    assert analysis.fig7_ratio_vs_traditional(50) < 5.0
    assert analysis.fig7_ratio_vs_raid6(50) < 5.0


def test_fig7_monotone_decreasing_vs_traditional():
    vals = [analysis.fig7_ratio_vs_traditional(n) for n in range(2, 51)]
    assert all(a > b for a, b in zip(vals, vals[1:]))


def test_fig7_raid6_curve_at_or_below_traditional_curve():
    """The 'shorten' penalty: RDP needs prime p >= n+1, so its p-1 rows
    are never fewer than the traditional method's n accesses."""
    for n in range(2, 51):
        assert analysis.fig7_ratio_vs_raid6(n, "rdp") <= analysis.fig7_ratio_vs_traditional(
            n
        ) + 1e-12


def test_fig7_series_structure():
    series = analysis.fig7_series(2, 10)
    assert len(series["n"]) == 9
    assert set(series) == {"n", "vs_traditional_percent", "vs_raid6_percent"}


def test_raid6_access_model():
    assert analysis.avg_read_accesses_raid6(4, "evenodd") == 4  # p=5
    assert analysis.avg_read_accesses_raid6(5, "evenodd") == 4  # p=5
    assert analysis.avg_read_accesses_raid6(5, "rdp") == 6  # p=7
    with pytest.raises(ValueError):
        analysis.avg_read_accesses_raid6(5, "pcode")


# ----------------------------------------------------------------------
# storage efficiency & write cost (§VI-C, §VI-D)
# ----------------------------------------------------------------------


def test_storage_efficiencies():
    assert analysis.storage_efficiency_mirror(7) == Fraction(1, 2)
    assert analysis.storage_efficiency_mirror_parity(7) == Fraction(7, 15)
    assert analysis.storage_efficiency_raid6(7) == Fraction(7, 9)


def test_mirror_parity_efficiency_approaches_half():
    vals = [analysis.storage_efficiency_mirror_parity(n) for n in (2, 10, 100, 1000)]
    assert all(a < b for a, b in zip(vals, vals[1:]))
    assert vals[-1] < Fraction(1, 2)


def test_small_write_costs():
    assert analysis.small_write_cost("mirror") == 2
    assert analysis.small_write_cost("mirror-parity") == 3
    assert analysis.small_write_cost("three-mirror") == 3
    with pytest.raises(ValueError):
        analysis.small_write_cost("raid6")


def test_large_write_accesses_helper():
    assert analysis.large_write_accesses(shifted_mirror(5)) == 1
    bad = MirrorLayout(3, IteratedArrangement(3, 3))
    assert analysis.large_write_accesses(bad) == 3


@pytest.mark.parametrize("n,code", [(4, "rdp"), (6, "rdp"), (4, "evenodd"), (5, "evenodd")])
def test_raid6_small_write_cost_exceeds_mirror_parity_optimum(n, code):
    avg = analysis.raid6_avg_small_write_updates(n, code)
    assert avg > 3  # mirror-with-parity achieves exactly 3


def test_raid6_small_write_closed_forms():
    """Check the enumeration against hand-derived expectations.

    RDP at full width (n = p-1): per element, writes = 1 (data) + 1 (P)
    + |{<i+j>_p, <j-1>_p} - {p-1}| diagonals.  EVENODD: elements on the
    adjuster diagonal rewrite all p-1 Q elements.
    """
    from fractions import Fraction

    # RDP, n=4, p=5: enumerate by hand over 4x4 cells
    lay_terms = 0
    p, n = 5, 4
    for i in range(n):
        for j in range(p - 1):
            dirty = {(i + j) % p, (j + p - 1) % p} - {p - 1}
            lay_terms += 2 + len(dirty)
    assert analysis.raid6_avg_small_write_updates(4, "rdp") == Fraction(lay_terms, n * (p - 1))

    # EVENODD, n=5, p=5
    terms = 0
    for i in range(5):
        for j in range(4):
            q = 4 if (i + j) % 5 == 4 else 1
            terms += 2 + q
    assert analysis.raid6_avg_small_write_updates(5, "evenodd") == Fraction(terms, 20)


@pytest.mark.parametrize("n", range(1, 8))
def test_three_mirror_closed_forms_match_plans(n):
    from repro.experiments.ext_three_mirror import (
        shifted_three_mirror,
        traditional_three_mirror,
    )

    trad, shif = traditional_three_mirror(n), shifted_three_mirror(n)
    assert max(
        trad.reconstruction_plan([f]).num_read_accesses for f in range(trad.n_disks)
    ) == analysis.three_mirror_single_failure_accesses(n, shifted=False)
    assert max(
        shif.reconstruction_plan([f]).num_read_accesses for f in range(shif.n_disks)
    ) == analysis.three_mirror_single_failure_accesses(n, shifted=True)
    assert analysis.three_mirror_reconstruction_gain(n) == (n + 1) // 2
