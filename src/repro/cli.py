"""Command-line front end.

Everything a downstream user needs without writing Python::

    repro arrange --n 3 --iterate 1          # show an arrangement + properties
    repro table1 --n 5                       # Table I for n data disks
    repro plan --layout shifted-mirror-parity --n 5 --failed 1 8
    repro write-plan --layout shifted-mirror-parity --n 5 --row 2
    repro simulate rebuild --layout shifted-mirror --n 5 --failed 0
    repro simulate writes --layout mirror --n 5 --ops 200
    repro experiments --quick                # every table/figure

(also reachable as ``python -m repro ...``).
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from .core.arrangement import IdentityArrangement, IteratedArrangement
from .core.errors import LayoutError, UnrecoverableFailureError
from .core.properties import property_report
from .core.registry import (
    LAYOUTS,
    build_layout,
    comparison_families,
    comparison_pair,
)

__all__ = ["main", "build_layout", "LAYOUTS"]


# ======================================================================
# subcommands
# ======================================================================


def cmd_arrange(args: argparse.Namespace) -> int:
    from .experiments.fig8 import arrangement_grid

    n = args.n
    if args.identity:
        arr, label = IdentityArrangement(n), "identity"
        grid = arrangement_grid(n, 0)
    else:
        arr, label = IteratedArrangement(n, args.iterate), f"iterate {args.iterate}"
        grid = arrangement_grid(n, args.iterate)
    print(f"Arrangement: {label} on an n={n} stripe")
    print("Mirror array contents (element numbers, Fig. 8 style):")
    for line in grid.splitlines():
        print(f"  {line}")
    rep = property_report(arr)
    print(f"Properties: P1={rep['P1']} P2={rep['P2']} P3={rep['P3']}")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from .experiments.table1 import run

    print(run((args.n,)).text)
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    layout = build_layout(args.layout, args.n)
    plan = layout.reconstruction_plan(args.failed)
    print(f"{layout.name}: reconstruction of disks {list(plan.failed_disks)}")
    print(f"  parallel read accesses: {plan.num_read_accesses}")
    print(f"  elements read:          {plan.total_elements_read}")
    print(f"  reads per disk:         {plan.reads_per_disk()}")
    by_method: dict[str, int] = {}
    for step in plan.steps:
        by_method[step.method.value] = by_method.get(step.method.value, 0) + 1
    print(f"  recovery steps:         {by_method}")
    if args.verbose:
        for step in plan.steps:
            srcs = ", ".join(f"({d},{r})" for d, r in step.sources[:8])
            more = " ..." if len(step.sources) > 8 else ""
            print(f"    {step.target} <- {step.method.value}[{srcs}{more}]")
    return 0


def cmd_write_plan(args: argparse.Namespace) -> int:
    layout = build_layout(args.layout, args.n)
    if args.row is not None:
        plan = layout.large_write_plan(args.row, strategy=args.strategy)
        what = f"full row {args.row}"
    else:
        cells = [tuple(map(int, e.split(","))) for e in args.element]
        plan = layout.write_plan(cells, strategy=args.strategy)
        what = f"elements {cells}"
    print(f"{layout.name}: write of {what} ({args.strategy})")
    print(f"  write accesses: {plan.num_write_accesses}  "
          f"(elements written: {plan.total_elements_written})")
    print(f"  read accesses:  {plan.num_read_accesses}  "
          f"(elements read: {plan.total_elements_read})")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from .raidsim.controller import RaidController
    from .workloads.generator import random_large_writes

    layout = build_layout(args.layout, args.n)
    controller = RaidController(
        layout, n_stripes=args.stripes, payload_bytes=16
    )
    if args.what == "rebuild":
        result = controller.rebuild(args.failed)
        print(f"{layout.name}: rebuilt disks {list(result.failed_disks)} over "
              f"{args.stripes} stripes")
        print(f"  makespan:           {result.makespan_s:.3f} s")
        print(f"  read throughput:    {result.read_throughput_mbps:.1f} MB/s")
        print(f"  recovered:          {result.recovered_bytes / 2**20:.0f} MB "
              f"({result.recovered_throughput_mbps:.1f} MB/s)")
        print(f"  content verified:   {result.verified}")
    else:
        rng = np.random.default_rng(args.seed)
        ops = random_large_writes(layout.n, args.stripes, n_ops=args.ops, rng=rng)
        result = controller.run_write_workload(ops, window=1, rng=rng)
        print(f"{layout.name}: {result.n_ops} random large writes")
        print(f"  makespan:         {result.makespan_s:.3f} s")
        print(f"  write throughput: {result.write_throughput_mbps:.1f} MB/s (user data)")
        print(f"  redundancy intact: {controller.verify_redundancy()}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.runner import run_all
    from .parallel import WorkerPool

    # one persistent pool for the whole invocation: --jobs sizes it
    # once and every fan-out reuses the same workers
    with WorkerPool(args.jobs) as pool:
        for result in run_all(quick=args.quick, pool=pool):
            if args.only and result.experiment_id not in args.only:
                continue
            print(result)
            print()
    return 0


def cmd_svg(args: argparse.Namespace) -> int:
    from .experiments.svgplot import render_all, render_rebuild_timelines

    for path in render_all(args.outdir, quick=args.quick):
        print(f"wrote {path}")
    if args.timelines:
        for path in render_rebuild_timelines(args.outdir):
            print(f"wrote {path}")
    return 0


def cmd_reliability(args: argparse.Namespace) -> int:
    from .core.reliability import compare_architectures
    from .raidsim.availability import measure_case

    layout = build_layout(args.layout, args.n)
    trad_name = args.layout.replace("shifted-", "")
    traditional = build_layout(trad_name, args.n)
    trad = measure_case(traditional, (0,), n_stripes=args.stripes)
    shif = measure_case(layout, (0,), n_stripes=args.stripes)
    cmp_ = compare_architectures(
        n_disks=layout.n_disks,
        traditional_mbps=trad.read_throughput_mbps,
        shifted_mbps=shif.read_throughput_mbps,
        fault_tolerance=layout.fault_tolerance,
        mttf_hours=args.mttf,
    )
    print(f"{trad_name} vs {args.layout} at n={args.n} (MTTF {args.mttf:.0e} h):")
    print(f"  rebuild:  {trad.read_throughput_mbps:.1f} -> "
          f"{shif.read_throughput_mbps:.1f} MB/s")
    print(f"  repair:   {cmp_.repair_hours_traditional:.2f} -> "
          f"{cmp_.repair_hours_shifted:.2f} h")
    print(f"  MTTDL:    {cmp_.mttdl_traditional_hours:.3e} -> "
          f"{cmp_.mttdl_shifted_hours:.3e} h  ({cmp_.improvement:.1f}x)")
    return 0


def _campaign_run_record(run) -> dict:
    """Machine-readable form of one arrangement's campaign outcome."""
    import dataclasses

    r = run.rebuild
    return {
        "layout": run.layout_name,
        "availability": run.availability,
        "data_survival": run.data_survival,
        "rebuild": {
            "makespan_s": r.makespan_s,
            "verified": r.verified,
            "aborted": r.aborted,
            "bytes_read": r.bytes_read,
            "bytes_written": r.bytes_written,
        },
        "user_reads": {
            "served": run.online.n_user_reads,
            "failed": run.online.failed_user_reads,
            # zero-sample aggregates are NaN -> null (the _finite contract)
            "mean_latency_s": _finite(run.online.mean_user_latency_s),
            "p95_latency_s": _finite(run.online.p95_user_latency_s),
        },
        "fault_stats": dataclasses.asdict(run.fault_stats),
    }


def _write_json(path: str, payload: dict) -> None:
    import json

    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=str)
        fh.write("\n")
    print(f"json written to {path}", file=sys.stderr)


def _finite(x: float) -> float | None:
    """Non-finite floats become ``null`` so the JSON stays strictly parseable.

    One contract, two renderings: ``inf`` (undefined ratio denominator)
    and ``NaN`` (zero-sample aggregate) print as bare ``inf``/``nan``
    in text output (see :func:`_ratio_text`) and as ``null`` in every
    ``--json`` payload.  Documented in docs/workloads.md.
    """
    import math

    return x if math.isfinite(x) else None


def _ratio_text(x: float) -> str:
    """Text rendering of a speedup ratio: ``1.23x``, or bare ``inf``/``nan``."""
    import math

    return f"{x:.2f}x" if math.isfinite(x) else str(x)


def cmd_faultcampaign(args: argparse.Namespace) -> int:
    from .obs import default_registry
    from .raidsim.campaign import (
        clean_rebuild_makespan,
        compare_arrangements,
        default_fault_plan,
    )

    if args.seeds > 1:
        return _faultcampaign_sweep(args)
    family = args.family
    baseline_name, variant_name = comparison_pair(family)
    trad_builder = LAYOUTS[baseline_name]
    shift_builder = LAYOUTS[variant_name]
    layout = trad_builder(args.n)
    second_time = None
    if args.second_failure_at is not None and args.second_failure_at > 0:
        base = clean_rebuild_makespan(
            layout, (args.failed,), n_stripes=args.stripes
        )
        second_time = args.second_failure_at * base
    plan = default_fault_plan(
        layout.n_disks,
        seed=args.seed,
        lse_burst=args.lse_burst,
        fail_slow_disk=args.fail_slow_disk,
        fail_slow_multiplier=args.fail_slow_mult,
        second_failure_disk=args.second_failure_disk,
        second_failure_time_s=second_time,
        transient_rate=args.transient_rate,
    )
    cmp_ = compare_arrangements(
        lambda: trad_builder(args.n),
        lambda: shift_builder(args.n),
        plan,
        failed_disks=(args.failed,),
        n_stripes=args.stripes,
        user_read_rate_per_s=args.rate,
    )
    print(f"Fault campaign (seed {args.seed}) on {family} at n={args.n}:")
    print(f"  transients rate {args.transient_rate}, {args.lse_burst} latent "
          f"sector errors, fail-slow x{args.fail_slow_mult}"
          + (f", second failure at {second_time:.3f} s" if second_time else ""))
    for run in (cmp_.traditional, cmp_.shifted):
        s = run.fault_stats
        r = run.rebuild
        print(f"\n{run.layout_name}:")
        print(f"  rebuild makespan:      {r.makespan_s:.3f} s "
              f"(verified: {r.verified}, aborted: {r.aborted})")
        print(f"  user reads served:     {run.online.n_user_reads} "
              f"(mean {run.online.mean_user_latency_s * 1e3:.1f} ms, "
              f"p95 {run.online.p95_user_latency_s * 1e3:.1f} ms)")
        print(f"  availability:          {run.availability:.4f}")
        print(f"  data survival:         {run.data_survival:.4f}")
        print(f"  retries / backoff:     {s.retries} / {s.backoff_time_s * 1e3:.1f} ms")
        print(f"  rerouted reads:        {s.rerouted_reads}")
        print(f"  healed LSEs:           {s.healed_lses}")
        print(f"  abandoned requests:    {s.abandoned_requests}")
        print(f"  data-loss events:      {s.data_loss_events}")
        if s.mid_rebuild_failures:
            print(f"  mid-rebuild failures:  {list(s.mid_rebuild_failures)}")
    print(f"\navailability delta (shifted - traditional): "
          f"{cmp_.availability_delta:+.4f}")
    print(f"user latency speedup:  {_ratio_text(cmp_.latency_speedup)}")
    print(f"rebuild speedup:       {_ratio_text(cmp_.makespan_speedup)}")
    if args.json:
        from .nemesis import timeline_from_plan

        horizon = max(
            cmp_.traditional.rebuild.makespan_s, cmp_.shifted.rebuild.makespan_s
        )
        _write_json(args.json, {
            "kind": "faultcampaign",
            "family": family,
            "n": args.n,
            "seed": args.seed,
            "traditional": _campaign_run_record(cmp_.traditional),
            "shifted": _campaign_run_record(cmp_.shifted),
            "availability_delta": cmp_.availability_delta,
            "latency_speedup": _finite(cmp_.latency_speedup),
            "makespan_speedup": _finite(cmp_.makespan_speedup),
            "active_fault_timeline": timeline_from_plan(plan, horizon).to_dict(),
            "metrics": default_registry().snapshot(),
        })
    return 0


def _parse_tenant(spec: str):
    """``NAME:RATE[:PROCESS[:ZIPF]]`` → :class:`TenantSpec`."""
    from .workloads.openloop import TenantSpec

    parts = spec.split(":")
    if len(parts) < 2 or len(parts) > 4:
        raise ValueError(
            f"malformed tenant spec {spec!r} (expected NAME:RATE[:PROCESS[:ZIPF]])"
        )
    name, rate = parts[0], float(parts[1])
    process = parts[2] if len(parts) > 2 else "poisson"
    zipf_s = float(parts[3]) if len(parts) > 3 else 0.0
    return TenantSpec(name, rate_per_s=rate, process=process, zipf_s=zipf_s)


def _serve_result_record(r) -> dict:
    return {
        "layout": r.layout_name,
        "rebuild_makespan_s": r.rebuild_makespan_s,
        "rebuild_verified": r.rebuild_verified,
        "n_arrivals": r.n_arrivals,
        "degraded_reads": r.degraded_reads,
        "failed_reads": r.failed_reads,
        "availability": r.availability,
        "throttle": r.throttle,
        # SLOSummary.to_dict applies the same non-finite -> null
        # coercion as _finite
        "slo": r.slo.to_dict(),
        # flight-recorder snapshot + fault overlay bands ({} / [] when
        # observability is off) — what `repro obs report` renders
        "timeseries": r.timeseries,
        "overlays": list(r.overlays),
    }


def cmd_serve(args: argparse.Namespace) -> int:
    from .obs import default_registry
    from .raidsim.serve import ServeConfig, compare_serve

    tenants = (
        tuple(_parse_tenant(s) for s in args.tenant) if args.tenant else None
    )
    cfg = ServeConfig(
        family=args.family,
        n=args.n,
        n_stripes=args.stripes,
        failed_disk=args.failed,
        seed=args.seed,
        rate_per_s=args.rate,
        process=args.process,
        zipf_s=args.zipf,
        diurnal_amplitude=args.diurnal_amplitude,
        tenants=tenants,
        duration_factor=args.duration_factor,
        deadline_s=args.deadline_ms / 1e3 if args.deadline_ms is not None else None,
        throttle=args.throttle,
    )
    cmp_ = compare_serve(cfg)
    trad, shift = cmp_.traditional, cmp_.shifted
    print(f"Open-loop serve (seed {args.seed}) on {args.family} at n={args.n}:")
    print(f"  {trad.n_arrivals} arrivals over {trad.slo.duration_s:.3f} s "
          f"({args.process}, throttle {args.throttle})")
    for r in (trad, shift):
        s = r.slo
        print(f"\n{r.layout_name}:")
        print(f"  rebuild makespan:   {r.rebuild_makespan_s:.3f} s "
              f"(verified: {r.rebuild_verified})")
        print(f"  served:             {s.served}/{r.n_arrivals} "
              f"({r.degraded_reads} degraded, {r.failed_reads} failed)")
        # NaN aggregates (nothing served) print as bare nan — the
        # text half of the _finite contract
        print(f"  latency p50/p99/p999: {s.p50_s * 1e3:.1f} / "
              f"{s.p99_s * 1e3:.1f} / {s.p999_s * 1e3:.1f} ms")
        print(f"  goodput:            {s.goodput_rps:.1f} reads/s")
        if cfg.deadline_s is not None:
            print(f"  deadline misses:    {s.deadline_misses} "
                  f"(deadline {cfg.deadline_s * 1e3:.0f} ms)")
        if len(s.per_tenant_served) > 1:
            mix = ", ".join(f"{t}={c}" for t, c in s.per_tenant_served)
            print(f"  per tenant:         {mix}")
    print(f"\np99 ratio (trad/shifted): {_ratio_text(cmp_.p99_ratio)}")
    print(f"rebuild speedup:          {_ratio_text(cmp_.makespan_speedup)}")
    if args.json:
        _write_json(args.json, {
            "kind": "serve",
            "family": args.family,
            "n": args.n,
            "seed": args.seed,
            "process": args.process,
            "throttle": args.throttle,
            "duration_s": trad.slo.duration_s,
            "traditional": _serve_result_record(trad),
            "shifted": _serve_result_record(shift),
            "p99_ratio": _finite(cmp_.p99_ratio),
            "makespan_speedup": _finite(cmp_.makespan_speedup),
            "metrics": default_registry().snapshot(),
        })
    return 0


def cmd_nemesis(args: argparse.Namespace) -> int:
    from .nemesis import FAULT_KINDS, HazardRates, NemesisConfig, run_nemesis_campaign
    from .obs import default_registry

    rates = HazardRates(
        disk_death_per_day=args.deaths_per_day,
        fail_slow_per_day=args.fail_slow_per_day,
        transient_burst_per_day=args.bursts_per_day,
        lse_storm_per_day=args.storms_per_day,
    )
    config = NemesisConfig(
        family=args.family,
        n=args.n,
        horizon_s=args.horizon_days * 86_400.0,
        tick_s=args.tick_s,
        seed=args.seed,
        rates=rates,
        safety_budget=args.safety_budget,
        allow_excess=args.allow_excess,
        n_stripes=args.stripes,
    )
    report = run_nemesis_campaign(config, checkpoint_path=args.checkpoint)
    assert report is not None  # no tick cap on the CLI path
    determinism_ok = None
    if args.verify_determinism:
        # a second, checkpoint-free run must land on the same digest
        determinism_ok = run_nemesis_campaign(config).digest == report.digest

    sched = report.schedule
    per_kind = ", ".join(
        f"{len(sched.of_kind(kind))} {kind}" for kind in FAULT_KINDS
    )
    print(f"Nemesis campaign on {args.family} at n={args.n}: "
          f"{args.horizon_days:g} simulated days, {config.n_ticks} ticks, "
          f"seed {args.seed}")
    print(f"  schedule: {len(sched)} faults ({per_kind}); "
          f"{sched.dropped_deaths} death(s) dropped by safety budget "
          f"{sched.safety_budget}")
    for run in (report.traditional, report.shifted):
        a = run.attribution
        print(f"\n{run.layout_name}:")
        print(f"  availability:          {run.availability:.4f}")
        print(f"  mean user latency:     {run.mean_latency_s * 1e3:.1f} ms")
        print(f"  mean throughput:       {run.mean_throughput_rps:.1f} reads/s")
        print(f"  rebuild ticks:         {run.rebuild_ticks}/{run.n_ticks}")
        print(f"  excursions:            {a.n_excursions} "
              f"({a.attribution_coverage:.1%} attributed, "
              f"{len(a.unexplained)} unexplained)")
    print(f"\navailability delta (shifted - traditional): "
          f"{report.availability_delta:+.4f}")
    print(f"attribution coverage:  {report.attribution_coverage:.1%} "
          f"({report.unexplained_total} unexplained)")
    line = f"report digest:         {report.digest}"
    if determinism_ok is not None:
        line += "  [determinism verified]" if determinism_ok else "  [MISMATCH]"
    print(line)
    if args.json:
        payload = report.to_dict()
        payload["kind"] = "nemesis"
        payload["metrics"] = default_registry().snapshot()
        _write_json(args.json, payload)
    if determinism_ok is False:
        print("error: rerun from the same seed produced a different report",
              file=sys.stderr)
        return 2
    if args.strict and report.unexplained_total:
        print(f"error: {report.unexplained_total} excursion(s) overlap no "
              f"active fault", file=sys.stderr)
        return 2
    return 0


def _faultcampaign_sweep(args: argparse.Namespace) -> int:
    """``faultcampaign --seeds N``: many storms, fanned across ``--jobs``."""
    from .parallel import WorkerPool
    from .raidsim.campaign import compare_sweep

    plan_kwargs = dict(
        lse_burst=args.lse_burst,
        fail_slow_disk=args.fail_slow_disk,
        fail_slow_multiplier=args.fail_slow_mult,
        transient_rate=args.transient_rate,
    )
    with WorkerPool(args.jobs) as pool:
        if pool.n_workers > 1:
            # every sweep point instantiates both arrangements over the
            # same film — generate it once and share it with the workers
            layouts = tuple(
                build_layout(name, args.n)
                for name in comparison_pair(args.family)
            )
            n_i = max(lay.n for lay in layouts)
            n_j = max(getattr(lay, "data_rows", lay.rows) for lay in layouts)
            pool.share_film(2012, 16, args.stripes, n_i, n_j)
        sweep = compare_sweep(
            args.family,
            args.n,
            n_seeds=args.seeds,
            root_seed=args.seed,
            pool=pool,
            plan_kwargs=plan_kwargs,
            failed_disks=(args.failed,),
            n_stripes=args.stripes,
            user_read_rate_per_s=args.rate,
        )
    print(f"Fault-campaign sweep on {args.family} at n={args.n}: "
          f"{len(sweep)} storms from root seed {args.seed}")
    print(f"{'seed':>6} {'avail Δ':>9} {'latency':>9} {'survival T/S':>14}")
    for p in sweep.points:
        c = p.comparison
        lat = _ratio_text(c.latency_speedup)
        print(f"{p.seed_index:>6} {c.availability_delta:>+9.4f} {lat:>9} "
              f"{c.traditional.data_survival:>6.3f}/{c.shifted.data_survival:.3f}")
    worst_t, worst_s = sweep.worst_data_survival
    print(f"\nshifted served more reads in {sweep.shifted_wins}/{len(sweep)} storms")
    print(f"mean availability delta: {sweep.mean_availability_delta:+.4f}")
    print(f"mean latency speedup:    {_ratio_text(sweep.mean_latency_speedup)}")
    print(f"worst data survival:     traditional {worst_t:.4f}, "
          f"shifted {worst_s:.4f}")
    if args.json:
        from .obs import default_registry

        _write_json(args.json, {
            "kind": "faultcampaign-sweep",
            "family": sweep.family,
            "n": sweep.n,
            "root_seed": sweep.root_seed,
            "n_seeds": len(sweep),
            "shifted_wins": sweep.shifted_wins,
            "mean_availability_delta": sweep.mean_availability_delta,
            "mean_latency_speedup": _finite(sweep.mean_latency_speedup),
            "worst_data_survival": {"traditional": worst_t, "shifted": worst_s},
            "points": [
                {
                    "seed_index": p.seed_index,
                    "fault_seed": p.fault_seed,
                    "user_read_seed": p.user_read_seed,
                    "availability_delta": p.comparison.availability_delta,
                    "latency_speedup": _finite(p.comparison.latency_speedup),
                    "traditional": _campaign_run_record(p.comparison.traditional),
                    "shifted": _campaign_run_record(p.comparison.shifted),
                }
                for p in sweep.points
            ],
            "metrics": default_registry().snapshot(),
        })
    return 0


def cmd_leaderboard(args: argparse.Namespace) -> int:
    from .obs import default_registry
    from .parallel import WorkerPool
    from .raidsim.leaderboard import LeaderboardConfig, run_leaderboard

    config = LeaderboardConfig(
        n=args.n,
        n_stripes=args.stripes,
        seed=args.seed,
        failed_disk=args.failed,
        rate_per_s=args.rate,
        duration_factor=args.duration_factor,
        lse_burst=args.lse_burst,
        transient_rate=args.transient_rate,
        layouts=tuple(args.layouts) if args.layouts else None,
    )
    with WorkerPool(args.jobs) as pool:
        result = run_leaderboard(config, pool=pool)
    ranked = result.ranked()
    print(f"Layout leaderboard (seed {args.seed}) at n={args.n}: "
          f"{len(ranked)} layouts, {result.duration_s:.3f} s serve window")
    print(f"  identical storm (LSE burst {args.lse_burst}, transients "
          f"{args.transient_rate}) + open-loop reads at {args.rate}/s\n")
    print(f"{'#':>2} {'layout':24} {'avail':>7} {'rebuild s':>10} "
          f"{'p99 ms':>8} {'survival':>9} {'eff':>5} {'ft':>3}")
    for rank, e in enumerate(ranked, start=1):
        # NaN p99 (nothing served) prints bare nan — the _finite contract
        p99 = f"{e.degraded_p99_ms:8.1f}" if e.degraded_p99_ms == e.degraded_p99_ms \
            else f"{'nan':>8}"
        print(f"{rank:>2} {e.layout:24} {e.availability:7.4f} "
              f"{e.rebuild_makespan_s:10.3f} {p99} {e.data_survival:9.4f} "
              f"{e.storage_efficiency:5.2f} {e.fault_tolerance:>3}")
    best = ranked[0]
    print(f"\nbest: {best.layout} — {best.description}")
    payload = None
    if args.json or args.html:
        payload = {
            "kind": "leaderboard",
            **result.to_dict(),
            "entries": [
                {**e.to_dict(), "degraded_p99_ms": _finite(e.degraded_p99_ms)}
                for e in ranked
            ],
        }
    if args.json:
        _write_json(args.json, {
            **payload, "metrics": default_registry().snapshot(),
        })
    if args.html:
        from .obs.report import leaderboard_report_html, write_report

        out = write_report(args.html, leaderboard_report_html(payload))
        print(f"wrote leaderboard dashboard to {out}", file=sys.stderr)
    return 0


def cmd_scrub(args: argparse.Namespace) -> int:
    from .disksim.faults import LatentSectorErrors
    from .raidsim.controller import RaidController
    from .raidsim.scrub import Scrubber

    layout = build_layout(args.layout, args.n)
    lse = LatentSectorErrors(4 * 1024 * 1024)
    controller = RaidController(
        layout, n_stripes=args.stripes, payload_bytes=16, lse=lse
    )
    rng = np.random.default_rng(args.seed)
    lse.inject_random(rng, args.errors, layout.n_disks, args.stripes * layout.rows)
    report = Scrubber(controller).run()
    print(f"{layout.name}: scrubbed {report.elements_scanned} elements in "
          f"{report.makespan_s:.2f} s ({report.scan_throughput_mbps:.0f} MB/s)")
    print(f"  latent sector errors found:    {report.errors_found}")
    print(f"  repaired from redundancy:      {report.errors_repaired}")
    if report.unrepairable:
        print(f"  UNREPAIRABLE (data at risk):   {list(report.unrepairable)}")
    else:
        print("  array is fully repaired; a rebuild is now safe")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    from .obs import summarize_files

    if args.obs_what == "summary":
        print(summarize_files(metrics_path=args.metrics, trace_path=args.trace))
    elif args.obs_what == "report":
        from .obs.report import render_report, write_report

        out = write_report(args.out, render_report(args.input, title=args.title))
        print(f"wrote dashboard report to {out}")
    return 0


# ======================================================================
# parser
# ======================================================================


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    """Observability flags for simulation-running commands."""
    p.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write a chrome://tracing / Perfetto trace of every "
             "simulated I/O (one track per disk); a .jsonl suffix "
             "selects the incremental streaming writer (bounded "
             "memory, flushed per rebuild phase — see REPRO_OBS_BUFFER)",
    )
    p.add_argument(
        "--trace-sample", metavar="RATE", type=float, default=None,
        help="keep this fraction of per-request spans in the trace "
             "(controller/phase spans are always kept; the rate lands "
             "in the trace header); default REPRO_OBS_SAMPLE or 1.0",
    )
    p.add_argument(
        "--metrics-out", metavar="FILE.json", default=None,
        help="write the command's metrics snapshot (counters, gauges, "
             "histograms) to FILE.json; implies observability on",
    )
    p.add_argument(
        "--metrics-port", metavar="PORT", type=int, default=None,
        help="serve the live metrics registry in Prometheus text "
             "format on http://127.0.0.1:PORT/metrics for the "
             "duration of the command (0 picks a free port); "
             "implies observability on",
    )


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shifted mirror disk arrays (ICPP 2012) — reproduction toolkit",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the subcommand under cProfile and print the top "
             "cumulative entries to stderr",
    )
    parser.add_argument(
        "--profile-out", metavar="FILE", default=None,
        help="with --profile, dump raw pstats to FILE instead of printing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("arrange", help="show an arrangement and its properties")
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--iterate", type=int, default=1, help="T-iterations (1 = shifted)")
    p.add_argument("--identity", action="store_true", help="traditional arrangement")
    p.set_defaults(func=cmd_arrange)

    p = sub.add_parser("table1", help="Table I for n data disks")
    p.add_argument("--n", type=int, default=5)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("plan", help="reconstruction plan for a failure set")
    p.add_argument("--layout", required=True, choices=sorted(LAYOUTS))
    p.add_argument("--n", type=int, default=5)
    p.add_argument("--failed", type=int, nargs="+", required=True)
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("write-plan", help="write plan for elements or a row")
    p.add_argument("--layout", required=True, choices=sorted(LAYOUTS))
    p.add_argument("--n", type=int, default=5)
    p.add_argument("--row", type=int, help="full-row (large) write")
    p.add_argument("--element", nargs="+", default=[], metavar="I,J")
    p.add_argument("--strategy", choices=["rmw", "reconstruct"], default="rmw")
    p.set_defaults(func=cmd_write_plan)

    p = sub.add_parser("simulate", help="run the disk-array simulator")
    p.add_argument("what", choices=["rebuild", "writes"])
    p.add_argument("--layout", required=True, choices=sorted(LAYOUTS))
    p.add_argument("--n", type=int, default=5)
    p.add_argument("--failed", type=int, nargs="+", default=[0])
    p.add_argument("--stripes", type=int, default=16)
    p.add_argument("--ops", type=int, default=200)
    p.add_argument("--seed", type=int, default=42)
    _add_obs_args(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("experiments", help="regenerate the paper's tables/figures")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--only", nargs="+", metavar="ID",
                   help="restrict to experiment ids (table1 fig7 fig8 fig9a fig9b fig10a fig10b ext-three-mirror)")
    p.add_argument("--jobs", type=int, default=None,
                   help="fan experiments across this many processes (0 = all cores)")
    _add_obs_args(p)
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser("svg", help="render Figs. 7/9/10 as SVG files")
    p.add_argument("--outdir", default="figures")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--timelines", action="store_true",
                   help="also render per-disk rebuild Gantt timelines")
    p.set_defaults(func=cmd_svg)

    p = sub.add_parser("reliability", help="MTTDL impact of the shifted rebuild")
    p.add_argument("--layout", default="shifted-mirror",
                   choices=[name for name in LAYOUTS if name.startswith("shifted")])
    p.add_argument("--n", type=int, default=5)
    p.add_argument("--stripes", type=int, default=12)
    p.add_argument("--mttf", type=float, default=1.0e6)
    p.set_defaults(func=cmd_reliability)

    p = sub.add_parser(
        "faultcampaign",
        help="seeded fault-injection campaign over both arrangements",
    )
    p.add_argument("--family", default="mirror",
                   choices=comparison_families(),
                   help="comparison family (baseline vs variant layout pair "
                        "from the registry)")
    p.add_argument("--n", type=int, default=5)
    p.add_argument("--failed", type=int, default=0, help="first failed disk")
    p.add_argument("--stripes", type=int, default=12)
    p.add_argument("--seed", type=int, default=2012)
    p.add_argument("--transient-rate", type=float, default=0.05)
    p.add_argument("--lse-burst", type=int, default=4)
    p.add_argument("--fail-slow-disk", type=int, default=None)
    p.add_argument("--fail-slow-mult", type=float, default=4.0)
    p.add_argument("--second-failure-disk", type=int, default=None)
    p.add_argument("--second-failure-at", type=float, default=0.5, metavar="FRAC",
                   help="second failure as a fraction of the clean rebuild "
                        "makespan (negative or omitted value disables)")
    p.add_argument("--rate", type=float, default=30.0, help="user reads per second")
    p.add_argument("--seeds", type=int, default=1,
                   help="run a sweep of this many independent seeded storms "
                        "(derived from --seed via SeedSequence.spawn); "
                        "the second-failure knobs apply to single runs only")
    p.add_argument("--jobs", type=int, default=None,
                   help="processes for --seeds sweeps (0 = all cores)")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="also write the full machine-readable result "
                        "(per-run FaultStats + metrics snapshot) to FILE")
    _add_obs_args(p)
    p.set_defaults(func=cmd_faultcampaign)

    p = sub.add_parser(
        "serve",
        help="open-loop traffic during rebuild, with SLO accounting",
    )
    p.add_argument("--family", default="mirror",
                   choices=comparison_families(),
                   help="comparison family (baseline vs variant layout pair "
                        "from the registry)")
    p.add_argument("--n", type=int, default=5)
    p.add_argument("--failed", type=int, default=0, help="failed disk")
    p.add_argument("--stripes", type=int, default=12)
    p.add_argument("--seed", type=int, default=2012)
    p.add_argument("--rate", type=float, default=40.0,
                   help="mean arrivals per second (single-tenant shorthand)")
    p.add_argument("--process", default="poisson", choices=["poisson", "bursty"],
                   help="arrival process (single-tenant shorthand)")
    p.add_argument("--zipf", type=float, default=0.0,
                   help="zipf exponent for stripe popularity (0 = uniform)")
    p.add_argument("--diurnal-amplitude", type=float, default=0.0,
                   help="sinusoidal load-curve amplitude in [0, 1); the "
                        "period defaults to the serve window")
    p.add_argument("--tenant", action="append", metavar="NAME:RATE[:PROCESS[:ZIPF]]",
                   help="add a tenant to the mix (repeatable; overrides the "
                        "single-tenant shorthand flags)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="SLO deadline; reads completing later count as "
                        "misses and leave the goodput")
    p.add_argument("--throttle", default="none",
                   metavar="none|fixed:S|token:IOPS|latency:P99_MS",
                   help="rebuild throttling policy (see docs/workloads.md)")
    p.add_argument("--duration-factor", type=float, default=1.5,
                   help="serve window as a multiple of the slower "
                        "arrangement's clean rebuild makespan")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="also write the machine-readable comparison "
                        "(SLO summaries + metrics snapshot) to FILE")
    _add_obs_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "nemesis",
        help="continuous stochastic fault campaign with anomaly attribution",
    )
    p.add_argument("--family", default="mirror",
                   choices=comparison_families(),
                   help="comparison family (baseline vs variant layout pair "
                        "from the registry)")
    p.add_argument("--n", type=int, default=4)
    p.add_argument("--stripes", type=int, default=6)
    p.add_argument("--horizon-days", type=float, default=7.0,
                   help="simulated campaign length in days")
    p.add_argument("--tick-s", type=float, default=3600.0,
                   help="sampling tick length in simulated seconds")
    p.add_argument("--seed", type=int, default=2012)
    p.add_argument("--deaths-per-day", type=float, default=0.5)
    p.add_argument("--fail-slow-per-day", type=float, default=1.0)
    p.add_argument("--bursts-per-day", type=float, default=2.0)
    p.add_argument("--storms-per-day", type=float, default=1.0)
    p.add_argument("--safety-budget", type=int, default=1,
                   help="max concurrent disk deaths the scheduler may inject")
    p.add_argument("--allow-excess", action="store_true",
                   help="let deaths exceed the safety budget (chaos mode)")
    p.add_argument("--checkpoint", metavar="FILE", default=None,
                   help="resume from / save per-tick progress to FILE")
    p.add_argument("--verify-determinism", action="store_true",
                   help="re-run from the same seed and fail on digest mismatch")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero if any excursion overlaps no active fault")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="also write the full report (schedule, timeline, "
                        "per-tick samples, excursions) to FILE")
    _add_obs_args(p)
    p.set_defaults(func=cmd_nemesis)

    p = sub.add_parser(
        "leaderboard",
        help="rank every registered layout under one seeded storm + serve mix",
    )
    p.add_argument("--n", type=int, default=5, help="data disks per array")
    p.add_argument("--stripes", type=int, default=12)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--failed", type=int, default=0, help="failed disk")
    p.add_argument("--rate", type=float, default=40.0,
                   help="open-loop arrivals per second")
    p.add_argument("--duration-factor", type=float, default=1.5,
                   help="serve window as a multiple of the slowest "
                        "layout's clean rebuild makespan")
    p.add_argument("--lse-burst", type=int, default=2)
    p.add_argument("--transient-rate", type=float, default=0.02)
    p.add_argument("--layouts", nargs="+", metavar="NAME", default=None,
                   choices=sorted(LAYOUTS),
                   help="restrict the roster to these registry names "
                        "(default: every leaderboard-eligible layout)")
    p.add_argument("--jobs", type=int, default=None,
                   help="fan layouts across this many processes (0 = all cores)")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="also write the ranked machine-readable result to FILE")
    p.add_argument("--html", metavar="FILE.html", default=None,
                   help="also render the ranking as an HTML dashboard section")
    _add_obs_args(p)
    p.set_defaults(func=cmd_leaderboard)

    p = sub.add_parser("scrub", help="inject latent sector errors and scrub them")
    p.add_argument("--layout", default="shifted-mirror-parity", choices=sorted(LAYOUTS))
    p.add_argument("--n", type=int, default=5)
    p.add_argument("--stripes", type=int, default=12)
    p.add_argument("--errors", type=int, default=6)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_scrub)

    p = sub.add_parser("obs", help="inspect exported observability artifacts")
    obs_sub = p.add_subparsers(dest="obs_what", required=True)
    ps = obs_sub.add_parser(
        "summary", help="pretty-print a metrics snapshot and/or chrome trace"
    )
    ps.add_argument("--metrics", metavar="FILE.json", default=None,
                    help="metrics snapshot written by --metrics-out")
    ps.add_argument("--trace", metavar="FILE", default=None,
                    help="trace written by --trace-out (chrome JSON or "
                         "streaming .jsonl; torn streaming files are "
                         "recovered up to the last complete record)")
    ps.set_defaults(func=cmd_obs)
    pr = obs_sub.add_parser(
        "report",
        help="render a flight-recorder artifact as a self-contained "
             "HTML dashboard (inline SVG, no external assets)",
    )
    pr.add_argument("input", metavar="FILE",
                    help="`repro serve --json` output, a timeseries "
                         "snapshot .json, a .jsonl export, or a "
                         "columnar .npz export")
    pr.add_argument("--out", metavar="FILE.html", default="report.html",
                    help="output HTML path (default: report.html)")
    pr.add_argument("--title", default=None,
                    help="override the report title")
    pr.set_defaults(func=cmd_obs)

    return parser


def main(argv=None) -> int:
    args = _parser().parse_args(argv)
    try:
        return _run_with_obs(args)
    except (
        ValueError,
        NotImplementedError,
        LayoutError,
        UnrecoverableFailureError,
        FileNotFoundError,
    ) as exc:
        # domain errors (including a missing input artifact) become a
        # one-line message, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout closed early (e.g. `repro obs summary | head`) — the
        # POSIX convention is a silent exit, not a traceback
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _run_with_obs(args: argparse.Namespace) -> int:
    """Dispatch one command under its requested observability exports.

    ``--trace-out`` installs a process default tracer for the duration
    of the command (every simulation constructed inside picks it up
    with zero plumbing).  A ``.jsonl`` suffix selects the *streaming*
    writer: events drain to disk incrementally (bounded buffer, flush
    per rebuild phase / sweep point) instead of accumulating, so trace
    memory no longer scales with campaign length.  ``--trace-sample``
    (or ``REPRO_OBS_SAMPLE``) thins per-request spans, with the rate
    recorded in the trace header.

    ``--metrics-out`` forces observability on and scopes a fresh
    registry so the snapshot holds exactly this command's instruments;
    the file is written only after the command ran to completion.
    ``--metrics-port`` additionally serves the live registry as a
    Prometheus text exposition for the duration of the command, so a
    long sweep can be watched mid-flight with ``curl``.
    """
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    metrics_port = getattr(args, "metrics_port", None)
    if trace_out is None and metrics_out is None and metrics_port is None:
        return _dispatch(args)

    from contextlib import ExitStack

    from . import obs

    with ExitStack() as stack:
        tracer = None
        streaming = False
        if trace_out is not None:
            sample = obs.resolve_sample_rate(getattr(args, "trace_sample", None))
            streaming = str(trace_out).endswith(".jsonl")
            sink = obs.JsonlTraceSink(trace_out) if streaming else None
            tracer = obs.Tracer(sink=sink, sample=sample)
            old_tracer = obs.set_default_tracer(tracer)
            stack.callback(obs.set_default_tracer, old_tracer)
            # the final flush must run even when the command raises —
            # a partial streamed trace is exactly what a post-mortem
            # wants to read
            stack.callback(tracer.close)
        reg = None
        if metrics_out is not None or metrics_port is not None:
            old_enabled = obs.set_obs_enabled(True)
            stack.callback(obs.set_obs_enabled, old_enabled)
        if metrics_out is not None:
            reg = stack.enter_context(obs.scoped_registry())
        if metrics_port is not None:
            # pin the registry visible *now* (the scoped one when
            # --metrics-out is also given, the process default
            # otherwise): sweep points swap in their own scoped
            # registries while they run, and a scrape that followed
            # the swap would miss the outer registry the sweep merges
            # completed points into
            live_registry = obs.default_registry()
            server = obs.MetricsServer(
                port=metrics_port, registry_provider=lambda: live_registry
            )
            stack.callback(server.close)
            server.start()
            print(f"serving live metrics on {server.url}/metrics",
                  file=sys.stderr)
        rc = _dispatch(args)
        if tracer is not None:
            if streaming:
                tracer.close()
                print(f"streaming trace written to {trace_out} "
                      f"({tracer.sink.events_written} spans)", file=sys.stderr)
            else:
                path = obs.write_chrome_trace(trace_out, tracer)
                print(f"trace written to {path}", file=sys.stderr)
        if reg is not None:
            path = obs.write_metrics(metrics_out, reg)
            print(f"metrics written to {path}", file=sys.stderr)
        return rc


def _dispatch(args: argparse.Namespace) -> int:
    if args.profile:
        return _run_profiled(args)
    return args.func(args)


def _run_profiled(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    rc = profiler.runcall(args.func, args)
    profiler.create_stats()
    if args.profile_out:
        pstats.Stats(profiler).dump_stats(args.profile_out)
        print(f"profile written to {args.profile_out}", file=sys.stderr)
    else:
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
