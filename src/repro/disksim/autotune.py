"""Per-machine calibration of scalar-vs-numpy crossover points.

``ElementArray.submit_batch`` picks between a tuned scalar coalescer
and a vectorized numpy one.  The crossover — the batch size where
numpy's fixed per-call overhead (``asarray``, ``lexsort``, temporary
allocation) starts paying for itself — is a property of the *machine*
(interpreter build, allocator, cache sizes, numpy version), not of the
workload, so a constant baked into the source is wrong somewhere.
This module measures it once per machine, at first use, and caches the
result under ``~/.cache/repro/``.

Resolution order for :func:`batch_threshold`:

1. ``REPRO_BATCH_THRESHOLD`` environment variable (an integer;
   operators pin it for reproducible runs or to defeat the cache);
2. the cache file, if its key (python/numpy version, platform)
   matches this machine;
3. a fresh micro-benchmark of the two coalescers over a geometric
   ladder of batch sizes, persisted to the cache for next time.

The measured value is clamped to ``[8, 512]`` — outside that range the
measurement says more about system noise than about the crossover —
and any failure (unwritable cache dir, clock trouble) falls back to
the historical default of 48.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

__all__ = ["DEFAULT_THRESHOLD", "batch_threshold", "calibrate", "machine_key"]

#: Historical constant, kept as the fallback when calibration is
#: impossible (read-only home, missing clock resolution, ...).
DEFAULT_THRESHOLD = 48

#: Calibration search ladder and clamp bounds.
_LADDER = (8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512)
_MIN, _MAX = 8, 512

#: Per-process memo for :func:`batch_threshold`.
_resolved: int | None = None


def machine_key() -> str:
    """Cache key identifying the measurement environment."""
    import numpy as np

    return "|".join(
        (
            platform.machine(),
            platform.system(),
            "py%d.%d" % sys.version_info[:2],
            "np" + np.__version__,
        )
    )


def _cache_path() -> Path:
    root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(root) / "repro" / "batch_threshold.json"


def _measure_pair(array, m: int, repeats: int = 5) -> tuple[float, float]:
    """Best-of-``repeats`` time of each coalescer on an ``m``-op batch."""
    import numpy as np

    rng = np.random.default_rng(12345)
    disks = rng.integers(0, max(2, array.n_disks), size=m)
    slots = rng.integers(0, 128, size=m)
    best_scalar = best_numpy = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        array._coalesce_scalar(disks, slots, None)
        best_scalar = min(best_scalar, time.perf_counter() - t0)
        t0 = time.perf_counter()
        array._coalesce_numpy(disks, slots, None)
        best_numpy = min(best_numpy, time.perf_counter() - t0)
    return best_scalar, best_numpy


def calibrate() -> int:
    """Measure the scalar→numpy crossover batch size on this machine.

    Walks a geometric ladder of batch sizes and returns the smallest
    size at which the numpy coalescer wins (and keeps winning for the
    rest of the ladder, so a single noisy point cannot pick a
    crossover the next size immediately contradicts).
    """
    from .array import ElementArray
    from .disk import DiskParameters

    array = ElementArray(8, 4 * 1024 * 1024, DiskParameters.savvio_10k3())
    # warm both code paths (first-call numpy dispatch is not the steady
    # state we are trying to measure)
    _measure_pair(array, 64, repeats=1)
    crossover = _MAX
    for m in reversed(_LADDER):
        scalar_s, numpy_s = _measure_pair(array, m)
        if numpy_s <= scalar_s:
            crossover = m
        else:
            break
    return max(_MIN, min(_MAX, crossover))


def batch_threshold() -> int:
    """The batch size at which ``submit_batch`` switches to numpy.

    See the module docstring for the resolution order.  The result is
    memoised per process; the cross-process cache lives at
    ``~/.cache/repro/batch_threshold.json``.
    """
    global _resolved
    if _resolved is not None:
        return _resolved
    env = os.environ.get("REPRO_BATCH_THRESHOLD")
    if env:
        try:
            _resolved = max(1, int(env))
            return _resolved
        except ValueError:
            pass  # fall through to cache/measurement
    path = _cache_path()
    key = None
    try:
        key = machine_key()
        data = json.loads(path.read_text())
        if data.get("key") == key:
            cached = int(data["threshold"])
            _resolved = max(_MIN, min(_MAX, cached))
            return _resolved
    except (OSError, ValueError, KeyError, TypeError):
        pass
    try:
        threshold = calibrate()
    except Exception:
        _resolved = DEFAULT_THRESHOLD
        return _resolved
    _resolved = threshold
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key": key or machine_key(), "threshold": threshold}
        tmp = path.with_suffix(".tmp%d" % os.getpid())
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)
    except OSError:
        pass  # cache is best-effort; the in-process memo still holds
    return _resolved
