"""Microbenchmarks of the erasure-coding substrate (the Jerasure stand-in).

These are true repeated-measurement benchmarks (pytest-benchmark does
the rounds): GF region kernels, Reed-Solomon encode/decode, EVENODD and
RDP encode/decode on megabyte-scale buffers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codes.evenodd import EvenOdd
from repro.codes.galois import GF
from repro.codes.rdp import RDP
from repro.codes.reed_solomon import RSCode

_MB = 1024 * 1024
RNG = np.random.default_rng(99)


def test_bench_gf8_multiply_region(benchmark):
    gf = GF(8)
    region = RNG.integers(0, 256, _MB, dtype=np.uint8)
    out = benchmark(gf.multiply_region, 0x57, region)
    assert out.shape == region.shape


def test_bench_gf8_dot_regions(benchmark):
    gf = GF(8)
    regions = [RNG.integers(0, 256, _MB // 4, dtype=np.uint8) for _ in range(6)]
    coeffs = [3, 7, 1, 0, 19, 255]
    out = benchmark(gf.dot_regions, coeffs, regions)
    assert out.shape == regions[0].shape


def test_bench_rs_encode(benchmark):
    code = RSCode(6, 3)
    data = [RNG.integers(0, 256, _MB // 4, dtype=np.uint8) for _ in range(6)]
    coding = benchmark(code.encode, data)
    assert len(coding) == 3


def test_bench_rs_decode_three_erasures(benchmark):
    code = RSCode(6, 3)
    data = [RNG.integers(0, 256, _MB // 4, dtype=np.uint8) for _ in range(6)]
    devices = data + code.encode(data)
    broken = [None, devices[1], None, devices[3], devices[4], None, *devices[6:]]
    out = benchmark(code.decode, broken)
    for i in range(6):
        assert np.array_equal(out[i], data[i])


@pytest.mark.parametrize("cls,p,n", [(EvenOdd, 7, 7), (RDP, 7, 6)])
def test_bench_raid6_encode(benchmark, cls, p, n):
    code = cls(p, n)
    data = RNG.integers(0, 256, (p - 1, n, 64 * 1024), dtype=np.uint8)
    P, Q = benchmark(code.encode, data)
    assert P.shape == Q.shape == (p - 1, 64 * 1024)


@pytest.mark.parametrize("cls,p,n", [(EvenOdd, 7, 7), (RDP, 7, 6)])
def test_bench_raid6_double_decode(benchmark, cls, p, n):
    code = cls(p, n)
    data = RNG.integers(0, 256, (p - 1, n, 64 * 1024), dtype=np.uint8)
    P, Q = code.encode(data)
    cols = [data[:, j].copy() for j in range(n)]
    cols[0] = None
    cols[2] = None
    d2, _, _ = benchmark(code.decode, cols, P, Q)
    assert np.array_equal(d2, data)


def test_bench_smart_vs_dumb_schedule_xors(benchmark):
    """Jerasure's smart scheduling on a dense Cauchy generator."""
    from repro.codes.bitmatrix import CauchyRSCode
    from repro.codes.schedule import dumb_schedule, smart_schedule

    code = CauchyRSCode(6, 3, 8)

    def build():
        return (
            dumb_schedule(code.coding_bitmatrix, 6, 3, 8).xor_count,
            smart_schedule(code.coding_bitmatrix, 6, 3, 8).xor_count,
        )

    dumb, smart = benchmark(build)
    assert smart < dumb
    benchmark.extra_info["xor_counts"] = {"dumb": dumb, "smart": smart}


def test_bench_xcode_encode(benchmark):
    from repro.codes.xcode import XCode

    code = XCode(7)
    data = RNG.integers(0, 256, (5, 7, 64 * 1024), dtype=np.uint8)
    diag, anti = benchmark(code.encode, data)
    assert diag.shape == anti.shape == (7, 64 * 1024)


def test_bench_xcode_double_decode(benchmark):
    from repro.codes.xcode import XCode

    code = XCode(7)
    data = RNG.integers(0, 256, (5, 7, 64 * 1024), dtype=np.uint8)
    cols = code.full_columns(data)
    survivors = [None, cols[1], None, *cols[3:]]
    grid = benchmark(code.decode, survivors)
    assert np.array_equal(grid[:5], data)
