"""RAID controller: executes layout plans against the disk simulator.

The controller owns three things:

1. **Placement** — a :class:`~repro.core.stack.RotatedStack` maps each
   stripe's logical cells to (physical disk, element slot);
2. **Content** — a verification store holding every element's payload
   (synthetic film data, replicas, parity), so reconstruction
   correctness can be checked byte-for-byte like the paper does;
3. **Execution** — logical operations become
   :class:`~repro.disksim.request.IORequest` batches with proper
   read-before-write dependencies, pipelined with a configurable
   window, and timed by the event engine.

The controller never moves payload bytes through the simulator — the
simulator prices I/O *time*; the store settles I/O *correctness*.

Failures are specified by **physical** disk id.  With role rotation
enabled, the same physical failure exercises a different logical
failure in every stripe (the stack property of §II-A); without
rotation, physical and logical ids coincide, which is how the
throughput experiments pin down one specific logical case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..codes.decoder import EvenOddDecoder, RDPDecoder
from ..core.errors import UnrecoverableFailureError
from ..core.layouts import (
    Layout,
    MirrorParityLayout,
    RAID5Layout,
    RAID6Layout,
    XCodeLayout,
)
from ..core.plancache import PlanCache
from ..core.reconstruction import (
    RebuildPhase,
    ReconstructionPlan,
    RecoveryMethod,
    RecoveryStep,
)
from ..core.stack import RotatedStack
from ..disksim.array import DEFAULT_ELEMENT_SIZE, ElementArray
from ..obs import default_recorder, default_registry, default_tracer
from ..obs.tracing import Tracer
from ..disksim.disk import DiskParameters
from ..disksim.faultplan import ActiveFaults, FaultPlan
from ..disksim.faults import LatentSectorErrors
from ..disksim.request import IOKind, IORequest
from ..disksim.scheduler import ElevatorScheduler, Scheduler
from ..disksim.trace import TraceStats
from ..workloads.film import DEFAULT_PAYLOAD_BYTES, FilmSource
from ..workloads.generator import WriteOp

if TYPE_CHECKING:
    from ..workloads.openloop import RebuildThrottle

__all__ = [
    "RaidController",
    "RebuildResult",
    "WriteResult",
    "RetryPolicy",
    "FaultStats",
    "RebuildCheckpoint",
]

_MB = 1024 * 1024


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded read retries with exponential backoff in simulated time.

    A failed (or, with ``timeout_s``, too-slow) read is resubmitted up
    to ``max_attempts - 1`` times; the k-th resubmission waits
    ``backoff_base_s * backoff_factor**k`` simulated seconds first, so
    backoff shows up in the measured makespans like it would on real
    hardware.  Only *transient* errors and timeouts are retried —
    latent sector errors and dead disks go straight to re-routing.

    ``jitter`` spreads each backoff uniformly over
    ``[1 - jitter, 1 + jitter]`` times the exponential base delay.
    The draw comes from the controller's *seeded* retry stream (derived
    from the fault plan's seed, never ambient randomness), so jittered
    campaigns stay bit-reproducible end to end.
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.002
    backoff_factor: float = 2.0
    timeout_s: float | None = None
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0:
            raise ValueError(f"backoff base must be >= 0, got {self.backoff_base_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff factor must be >= 1, got {self.backoff_factor}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout_s}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff_s(
        self, failed_attempt: int, rng: np.random.Generator | None = None
    ) -> float:
        """Backoff before resubmitting after 0-based ``failed_attempt``.

        With ``jitter`` set, ``rng`` supplies the spread factor; callers
        that omit it (or a zero-jitter policy) get the deterministic
        exponential delay.
        """
        delay = self.backoff_base_s * self.backoff_factor**failed_attempt
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return delay


@dataclass
class FaultStats:
    """Robustness counters of one rebuild (or online-rebuild) run."""

    retries: int = 0
    backoff_time_s: float = 0.0
    rerouted_reads: int = 0
    timeouts: int = 0
    slow_reads_accepted: int = 0
    abandoned_requests: int = 0
    transient_errors: int = 0
    healed_lses: int = 0
    data_loss_events: int = 0
    #: ``(physical disk, stripe)`` columns that could not be recovered
    lost_columns: list[tuple[int, int]] = field(default_factory=list)
    #: disks that failed *while* the rebuild was running
    mid_rebuild_failures: tuple[int, ...] = ()


@dataclass
class RebuildCheckpoint:
    """Which stripes a (possibly aborted) rebuild already restored.

    ``completed`` maps each physical disk under repair to the stripes
    whose column was fully rebuilt; a resumed rebuild
    (``rebuild(..., resume_from=checkpoint)``) only redoes the
    remainder.  ``lost`` columns are unrecoverable and stay lost.
    """

    failed_disks: tuple[int, ...]
    n_stripes: int
    completed: dict[int, frozenset[int]]
    lost: tuple[tuple[int, int], ...] = ()

    def remaining(self, disk: int) -> list[int]:
        done = self.completed.get(disk, frozenset())
        gone = {s for d, s in self.lost if d == disk}
        return [s for s in range(self.n_stripes) if s not in done and s not in gone]

    @property
    def is_complete(self) -> bool:
        return all(not self.remaining(d) for d in self.failed_disks)


@dataclass(frozen=True)
class RebuildResult:
    """Outcome of a reconstruction run."""

    failed_disks: tuple[int, ...]
    makespan_s: float
    bytes_read: int
    bytes_written: int
    read_throughput_mbps: float
    recovered_bytes: int
    recovered_throughput_mbps: float
    verified: bool
    max_read_accesses_per_stripe: int
    #: retry/reroute/loss counters (always present; all-zero on a
    #: fault-free run)
    fault_stats: FaultStats | None = None
    #: present when the rebuild did not fully restore every column
    checkpoint: RebuildCheckpoint | None = None
    #: True when at least one column was abandoned as lost
    aborted: bool = False


@dataclass(frozen=True)
class WriteResult:
    """Outcome of a write-workload run."""

    n_ops: int
    makespan_s: float
    user_bytes: int
    write_throughput_mbps: float
    bytes_read: int
    bytes_written: int


class _CtrlObs:
    """Controller-level instruments and the rebuild-phase span track.

    Counters are registered against the process default registry at
    controller construction, so they are null instruments (free no-op
    calls) when observability is off; the trace ``group`` is ``None``
    unless a tracer is attached, and phase spans check it explicitly.
    """

    __slots__ = (
        "group",
        "ctrl_track",
        "retries",
        "timeouts",
        "backoff_s",
        "rerouted",
        "slow_accepted",
        "abandoned",
        "decodes",
        "spare_writes",
        "phases",
        "plan_spans",
        "ts_progress",
        "ts_throughput",
    )

    def __init__(self, group, ctrl_track: int, layout_name: str = "") -> None:
        reg = default_registry()
        # flight-recorder series (None when no recorder is installed):
        # rebuild progress and per-phase recovery throughput over the
        # simulated clock, labelled by layout so a two-arrangement
        # comparison records both curves side by side
        rec = default_recorder()
        if rec is not None:
            self.ts_progress = rec.series(
                "rebuild.progress",
                "fraction of tracked stripes rebuilt",
                layout=layout_name,
            )
            self.ts_throughput = rec.series(
                "rebuild.throughput_mbps",
                "recovery throughput per rebuild phase",
                layout=layout_name,
            )
        else:
            self.ts_progress = None
            self.ts_throughput = None
        self.group = group
        #: pid of the controller's own track — one past the disks, so
        #: phase spans render above the per-disk I/O Gantt rows
        self.ctrl_track = ctrl_track
        self.retries = reg.counter(
            "rebuild.retries", "reads resubmitted under the retry policy"
        ).labels()
        self.timeouts = reg.counter(
            "rebuild.timeouts", "reads exceeding the retry policy's timeout"
        ).labels()
        self.backoff_s = reg.counter(
            "rebuild.backoff_s", "simulated seconds spent in retry backoff"
        ).labels()
        self.rerouted = reg.counter(
            "rebuild.rerouted_reads", "source reads re-routed around unreadable elements"
        ).labels()
        self.slow_accepted = reg.counter(
            "rebuild.slow_reads_accepted", "late reads accepted after timeout retries ran out"
        ).labels()
        self.abandoned = reg.counter(
            "rebuild.abandoned_requests", "retryable reads abandoned after max attempts"
        ).labels()
        self.decodes = reg.counter(
            "rebuild.decodes", "stripe decodes executed by CODE recovery steps"
        ).labels()
        self.spare_writes = reg.counter(
            "rebuild.spare_writes", "recovered columns written out to hot spares"
        ).labels()
        self.phases = reg.counter(
            "rebuild.phases", "rebuild phase barriers executed"
        ).labels()
        self.plan_spans = reg.histogram(
            "rebuild.phase_wall_s", "simulated wall time of each rebuild phase"
        ).labels()

    def phase_span(
        self,
        t0: float,
        t1: float,
        phase_idx: int,
        fset,
        n_stripes: int,
        stripes_done: int | None = None,
        stripes_total: int = 0,
        phase_bytes: int = 0,
    ) -> None:
        """One ``rebuild.phase`` complete event on the controller track.

        A phase end is also the streaming tracer's durability point:
        the bounded buffer drains to the JSONL sink here, so a trace of
        a long campaign never holds more than one phase's tail (or the
        watermark, whichever trips first) in memory.

        ``stripes_done``/``stripes_total``/``phase_bytes`` feed the
        flight recorder's rebuild-progress and throughput series — the
        paper's "availability during reconstruction" x-axis.
        """
        self.phases.inc()
        self.plan_spans.observe(t1 - t0)
        if self.ts_progress is not None and stripes_total:
            self.ts_progress.observe(t1, stripes_done / stripes_total)
            if phase_bytes and t1 > t0:
                self.ts_throughput.observe(
                    t1, phase_bytes / (1024 * 1024) / (t1 - t0)
                )
        if self.group is not None:
            if t1 > t0:
                self.group.complete(
                    "rebuild.phase",
                    t0,
                    t1 - t0,
                    pid=self.ctrl_track,
                    cat="rebuild",
                    phase=phase_idx,
                    failed=list(fset),
                    stripes=n_stripes,
                )
            self.group.phase_boundary()


class _RetryBatch:
    """Retry/backoff bookkeeping for one batch of element reads.

    The settle logic used to be a nest of closures capturing a state
    dict per batch; on the rebuild hot path that allocated several
    cells and a dict for every stripe.  One slotted object with a
    bound-method callback does the same job.
    """

    __slots__ = ("controller", "on_settled", "failed", "outstanding", "primed")

    def __init__(
        self,
        controller: "RaidController",
        on_settled: Callable[[list[IORequest]], None],
    ) -> None:
        self.controller = controller
        self.on_settled = on_settled
        self.failed: list[IORequest] = []
        self.outstanding = 0
        self.primed = False

    def on_request(self, req: IORequest) -> None:
        ctrl = self.controller
        policy = ctrl.retry_policy
        stats = ctrl.fault_stats
        obs = ctrl._obs
        self.outstanding -= 1
        timed_out = (
            policy is not None
            and policy.timeout_s is not None
            and not req.error
            and req.latency > policy.timeout_s
        )
        if timed_out:
            stats.timeouts += 1
            obs.timeouts.inc()
        retryable = (req.error and req.error_kind == "transient") or timed_out
        if policy is not None and retryable and req.attempt + 1 < policy.max_attempts:
            delay = policy.backoff_s(req.attempt, ctrl._retry_rng)
            stats.retries += 1
            stats.backoff_time_s += delay
            obs.retries.inc()
            obs.backoff_s.inc(delay)
            retry = IORequest(
                disk=req.disk,
                offset=req.offset,
                size=req.size,
                kind=req.kind,
                priority=req.priority,
                tag=req.tag,
                attempt=req.attempt + 1,
                root_id=req.chain_id,
            )
            self.outstanding += 1
            ctrl.array.sim.schedule_call(delay, ctrl.array.submit, retry, self.on_request)
            return
        if req.error:
            if retryable:  # out of attempts on a retryable error
                stats.abandoned_requests += 1
                obs.abandoned.inc()
            self.failed.append(req)
        elif timed_out:
            stats.slow_reads_accepted += 1
            obs.slow_accepted.inc()
        if self.primed and self.outstanding == 0:
            self.on_settled(self.failed)


class RaidController:
    """Drive one RAID architecture over a simulated disk array.

    Parameters
    ----------
    layout:
        The architecture (any :class:`~repro.core.layouts.Layout`).
    n_stripes:
        Stripes laid out per disk (each adds ``layout.rows`` element
        slots per disk).
    element_size:
        Simulated bytes per element (timing); default 4 MB as in §VII.
    payload_bytes:
        Verification-store bytes per element (correctness).
    rotate:
        Rotate logical roles across stripes (see
        :class:`~repro.core.stack.RotatedStack`).
    spares:
        Extra hot-spare disks appended after the architecture's disks,
        used as rebuild targets when ``write_spare`` is requested.
    fault_plan:
        Optional :class:`~repro.disksim.faultplan.FaultPlan`; activating
        it wires transient errors, fail-slow drives, LSEs and scheduled
        whole-disk failures into the array, and switches rebuilds into
        *counting* mode: unrecoverable columns are recorded as data-loss
        events in :class:`FaultStats` instead of raising.  Mutually
        exclusive with ``lse``.
    retry_policy:
        Read retry/backoff policy; defaults to :class:`RetryPolicy`'s
        defaults when a fault plan is present, otherwise no retries.
    plan_cache:
        Memoise reconstruction plans per logical failure set (see
        :class:`~repro.core.plancache.PlanCache`).  On by default;
        ``False`` re-derives every stripe's plan, which only the
        perf-regression harness wants.
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer` (a fresh track
        group labelled with the layout's name is reserved on it) or an
        already-labelled :class:`~repro.obs.tracing.TraceGroup`.  With
        neither, the process default tracer applies; ``False`` opts
        this controller out of tracing entirely (yardstick runs).
    """

    def __init__(
        self,
        layout: Layout,
        n_stripes: int = 8,
        element_size: int = DEFAULT_ELEMENT_SIZE,
        params: DiskParameters | None = None,
        scheduler_factory: Callable[[], Scheduler] = ElevatorScheduler,
        payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
        rotate: bool = False,
        spares: int = 0,
        film_seed: int = 2012,
        lse: LatentSectorErrors | None = None,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        plan_cache: bool = True,
        tracer=None,
        calendar: str | None = None,
    ) -> None:
        self.layout = layout
        self.plan_cache = PlanCache(layout, enabled=plan_cache)
        self.stack = RotatedStack(layout, n_stripes, rotate=rotate)
        self.n_stripes = n_stripes
        self.spares = spares
        slots = n_stripes * layout.rows
        self.fault_plan = fault_plan
        self.active_faults: ActiveFaults | None = None
        if fault_plan is not None:
            if lse is not None:
                raise ValueError("pass either lse or fault_plan, not both")
            self.active_faults = fault_plan.activate(
                element_size, layout.n_disks + spares, slots
            )
            lse = self.active_faults.lse
        self.lse = lse
        if lse is not None and lse.element_size != element_size:
            raise ValueError(
                f"LSE model element size {lse.element_size} disagrees with "
                f"array element size {element_size}"
            )
        # resolve the trace sink once: an explicit Tracer gets a track
        # group labelled with the layout's name (so two arrangements in
        # one campaign render side by side), a TraceGroup is used
        # as-is, ``False`` opts out even when a default tracer is set
        if tracer is False:
            trace = None
        elif tracer is not None:
            trace = tracer
        else:
            trace = default_tracer()
        group = trace.group(layout.name) if isinstance(trace, Tracer) else trace
        self.array = ElementArray(
            layout.n_disks + spares,
            element_size,
            params,
            scheduler_factory,
            faults=self.active_faults if self.active_faults is not None else lse,
            tracer=group if group is not None else False,
            calendar=calendar,
        )
        if group is not None:
            group.name_track(layout.n_disks + spares, "rebuild controller")
        #: controller instruments — null no-ops when observability is
        #: off, so call sites need no branches
        self._obs = _CtrlObs(group, layout.n_disks + spares, layout.name)
        if retry_policy is None and fault_plan is not None:
            retry_policy = RetryPolicy()
        self.retry_policy = retry_policy
        # backoff jitter draws from a dedicated stream derived from the
        # campaign seed (spawn key keeps it independent of the fault
        # injection stream), never from ambient randomness
        retry_seed = fault_plan.seed if fault_plan is not None else film_seed
        self._retry_rng = np.random.default_rng(
            np.random.SeedSequence(retry_seed, spawn_key=(0xB0FF,))
        )
        self.fault_stats = FaultStats()
        self.film = FilmSource(payload_bytes, film_seed)
        self.payload_bytes = payload_bytes
        self.content = np.zeros(
            (layout.n_disks + spares, slots, payload_bytes), dtype=np.uint8
        )
        self._decoded: set[tuple[int, tuple[int, ...]]] = set()
        #: disks killed by scheduled :class:`DiskFailure` events, in
        #: death order; content snapshots taken at the moment of death
        self._dead_disks: list[int] = []
        self._death_snapshots: dict[int, np.ndarray] = {}
        self._death_times: dict[int, float] = {}
        self._rebuilding: tuple[int, ...] = ()
        self._init_content()
        if fault_plan is not None:
            for df in fault_plan.disk_failures:
                self.array.sim.schedule(
                    df.time_s, lambda d=df.disk: self._on_disk_death(d)
                )

    def _on_disk_death(self, disk: int) -> None:
        """A scheduled whole-disk failure fires: the bytes are gone."""
        if disk in self._dead_disks or disk in self._rebuilding:
            return
        self._death_snapshots[disk] = self.content[disk].copy()
        self._death_times[disk] = self.array.now
        self.content[disk] = 0xDD
        self._dead_disks.append(disk)

    # ==================================================================
    # placement and content
    # ==================================================================
    def place(self, stripe: int, cell: tuple[int, int]) -> tuple[int, int]:
        """Physical ``(disk, slot)`` of a logical stripe cell."""
        disk, row = cell
        return self.stack.place(stripe, disk, row)

    def _stripe_data(self, stripe: int) -> np.ndarray:
        """``(data rows, n, payload)`` data block of one stripe, from the film."""
        lay = self.layout
        data_rows = getattr(lay, "data_rows", lay.rows)
        out = np.empty((data_rows, lay.n, self.payload_bytes), dtype=np.uint8)
        for j in range(data_rows):
            for i in range(lay.n):
                out[j, i] = self.film.element(stripe, i, j)
        return out

    def _init_content(self) -> None:
        for stripe in range(self.n_stripes):
            self._write_stripe_content(stripe, self._stripe_data(stripe))

    def _write_stripe_content(self, stripe: int, data: np.ndarray) -> None:
        """Install a stripe's data block and all derived redundancy."""
        lay = self.layout
        for disk in range(lay.n_disks):
            for row in range(lay.rows):
                c = lay.content(disk, row)
                pd, slot = self.place(stripe, (disk, row))
                if c.kind in ("data", "replica"):
                    self.content[pd, slot] = data[c.j, c.i]
                elif c.kind == "parity" and not isinstance(
                    lay, (RAID6Layout, XCodeLayout)
                ):
                    self.content[pd, slot] = np.bitwise_xor.reduce(data[c.j], axis=0)
        if isinstance(lay, RAID6Layout):
            self._encode_raid6_stripe(stripe, data)
        elif isinstance(lay, XCodeLayout):
            self._encode_xcode_stripe(stripe, data)

    def _encode_xcode_stripe(self, stripe: int, data: np.ndarray) -> None:
        lay = self.layout
        diag, anti = lay.code.encode(data)
        for disk in range(lay.n_disks):
            pd, slot = self.place(stripe, (disk, lay.p - 2))
            self.content[pd, slot] = diag[disk]
            pd, slot = self.place(stripe, (disk, lay.p - 1))
            self.content[pd, slot] = anti[disk]

    def _raid6_code(self):
        lay = self.layout
        dec = (
            EvenOddDecoder(lay.n, lay.p)
            if lay.code_name == "evenodd"
            else RDPDecoder(lay.n, lay.p)
        )
        return dec

    def _encode_raid6_stripe(self, stripe: int, data: np.ndarray) -> None:
        lay = self.layout
        row_par, diag_par = self._raid6_code().code.encode(data)
        for row in range(lay.rows):
            pd, slot = self.place(stripe, (lay.p_disk, row))
            self.content[pd, slot] = row_par[row]
            qd, qslot = self.place(stripe, (lay.q_disk, row))
            self.content[qd, qslot] = diag_par[row]

    def element_content(self, stripe: int, cell: tuple[int, int]) -> np.ndarray:
        """Current payload of a logical stripe cell."""
        pd, slot = self.place(stripe, cell)
        return self.content[pd, slot]

    # ==================================================================
    # reconstruction
    # ==================================================================
    def stripe_plan(self, stripe: int, failed_physical) -> ReconstructionPlan:
        """The stripe's logical reconstruction plan for a physical failure.

        Served from the controller's :class:`PlanCache`: stripes whose
        rotation maps the failure onto the same logical set share one
        derivation.  The returned plan is shared — treat as immutable.
        """
        logical = tuple(
            sorted(self.stack.logical_disk(stripe, f) for f in failed_physical)
        )
        return self.plan_cache.plan(logical)

    def _submit_reads_with_retry(
        self,
        cells,
        tag: str,
        on_settled: Callable[[list[IORequest]], None],
        priority: int = 10,
    ) -> None:
        """Submit element reads, retrying per the controller's policy.

        Transient errors and (when a timeout is configured) too-slow
        reads are resubmitted with exponential backoff priced in
        simulated time.  ``on_settled`` fires once every read has
        either succeeded or exhausted its retries, receiving the
        requests that still carry an error.  A read that only ran out
        of *timeout* retries is accepted — the bytes did arrive, late —
        and counted in ``fault_stats.slow_reads_accepted``.

        The bookkeeping lives in one slotted :class:`_RetryBatch`
        object per batch; its bound method is the per-request callback,
        so no closure cells are allocated on this path.
        """
        batch = _RetryBatch(self, on_settled)
        reqs = self.array.submit_elements(
            cells, IOKind.READ, priority=priority, tag=tag, callback=batch.on_request
        )
        batch.outstanding += len(reqs)
        batch.primed = True
        if not reqs:
            on_settled([])

    def _record_loss(self, disks, stripe: int, lost, stats: FaultStats) -> None:
        for d in disks:
            if (d, stripe) not in lost:
                lost.append((d, stripe))
                stats.data_loss_events += 1

    def _group_rebuild_work(self, tracked, completed, lost):
        """Stripes still to rebuild, grouped by their active failure set.

        After a mid-rebuild failure the already-rebuilt stripes of the
        first disk see a *different* failure set than the rest — each
        group gets its own reconstruction plans.
        """
        lost_set = set(lost)
        groups: dict[tuple[int, ...], list[int]] = {}
        for s in range(self.n_stripes):
            active = tuple(
                d
                for d in sorted(tracked)
                if s not in completed[d] and (d, s) not in lost_set
            )
            if active:
                groups.setdefault(active, []).append(s)
        return list(groups.items())

    def rebuild(
        self,
        failed_disks,
        window: int = 4,
        verify: bool = True,
        write_spare: bool = False,
        throttle_delay_s: "float | RebuildThrottle" = 0.0,
        resume_from: RebuildCheckpoint | None = None,
    ) -> RebuildResult:
        """Reconstruct the failed *physical* disks across every stripe.

        Failed disks are rebuilt one at a time, the way a hot spare
        replaces one device: the plan is split into sequential
        *phases*, one per failed disk (plus the parity-recompute phase
        if the parity disk is among them).  Within a phase, stripes are
        pipelined ``window`` at a time: each stripe's phase reads are
        submitted together; once they complete, the phase's recovery
        steps execute against the content store (and, if requested, the
        recovered elements are written to hot spares).

        ``throttle_delay_s`` inserts a pause before each stripe's reads
        — the classic rebuild-rate limit (md's ``speed_limit``) that
        trades reconstruction time for user-I/O headroom.  It may be a
        fixed delay in seconds, or any policy object exposing
        ``delay_s(now, n_ios) -> float`` (consulted per stripe, so
        feedback policies see the live clock): see
        :class:`~repro.workloads.openloop.TokenBucketThrottle` and
        :class:`~repro.workloads.openloop.LatencyTargetThrottle`.  The
        paper notes its arrangement is *orthogonal* to such
        reconstruction optimisations [10, 11];
        ``benchmarks/bench_ablation_throttle.py`` measures exactly that
        interaction.

        With a fault plan active, reads run under the retry policy, and
        a disk that dies mid-rebuild enlarges the failure set on the
        fly: stripes are regrouped by their *remaining* failures and
        re-planned (RAID 6 / mirror-parity survive; a plain mirror's
        overlapping columns become counted data-loss events instead of
        an exception).  ``resume_from`` restarts an interrupted rebuild
        from its checkpoint, redoing only the remainder.

        Returns aggregate timing plus the byte-for-byte verification
        verdict (the paper's §VII-A post-check) and the run's
        :class:`FaultStats`.
        """
        failed = tuple(sorted(set(failed_disks)))
        for f in failed:
            if not 0 <= f < self.layout.n_disks:
                raise ValueError(f"failed disk {f} outside the architecture")
        if write_spare and self.spares < len(failed):
            raise ValueError(
                f"rebuild of {len(failed)} disks to spares needs >= {len(failed)} "
                f"spares, have {self.spares}"
            )
        counting = self.active_faults is not None
        stats = FaultStats()
        self.fault_stats = stats
        healed_before = self.lse.healed_count if self.lse is not None else 0

        completed: dict[int, set[int]] = {f: set() for f in failed}
        lost: list[tuple[int, int]] = []
        if resume_from is not None:
            for d, done in resume_from.completed.items():
                completed.setdefault(d, set()).update(done)
            lost.extend(resume_from.lost)
            for d, s in resume_from.lost:
                completed.setdefault(d, set())
        tracked: list[int] = sorted(completed)

        # snapshot the lost content, then destroy the part still to do
        snapshots = {f: self.content[f].copy() for f in tracked}
        for f in tracked:
            if not completed[f]:
                self.content[f] = 0xDD
                continue
            for s in range(self.n_stripes):
                if s in completed[f]:
                    continue
                for row in range(self.layout.rows):
                    self.content[f, self.stack.element_offset(s, row)] = 0xDD

        start = self.array.now
        n_completed_before = len(self.array.sim.completed)
        bytes_read_before = self.array.sim.total_bytes_read
        bytes_written_before = self.array.sim.total_bytes_written
        spare_of = {f: self.layout.n_disks + k for k, f in enumerate(failed)}
        self._rebuilding = tuple(tracked)
        max_accesses = 0
        try:
            while True:
                groups = self._group_rebuild_work(tracked, completed, lost)
                if not groups:
                    break
                for fset, stripes in groups:
                    max_accesses = max(
                        max_accesses,
                        self._rebuild_pass(
                            fset,
                            stripes,
                            completed,
                            lost,
                            stats,
                            window,
                            write_spare,
                            spare_of,
                            throttle_delay_s,
                            counting,
                        ),
                    )
                    # a death is only *this* rebuild's problem if it fired
                    # while rebuild I/O was still in flight; the event
                    # drain also pops deaths scheduled far in the future
                    last_io = self.array.sim.max_finish_time_since(
                        n_completed_before, default=start
                    )
                    new_dead = [
                        d
                        for d in self._dead_disks
                        if d not in tracked
                        and d < self.layout.n_disks
                        and self._death_times[d] <= last_io
                    ]
                    if new_dead:
                        for d in new_dead:
                            tracked.append(d)
                            completed.setdefault(d, set())
                            snapshots[d] = self._death_snapshots[d]
                        tracked.sort()
                        self._rebuilding = tuple(tracked)
                        stats.mid_rebuild_failures = tuple(
                            sorted(set(stats.mid_rebuild_failures) | set(new_dead))
                        )
                        # the failure set grew: drop only the memoised
                        # plans whose logical sets the new deaths touch
                        # (the explicit invalidation point of the cache)
                        affected = {
                            self.stack.logical_disk(s, d)
                            for d in new_dead
                            for s in range(self.n_stripes)
                        }
                        self.plan_cache.invalidate(affected)
                        break  # regroup with the enlarged failure set
        finally:
            self._rebuilding = ()

        if self.fault_plan is not None:
            # death events may advance the clock far past the last I/O;
            # price the rebuild by its actual request completions
            makespan = (
                self.array.sim.max_finish_time_since(n_completed_before, default=start)
                - start
            )
        else:
            makespan = self.array.now - start
        bytes_read = self.array.sim.total_bytes_read - bytes_read_before
        bytes_written = self.array.sim.total_bytes_written - bytes_written_before
        recovered = (
            sum(len(v) for v in completed.values())
            * self.layout.rows
            * self.array.element_size
        )
        if not verify:
            verified = True
        elif lost:
            verified = False
        elif resume_from is not None:
            # the pre-resume snapshot holds destroyed bytes for the
            # remainder; check global redundancy consistency instead
            verified = self.verify_redundancy()
        else:
            verified = all(
                np.array_equal(self.content[d], snapshots[d]) for d in tracked
            )
        stats.healed_lses = (
            self.lse.healed_count - healed_before if self.lse is not None else 0
        )
        if self.active_faults is not None:
            stats.transient_errors = self.active_faults.counters.transient_errors
        stats.lost_columns = list(lost)
        fully_restored = not lost and all(
            len(completed[d]) == self.n_stripes for d in tracked
        )
        checkpoint = None
        if not fully_restored:
            checkpoint = RebuildCheckpoint(
                failed_disks=tuple(tracked),
                n_stripes=self.n_stripes,
                completed={d: frozenset(v) for d, v in completed.items()},
                lost=tuple(lost),
            )
        return RebuildResult(
            failed_disks=failed,
            makespan_s=makespan,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            read_throughput_mbps=(bytes_read / _MB / makespan) if makespan > 0 else 0.0,
            recovered_bytes=recovered,
            recovered_throughput_mbps=(recovered / _MB / makespan) if makespan > 0 else 0.0,
            verified=verified,
            max_read_accesses_per_stripe=max_accesses,
            fault_stats=stats,
            checkpoint=checkpoint,
            aborted=bool(lost),
        )

    def _rebuild_pass(
        self,
        fset,
        stripes,
        completed,
        lost,
        stats: FaultStats,
        window: int,
        write_spare: bool,
        spare_of,
        throttle_delay_s: "float | RebuildThrottle",
        counting: bool,
    ) -> int:
        """One phased rebuild sweep of ``stripes`` for failure set ``fset``.

        Stops seeding new work as soon as an additional disk death is
        detected — the caller regroups the remainder under the enlarged
        failure set.  Returns the stripes' max parallel-read-access
        count (the paper's Table access metric).
        """
        fset = tuple(sorted(fset))
        dead_before = len(self._dead_disks)
        # policy objects are consulted per stripe (they see the live
        # clock); a bare float is the fixed md-style rate limit
        throttle_fn = getattr(throttle_delay_s, "delay_s", None)

        plans: dict[int, ReconstructionPlan] = {}
        phase_lists: dict[int, list[RebuildPhase]] = {}
        plannable: list[int] = []
        stack = self.stack
        cache = self.plan_cache
        for s in stripes:
            logical = tuple(sorted(stack.logical_disk(s, f) for f in fset))
            try:
                plan = cache.plan(logical)
            except UnrecoverableFailureError:
                if not counting:
                    raise
                self._record_loss(fset, s, lost, stats)
                continue
            # plans and phase lists are shared across same-class stripes
            # (and across rebuilds): read-only from here on
            plans[s] = plan
            phase_lists[s] = cache.phases(logical)
            plannable.append(s)
        max_accesses = max((p.num_read_accesses for p in plans.values()), default=0)
        n_phases = len(fset)
        dead_stripes: set[int] = set()
        # flight-recorder progress feed: one point per rebuilt stripe
        # (the phase barrier alone would give a single-failure rebuild
        # a one-point "curve"); None when no recorder is installed
        ts_progress = self._obs.ts_progress if completed else None
        total_stripes = len(completed) * self.n_stripes

        def observe_progress() -> None:
            ts_progress.observe(
                self.array.now,
                sum(len(v) for v in completed.values()) / total_stripes,
            )

        def interrupted() -> bool:
            return len(self._dead_disks) > dead_before

        def fail_stripe_from(stripe: int, from_idx: int) -> None:
            """Lose the stripe's current and dependent later phases."""
            for k in range(from_idx, n_phases):
                ph = phase_lists[stripe][k]
                pfk = self.stack.physical_disk(stripe, ph.failed_disk)
                self._record_loss((pfk,), stripe, lost, stats)
            dead_stripes.add(stripe)

        for phase_idx in range(n_phases):
            if interrupted():
                break
            pending = [s for s in plannable if s not in dead_stripes]

            def start_stripe(
                stripe: int,
                phase_idx: int = phase_idx,
                pending: list[int] = pending,
            ) -> None:
                phase: RebuildPhase = phase_lists[stripe][phase_idx]
                plan = plans[stripe]
                phys_to_cell: dict[tuple[int, int], tuple[int, int]] = {}
                reads = []
                for disk, rows in phase.reads.items():
                    for row in rows:
                        pd, slot = self.place(stripe, (disk, row))
                        phys_to_cell[(pd, slot)] = (disk, row)
                        reads.append((pd, slot))
                pf = self.stack.physical_disk(stripe, phase.failed_disk)

                def next_stripe() -> None:
                    while pending and not interrupted():
                        s = pending.pop(0)
                        if s in dead_stripes:
                            continue
                        start_stripe(s, phase_idx, pending)
                        return

                def finish_ok() -> None:
                    completed[pf].add(stripe)
                    if ts_progress is not None:
                        observe_progress()
                    if self.lse is not None:
                        # every sector of the rebuilt column was just
                        # rewritten (or lives on a fresh spare): latent
                        # errors recorded there die with the old media
                        for r in range(self.layout.rows):
                            _, slot = self.place(stripe, (phase.failed_disk, r))
                            self.lse.heal(pf, slot)
                    if write_spare and pf in spare_of:
                        writes = [
                            (spare_of[pf], self.place(stripe, (phase.failed_disk, r))[1])
                            for r in range(self.layout.rows)
                        ]
                        self.array.submit_elements(
                            writes, IOKind.WRITE, tag="rebuild-write"
                        )
                        self._obs.spare_writes.inc()
                    next_stripe()

                def on_settled(failed_reqs: list[IORequest]) -> None:
                    bad = self._bad_source_cells(stripe, phase)
                    dead = set(self._dead_disks)
                    for req in failed_reqs:
                        first = req.offset // self.array.element_size
                        last = (req.offset + req.size - 1) // self.array.element_size
                        for slot in range(first, last + 1):
                            cell = phys_to_cell.get((req.disk, slot))
                            if cell is not None:
                                bad.add(cell)
                    # sources whose disk died after the reads were
                    # issued: the store no longer holds their bytes
                    for disk, rows in phase.reads.items():
                        for row in rows:
                            if self.place(stripe, (disk, row))[0] in dead:
                                bad.add((disk, row))
                    if not bad:
                        self._apply_phase(stripe, plan, phase)
                        finish_ok()
                        return
                    try:
                        steps, extra = self._lse_substitute(
                            stripe, plan, phase, bad, dead_physical=dead
                        )
                    except UnrecoverableFailureError:
                        dead_driven = any(
                            c[0] not in plan.failed_disks
                            and self.place(stripe, c)[0] in dead
                            for c in bad
                        )
                        if counting and dead_driven and interrupted():
                            # recoverable once the caller regroups with
                            # the enlarged failure set — defer, not lose
                            next_stripe()
                            return
                        if not counting:
                            raise
                        fail_stripe_from(stripe, phase_idx)
                        next_stripe()
                        return
                    stats.rerouted_reads += len(bad)
                    self._obs.rerouted.inc(len(bad))
                    extra_phys = sorted(
                        {
                            self.place(stripe, c)
                            for c in extra
                            if c[0] not in plan.failed_disks
                        }
                    )

                    def finish_fallback(fb_failed: list[IORequest]) -> None:
                        if fb_failed:
                            if not counting:
                                raise UnrecoverableFailureError(
                                    f"fallback sources unreadable during "
                                    f"reconstruction of stripe {stripe}"
                                )
                            fail_stripe_from(stripe, phase_idx)
                            next_stripe()
                            return
                        self._apply_steps(stripe, plan, steps)
                        finish_ok()

                    self._submit_reads_with_retry(
                        extra_phys, "lse-fallback", finish_fallback
                    )

                def submit() -> None:
                    self._submit_reads_with_retry(reads, "rebuild", on_settled)

                delay = (
                    throttle_fn(self.array.now, len(reads))
                    if throttle_fn is not None
                    else throttle_delay_s
                )
                if delay > 0:
                    self.array.sim.schedule(delay, submit)
                else:
                    submit()

            n_phase_stripes = len(pending)
            t0 = self.array.now
            seeded = 0
            while pending and seeded < window:
                start_stripe(pending.pop(0))
                seeded += 1
            self.array.run()  # phase barrier
            self._obs.phase_span(
                t0,
                self.array.now,
                phase_idx,
                fset,
                n_phase_stripes,
                stripes_done=sum(len(v) for v in completed.values()),
                stripes_total=len(completed) * self.n_stripes,
                phase_bytes=n_phase_stripes * self.layout.rows * self.array.element_size,
            )
        return max_accesses

    # ------------------------------------------------------------------
    # latent sector error handling (see repro.disksim.faults)
    # ------------------------------------------------------------------
    def _bad_source_cells(self, stripe: int, phase: RebuildPhase) -> set[tuple[int, int]]:
        """Phase source cells that hit an LSE on their physical slot."""
        if self.lse is None:
            return set()
        bad: set[tuple[int, int]] = set()
        for disk, rows in phase.reads.items():
            for row in rows:
                pd, slot = self.place(stripe, (disk, row))
                if self.lse.is_bad(pd, slot):
                    bad.add((disk, row))
        return bad

    def _lse_substitute(
        self,
        stripe: int,
        plan: ReconstructionPlan,
        phase: RebuildPhase,
        bad: set[tuple[int, int]],
        dead_physical: set[int] | None = None,
    ) -> tuple[list[RecoveryStep], list[tuple[int, int]]]:
        """Re-route recovery steps around unreadable source elements.

        Returns the substituted step list plus the extra source cells
        the fallback must read.  Only the mirror family has alternate
        paths: the plain mirror method *loses data* when its single
        replica is unreadable — precisely the LSE-during-reconstruction
        hazard §I cites — and the parity variant survives through the
        parity path.  ``dead_physical`` disks (killed mid-rebuild) are
        never usable substitutes.
        """
        lay = self.layout
        failed = set(plan.failed_disks)
        phase_rank = {f: k for k, f in enumerate(plan.failed_disks)}
        current_rank = phase_rank[phase.failed_disk]
        dead = dead_physical if dead_physical is not None else set()

        def usable(cell: tuple[int, int]) -> bool:
            """A substitute source must be readable now."""
            if cell in bad:
                return False
            if cell[0] in failed:
                # only elements recovered by an *earlier* phase exist
                return phase_rank[cell[0]] < current_rank
            pd, slot = self.place(stripe, cell)
            if pd in dead:
                return False
            return self.lse is None or not self.lse.is_bad(pd, slot)

        new_steps: list[RecoveryStep] = []
        extra: list[tuple[int, int]] = []
        for step in phase.steps:
            if not any(s in bad for s in step.sources):
                new_steps.append(step)
                continue
            if not isinstance(lay, MirrorParityLayout):
                raise UnrecoverableFailureError(
                    f"{lay.name}: source {sorted(bad)} unreadable (latent sector "
                    f"error) during reconstruction and no redundancy remains"
                )
            if step.method is RecoveryMethod.COPY:
                (src,) = step.sources
                c = lay.content(*src)
                row_sources = [
                    lay.data_cell(ii, c.j) for ii in range(lay.n) if ii != c.i
                ]
                alt = row_sources + [lay.parity_cell(c.j)]
                if not all(usable(cell) for cell in alt):
                    raise UnrecoverableFailureError(
                        f"element a[{c.i},{c.j}]: replica unreadable and the "
                        f"parity path is also damaged"
                    )
                new_steps.append(RecoveryStep(step.target, RecoveryMethod.XOR, tuple(alt)))
                extra.extend(cell for cell in alt if cell[0] not in failed)
            else:  # XOR / RECOMPUTE: swap each bad member for its replica
                substituted = []
                for s in step.sources:
                    if s not in bad:
                        substituted.append(s)
                        continue
                    c = lay.content(*s)
                    if c.kind != "data":
                        raise UnrecoverableFailureError(
                            f"unreadable {c.kind} element {s} has no replica"
                        )
                    (rep,) = lay.replica_cells(c.i, c.j)
                    if not usable(rep):
                        raise UnrecoverableFailureError(
                            f"element a[{c.i},{c.j}] and its replica both unreadable"
                        )
                    substituted.append(rep)
                    if rep[0] not in failed:
                        extra.append(rep)
                new_steps.append(
                    RecoveryStep(step.target, step.method, tuple(substituted))
                )
        return new_steps, extra

    # ------------------------------------------------------------------
    def _apply_phase(self, stripe: int, plan: ReconstructionPlan, phase: RebuildPhase) -> None:
        """Execute one phase's recovery steps on the content store."""
        self._apply_steps(stripe, plan, phase.steps)

    def _apply_recovery(self, stripe: int, plan: ReconstructionPlan) -> None:
        """Execute all of a plan's recovery steps on the content store."""
        self._apply_steps(stripe, plan, plan.steps)

    def _apply_steps(self, stripe: int, plan: ReconstructionPlan, steps) -> None:
        for step in steps:
            pd, slot = self.place(stripe, step.target)
            if step.method in (RecoveryMethod.XOR, RecoveryMethod.RECOMPUTE):
                acc = np.zeros(self.payload_bytes, dtype=np.uint8)
                for src in step.sources:
                    spd, sslot = self.place(stripe, src)
                    acc ^= self.content[spd, sslot]
                self.content[pd, slot] = acc
            elif step.method is RecoveryMethod.COPY:
                spd, sslot = self.place(stripe, step.sources[0])
                self.content[pd, slot] = self.content[spd, sslot]
            elif step.method is RecoveryMethod.CODE:
                key = (stripe, plan.failed_disks)
                if key not in self._decoded:
                    if isinstance(self.layout, XCodeLayout):
                        self._decode_xcode_stripe(stripe, plan.failed_disks)
                    else:
                        self._decode_raid6_stripe(stripe, plan.failed_disks)
                    self._decoded.add(key)
                    self._obs.decodes.inc()
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown recovery method {step.method}")

    def _decode_raid6_stripe(self, stripe: int, failed_logical: tuple[int, ...]) -> None:
        lay = self.layout
        if not isinstance(lay, RAID6Layout):
            raise AssertionError("CODE recovery outside RAID 6")
        decoder = self._raid6_code()
        devices: list[np.ndarray | None] = []
        for d in range(lay.n_disks):
            if d in failed_logical:
                devices.append(None)
                continue
            col = np.stack(
                [self.element_content(stripe, (d, r)) for r in range(lay.rows)]
            )
            devices.append(col.reshape(-1))
        decoded = decoder.decode(devices)
        for d in failed_logical:
            col = decoded[d].reshape(lay.rows, self.payload_bytes)
            for r in range(lay.rows):
                pd, slot = self.place(stripe, (d, r))
                self.content[pd, slot] = col[r]

    def _decode_xcode_stripe(self, stripe: int, failed_logical: tuple[int, ...]) -> None:
        lay = self.layout
        columns: list[np.ndarray | None] = []
        for d in range(lay.n_disks):
            if d in failed_logical:
                columns.append(None)
                continue
            columns.append(
                np.stack([self.element_content(stripe, (d, r)) for r in range(lay.rows)])
            )
        grid = lay.code.decode(columns)
        for d in failed_logical:
            for r in range(lay.rows):
                pd, slot = self.place(stripe, (d, r))
                self.content[pd, slot] = grid[r, d]

    # ==================================================================
    # writes
    # ==================================================================
    def run_write_workload(
        self,
        ops: list[WriteOp],
        strategy: str = "rmw",
        window: int = 4,
        rng: np.random.Generator | None = None,
    ) -> WriteResult:
        """Execute a write workload with read-before-write dependencies.

        Each op's parity-input reads are issued first; its writes only
        start once they complete.  Ops are pipelined ``window`` deep.
        Throughput is user data written per wall-clock second — the
        Fig. 10 metric.
        """
        if rng is None:
            rng = np.random.default_rng(7)
        start = self.array.now
        read_before = self.array.sim.total_bytes_read
        written_before = self.array.sim.total_bytes_written
        pending = list(ops)

        def start_op(op: WriteOp) -> None:
            plan = self.layout.write_plan(list(op.elements), strategy=strategy)
            write_cells = [
                self.place(op.stripe, (disk, row))
                for disk, rows in plan.writes.items()
                for row in rows
            ]
            read_cells = [
                self.place(op.stripe, (disk, row))
                for disk, rows in plan.reads.items()
                for row in rows
            ]

            def op_done() -> None:
                self._apply_write_content(op, rng)
                if pending:
                    start_op(pending.pop(0))

            def do_writes() -> None:
                self.array.submit_elements(
                    write_cells, IOKind.WRITE, tag="write", on_complete=op_done
                )

            if read_cells:
                self.array.submit_elements(
                    read_cells, IOKind.READ, tag="rmw-read", on_complete=do_writes
                )
            else:
                do_writes()

        user_bytes = sum(op.n_elements for op in ops) * self.array.element_size
        seeded = 0
        while pending and seeded < window:
            start_op(pending.pop(0))
            seeded += 1
        self.array.run()
        makespan = self.array.now - start
        return WriteResult(
            n_ops=len(ops),
            makespan_s=makespan,
            user_bytes=user_bytes,
            write_throughput_mbps=(user_bytes / _MB / makespan) if makespan > 0 else 0.0,
            bytes_read=self.array.sim.total_bytes_read - read_before,
            bytes_written=self.array.sim.total_bytes_written - written_before,
        )

    def run_read_workload(
        self,
        reads: list[tuple[int, int, int]],
        window: int = 8,
        from_replica: bool = False,
    ) -> TraceStats:
        """Serve a batch of healthy single-element data reads.

        ``reads`` are ``(stripe, i, j)`` data coordinates.  By default
        the primary copy (data array) is read; ``from_replica`` reads
        the mirror copy instead.  Either way the arrangement leaves
        healthy-path performance untouched — the shifted method only
        rearranges the *mirror* array, so primary reads are identical
        and replica reads merely land on a different (equally loaded)
        disk.  The test suite pins that non-regression.
        """
        start = self.array.now
        pending = list(reads)

        def start_read(item: tuple[int, int, int]) -> None:
            stripe, i, j = item
            cell = (
                self.layout.replica_cells(i, j)[0]
                if from_replica
                else self.layout.data_cell(i, j)
            )
            pd, slot = self.place(stripe, cell)

            def done() -> None:
                if pending:
                    start_read(pending.pop(0))

            self.array.submit_elements(
                [(pd, slot)], IOKind.READ, tag="user-read", on_complete=done
            )

        seeded = 0
        while pending and seeded < window:
            start_read(pending.pop(0))
            seeded += 1
        self.array.run()
        stats = self.array.stats(tag="user-read")
        return stats

    def _apply_write_content(self, op: WriteOp, rng: np.random.Generator) -> None:
        """Install fresh payloads and refresh derived redundancy."""
        lay = self.layout
        touched_rows: set[int] = set()
        for i, j in op.elements:
            payload = self.film.fresh(rng)
            pd, slot = self.place(op.stripe, lay.data_cell(i, j))
            self.content[pd, slot] = payload
            for cell in lay.replica_cells(i, j):
                rpd, rslot = self.place(op.stripe, cell)
                self.content[rpd, rslot] = payload
            touched_rows.add(j)
        if isinstance(lay, (MirrorParityLayout, RAID5Layout)):
            for j in touched_rows:
                acc = np.zeros(self.payload_bytes, dtype=np.uint8)
                for i in range(lay.n):
                    acc ^= self.element_content(op.stripe, lay.data_cell(i, j))
                pd, slot = self.place(op.stripe, lay.parity_cell(j))
                self.content[pd, slot] = acc
        elif isinstance(lay, RAID6Layout):
            data = np.stack(
                [
                    np.stack(
                        [
                            self.element_content(op.stripe, lay.data_cell(i, j))
                            for i in range(lay.n)
                        ]
                    )
                    for j in range(lay.rows)
                ]
            )
            self._encode_raid6_stripe(op.stripe, data)
        elif isinstance(lay, XCodeLayout):
            data = np.stack(
                [
                    np.stack(
                        [
                            self.element_content(op.stripe, lay.data_cell(i, j))
                            for i in range(lay.n)
                        ]
                    )
                    for j in range(lay.data_rows)
                ]
            )
            self._encode_xcode_stripe(op.stripe, data)

    # ==================================================================
    # verification helpers (paper §VII-A post-check, plus invariants)
    # ==================================================================
    def verify_redundancy(self) -> bool:
        """Whether every replica/parity element matches its definition."""
        lay = self.layout
        for stripe in range(self.n_stripes):
            for disk in range(lay.n_disks):
                for row in range(lay.rows):
                    c = lay.content(disk, row)
                    got = self.element_content(stripe, (disk, row))
                    if c.kind == "replica":
                        want = self.element_content(stripe, lay.data_cell(c.i, c.j))
                    elif c.kind == "parity" and not isinstance(
                        lay, (RAID6Layout, XCodeLayout)
                    ):
                        want = np.zeros(self.payload_bytes, dtype=np.uint8)
                        for i in range(lay.n):
                            want = want ^ self.element_content(
                                stripe, lay.data_cell(i, c.j)
                            )
                    else:
                        continue
                    if not np.array_equal(got, want):
                        return False
            if isinstance(lay, RAID6Layout) and not self._verify_raid6_stripe(stripe):
                return False
            if isinstance(lay, XCodeLayout) and not self._verify_xcode_stripe(stripe):
                return False
        return True

    def _verify_xcode_stripe(self, stripe: int) -> bool:
        lay = self.layout
        data = np.stack(
            [
                np.stack(
                    [self.element_content(stripe, lay.data_cell(i, j)) for i in range(lay.n)]
                )
                for j in range(lay.data_rows)
            ]
        )
        diag, anti = lay.code.encode(data)
        for d in range(lay.n_disks):
            if not np.array_equal(diag[d], self.element_content(stripe, (d, lay.p - 2))):
                return False
            if not np.array_equal(anti[d], self.element_content(stripe, (d, lay.p - 1))):
                return False
        return True

    def _verify_raid6_stripe(self, stripe: int) -> bool:
        lay = self.layout
        code = self._raid6_code().code
        data = np.stack(
            [
                np.stack(
                    [self.element_content(stripe, lay.data_cell(i, j)) for i in range(lay.n)]
                )
                for j in range(lay.rows)
            ]
        )
        row_par, diag_par = code.encode(data)
        for r in range(lay.rows):
            if not np.array_equal(
                row_par[r], self.element_content(stripe, (lay.p_disk, r))
            ):
                return False
            if not np.array_equal(
                diag_par[r], self.element_content(stripe, (lay.q_disk, r))
            ):
                return False
        return True
