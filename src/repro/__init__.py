"""repro — reproduction of "Shifted Element Arrangement in Mirror Disk
Arrays for High Data Availability during Reconstruction" (Luo, Shu,
Zhao — ICPP 2012).

Subpackages
-----------
* :mod:`repro.core` — the paper's contribution: element arrangements,
  properties, layouts, reconstruction/write plans, closed-form analysis.
* :mod:`repro.codes` — erasure-coding substrate (GF(2^w), Reed-Solomon,
  EVENODD, RDP) standing in for Jerasure-1.2.
* :mod:`repro.disksim` — event-driven disk array simulator calibrated
  to the paper's Savvio 10K.3 testbed.
* :mod:`repro.raidsim` — RAID controller, rebuild and write drivers,
  availability measurement.
* :mod:`repro.workloads` — write mixes, user read streams, synthetic
  film content.
* :mod:`repro.experiments` — one driver per paper table/figure.
* :mod:`repro.obs` — metrics registry, span tracer and exporters
  (chrome://tracing JSON, metrics snapshots); ``REPRO_OBS=0`` selects
  the zero-overhead null sink.

Quick start
-----------
>>> from repro.core import shifted_mirror, traditional_mirror
>>> traditional_mirror(5).reconstruction_plan([0]).num_read_accesses
5
>>> shifted_mirror(5).reconstruction_plan([0]).num_read_accesses
1
"""

__version__ = "1.0.0"

from . import codes, core, disksim, experiments, obs, raidsim, workloads

__all__ = [
    "codes",
    "core",
    "disksim",
    "obs",
    "raidsim",
    "workloads",
    "experiments",
    "__version__",
]
