"""Serialisation of traces and metrics snapshots.

Three trace formats:

* **chrome trace** — the ``chrome://tracing`` / Perfetto "Trace Event
  Format" JSON object (``{"traceEvents": [...]}``).  Timestamps are
  converted from simulated seconds to the format's microseconds, and
  each named pid gets a ``process_name`` metadata record so tracks read
  "mirror(5)x12: disk 3" instead of bare numbers.  End-of-run export
  of a buffered tracer.
* **streaming JSONL** (:class:`JsonlTraceSink`) — one chrome-format
  record per line, written incrementally as the tracer's bounded
  buffer drains.  The file opens with ``[`` and every record carries a
  trailing comma, which is exactly the tolerant "JSON Array Format"
  trace viewers accept (missing ``]`` and trailing commas are fine),
  so a stream interrupted at any instant — even mid-line — still loads
  in ``chrome://tracing``/Perfetto and still parses with
  :func:`load_streaming_trace`, which recovers every complete record
  before the cut.
* **flat JSONL** (:func:`write_trace_jsonl`) — one flat JSON object
  per event in plain seconds, for ad-hoc ``jq``-style analysis and for
  loading back with :func:`load_trace_jsonl`.

Metrics snapshots (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`)
are already plain data; :func:`write_metrics` / :func:`load_metrics`
just add the file framing, and the round-trip is exact — a snapshot
written, loaded and merged into a fresh registry reproduces every
counter (there is a test pinning that).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .metrics import MetricsRegistry
from .tracing import TraceEvent, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_trace_jsonl",
    "load_trace_jsonl",
    "JsonlTraceSink",
    "StreamedTrace",
    "load_streaming_trace",
    "write_metrics",
    "load_metrics",
    "registry_from_file",
]

_S_TO_US = 1e6


def _chrome_record(ev: TraceEvent) -> dict:
    """One event as a Trace Event Format record (µs timestamps)."""
    rec = {
        "name": ev.name,
        "ph": ev.ph,
        "ts": ev.ts * _S_TO_US,
        "pid": ev.pid,
        "tid": ev.tid,
    }
    if ev.ph == "X":
        rec["dur"] = ev.dur * _S_TO_US
    if ev.ph == "i":
        rec["s"] = "t"  # instant scope: thread
    if ev.cat:
        rec["cat"] = ev.cat
    if ev.args:
        rec["args"] = ev.args
    return rec


def _name_records(names: dict[int, str]) -> list[dict]:
    """``process_name`` + ``process_sort_index`` metadata for named pids.

    The sort index keeps tracks in disk order, not first-event order.
    """
    records: list[dict] = []
    for pid, name in sorted(names.items()):
        records.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
        records.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": pid},
            }
        )
    return records


def chrome_trace(tracer: Tracer) -> dict:
    """The tracer's events as a Trace Event Format object (plain data).

    The top-level ``metadata`` carries the tracer's sampling header
    (rate, sampled categories, drop count), so a downsampled export
    declares itself instead of passing for a quiet run.
    """
    events = _name_records(tracer.process_names())
    events.extend(_chrome_record(ev) for ev in tracer.events)
    metadata = dict(tracer.header_meta())
    metadata["dropped_events"] = tracer.dropped_events
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": metadata,
    }


def write_chrome_trace(path, tracer: Tracer) -> Path:
    """Write a ``chrome://tracing``-loadable JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer)) + "\n", encoding="utf-8")
    return path


def write_trace_jsonl(path, tracer: Tracer) -> Path:
    """Write one flat JSON object per event; returns the path."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for ev in tracer.events:
            fh.write(
                json.dumps(
                    {
                        "name": ev.name,
                        "ph": ev.ph,
                        "ts": ev.ts,
                        "dur": ev.dur,
                        "pid": ev.pid,
                        "tid": ev.tid,
                        "cat": ev.cat,
                        "args": ev.args,
                    }
                )
            )
            fh.write("\n")
    return path


def load_trace_jsonl(path) -> list[TraceEvent]:
    """Load a :func:`write_trace_jsonl` file back into event records."""
    events = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            events.append(
                TraceEvent(
                    name=rec["name"],
                    ph=rec["ph"],
                    ts=rec["ts"],
                    dur=rec["dur"],
                    pid=rec["pid"],
                    tid=rec["tid"],
                    cat=rec.get("cat", ""),
                    args=rec.get("args", {}),
                )
            )
    return events


# ----------------------------------------------------------------------
# streaming sink: incremental, bounded-memory, viewer-loadable
# ----------------------------------------------------------------------


class JsonlTraceSink:
    """Incremental line-per-record trace writer (chrome-loadable).

    Owns the file only; *when* to write is the tracer's business
    (watermark, phase boundary, close — see
    :class:`repro.obs.tracing.Tracer`).  The first flush lands a
    ``trace_header`` metadata record carrying the sampling rate and
    buffer watermark; track names stream in as simulations register
    them.  Bytes hit the OS on every :meth:`flush`, so a reader (or a
    crashed run's post-mortem) sees every completed flush.

    ``close`` is idempotent and counts as a final flush.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = self.path.open("w", encoding="utf-8")
        self._fh.write("[\n")
        #: event records written (excludes header/name metadata)
        self.events_written = 0
        self.closed = False

    def _write_record(self, rec: dict) -> None:
        self._fh.write(json.dumps(rec))
        self._fh.write(",\n")

    def write_header(self, meta: dict) -> None:
        """The stream's first record: format + sampling provenance."""
        self._write_record(
            {"name": "trace_header", "ph": "M", "pid": 0, "tid": 0, "args": meta}
        )

    def write_process_names(self, names: dict[int, str]) -> None:
        for rec in _name_records(names):
            self._write_record(rec)

    def write_events(self, events) -> None:
        for ev in events:
            self._write_record(_chrome_record(ev))
            self.events_written += 1

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._fh.flush()
        self._fh.close()


@dataclass
class StreamedTrace:
    """A parsed :class:`JsonlTraceSink` file: header, names, events."""

    header: dict = field(default_factory=dict)
    process_names: dict[int, str] = field(default_factory=dict)
    events: list[TraceEvent] = field(default_factory=list)

    @property
    def sample_rate(self) -> float:
        return float(self.header.get("sample_rate", 1.0))

    def to_chrome(self) -> dict:
        """Re-frame as a Trace Event Format object (for summaries/tools)."""
        records = _name_records(self.process_names)
        records.extend(_chrome_record(ev) for ev in self.events)
        return {
            "traceEvents": records,
            "displayTimeUnit": "ms",
            "metadata": dict(self.header),
        }


def load_streaming_trace(path) -> StreamedTrace:
    """Parse a :class:`JsonlTraceSink` file, tolerating an abrupt stop.

    A run killed mid-write leaves a torn final line; parsing stops at
    the first undecodable line and everything before it — necessarily
    complete records — is returned.  Timestamps come back in seconds
    (the sink wrote microseconds).
    """
    out = StreamedTrace()
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip().rstrip(",")
            if not line or line in ("[", "]"):
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail from an abrupt stop — keep the prefix
            if rec.get("ph") == "M":
                if rec.get("name") == "trace_header":
                    out.header = rec.get("args", {})
                elif rec.get("name") == "process_name":
                    out.process_names[rec["pid"]] = rec["args"]["name"]
                continue
            out.events.append(
                TraceEvent(
                    name=rec["name"],
                    ph=rec["ph"],
                    ts=rec["ts"] / _S_TO_US,
                    dur=rec.get("dur", 0.0) / _S_TO_US,
                    pid=rec["pid"],
                    tid=rec["tid"],
                    cat=rec.get("cat", ""),
                    args=rec.get("args", {}),
                )
            )
    return out


def write_metrics(path, registry_or_snapshot) -> Path:
    """Write a registry (or a prepared snapshot) as JSON; returns the path."""
    snap = registry_or_snapshot
    if hasattr(snap, "snapshot"):
        snap = snap.snapshot()
    path = Path(path)
    path.write_text(json.dumps(snap, indent=2) + "\n", encoding="utf-8")
    return path


def load_metrics(path) -> dict:
    """Load a :func:`write_metrics` snapshot (mergeable via ``merge``)."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def registry_from_file(path) -> MetricsRegistry:
    """Convenience: a fresh registry holding a file's snapshot."""
    reg = MetricsRegistry()
    reg.merge(load_metrics(path))
    return reg
