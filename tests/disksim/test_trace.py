"""Trace statistics: throughput, latency, utilization math."""

from __future__ import annotations

import pytest

from repro.disksim.array import ElementArray
from repro.disksim.disk import DiskParameters
from repro.disksim.request import IOKind
from repro.disksim.trace import read_throughput_mbps, summarize, write_throughput_mbps

_MB = 1024 * 1024


def _run_mixed():
    arr = ElementArray(2, 4 * _MB, DiskParameters.ideal())
    arr.submit_elements([(0, k) for k in range(10)], IOKind.READ, tag="r")
    arr.submit_elements([(1, k) for k in range(5)], IOKind.WRITE, tag="w")
    arr.run()
    return arr


def test_summarize_counts_and_bytes():
    arr = _run_mixed()
    s = summarize(arr.sim)
    assert s.bytes_read == 40 * _MB
    assert s.bytes_written == 20 * _MB
    assert s.n_reads >= 1 and s.n_writes >= 1
    assert s.makespan_s > 0


def test_throughputs_derive_from_makespan():
    arr = _run_mixed()
    s = summarize(arr.sim)
    assert s.read_throughput_mbps == pytest.approx(40 / s.makespan_s, rel=1e-6)
    assert read_throughput_mbps(arr.sim) == pytest.approx(s.read_throughput_mbps)
    assert write_throughput_mbps(arr.sim) == pytest.approx(s.write_throughput_mbps)


def test_tag_filter_restricts_scope():
    arr = _run_mixed()
    only_reads = summarize(arr.sim, tag="r")
    assert only_reads.bytes_written == 0
    assert only_reads.bytes_read == 40 * _MB


def test_empty_simulation_stats():
    arr = ElementArray(1, 4 * _MB, DiskParameters.ideal())
    s = summarize(arr.sim)
    assert s.makespan_s == 0.0
    assert s.read_throughput_mbps == 0.0
    assert s.mean_latency_s == 0.0


def test_utilization_bounded_and_busy_disk_fully_utilized():
    arr = ElementArray(2, 4 * _MB, DiskParameters.ideal())
    arr.submit_elements([(0, k) for k in range(20)], IOKind.READ)
    arr.run()
    s = summarize(arr.sim)
    assert s.per_disk_utilization[0] == pytest.approx(1.0, rel=1e-6)
    assert s.per_disk_utilization[1] == 0.0


def test_tag_filtered_utilization_stays_bounded():
    # regression: the tag-filtered view used to divide the *full-run*
    # busy time by the filtered makespan, so a short tagged prefix of a
    # long run reported utilizations far above 1.0
    arr = ElementArray(1, 4 * _MB, DiskParameters.ideal())
    arr.submit_elements([(0, 0)], IOKind.READ, tag="early")
    arr.run()
    arr.submit_elements([(0, 2 * k) for k in range(1, 9)], IOKind.READ, tag="late")
    arr.run()
    s = summarize(arr.sim, tag="early")
    assert s.per_disk_busy_s[0] <= s.makespan_s
    assert s.per_disk_utilization[0] <= 1.0
    # the filtered busy time is exactly the tagged request's service time
    early = [r for r in arr.sim.completed if r.tag == "early"]
    assert s.per_disk_busy_s[0] == pytest.approx(
        sum(r.service_duration for r in early)
    )


def test_latency_statistics():
    arr = ElementArray(1, 4 * _MB, DiskParameters.ideal())
    arr.submit_elements([(0, 0), (0, 2)], IOKind.READ)  # second queues
    arr.run()
    s = summarize(arr.sim)
    assert s.max_latency_s >= s.mean_latency_s > 0
