"""On-line reconstruction: rebuild under live user reads (paper §III).

"During the on-line reconstruction process the storage system keeps on
serving user applications.  When a user requires to read data on the
disk under reconstruction, the failed data is recovered and responded
to user with a higher priority than other reconstruction I/Os."

:class:`OnlineReconstruction` composes a controller rebuild (priority
10 I/O) with a stream of user reads (priority 0).  A user read whose
target element sits on a failed disk becomes a *degraded read*: the
controller fetches the cheapest surviving source set —

1. the element itself, if its disk survives;
2. a surviving replica (one element — where the shifted arrangement
   shines, because replicas of a failed disk spread over all disks
   instead of queueing behind the rebuild stream on one disk);
3. the parity path: the row's surviving elements plus the parity
   element;
4. last resort (RAID 6 double failures): every intact element of the
   stripe.

The run reports user-read latency statistics alongside the rebuild
timing, quantifying the availability difference the paper motivates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import UnrecoverableFailureError
from ..core.layouts import MirrorParityLayout, RAID5Layout, RAID6Layout
from ..disksim.request import IOKind
from ..disksim.scheduler import PriorityScheduler
from ..workloads.generator import UserRead
from .controller import FaultStats, RaidController, RebuildResult

__all__ = ["OnlineResult", "OnlineReconstruction", "degraded_read_sources"]


@dataclass(frozen=True)
class OnlineResult:
    """User-visible service quality during reconstruction."""

    rebuild: RebuildResult
    n_user_reads: int
    #: latency aggregates are ``NaN`` when no reads completed — an
    #: empty sample set is "no measurement", never a zero-latency
    #: collapse (JSON emitters coerce NaN to ``null``)
    mean_user_latency_s: float
    p95_user_latency_s: float
    max_user_latency_s: float
    degraded_reads: int
    #: the rebuild's retry/reroute/loss counters (user reads run under
    #: the same policy, so their retries land here too)
    fault_stats: FaultStats | None = None
    #: user reads that still failed after all retries and re-routing
    failed_user_reads: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"user reads: {self.n_user_reads}, mean latency "
            f"{self.mean_user_latency_s * 1e3:.1f} ms, p95 "
            f"{self.p95_user_latency_s * 1e3:.1f} ms"
        )


def degraded_read_sources(layout, failed: set[int], i: int, j: int) -> list[tuple[int, int]]:
    """Surviving cells whose contents answer a read of ``a[i, j]``.

    Implements the cascade documented in the module docstring; raises
    :class:`~repro.core.errors.UnrecoverableFailureError` indirectly if
    no path exists (which cannot happen within the layout's tolerance).
    """
    primary = layout.data_cell(i, j)
    if primary[0] not in failed:
        return [primary]
    for cell in layout.replica_cells(i, j):
        if cell[0] not in failed:
            return [cell]
    if isinstance(layout, (MirrorParityLayout, RAID5Layout)):
        row_sources = [
            layout.data_cell(ii, j) for ii in range(layout.n) if ii != i
        ]
        parity = layout.parity_cell(j)
        cells = row_sources + [parity]
        if all(c[0] not in failed for c in cells):
            return cells
    if isinstance(layout, RAID6Layout):
        row_sources = [layout.data_cell(ii, j) for ii in range(layout.n) if ii != i]
        cells = row_sources + [(layout.p_disk, j)]
        if all(c[0] not in failed for c in cells):
            return cells
        # double failure: generic decode reads everything intact
        return [
            (d, r)
            for d in range(layout.n_disks)
            if d not in failed
            for r in range(layout.rows)
        ]
    raise UnrecoverableFailureError(
        f"no surviving source for data element ({i}, {j}) under failures {sorted(failed)}"
    )


class OnlineReconstruction:
    """Run a rebuild while serving a user read stream.

    Parameters
    ----------
    controller:
        Must have been built with a priority-aware scheduler
        (:class:`~repro.disksim.scheduler.PriorityScheduler`), otherwise
        user reads would queue behind rebuild I/O and the priority
        semantics of §III would be lost — a warning-grade misuse the
        constructor rejects.
    failed_disks:
        Physical disks to fail and rebuild.
    user_reads:
        The :func:`~repro.workloads.generator.user_read_stream` arrivals
        (or any sorted-by-time iterable of
        :class:`~repro.workloads.generator.UserRead`, e.g. the open-loop
        streams of :mod:`repro.workloads.openloop`).
    throttle_delay_s:
        Either a fixed pre-submit delay per rebuild stripe (seconds) or
        a policy object with a ``delay_s(now, n_ios)`` method — see
        :class:`~repro.workloads.openloop.TokenBucketThrottle` and
        friends; forwarded to :meth:`RaidController.rebuild`.
    on_latency:
        Optional hook called as ``on_latency(read, latency_s)`` after
        each user read settles — the serve tier feeds its SLO
        accounting and latency-feedback throttles through this.
    """

    def __init__(
        self,
        controller: RaidController,
        failed_disks,
        user_reads: list[UserRead],
        window: int = 4,
        throttle_delay_s=0.0,
        on_latency=None,
    ) -> None:
        for server in controller.array.sim.disks:
            if not isinstance(server.scheduler, PriorityScheduler):
                raise ValueError(
                    "online reconstruction requires PriorityScheduler disks; "
                    "build the controller with scheduler_factory=PriorityScheduler"
                )
        self.controller = controller
        self.failed = tuple(sorted(set(failed_disks)))
        self.user_reads = sorted(user_reads, key=lambda r: r.time)
        self.window = window
        self.throttle_delay_s = throttle_delay_s
        self.on_latency = on_latency
        self._latencies: list[float] = []
        self._degraded = 0
        self._failed_reads = 0

    # ------------------------------------------------------------------
    def run(self) -> OnlineResult:
        ctrl = self.controller
        failed_set = set(self.failed)
        # degraded-source resolution is a pure function of the logical
        # failure set and the (i, j) address — memoise it across the
        # stream (a heavy campaign resolves the same handful of cells
        # thousands of times)
        source_memo: dict[tuple[tuple[int, ...], int, int], list[tuple[int, int]]] = {}

        def schedule_user_read(read: UserRead) -> None:
            def fire() -> None:
                # logical failure of this stripe (identity unless rotated)
                logical_failed = {
                    ctrl.stack.logical_disk(read.stripe, f) for f in failed_set
                }
                memo_key = (tuple(sorted(logical_failed)), read.i, read.j)
                sources = source_memo.get(memo_key)
                if sources is None:
                    sources = source_memo[memo_key] = degraded_read_sources(
                        ctrl.layout, logical_failed, read.i, read.j
                    )
                if len(sources) > 1 or sources[0] != ctrl.layout.data_cell(read.i, read.j):
                    self._degraded += 1
                cells = [ctrl.place(read.stripe, c) for c in sources]
                t0 = ctrl.array.now

                if ctrl.retry_policy is not None:
                    def settled(failed_reqs, rerouted: bool = False) -> None:
                        if failed_reqs and not rerouted:
                            # retries exhausted: re-plan through the
                            # next-cheapest source set, counting disks
                            # that died since the read was planned
                            bigger = {
                                ctrl.stack.logical_disk(read.stripe, f)
                                for f in failed_set | set(ctrl._dead_disks)
                            }
                            try:
                                alt = degraded_read_sources(
                                    ctrl.layout, bigger, read.i, read.j
                                )
                            except UnrecoverableFailureError:
                                alt = None
                            if alt is not None and alt != sources:
                                ctrl.fault_stats.rerouted_reads += 1
                                ctrl._submit_reads_with_retry(
                                    [ctrl.place(read.stripe, c) for c in alt],
                                    "user",
                                    lambda fr: settled(fr, rerouted=True),
                                    priority=0,
                                )
                                return
                        lat = ctrl.array.now - t0
                        self._latencies.append(lat)
                        self._failed_reads += len(failed_reqs)
                        if self.on_latency is not None:
                            self.on_latency(read, lat)

                    ctrl._submit_reads_with_retry(
                        cells, "user", settled, priority=0
                    )
                else:
                    def done() -> None:
                        lat = ctrl.array.now - t0
                        self._latencies.append(lat)
                        if self.on_latency is not None:
                            self.on_latency(read, lat)

                    ctrl.array.submit_elements(
                        cells, IOKind.READ, priority=0, tag="user", on_complete=done
                    )

            ctrl.array.sim.schedule(max(0.0, read.time - ctrl.array.now), fire)

        for read in self.user_reads:
            schedule_user_read(read)
        rebuild = ctrl.rebuild(
            self.failed, window=self.window, throttle_delay_s=self.throttle_delay_s
        )
        # settle user reads arriving after the rebuild's last event
        ctrl.array.run()

        if self._latencies:
            lat = np.array(self._latencies)
            mean_s = float(lat.mean())
            p95_s = float(np.percentile(lat, 95))
            max_s = float(lat.max())
        else:
            # no completed reads: the aggregates are NaN, not 0.0 — see
            # the OnlineResult field comment
            mean_s = p95_s = max_s = float("nan")
        return OnlineResult(
            rebuild=rebuild,
            n_user_reads=len(self._latencies),
            mean_user_latency_s=mean_s,
            p95_user_latency_s=p95_s,
            max_user_latency_s=max_s,
            degraded_reads=self._degraded,
            fault_stats=rebuild.fault_stats,
            failed_user_reads=self._failed_reads,
        )
