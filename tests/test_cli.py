"""CLI front end: every subcommand through its happy path and errors."""

from __future__ import annotations

import pytest

from repro.cli import LAYOUTS, build_layout, main


def run_cli(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


def test_layout_registry_builds_everything():
    # n=5 satisfies every family (xcode needs a prime >= 5)
    for name in LAYOUTS:
        layout = build_layout(name, 5)
        assert layout.n == 5


def test_unknown_layout_exits():
    with pytest.raises(SystemExit, match="unknown layout"):
        build_layout("raid42", 4)


def test_arrange_shifted(capsys):
    rc, out = run_cli(capsys, "arrange", "--n", "3")
    assert rc == 0
    assert "P1=True P2=True P3=True" in out
    assert "1   4   7" in out


def test_arrange_identity(capsys):
    rc, out = run_cli(capsys, "arrange", "--n", "3", "--identity")
    assert rc == 0
    assert "P1=False" in out


def test_arrange_iterate3_loses_p3(capsys):
    rc, out = run_cli(capsys, "arrange", "--n", "3", "--iterate", "3")
    assert "P3=False" in out


def test_table1(capsys):
    rc, out = run_cli(capsys, "table1", "--n", "5")
    assert rc == 0
    assert "Avg_Read = 20/11" in out


def test_plan_shifted_single_failure(capsys):
    rc, out = run_cli(capsys, "plan", "--layout", "shifted-mirror", "--n", "5",
                      "--failed", "0")
    assert rc == 0
    assert "parallel read accesses: 1" in out


def test_plan_verbose_lists_steps(capsys):
    rc, out = run_cli(capsys, "plan", "--layout", "mirror", "--n", "3",
                      "--failed", "1", "-v")
    assert "copy" in out
    assert "(1, 0) <-" in out


def test_write_plan_row(capsys):
    rc, out = run_cli(capsys, "write-plan", "--layout", "shifted-mirror-parity",
                      "--n", "4", "--row", "0")
    assert "write accesses: 1" in out
    assert "elements written: 9" in out


def test_write_plan_elements_reconstruct(capsys):
    rc, out = run_cli(capsys, "write-plan", "--layout", "mirror-parity",
                      "--n", "4", "--element", "0,0", "--strategy", "reconstruct")
    assert "(reconstruct)" in out
    assert "elements read: 3" in out


def test_simulate_rebuild(capsys):
    rc, out = run_cli(capsys, "simulate", "rebuild", "--layout", "shifted-mirror",
                      "--n", "3", "--failed", "0", "--stripes", "4")
    assert rc == 0
    assert "content verified:   True" in out


def test_simulate_writes(capsys):
    rc, out = run_cli(capsys, "simulate", "writes", "--layout", "mirror",
                      "--n", "3", "--stripes", "4", "--ops", "10")
    assert rc == 0
    assert "redundancy intact: True" in out


def test_experiments_only_table1(capsys):
    rc, out = run_cli(capsys, "experiments", "--quick", "--only", "table1")
    assert rc == 0
    assert "table1" in out
    assert "fig9a" not in out


def test_missing_subcommand_is_an_error(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_reliability_command(capsys):
    rc, out = run_cli(capsys, "reliability", "--layout", "shifted-mirror",
                      "--n", "3", "--stripes", "6")
    assert rc == 0
    assert "MTTDL:" in out and "x)" in out


def test_scrub_command(capsys):
    rc, out = run_cli(capsys, "scrub", "--layout", "shifted-mirror-parity",
                      "--n", "3", "--stripes", "4", "--errors", "3")
    assert rc == 0
    assert "latent sector errors found:    3" in out
    assert "fully repaired" in out


def test_svg_command(capsys, tmp_path):
    rc, out = run_cli(capsys, "svg", "--outdir", str(tmp_path), "--quick")
    assert rc == 0
    assert out.count("wrote ") == 5


def test_faultcampaign_command(capsys):
    rc, out = run_cli(capsys, "faultcampaign", "--family", "mirror-parity",
                      "--n", "3", "--stripes", "4")
    assert rc == 0
    assert "Fault campaign (seed 2012) on mirror-parity at n=3:" in out
    assert "mirror-parity:" in out and "shifted-mirror-parity:" in out
    assert "availability delta (shifted - traditional):" in out
    assert "mid-rebuild failures:" in out


def test_faultcampaign_without_second_failure(capsys):
    rc, out = run_cli(capsys, "faultcampaign", "--family", "mirror",
                      "--n", "3", "--stripes", "4", "--second-failure-at", "0")
    assert rc == 0
    assert "second failure" not in out
    assert "mid-rebuild failures" not in out


def test_domain_error_is_reported_not_raised(capsys):
    # a LayoutError inside a subcommand must become exit code 2 with a
    # one-line message on stderr, never a traceback
    rc = main(["plan", "--layout", "mirror-parity", "--n", "1",
               "--failed", "0"])
    captured = capsys.readouterr()
    assert rc == 2
    assert captured.err.startswith("error: ")
    assert "needs n >= 2" in captured.err


def test_faultcampaign_rejects_bad_rate_gracefully(capsys):
    rc = main(["faultcampaign", "--family", "mirror", "--n", "3",
               "--stripes", "4", "--transient-rate", "1.5"])
    captured = capsys.readouterr()
    assert rc == 2
    assert captured.err.startswith("error: ")
    assert "transient rate" in captured.err
