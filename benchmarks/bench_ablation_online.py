"""Ablation: user-read latency during on-line reconstruction (§III).

The paper's motivating scenario, measured end to end: user reads hit
the failed disk while the rebuild runs.  Under the traditional
arrangement the single replica disk serves both the rebuild stream and
every degraded read; under the shifted arrangement both loads spread
across the array.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.layouts import shifted_mirror, traditional_mirror
from repro.disksim.scheduler import PriorityScheduler
from repro.raidsim.controller import RaidController
from repro.raidsim.reconstruction import OnlineReconstruction
from repro.workloads.generator import user_read_stream


def _measure(builder, n=5):
    ctrl = RaidController(
        builder(n),
        n_stripes=24,
        payload_bytes=8,
        scheduler_factory=PriorityScheduler,
    )
    reads = user_read_stream(n, 24, duration_s=2.5, rate_per_s=15, target_disk=0)
    res = OnlineReconstruction(ctrl, [0], reads).run()
    assert res.rebuild.verified
    return res


def test_bench_online_user_latency(benchmark):
    def sweep():
        return {
            "traditional": _measure(traditional_mirror),
            "shifted": _measure(shifted_mirror),
        }

    res = run_once(benchmark, sweep)
    trad, shift = res["traditional"], res["shifted"]
    # availability: shifted serves degraded reads several times faster
    assert shift.mean_user_latency_s < trad.mean_user_latency_s / 2
    assert shift.p95_user_latency_s < trad.p95_user_latency_s
    benchmark.extra_info["mean_latency_ms"] = {
        "traditional": trad.mean_user_latency_s * 1e3,
        "shifted": shift.mean_user_latency_s * 1e3,
    }
    benchmark.extra_info["p95_latency_ms"] = {
        "traditional": trad.p95_user_latency_s * 1e3,
        "shifted": shift.p95_user_latency_s * 1e3,
    }


def test_bench_online_rebuild_not_starved(benchmark):
    """Priority for user reads must not stall the rebuild itself."""

    def sweep():
        with_users = _measure(shifted_mirror)
        ctrl = RaidController(
            shifted_mirror(5),
            n_stripes=24,
            payload_bytes=8,
            scheduler_factory=PriorityScheduler,
        )
        quiet = ctrl.rebuild([0])
        return with_users.rebuild.makespan_s, quiet.makespan_s

    busy, quiet = run_once(benchmark, sweep)
    assert busy < 2.5 * quiet
    benchmark.extra_info["rebuild_makespan_s"] = {"with_users": busy, "quiet": quiet}
