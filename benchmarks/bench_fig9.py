"""Bench: Fig. 9 — average read throughput during reconstruction.

(a) mirror method, every single-disk failure, n = 3..7;
(b) mirror with parity, every double-disk failure (105 cases at n = 7).

Shape checks mirror the paper's findings: traditional roughly flat,
shifted growing with n, improvement factor within the measured
1.54-4.55 band (we allow a slightly wider envelope for the simulator).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig9 import run_a, run_b

N_VALUES = (3, 4, 5, 6, 7)


def test_bench_fig9a_mirror(benchmark):
    result = run_once(benchmark, run_a, N_VALUES, 16)
    assert result.data["verified"]
    trad = result.data["traditional mirror (MB/s)"]
    ratios = result.data["improvement (x)"]
    # traditional stays stable near the single-disk streaming rate
    assert max(trad) - min(trad) < 0.1 * min(trad)
    assert 50 < trad[0] < 60
    # shifted grows with n; band around the paper's 1.54-4.55
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    assert 1.4 < ratios[0] < 2.6
    assert 3.5 < ratios[-1] < 5.2
    benchmark.extra_info["improvement_factors"] = ratios


def test_bench_fig9b_mirror_parity(benchmark):
    result = run_once(benchmark, run_b, N_VALUES, 12)
    assert result.data["verified"]
    trad = result.data["traditional mirror+parity (MB/s)"]
    ratios = result.data["improvement (x)"]
    # traditional "stays stable" (bounded drift) while shifted grows
    assert max(trad) / min(trad) < 1.35
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    assert 1.2 < ratios[0] < 2.0
    assert 2.5 < ratios[-1] < 4.6
    benchmark.extra_info["improvement_factors"] = ratios
