"""Unified erasure-decode facade over the code zoo.

Layouts in :mod:`repro.core` need "given these surviving element
buffers, produce the lost ones" without caring which concrete code
backs the stripe.  :class:`ErasureDecoder` provides that interface for
single-parity (RAID 5), Reed-Solomon, EVENODD and RDP stripes.

Device ordering convention: data devices first, then parity devices in
code-specific order (P then Q for the RAID 6 codes).
"""

from __future__ import annotations

import numpy as np

from .evenodd import EvenOdd
from .rdp import RDP
from .reed_solomon import RSCode
from .xor_code import parity_region, recover_from_parity

__all__ = ["ErasureDecoder", "SingleParityDecoder", "RSDecoder", "EvenOddDecoder", "RDPDecoder"]


class ErasureDecoder:
    """Abstract decode interface.

    Subclasses define ``n_data``, ``n_parity`` and implement
    :meth:`decode`, which accepts a device list (``None`` = erased) and
    returns the complete device list.
    """

    n_data: int
    n_parity: int

    @property
    def n_devices(self) -> int:
        return self.n_data + self.n_parity

    def fault_tolerance(self) -> int:
        """Number of simultaneous device erasures the code survives."""
        return self.n_parity

    def decode(self, devices: list[np.ndarray | None]) -> list[np.ndarray]:
        raise NotImplementedError

    def _check(self, devices: list[np.ndarray | None]) -> list[int]:
        if len(devices) != self.n_devices:
            raise ValueError(f"expected {self.n_devices} device slots, got {len(devices)}")
        erased = [i for i, d in enumerate(devices) if d is None]
        if len(erased) > self.fault_tolerance():
            raise ValueError(
                f"{len(erased)} erasures exceed tolerance {self.fault_tolerance()}"
            )
        return erased


class SingleParityDecoder(ErasureDecoder):
    """RAID 5-style single parity over ``n`` data devices."""

    def __init__(self, n_data: int) -> None:
        self.n_data = n_data
        self.n_parity = 1

    def decode(self, devices: list[np.ndarray | None]) -> list[np.ndarray]:
        erased = self._check(devices)
        out = [None if d is None else np.asarray(d, dtype=np.uint8) for d in devices]
        if not erased:
            return out
        lost = erased[0]
        survivors = [d for i, d in enumerate(out) if i != lost]
        if lost == self.n_data:  # the parity device itself
            out[lost] = parity_region(survivors)
        else:
            data_survivors = [out[i] for i in range(self.n_data) if i != lost]
            out[lost] = recover_from_parity(data_survivors, out[self.n_data])
        return out


class RSDecoder(ErasureDecoder):
    """Reed-Solomon ``(k, m)`` decode."""

    def __init__(self, k: int, m: int, w: int = 8) -> None:
        self.n_data = k
        self.n_parity = m
        self.code = RSCode(k, m, w)

    def decode(self, devices: list[np.ndarray | None]) -> list[np.ndarray]:
        self._check(devices)
        return self.code.decode_all(devices)


class _ColumnStripeDecoder(ErasureDecoder):
    """Shared plumbing for the columnar RAID 6 codes (EVENODD / RDP).

    Device buffers are flat 1-D byte regions; the code sees them as
    ``(rows, element_size)`` columns.
    """

    rows: int

    def _columns(self, devices: list[np.ndarray | None]) -> list[np.ndarray | None]:
        cols: list[np.ndarray | None] = []
        for d in devices:
            if d is None:
                cols.append(None)
            else:
                flat = np.ascontiguousarray(d, dtype=np.uint8)
                if flat.size % self.rows:
                    raise ValueError(
                        f"device buffer of {flat.size} bytes is not divisible into "
                        f"{self.rows} rows"
                    )
                cols.append(flat.reshape(self.rows, -1))
        return cols


class EvenOddDecoder(_ColumnStripeDecoder):
    """EVENODD decode over flat per-device buffers (shortened to ``n``)."""

    def __init__(self, n_data: int, p: int | None = None) -> None:
        from .evenodd import smallest_prime_at_least

        p = smallest_prime_at_least(max(n_data, 3)) if p is None else p
        self.code = EvenOdd(p, n_data)
        self.n_data = n_data
        self.n_parity = 2
        self.rows = self.code.rows

    def decode(self, devices: list[np.ndarray | None]) -> list[np.ndarray]:
        self._check(devices)
        cols = self._columns(devices)
        data_cols = cols[: self.n_data]
        row_par = cols[self.n_data]
        diag_par = cols[self.n_data + 1]
        data, new_p, new_q = self.code.decode(data_cols, row_par, diag_par)
        out = [np.ascontiguousarray(data[:, j]).reshape(-1) for j in range(self.n_data)]
        out.append(new_p.reshape(-1))
        out.append(new_q.reshape(-1))
        return out


class RDPDecoder(_ColumnStripeDecoder):
    """RDP decode over flat per-device buffers (shortened to ``n``)."""

    def __init__(self, n_data: int, p: int | None = None) -> None:
        from .evenodd import smallest_prime_at_least

        p = smallest_prime_at_least(max(n_data + 1, 3)) if p is None else p
        self.code = RDP(p, n_data)
        self.n_data = n_data
        self.n_parity = 2
        self.rows = self.code.rows

    def decode(self, devices: list[np.ndarray | None]) -> list[np.ndarray]:
        self._check(devices)
        cols = self._columns(devices)
        data_cols = cols[: self.n_data]
        row_par = cols[self.n_data]
        diag_par = cols[self.n_data + 1]
        data, new_p, new_q = self.code.decode(data_cols, row_par, diag_par)
        out = [np.ascontiguousarray(data[:, j]).reshape(-1) for j in range(self.n_data)]
        out.append(new_p.reshape(-1))
        out.append(new_q.reshape(-1))
        return out
