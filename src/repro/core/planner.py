"""Packing element reads into synchronous parallel rounds (§III).

Under the paper's parallel-I/O model, one *read access* lets every disk
deliver at most one element.  Given a :class:`~repro.core.reconstruction.
ReconstructionPlan` (or any ``disk -> rows`` read map), the planner
emits the explicit rounds — and, by construction, the number of rounds
equals the plan's ``num_read_accesses`` (the max per-disk queue), which
the test suite checks as an invariant.
"""

from __future__ import annotations

from .reconstruction import ReconstructionPlan
from .writes import WritePlan

__all__ = ["schedule_read_rounds", "schedule_write_rounds", "schedule_rounds"]


def schedule_rounds(per_disk: dict[int, list[int]]) -> list[list[tuple[int, int]]]:
    """Pack ``disk -> rows`` operations into parallel rounds.

    Round ``r`` contains the ``r``-th pending operation of every disk
    that still has one; each round therefore touches each disk at most
    once, and the number of rounds is exactly the maximum queue length.
    """
    queues = {disk: list(rows) for disk, rows in per_disk.items() if rows}
    rounds: list[list[tuple[int, int]]] = []
    depth = max((len(rows) for rows in queues.values()), default=0)
    for r in range(depth):
        batch = [
            (disk, rows[r])
            for disk, rows in sorted(queues.items())
            if r < len(rows)
        ]
        rounds.append(batch)
    return rounds


def schedule_read_rounds(plan: ReconstructionPlan) -> list[list[tuple[int, int]]]:
    """The read rounds realising a reconstruction plan."""
    return schedule_rounds(plan.reads)


def schedule_write_rounds(plan: WritePlan) -> list[list[tuple[int, int]]]:
    """The write rounds realising a write plan (reads are separate)."""
    return schedule_rounds(plan.writes)
