"""Rolling baselines: windowed stats and excursion judgements."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import RollingBaseline


def test_not_ready_below_min_samples():
    b = RollingBaseline(window=8, min_samples=4)
    for v in (1.0, 2.0, 3.0):
        b.update(v)
    assert not b.ready
    # an unready baseline never flags
    assert not b.is_excursion(1e9)
    b.update(4.0)
    assert b.ready


def test_mean_and_std_track_the_window():
    b = RollingBaseline(window=4, min_samples=2)
    for v in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
        b.update(v)
    window = [3.0, 4.0, 5.0, 6.0]
    assert b.mean == pytest.approx(np.mean(window))
    assert b.std == pytest.approx(np.std(window))


def test_high_excursion_needs_both_relative_and_z_margin():
    b = RollingBaseline(window=16, min_samples=4)
    rng = np.random.default_rng(0)
    for _ in range(16):
        b.update(1.0 + 0.01 * float(rng.standard_normal()))
    assert b.is_excursion(2.0, rel_threshold=0.5, z_threshold=4.0)
    # large z but tiny relative move: not an excursion
    assert not b.is_excursion(1.1, rel_threshold=0.5, z_threshold=4.0)


def test_zero_variance_baseline_uses_the_relative_test_alone():
    b = RollingBaseline(window=8, min_samples=2)
    for _ in range(8):
        b.update(1.0)
    assert b.std == 0.0
    assert b.is_excursion(1.6, rel_threshold=0.5, z_threshold=4.0)
    assert not b.is_excursion(1.4, rel_threshold=0.5, z_threshold=4.0)


def test_low_direction_mirrors_high():
    b = RollingBaseline(window=8, min_samples=2)
    for _ in range(8):
        b.update(100.0)
    assert b.is_excursion(10.0, rel_threshold=0.5, direction="low")
    assert not b.is_excursion(60.0, rel_threshold=0.5, direction="low")
    assert not b.is_excursion(200.0, rel_threshold=0.5, direction="low")


def test_validation():
    with pytest.raises(ValueError):
        RollingBaseline(window=0)
    with pytest.raises(ValueError):
        RollingBaseline(window=4, min_samples=0)
    b = RollingBaseline(window=4, min_samples=2)
    b.update(1.0)
    b.update(1.0)
    with pytest.raises(ValueError):
        b.is_excursion(1.0, direction="sideways")


def test_non_finite_samples_are_rejected():
    """Regression: one NaN used to poison the running sums forever."""
    b = RollingBaseline(window=4, min_samples=2)
    b.update(1.0)
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ValueError, match="finite"):
            b.update(bad)
    b.update(3.0)
    assert b.mean == pytest.approx(2.0)
