"""Latent sector errors (LSEs): the silent hazard behind the paper's §I.

The paper motivates multi-fault tolerance with the rising "probability
of disk failures and latent sector errors [3-6]": an LSE is a sector
that turns out to be unreadable exactly when a reconstruction — already
running without redundancy — needs it.  A mirror-method rebuild that
hits an LSE on the single replica disk loses data; the
mirror-with-parity methods survive by re-routing that element through
the parity path.

:class:`LatentSectorErrors` tracks unreadable element slots per disk.
The event engine flags read requests that touch one (``request.error``)
and, like real drives, *heals* a bad slot when it is overwritten
(sector reallocation on write).
"""

from __future__ import annotations

import numpy as np

from .request import IOKind, IORequest

__all__ = ["LatentSectorErrors"]


class LatentSectorErrors:
    """A set of unreadable element slots, addressed as ``(disk, slot)``.

    Parameters
    ----------
    element_size:
        Bytes per element slot; requests are mapped to slots with it.
    """

    def __init__(self, element_size: int) -> None:
        if element_size <= 0:
            raise ValueError(f"element size must be positive, got {element_size}")
        self.element_size = element_size
        self._bad: set[tuple[int, int]] = set()
        #: lifetime count of LSEs cleared by overwrites (sector
        #: reallocations) — the "healed" counter campaigns report
        self.healed_count: int = 0

    # ------------------------------------------------------------------
    def inject(self, disk: int, slot: int) -> None:
        """Mark one element slot unreadable."""
        if slot < 0:
            raise ValueError(f"slot must be >= 0, got {slot}")
        self._bad.add((disk, slot))

    def inject_random(
        self,
        rng: np.random.Generator,
        n_errors: int,
        n_disks: int,
        slots_per_disk: int,
    ) -> list[tuple[int, int]]:
        """Scatter ``n_errors`` distinct LSEs uniformly; returns them.

        Raises :class:`ValueError` when the array cannot hold that many
        distinct errors (accounting for cells already bad), which would
        otherwise spin forever looking for a free cell.
        """
        if n_errors < 0:
            raise ValueError(f"n_errors must be >= 0, got {n_errors}")
        if n_disks < 1 or slots_per_disk < 1:
            raise ValueError(
                f"need a non-empty array, got {n_disks} disks x {slots_per_disk} slots"
            )
        already = sum(
            1 for d, s in self._bad if 0 <= d < n_disks and 0 <= s < slots_per_disk
        )
        capacity = n_disks * slots_per_disk - already
        if n_errors > capacity:
            raise ValueError(
                f"cannot place {n_errors} distinct LSEs: only {capacity} free cells "
                f"in a {n_disks} x {slots_per_disk} array"
            )
        placed: list[tuple[int, int]] = []
        while len(placed) < n_errors:
            cell = (int(rng.integers(0, n_disks)), int(rng.integers(0, slots_per_disk)))
            if cell not in self._bad:
                self._bad.add(cell)
                placed.append(cell)
        return placed

    def heal(self, disk: int, slot: int) -> None:
        """Clear an LSE (sector reallocated by a write)."""
        if (disk, slot) in self._bad:
            self._bad.discard((disk, slot))
            self.healed_count += 1

    def clear(self) -> None:
        self._bad.clear()

    # ------------------------------------------------------------------
    def is_bad(self, disk: int, slot: int) -> bool:
        return (disk, slot) in self._bad

    def bad_cells(self) -> set[tuple[int, int]]:
        return set(self._bad)

    def __len__(self) -> int:
        return len(self._bad)

    # ------------------------------------------------------------------
    def _slots_of(self, request: IORequest) -> range:
        first = request.offset // self.element_size
        last = (request.end - 1) // self.element_size
        return range(first, last + 1)

    def slots_hit(self, request: IORequest) -> list[int]:
        """Bad slots a request's byte range touches."""
        return [s for s in self._slots_of(request) if (request.disk, s) in self._bad]

    def on_completion(self, request: IORequest) -> None:
        """Engine hook: flag failed reads, heal overwritten slots."""
        if request.kind is IOKind.READ:
            if self.slots_hit(request):
                request.error = True
        else:
            for s in self._slots_of(request):
                self.heal(request.disk, s)
