"""RAID architectures as *layouts*: content maps, write plans, recovery plans.

A layout fixes, for one stripe, (1) which element lives where, (2) what
must be written to service a logical write, and (3) how lost elements
are recovered after disk failures.  All the architectures the paper
discusses are here:

========================================  =======================================
Class                                     Paper section
========================================  =======================================
:class:`MirrorLayout` (identity arr.)     §II-B  traditional mirror method
:class:`MirrorLayout` (shifted arr.)      §IV    shifted mirror method
:class:`MirrorParityLayout` (identity)    §II-C1 mirror method with parity
:class:`MirrorParityLayout` (shifted)     §V     shifted mirror method with parity
:class:`ThreeMirrorLayout`                §VIII  future-work three-mirror extension
:class:`RAID5Layout`                      §II-C  RAID 5 baseline
:class:`RAID6Layout`                      §II-C2 RAID 6 baseline (EVENODD / RDP)
========================================  =======================================

Global disk numbering is data array, mirror array(s), then parity
disk(s); element rows are per-disk indices within one stripe.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codes.evenodd import smallest_prime_at_least
from .arrangement import Arrangement, IdentityArrangement, ShiftedArrangement
from .errors import LayoutError, UnrecoverableFailureError
from .reconstruction import ReconstructionPlan, RecoveryMethod
from .stripe import ArrayKind, StripeGeometry
from .writes import WritePlan

__all__ = [
    "Content",
    "Layout",
    "MirrorLayout",
    "MirrorParityLayout",
    "ThreeMirrorLayout",
    "DeclusteredMirrorLayout",
    "RAID5Layout",
    "RAID6Layout",
    "RebuildOptimalRDPLayout",
    "XCodeLayout",
    "traditional_mirror",
    "shifted_mirror",
    "traditional_mirror_parity",
    "shifted_mirror_parity",
]


@dataclass(frozen=True)
class Content:
    """What one physical element stores.

    ``kind`` is ``"data"`` (original data element ``a[i, j]``),
    ``"replica"`` (mirror copy of ``a[i, j]``), ``"parity"`` (XOR of
    data row ``j``) or ``"q_parity"`` (RAID 6 diagonal ``j``).
    For data/replica, ``i``/``j`` are the *data-array* coordinates.
    """

    kind: str
    i: int
    j: int


class Layout:
    """Base class; subclasses fill in the architecture specifics.

    Attributes
    ----------
    n:
        Number of data disks.
    rows:
        Elements per disk per stripe.
    n_disks:
        Total disks in the architecture.
    fault_tolerance:
        Number of arbitrary simultaneous disk failures survived.
    """

    name: str = "layout"
    n: int
    rows: int
    n_disks: int
    fault_tolerance: int

    # -- content ------------------------------------------------------
    def content(self, disk: int, row: int) -> Content:
        """What the element at ``(global disk, row)`` stores."""
        raise NotImplementedError

    def data_cell(self, i: int, j: int) -> tuple[int, int]:
        """Physical ``(disk, row)`` of data element ``a[i, j]``."""
        raise NotImplementedError

    def replica_cells(self, i: int, j: int) -> list[tuple[int, int]]:
        """Physical cells holding replicas of ``a[i, j]`` (primary excluded)."""
        return []

    def storage_efficiency(self) -> float:
        """Fraction of raw capacity that stores original data."""
        raise NotImplementedError

    # -- writes --------------------------------------------------------
    def write_plan(self, elements, strategy: str = "rmw") -> WritePlan:
        """Plan a logical write of the given data elements ``(i, j)``."""
        raise NotImplementedError

    def large_write_plan(self, j: int, strategy: str = "rmw") -> WritePlan:
        """Plan a full-row write of data row ``j``."""
        return self.write_plan([(i, j) for i in range(self.n)], strategy)

    # -- reconstruction -------------------------------------------------
    def reconstruction_plan(self, failed_disks) -> ReconstructionPlan:
        """Plan recovery of every element on the failed disks."""
        raise NotImplementedError

    def _normalize_failed(self, failed_disks) -> tuple[int, ...]:
        failed = tuple(sorted(set(failed_disks)))
        for f in failed:
            if not 0 <= f < self.n_disks:
                raise LayoutError(f"disk {f} outside architecture of {self.n_disks} disks")
        if len(failed) > self.fault_tolerance:
            raise UnrecoverableFailureError(
                f"{self.name}: {len(failed)} failures exceed tolerance "
                f"{self.fault_tolerance}"
            )
        return failed

    def all_failure_sets(self, n_failed: int) -> list[tuple[int, ...]]:
        """Every combination of ``n_failed`` distinct disks."""
        from itertools import combinations

        return [tuple(c) for c in combinations(range(self.n_disks), n_failed)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, name={self.name!r})"


# ======================================================================
# Mirror family
# ======================================================================


class MirrorLayout(Layout):
    """The mirror method (RAID 1 across arrays) under any arrangement.

    Disks ``0..n-1`` are the data array, ``n..2n-1`` the mirror array.
    With the identity arrangement this is the paper's traditional
    mirror method; with the shifted arrangement, the shifted mirror
    method of §IV.
    """

    fault_tolerance = 1

    def __init__(
        self,
        n: int,
        arrangement: Arrangement | None = None,
        name: str | None = None,
    ) -> None:
        self.arrangement = arrangement if arrangement is not None else IdentityArrangement(n)
        if self.arrangement.n != n:
            raise LayoutError(f"arrangement is for n={self.arrangement.n}, layout for n={n}")
        self.n = n
        self.rows = n
        self.geometry = StripeGeometry(n, n_mirror_arrays=1, has_parity=False)
        self.n_disks = self.geometry.n_disks
        shifted = isinstance(self.arrangement, ShiftedArrangement)
        # non-paper arrangements (e.g. the group-rotated middle point)
        # register under their own name instead of the derived default
        self.name = name if name is not None else (
            "shifted-mirror" if shifted else "mirror"
        )

    # -- content ------------------------------------------------------
    def content(self, disk: int, row: int) -> Content:
        array, local = self.geometry.locate_disk(disk)
        if array is ArrayKind.DATA:
            return Content("data", local, row)
        i, j = self.arrangement.data_location(local, row)
        return Content("replica", i, j)

    def data_cell(self, i: int, j: int) -> tuple[int, int]:
        return (i, j)

    def mirror_cell(self, i: int, j: int) -> tuple[int, int]:
        """Physical cell of the replica of ``a[i, j]``."""
        mi, mj = self.arrangement.mirror_location(i, j)
        return (self.n + mi, mj)

    def replica_cells(self, i: int, j: int) -> list[tuple[int, int]]:
        return [self.mirror_cell(i, j)]

    def storage_efficiency(self) -> float:
        return self.n / (2 * self.n)

    # -- writes --------------------------------------------------------
    def write_plan(self, elements, strategy: str = "rmw") -> WritePlan:
        plan = WritePlan()
        for i, j in elements:
            disk, row = self.data_cell(i, j)
            plan.add_write(disk, row)
            mdisk, mrow = self.mirror_cell(i, j)
            plan.add_write(mdisk, mrow)
        return plan

    # -- reconstruction -------------------------------------------------
    def reconstruction_plan(self, failed_disks) -> ReconstructionPlan:
        failed = self._normalize_failed(failed_disks)
        plan = ReconstructionPlan(failed)
        if not failed:
            return plan
        (f,) = failed
        array, local = self.geometry.locate_disk(f)
        if array is ArrayKind.DATA:
            for j in range(self.rows):
                plan.add_step((f, j), RecoveryMethod.COPY, [self.mirror_cell(local, j)])
        else:
            for mj in range(self.rows):
                i, j = self.arrangement.data_location(local, mj)
                plan.add_step((f, mj), RecoveryMethod.COPY, [self.data_cell(i, j)])
        plan.validate(self.n_disks, self.rows)
        return plan


class MirrorParityLayout(Layout):
    """The mirror method with parity under any arrangement (§II-C1, §V).

    Disks ``0..n-1`` data, ``n..2n-1`` mirror, ``2n`` parity.  The
    parity element ``c_j`` is the XOR of data row ``j`` exactly as in
    the original architecture; only the mirror array's arrangement
    changes between the traditional and shifted variants.
    """

    fault_tolerance = 2

    def __init__(self, n: int, arrangement: Arrangement | None = None) -> None:
        if n < 2:
            raise LayoutError("mirror-with-parity needs n >= 2 to survive double failures")
        self.arrangement = arrangement if arrangement is not None else IdentityArrangement(n)
        if self.arrangement.n != n:
            raise LayoutError(f"arrangement is for n={self.arrangement.n}, layout for n={n}")
        self.n = n
        self.rows = n
        self.geometry = StripeGeometry(n, n_mirror_arrays=1, has_parity=True)
        self.n_disks = self.geometry.n_disks
        shifted = isinstance(self.arrangement, ShiftedArrangement)
        self.name = "shifted-mirror-parity" if shifted else "mirror-parity"

    @property
    def parity_disk(self) -> int:
        return 2 * self.n

    # -- content ------------------------------------------------------
    def content(self, disk: int, row: int) -> Content:
        array, local = self.geometry.locate_disk(disk)
        if array is ArrayKind.DATA:
            return Content("data", local, row)
        if array is ArrayKind.MIRROR:
            i, j = self.arrangement.data_location(local, row)
            return Content("replica", i, j)
        return Content("parity", -1, row)

    def data_cell(self, i: int, j: int) -> tuple[int, int]:
        return (i, j)

    def mirror_cell(self, i: int, j: int) -> tuple[int, int]:
        mi, mj = self.arrangement.mirror_location(i, j)
        return (self.n + mi, mj)

    def parity_cell(self, j: int) -> tuple[int, int]:
        return (self.parity_disk, j)

    def replica_cells(self, i: int, j: int) -> list[tuple[int, int]]:
        return [self.mirror_cell(i, j)]

    def storage_efficiency(self) -> float:
        return self.n / (2 * self.n + 1)

    # -- writes --------------------------------------------------------
    def write_plan(self, elements, strategy: str = "rmw") -> WritePlan:
        if strategy not in ("rmw", "reconstruct"):
            raise ValueError(f"unknown parity strategy {strategy!r}")
        plan = WritePlan()
        by_row: dict[int, set[int]] = {}
        for i, j in elements:
            by_row.setdefault(j, set()).add(i)
        for j, disks in by_row.items():
            for i in disks:
                disk, row = self.data_cell(i, j)
                plan.add_write(disk, row)
                mdisk, mrow = self.mirror_cell(i, j)
                plan.add_write(mdisk, mrow)
            pd, pr = self.parity_cell(j)
            plan.add_write(pd, pr)
            if len(disks) == self.n:
                continue  # full row: parity from new data, no reads
            if strategy == "rmw":
                for i in disks:
                    plan.add_read(*self.data_cell(i, j))
                plan.add_read(pd, pr)
            else:  # reconstruct-write
                for i in range(self.n):
                    if i not in disks:
                        plan.add_read(*self.data_cell(i, j))
        return plan

    # -- reconstruction -------------------------------------------------
    def reconstruction_plan(self, failed_disks) -> ReconstructionPlan:
        failed = self._normalize_failed(failed_disks)
        plan = ReconstructionPlan(failed)
        failed_set = set(failed)
        data_failed = [f for f in failed if f < self.n]
        mirror_failed = [f - self.n for f in failed if self.n <= f < 2 * self.n]
        parity_failed = self.parity_disk in failed_set

        # Elements of data disk x whose replica sits on a failed mirror
        # disk are "doubly failed" and need the parity path.
        doubly: set[tuple[int, int]] = set()
        for x in data_failed:
            for j in range(self.rows):
                mdisk, _ = self.mirror_cell(x, j)
                if mdisk in failed_set:
                    doubly.add((x, j))

        # 1) recover data-array columns
        for x in data_failed:
            for j in range(self.rows):
                if (x, j) in doubly:
                    if parity_failed:
                        raise UnrecoverableFailureError(
                            "data element and its replica lost with parity disk failed"
                        )
                    sources = [self.data_cell(i, j) for i in range(self.n) if i != x]
                    sources.append(self.parity_cell(j))
                    plan.add_step((x, j), RecoveryMethod.XOR, sources)
                else:
                    plan.add_step((x, j), RecoveryMethod.COPY, [self.mirror_cell(x, j)])

        # 2) recover mirror-array columns (replicas of data elements)
        for m in mirror_failed:
            mdisk = self.n + m
            for mj in range(self.rows):
                i, j = self.arrangement.data_location(m, mj)
                src = self.data_cell(i, j)
                # if the source data disk also failed, its element was
                # recovered in step 1 (possibly via parity)
                plan.add_step((mdisk, mj), RecoveryMethod.COPY, [src])

        # 3) recompute the parity column if it failed
        if parity_failed:
            for j in range(self.rows):
                sources = [self.data_cell(i, j) for i in range(self.n)]
                plan.add_step(
                    (self.parity_disk, j), RecoveryMethod.RECOMPUTE, sources
                )
        plan.validate(self.n_disks, self.rows)
        return plan

    def data_recovery_read_accesses(self, failed_disks) -> int:
        """Read accesses counted the way Table I counts them.

        Table I's ``Num_Read`` covers fetching what is needed to recover
        the failed *array* elements (the user-visible data and replicas)
        — the separate full-scan that recomputes a lost parity column is
        bookkeeping, not data availability, and is excluded there.
        """
        failed = self._normalize_failed(failed_disks)
        plan = ReconstructionPlan(failed)
        full = self.reconstruction_plan(failed)
        for step in full.steps:
            if step.target[0] == self.parity_disk:
                continue
            plan.add_step(step.target, step.method, step.sources)
        return plan.num_read_accesses


class ThreeMirrorLayout(Layout):
    """The three-mirror extension (paper §VIII future work; GFS/Ceph-style).

    Two full mirror arrays give a fault tolerance of two without any
    parity computation.  The shifted variant uses the paper's
    arrangement for the first mirror array and its *inverse-shift*
    twin ``a[i, j] -> (<i - j>_n, i)`` for the second, so that each
    data disk's replicas are spread over all disks of *both* arrays
    while the two arrays never co-locate the same pair of elements.
    """

    fault_tolerance = 2

    def __init__(
        self,
        n: int,
        arrangement1: Arrangement | None = None,
        arrangement2: Arrangement | None = None,
    ) -> None:
        self.arr1 = arrangement1 if arrangement1 is not None else IdentityArrangement(n)
        self.arr2 = arrangement2 if arrangement2 is not None else IdentityArrangement(n)
        if self.arr1.n != n or self.arr2.n != n:
            raise LayoutError("arrangement sizes disagree with layout n")
        self.n = n
        self.rows = n
        self.geometry = StripeGeometry(n, n_mirror_arrays=2, has_parity=False)
        self.n_disks = self.geometry.n_disks
        ident = isinstance(self.arr1, IdentityArrangement) and isinstance(
            self.arr2, IdentityArrangement
        )
        self.name = "three-mirror" if ident else "shifted-three-mirror"

    # -- content ------------------------------------------------------
    def content(self, disk: int, row: int) -> Content:
        array, local = self.geometry.locate_disk(disk)
        if array is ArrayKind.DATA:
            return Content("data", local, row)
        arr = self.arr1 if array is ArrayKind.MIRROR else self.arr2
        i, j = arr.data_location(local, row)
        return Content("replica", i, j)

    def data_cell(self, i: int, j: int) -> tuple[int, int]:
        return (i, j)

    def mirror_cell(self, i: int, j: int, which: int) -> tuple[int, int]:
        arr = self.arr1 if which == 0 else self.arr2
        mi, mj = arr.mirror_location(i, j)
        return (self.n * (1 + which) + mi, mj)

    def replica_cells(self, i: int, j: int) -> list[tuple[int, int]]:
        return [self.mirror_cell(i, j, 0), self.mirror_cell(i, j, 1)]

    def storage_efficiency(self) -> float:
        return 1.0 / 3.0

    # -- writes --------------------------------------------------------
    def write_plan(self, elements, strategy: str = "rmw") -> WritePlan:
        plan = WritePlan()
        for i, j in elements:
            plan.add_write(*self.data_cell(i, j))
            plan.add_write(*self.mirror_cell(i, j, 0))
            plan.add_write(*self.mirror_cell(i, j, 1))
        return plan

    # -- reconstruction -------------------------------------------------
    def _copies_of(self, i: int, j: int) -> list[tuple[int, int]]:
        return [self.data_cell(i, j), self.mirror_cell(i, j, 0), self.mirror_cell(i, j, 1)]

    def reconstruction_plan(self, failed_disks) -> ReconstructionPlan:
        failed = self._normalize_failed(failed_disks)
        plan = ReconstructionPlan(failed)
        failed_set = set(failed)
        # Greedy source choice: prefer the surviving copy on the disk
        # with the fewest reads so far, to keep the load balanced.
        load: dict[int, int] = {}
        for f in failed:
            for row in range(self.rows):
                c = self.content(f, row)
                copies = [
                    cell
                    for cell in self._copies_of(c.i, c.j)
                    if cell[0] not in failed_set
                ]
                if not copies:
                    raise UnrecoverableFailureError(
                        f"all three copies of a[{c.i},{c.j}] lost"
                    )
                already = {s.sources[0] for s in plan.steps}
                fresh = [cell for cell in copies if cell in already] or copies
                src = min(fresh, key=lambda cell: load.get(cell[0], 0))
                if src not in already:
                    load[src[0]] = load.get(src[0], 0) + 1
                plan.add_step((f, row), RecoveryMethod.COPY, [src])
        plan.validate(self.n_disks, self.rows)
        return plan


class DeclusteredMirrorLayout(Layout):
    """Parity-declustered mirroring over a pooled ``2n``-disk array.

    The strongest mirror-family competitor to the paper's shifted
    arrangement (Dau et al.'s t-design placements, specialised to
    replication): there is **no** data/mirror array split.  All ``2n``
    disks hold a mix of primaries and replicas, placed by the blocks of
    a resolvable 2-design — concretely, the round-robin 1-factorization
    of the complete graph ``K_{2n}`` (the "circle method").  Row ``j``
    of the stripe is round ``j`` of the tournament: the ``2n`` disks
    split into ``n`` disjoint pairs, and pair ``i`` stores data element
    ``a[i, j]`` on one disk with its replica on the other.

    Because every pair of disks meets exactly once across the
    ``2n - 1`` rounds, the stripe uses all of them as rows.  Rebuilding
    any single disk then copies exactly **one** element from **every**
    survivor — the uniform rebuild load that defines parity
    declustering, and a strictly stronger spread guarantee than the
    shifted arrangement's P1/P2 (which balance only within one array).
    The price is addressing: data coordinates ``(i, j)`` index pairs
    and rounds, not physical columns, so sequential large writes touch
    ``2n`` disks instead of pipelining down two.
    """

    fault_tolerance = 1

    def __init__(self, n: int) -> None:
        if n < 2:
            raise LayoutError("declustered mirroring needs n >= 2 pairs per round")
        self.n = n
        self.n_disks = 2 * n
        self.rows = 2 * n - 1
        self.name = "declustered-mirror"
        m = self.n_disks - 1  # rounds in the 1-factorization
        #: (disk, row) -> (pair index, is_primary, partner disk)
        self._cells: dict[tuple[int, int], tuple[int, bool, int]] = {}
        #: (pair index, row) -> (primary disk, replica disk)
        self._pairs: dict[tuple[int, int], tuple[int, int]] = {}
        for j in range(self.rows):
            round_pairs = [(m, j)]
            round_pairs += [((j + k) % m, (j - k) % m) for k in range(1, n)]
            for i, (u, v) in enumerate(round_pairs):
                u, v = min(u, v), max(u, v)
                # alternate which side is primary so each disk holds a
                # deterministic near-even mix of data and replicas
                primary, replica = (u, v) if (i + j) % 2 == 0 else (v, u)
                self._pairs[(i, j)] = (primary, replica)
                self._cells[(primary, j)] = (i, True, replica)
                self._cells[(replica, j)] = (i, False, primary)

    # -- content ------------------------------------------------------
    def content(self, disk: int, row: int) -> Content:
        i, is_primary, _ = self._cells[(disk, row)]
        return Content("data" if is_primary else "replica", i, row)

    def data_cell(self, i: int, j: int) -> tuple[int, int]:
        try:
            primary, _ = self._pairs[(i, j)]
        except KeyError:
            raise LayoutError(f"data cell ({i}, {j}) outside stripe") from None
        return (primary, j)

    def replica_cells(self, i: int, j: int) -> list[tuple[int, int]]:
        _, replica = self._pairs[(i, j)]
        return [(replica, j)]

    def storage_efficiency(self) -> float:
        return 0.5

    # -- writes --------------------------------------------------------
    def write_plan(self, elements, strategy: str = "rmw") -> WritePlan:
        plan = WritePlan()
        for i, j in elements:
            plan.add_write(*self.data_cell(i, j))
            plan.add_write(*self.replica_cells(i, j)[0])
        return plan

    # -- reconstruction -------------------------------------------------
    def reconstruction_plan(self, failed_disks) -> ReconstructionPlan:
        failed = self._normalize_failed(failed_disks)
        plan = ReconstructionPlan(failed)
        if not failed:
            return plan
        (f,) = failed
        for row in range(self.rows):
            _, _, partner = self._cells[(f, row)]
            plan.add_step((f, row), RecoveryMethod.COPY, [(partner, row)])
        plan.validate(self.n_disks, self.rows)
        return plan

    def rebuild_read_loads(self, failed_disk: int) -> dict[int, int]:
        """Elements read per survivor when rebuilding ``failed_disk``.

        The declustering invariant (pinned by a property test): every
        survivor appears with load exactly 1.
        """
        return self.reconstruction_plan([failed_disk]).reads_per_disk()


# ======================================================================
# Parity baselines
# ======================================================================


class RAID5Layout(Layout):
    """RAID 5 with a dedicated parity disk, one stripe of ``n`` rows.

    (Rotation of the parity disk across stripes is handled at the stack
    level, as the paper notes; within one stripe the parity column is
    fixed.)
    """

    fault_tolerance = 1

    def __init__(self, n: int) -> None:
        if n < 2:
            raise LayoutError("RAID 5 needs at least two data disks")
        self.n = n
        self.rows = n
        self.n_disks = n + 1
        self.name = "raid5"

    @property
    def parity_disk(self) -> int:
        return self.n

    def content(self, disk: int, row: int) -> Content:
        if disk < self.n:
            return Content("data", disk, row)
        return Content("parity", -1, row)

    def data_cell(self, i: int, j: int) -> tuple[int, int]:
        return (i, j)

    def parity_cell(self, j: int) -> tuple[int, int]:
        return (self.parity_disk, j)

    def storage_efficiency(self) -> float:
        return self.n / (self.n + 1)

    def write_plan(self, elements, strategy: str = "rmw") -> WritePlan:
        plan = WritePlan()
        by_row: dict[int, set[int]] = {}
        for i, j in elements:
            by_row.setdefault(j, set()).add(i)
        for j, disks in by_row.items():
            for i in disks:
                plan.add_write(i, j)
            plan.add_write(*self.parity_cell(j))
            if len(disks) == self.n:
                continue
            if strategy == "rmw":
                for i in disks:
                    plan.add_read(i, j)
                plan.add_read(*self.parity_cell(j))
            else:
                for i in range(self.n):
                    if i not in disks:
                        plan.add_read(i, j)
        return plan

    def reconstruction_plan(self, failed_disks) -> ReconstructionPlan:
        failed = self._normalize_failed(failed_disks)
        plan = ReconstructionPlan(failed)
        if not failed:
            return plan
        (f,) = failed
        for j in range(self.rows):
            if f == self.parity_disk:
                sources = [self.data_cell(i, j) for i in range(self.n)]
                plan.add_step((f, j), RecoveryMethod.RECOMPUTE, sources)
            else:
                sources = [self.data_cell(i, j) for i in range(self.n) if i != f]
                sources.append(self.parity_cell(j))
                plan.add_step((f, j), RecoveryMethod.XOR, sources)
        plan.validate(self.n_disks, self.rows)
        return plan


class RAID6Layout(Layout):
    """RAID 6 backed by EVENODD or RDP with the "shorten" method (§II-C2).

    ``n`` data disks plus P and Q parity disks.  The stripe has
    ``p - 1`` rows where ``p`` is the code's prime, chosen as the
    smallest prime admitting ``n`` data columns — exactly the shorten
    construction the paper's Fig. 7 references for its RAID 6 curve.

    In (nearly) every failure situation all intact elements must be
    read, which is why its reconstruction availability loses so badly
    to the shifted mirror methods.
    """

    fault_tolerance = 2

    def __init__(self, n: int, code: str = "rdp") -> None:
        if n < 2:
            raise LayoutError("RAID 6 needs at least two data disks")
        if code not in ("evenodd", "rdp"):
            raise ValueError(f"unknown RAID 6 code {code!r}")
        self.n = n
        self.code_name = code
        if code == "evenodd":
            self.p = smallest_prime_at_least(max(n, 3))
        else:  # RDP admits p - 1 data columns
            self.p = smallest_prime_at_least(max(n + 1, 3))
        self.rows = self.p - 1
        self.n_disks = n + 2
        self.name = f"raid6-{code}"

    @property
    def p_disk(self) -> int:
        return self.n

    @property
    def q_disk(self) -> int:
        return self.n + 1

    def content(self, disk: int, row: int) -> Content:
        if disk < self.n:
            return Content("data", disk, row)
        if disk == self.p_disk:
            return Content("parity", -1, row)
        return Content("q_parity", -1, row)

    def data_cell(self, i: int, j: int) -> tuple[int, int]:
        return (i, j)

    def storage_efficiency(self) -> float:
        return self.n / (self.n + 2)

    def q_rows_updated(self, i: int, j: int) -> list[int]:
        """Q elements a single-element modification of ``a[i, j]`` dirties.

        This is where RAID 6 loses update optimality (§II-C2):

        * **EVENODD** — the element's own diagonal ``<i + j>_p`` gets a
          new Q, *unless* the element lies on the special diagonal
          ``p - 1``, in which case the adjuster S changes and **every**
          Q element must be rewritten;
        * **RDP** — diagonals run over data *and* row parity, so the
          update dirties the element's diagonal ``<i + j>_p`` and, via
          the changed row parity ``P_j`` (which sits in column
          ``p - 1``), the diagonal ``<j - 1>_p`` as well (each skipped
          if it is the parity-less diagonal ``p - 1``).
        """
        p = self.p
        own = (i + j) % p
        if self.code_name == "evenodd":
            if own == p - 1:
                return list(range(self.rows))  # the adjuster cascade
            return [own]
        dirty = {own, (j + p - 1) % p}
        return sorted(d for d in dirty if d != p - 1)

    def write_plan(self, elements, strategy: str = "rmw") -> WritePlan:
        """Writes touch both parity disks; sub-row writes read first.

        The RAID 6 codes are *not* update-optimal (§II-C2): see
        :meth:`q_rows_updated` for the per-code Q fan-out.  RMW reads
        the old data elements plus the affected old parity elements.
        """
        plan = WritePlan()
        by_row: dict[int, set[int]] = {}
        for i, j in elements:
            if not 0 <= j < self.rows:
                raise LayoutError(f"row {j} outside stripe of {self.rows} rows")
            by_row.setdefault(j, set()).add(i)
        full_stripe = all(
            len(by_row.get(j, ())) == self.n for j in range(self.rows)
        )
        for j, disks in by_row.items():
            for i in disks:
                plan.add_write(i, j)
            plan.add_write(self.p_disk, j)
            for i in disks:
                for d in self.q_rows_updated(i, j):
                    plan.add_write(self.q_disk, d)
            if full_stripe:
                continue
            if strategy == "rmw":
                for i in disks:
                    plan.add_read(i, j)
                plan.add_read(self.p_disk, j)
                for i in disks:
                    for d in self.q_rows_updated(i, j):
                        plan.add_read(self.q_disk, d)
            else:
                for i in range(self.n):
                    if i not in disks:
                        plan.add_read(i, j)
        return plan

    def reconstruction_plan(self, failed_disks) -> ReconstructionPlan:
        failed = self._normalize_failed(failed_disks)
        plan = ReconstructionPlan(failed)
        if not failed:
            return plan
        failed_set = set(failed)
        single_data = len(failed) == 1 and failed[0] < self.n
        only_q = failed == (self.q_disk,)
        only_p = failed == (self.p_disk,)
        if single_data:
            # row recovery via P, the RAID 5 path
            f = failed[0]
            for j in range(self.rows):
                sources = [self.data_cell(i, j) for i in range(self.n) if i != f]
                sources.append((self.p_disk, j))
                plan.add_step((f, j), RecoveryMethod.XOR, sources)
        elif only_p or only_q:
            # parity regeneration runs the encoder over all the data
            disk = self.p_disk if only_p else self.q_disk
            sources = [
                self.data_cell(i, j) for i in range(self.n) for j in range(self.rows)
            ]
            for j in range(self.rows):
                plan.add_step((disk, j), RecoveryMethod.CODE, sources)
        else:
            # double failure: the generic decode reads *every* intact
            # element — the paper's core criticism of RAID 6.
            intact_cells = [
                (d, r)
                for d in range(self.n_disks)
                if d not in failed_set
                for r in range(self.rows)
            ]
            for f in failed:
                for r in range(self.rows):
                    plan.add_step((f, r), RecoveryMethod.CODE, intact_cells)
        plan.validate(self.n_disks, self.rows)
        return plan


class RebuildOptimalRDPLayout(RAID6Layout):
    """RDP with minimum-read single-disk rebuild (Wang/Tamo/Bruck spirit).

    Placement and encoding are *identical* to ``RAID6Layout(n, "rdp")``
    — same stripe geometry, same P and Q columns, bit-for-bit the same
    content — so this layout isolates exactly one variable: the
    **recovery plan** for a single failed data disk.

    Plain RDP recovers every lost element over its row (each read: the
    surviving row + P), touching every intact data element.  But each
    lost element also lies on one RDP diagonal, and row and diagonal
    parity sets *overlap*: choosing per lost element between its row
    equation and its diagonal equation, so that the chosen source sets
    share as many elements as possible, minimises the total elements
    read.  That is the minimum-rebuild-access idea of Xiang et al.
    (hybrid RDP recovery) and the Wang/Tamo/Bruck minimum-access MDS
    constructions; for an unshortened stripe it reads ~3/4 of what the
    row-only plan reads.

    The planner searches all ``2^(p-1)`` row/diagonal assignments
    exhaustively — exact, deterministic (lowest assignment mask wins
    ties) and cheap at the stripe sizes this repo simulates; stripes
    beyond :attr:`SEARCH_ROWS_MAX` rows fall back to the row-only plan.
    Double failures and parity-disk failures use the plain RDP paths
    unchanged.
    """

    #: exhaustive-search bound: plans above this many rows use row-only
    SEARCH_ROWS_MAX = 16

    def __init__(self, n: int) -> None:
        super().__init__(n, "rdp")
        self.name = "rebuild-optimal-rdp"

    # -- recovery equations ---------------------------------------------
    def _row_sources(self, f: int, t: int) -> list[tuple[int, int]]:
        """The row equation for lost cell ``(f, t)``: row survivors + P."""
        sources = [self.data_cell(i, t) for i in range(self.n) if i != f]
        sources.append((self.p_disk, t))
        return sources

    def _diagonal_sources(self, f: int, t: int) -> list[tuple[int, int]] | None:
        """The diagonal equation for ``(f, t)``, or ``None`` on the
        parity-less diagonal ``p - 1``.

        RDP diagonal ``d`` holds the cells ``(t', col)`` with
        ``<t' + col>_p == d`` over the first ``p`` code columns (data,
        virtual zeros, and the row-parity column ``p - 1``), XORed into
        ``Q[d]``.  Virtual shortened columns and the imaginary zero row
        contribute nothing and are skipped.
        """
        p = self.p
        d = (t + f) % p
        if d == p - 1:
            return None
        sources: list[tuple[int, int]] = [(self.q_disk, d)]
        for col in range(p):
            if col == f:
                continue
            t2 = (d - col) % p
            if t2 == p - 1:
                continue  # imaginary zero row
            if col == p - 1:
                sources.append((self.p_disk, t2))
            elif col < self.n:
                sources.append(self.data_cell(col, t2))
            # columns n .. p-2 are virtual zeros of the shortened code
        return sources

    # -- reconstruction -------------------------------------------------
    def reconstruction_plan(self, failed_disks) -> ReconstructionPlan:
        failed = self._normalize_failed(failed_disks)
        if (
            len(failed) != 1
            or failed[0] >= self.n
            or self.rows > self.SEARCH_ROWS_MAX
        ):
            return super().reconstruction_plan(failed_disks)
        (f,) = failed
        row_sets = [self._row_sources(f, t) for t in range(self.rows)]
        diag_sets = [self._diagonal_sources(f, t) for t in range(self.rows)]
        free = [t for t in range(self.rows) if diag_sets[t] is not None]
        free_bit = {t: b for b, t in enumerate(free)}
        best_mask, best_count = 0, None
        for mask in range(1 << len(free)):
            chosen: set[tuple[int, int]] = set()
            for t in range(self.rows):
                use_diag = t in free_bit and (mask >> free_bit[t]) & 1
                chosen.update(diag_sets[t] if use_diag else row_sets[t])
            if best_count is None or len(chosen) < best_count:
                best_mask, best_count = mask, len(chosen)
        plan = ReconstructionPlan(failed)
        for t in range(self.rows):
            use_diag = t in free_bit and (best_mask >> free_bit[t]) & 1
            plan.add_step(
                (f, t), RecoveryMethod.XOR, diag_sets[t] if use_diag else row_sets[t]
            )
        plan.validate(self.n_disks, self.rows)
        return plan

    def rebuild_elements_read(self, failed_disk: int = 0) -> int:
        """Distinct elements the single-disk rebuild plan reads."""
        return self.reconstruction_plan([failed_disk]).total_elements_read


class XCodeLayout(Layout):
    """Vertical RAID 6 via X-Code (Xu & Bruck) — the §II-C2 counterpoint.

    Exactly ``p`` disks (``p`` prime >= 5), each holding ``p`` elements
    per stripe: rows ``0 .. p-3`` are data, row ``p-2`` diagonal parity
    and row ``p-1`` anti-diagonal parity.  Data coordinates follow the
    usual convention: ``a[i, j]`` is data disk ``i``'s ``j``-th data
    element (so ``j < p - 2``).

    Two contrasts with the horizontal codes matter here:

    * a single-element write updates exactly 3 elements on 3 distinct
      disks — the theoretical optimum the paper says horizontal RAID 6
      cannot reach;
    * parity lives on *every* disk, so any failure loses parity too and
      every reconstruction is a full-stripe decode, like RAID 6 — and
      the geometry cannot be shortened (no virtual zero columns), so
      ``n == p`` always.
    """

    fault_tolerance = 2

    def __init__(self, p: int) -> None:
        from ..codes.xcode import XCode

        self.code = XCode(p)  # validates primality and p >= 5
        self.p = p
        self.n = p
        self.rows = p
        self.data_rows = p - 2
        self.n_disks = p
        self.name = "xcode"

    # -- content ------------------------------------------------------
    def content(self, disk: int, row: int) -> Content:
        if row < self.data_rows:
            return Content("data", disk, row)
        if row == self.p - 2:
            return Content("parity", -1, disk)
        return Content("q_parity", -1, disk)

    def data_cell(self, i: int, j: int) -> tuple[int, int]:
        if not 0 <= j < self.data_rows:
            raise LayoutError(f"data row {j} outside {self.data_rows} data rows")
        return (i, j)

    def parity_cells_of(self, i: int, j: int) -> list[tuple[int, int]]:
        """The diagonal and anti-diagonal parity cells covering ``a[i, j]``."""
        self.data_cell(i, j)  # bounds check
        diag_col = (i - j - 2) % self.p
        anti_col = (i + j + 2) % self.p
        return [(diag_col, self.p - 2), (anti_col, self.p - 1)]

    def storage_efficiency(self) -> float:
        return (self.p - 2) / self.p

    # -- writes --------------------------------------------------------
    def write_plan(self, elements, strategy: str = "rmw") -> WritePlan:
        """Update-optimal: element + two parity cells, all on distinct disks."""
        plan = WritePlan()
        for i, j in elements:
            plan.add_write(*self.data_cell(i, j))
            for cell in self.parity_cells_of(i, j):
                plan.add_write(*cell)
            if strategy == "rmw":
                plan.add_read(*self.data_cell(i, j))
                for cell in self.parity_cells_of(i, j):
                    plan.add_read(*cell)
        return plan

    def large_write_plan(self, j: int, strategy: str = "rmw") -> WritePlan:
        """A full data row: n data cells + their 2n parity cells."""
        plan = WritePlan()
        for i in range(self.n):
            plan.add_write(*self.data_cell(i, j))
            for cell in self.parity_cells_of(i, j):
                plan.add_write(*cell)
        return plan

    # -- reconstruction -------------------------------------------------
    def reconstruction_plan(self, failed_disks) -> ReconstructionPlan:
        failed = self._normalize_failed(failed_disks)
        plan = ReconstructionPlan(failed)
        if not failed:
            return plan
        failed_set = set(failed)
        # vertical code: every reconstruction is a stripe decode over
        # all intact columns (parity is lost along with data)
        intact_cells = [
            (d, r)
            for d in range(self.n_disks)
            if d not in failed_set
            for r in range(self.rows)
        ]
        for f in failed:
            for r in range(self.rows):
                plan.add_step((f, r), RecoveryMethod.CODE, intact_cells)
        plan.validate(self.n_disks, self.rows)
        return plan


# ======================================================================
# Convenience constructors (the paper's four protagonists)
# ======================================================================


def traditional_mirror(n: int) -> MirrorLayout:
    """The traditional mirror method (§II-B)."""
    return MirrorLayout(n, IdentityArrangement(n))


def shifted_mirror(n: int) -> MirrorLayout:
    """The shifted mirror method (§IV)."""
    return MirrorLayout(n, ShiftedArrangement(n))


def traditional_mirror_parity(n: int) -> MirrorParityLayout:
    """The traditional mirror method with parity (§II-C1)."""
    return MirrorParityLayout(n, IdentityArrangement(n))


def shifted_mirror_parity(n: int) -> MirrorParityLayout:
    """The shifted mirror method with parity (§V)."""
    return MirrorParityLayout(n, ShiftedArrangement(n))
