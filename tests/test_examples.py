"""Smoke tests: every shipped example runs clean and says what it should."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.slow
def test_quickstart():
    out = _run("quickstart.py")
    assert "1 parallel read access" in out
    assert "content verified: True" in out


@pytest.mark.slow
def test_layout_explorer():
    out = _run("layout_explorer.py", "3")
    assert "iterate 5" in out
    assert "Equally powerful to the paper's shifted arrangement: True" in out


@pytest.mark.slow
def test_capacity_planner():
    out = _run("capacity_planner.py", "5")
    assert "shifted-mirror-parity" in out
    assert "xcode" in out  # prime width includes the vertical code


@pytest.mark.slow
def test_reliability_study():
    out = _run("reliability_study.py")
    assert "MTTDL gain" in out


@pytest.mark.slow
def test_degraded_service():
    out = _run("degraded_service.py")
    assert "verified (old data + degraded writes): True" in out
    assert "full redundancy restored: True" in out


@pytest.mark.slow
def test_online_video_server():
    out = _run("online_video_server.py")
    assert "shifted mirror" in out
    assert "viewer latency" in out


@pytest.mark.slow
def test_fault_campaign():
    out = _run("fault_campaign.py")
    assert "clean rebuild of disk 0" in out
    assert "availability delta (shifted - traditional):" in out
    assert "rebuild speedup" in out


@pytest.mark.slow
def test_serve_slo():
    out = _run("serve_slo.py")
    assert "Full-speed rebuild (throttle none):" in out
    assert "Token-bucket rebuild (5 IOs/s) (throttle token:5):" in out
    assert "p99 ratio (trad/shifted):" in out
    assert "shrinks the user p99" in out


@pytest.mark.slow
def test_nemesis_campaign():
    out = _run("nemesis_campaign.py", "2")
    assert "the daemon drew" in out
    assert "active-fault timeline" in out
    assert "nemesis invariant holds" in out
    assert "availability delta (shifted - traditional):" in out
