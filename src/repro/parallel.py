"""Process-pool fan-out for campaigns, sweeps and experiment batteries.

The simulator is deterministic and CPU-bound pure Python, so the way to
"run as fast as the hardware allows" is to fan independent simulation
points — campaign seeds, experiment sweep points, failure cases — out
across processes.  This module is the one place that owns that policy:

* :func:`resolve_jobs` — turn a CLI ``--jobs`` value into a worker
  count (``None``/1 = serial, 0 or negative = all cores);
* :func:`parallel_map` — order-preserving map over a process pool that
  degrades to a plain loop when one worker (or one item) makes a pool
  pointless;
* :class:`WorkerPool` — a *persistent* pool reused across fan-out
  calls (one process spawn per CLI invocation instead of one per
  sweep), optionally exporting film content to every worker through
  ``multiprocessing.shared_memory`` so payload generation happens once
  per machine.

Results are returned **in submission order** no matter which worker
finishes first, so callers get order-independent merging for free — a
parallel run is indistinguishable from the serial one provided the
work function is deterministic.  Every fan-out entry point in this
repo derives per-item randomness from
:class:`numpy.random.SeedSequence` children (never from shared global
state), which is what makes that guarantee hold bit-for-bit; see
``docs/performance.md``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from .obs import default_registry

__all__ = ["resolve_jobs", "parallel_map", "WorkerPool"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int | None) -> int:
    """Worker count for a ``--jobs`` value.

    ``None`` or ``1`` mean serial; ``0`` and negative values mean "use
    every core" (the ``make -j`` convention); anything else is taken
    literally.
    """
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    chunksize: int = 1,
    pool: "WorkerPool | None" = None,
    on_result: Callable[[R], None] | None = None,
) -> list[R]:
    """``[fn(x) for x in items]``, fanned out across processes.

    ``fn`` and every item must be picklable (module-level functions and
    plain data).  With ``jobs`` resolving to 1 — or fewer than two
    items — no pool is created and the map runs inline, which keeps
    tracebacks readable and makes serial-vs-parallel comparisons a pure
    scheduling experiment.

    Passing ``pool`` (a :class:`WorkerPool`) reuses its long-lived
    workers instead of spawning a fresh executor for this one call;
    ``jobs`` is then ignored — the pool's size governs.

    ``on_result`` is invoked in the parent, in submission order, as
    each result becomes available — this is how campaign sweeps merge
    worker metrics snapshots mid-flight (for the live ``/metrics``
    endpoint) instead of at the end.  Because results are consumed in
    submission order, the callback sees the exact sequence a serial
    run would produce, so deterministic merges stay deterministic.

    Results always come back in item order; a worker raising propagates
    the exception to the caller after the pool shuts down.
    """
    if pool is not None:
        return pool.map(fn, items, chunksize=chunksize, on_result=on_result)
    work: Sequence[T] = list(items)
    n_workers = min(resolve_jobs(jobs), len(work))
    if n_workers <= 1 or len(work) <= 1:
        return _observed_map(
            lambda: _collect(map(fn, work), on_result), "serial", len(work)
        )
    with ProcessPoolExecutor(max_workers=n_workers) as pool_:
        return _observed_map(
            lambda: _collect(
                pool_.map(fn, work, chunksize=chunksize), on_result
            ),
            "ephemeral",
            len(work),
        )


def _collect(results: Iterable[R], on_result: Callable[[R], None] | None) -> list[R]:
    """Drain a result iterator, surfacing each item as it completes."""
    if on_result is None:
        return list(results)
    out: list[R] = []
    for result in results:
        out.append(result)
        on_result(result)
    return out


def _observed_map(run: Callable[[], list], mode: str, n_items: int) -> list:
    """Run one fan-out call, recording wall time and item count.

    One registry lookup per *fan-out call* (never per item), and a
    straight tail call when observability is off.
    """
    reg = default_registry()
    if not reg.enabled:
        return run()
    t0 = time.perf_counter()
    results = run()
    reg.histogram(
        "pool.map_wall_s", "wall-clock seconds per fan-out call"
    ).labels(mode=mode).observe(time.perf_counter() - t0)
    reg.counter("pool.items", "items mapped across fan-out calls").labels(
        mode=mode
    ).inc(n_items)
    return results


def _attach_films(specs: tuple) -> None:
    """Pool initializer: map the parent's shared film blocks read-only."""
    from .workloads.film import attach_shared_film

    for seed, payload_bytes, name, shape in specs:
        attach_shared_film(seed, payload_bytes, name, shape)


class WorkerPool:
    """A persistent process pool spanning many fan-out calls.

    ``parallel_map`` spawns (and tears down) a fresh
    :class:`~concurrent.futures.ProcessPoolExecutor` per call; across a
    campaign sweep or an experiment battery that re-pays worker startup
    and module import once per sweep.  A ``WorkerPool`` pays it once:
    the executor is created lazily on the first real fan-out and reused
    until :meth:`close` (it is also a context manager).

    :meth:`share_film` additionally materialises a film's payloads into
    a ``multiprocessing.shared_memory`` block exported to every worker
    through the pool initializer, so content generation happens once
    per machine instead of once per process — the bytes served are
    identical to on-demand generation, preserving bit-identity between
    pooled, per-call-parallel and serial runs.

    Like :func:`parallel_map`, a pool sized 1 (or a single-item map)
    runs inline — a ``WorkerPool(jobs=1)`` is a zero-cost stand-in.
    """

    def __init__(self, jobs: int | None = None) -> None:
        self.n_workers = resolve_jobs(jobs)
        self._executor: ProcessPoolExecutor | None = None
        self._films: list[tuple[int, int, str, tuple]] = []
        self._shm: list = []
        self._closed = False
        default_registry().gauge(
            "pool.n_workers", "size of the most recently created worker pool"
        ).labels().set(self.n_workers)

    # ------------------------------------------------------------------
    def share_film(
        self,
        seed: int,
        payload_bytes: int,
        n_stripes: int,
        n_i: int,
        n_j: int,
    ) -> None:
        """Materialise one film block and export it to every worker.

        The parent process also serves lookups from the block (see
        :func:`repro.workloads.film.register_shared_film`).  Calling
        this after workers have started recycles the executor so new
        workers attach the block at spawn.
        """
        from multiprocessing import shared_memory

        import numpy as np

        from .workloads import film as film_mod

        shape = (n_stripes, n_i, n_j, payload_bytes)
        size = int(np.prod(shape))
        if size <= 0:
            return
        shm = shared_memory.SharedMemory(create=True, size=size)
        default_registry().counter(
            "pool.shared_film_bytes", "bytes exported to workers via shared memory"
        ).labels().inc(size)
        block = np.ndarray(shape, dtype=np.uint8, buffer=shm.buf)
        film_mod.build_film_block(seed, payload_bytes, n_stripes, n_i, n_j, out=block)
        film_mod.register_shared_film(seed, payload_bytes, block)
        self._shm.append((seed, payload_bytes, shm))
        self._films.append((seed, payload_bytes, shm.name, shape))
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        chunksize: int = 1,
        on_result: Callable[[R], None] | None = None,
    ) -> list[R]:
        """Order-preserving map on the persistent workers.

        Same contract as :func:`parallel_map` (including the
        ``on_result`` mid-flight callback); the pool stays warm
        afterwards for the next call.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        work: Sequence[T] = list(items)
        if self.n_workers <= 1 or len(work) <= 1:
            return _observed_map(
                lambda: _collect(map(fn, work), on_result), "pooled", len(work)
            )
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_attach_films if self._films else None,
                initargs=(tuple(self._films),) if self._films else (),
            )
        executor = self._executor
        return _observed_map(
            lambda: _collect(
                executor.map(fn, work, chunksize=chunksize), on_result
            ),
            "pooled",
            len(work),
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down and release the shared-memory blocks."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        from .workloads import film as film_mod

        for seed, payload_bytes, shm in self._shm:
            film_mod.unregister_shared_film(seed, payload_bytes)
            shm.close()
            shm.unlink()
        self._shm.clear()
        self._films.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
