"""Workload JSONL persistence: roundtrips and malformed-input handling."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.workloads.generator import (
    UserRead,
    WriteOp,
    random_large_writes,
    user_read_stream,
)
from repro.workloads.persistence import (
    load_user_reads,
    load_write_ops,
    save_user_reads,
    save_write_ops,
)


def test_write_ops_roundtrip_file(tmp_path):
    ops = random_large_writes(4, 6, n_ops=25, rng=np.random.default_rng(1))
    path = tmp_path / "ops.jsonl"
    assert save_write_ops(ops, str(path)) == 25
    assert load_write_ops(str(path)) == ops


def test_write_ops_roundtrip_stream():
    ops = [WriteOp(0, ((0, 0),)), WriteOp(3, ((1, 2), (2, 2)))]
    buf = io.StringIO()
    save_write_ops(ops, buf)
    buf.seek(0)
    assert load_write_ops(buf) == ops


def test_user_reads_roundtrip(tmp_path):
    reads = user_read_stream(4, 6, duration_s=1.0, rate_per_s=40, rng=np.random.default_rng(2))
    path = tmp_path / "reads.jsonl"
    save_user_reads(reads, str(path))
    assert load_user_reads(str(path)) == reads


def test_loader_resorts_by_time():
    buf = io.StringIO(
        '{"time": 2.0, "stripe": 0, "i": 0, "j": 0}\n'
        '{"time": 1.0, "stripe": 0, "i": 1, "j": 1}\n'
    )
    reads = load_user_reads(buf)
    assert [r.time for r in reads] == [1.0, 2.0]


def test_blank_lines_ignored():
    buf = io.StringIO('\n{"stripe": 1, "elements": [[0, 0]]}\n\n')
    assert load_write_ops(buf) == [WriteOp(1, ((0, 0),))]


def test_malformed_write_op_rejected_with_line_number():
    buf = io.StringIO('{"stripe": 1}\n')
    with pytest.raises(ValueError, match="line 1"):
        load_write_ops(buf)


def test_empty_elements_rejected():
    buf = io.StringIO('{"stripe": 1, "elements": []}\n')
    with pytest.raises(ValueError, match="no elements"):
        load_write_ops(buf)


def test_malformed_user_read_rejected():
    buf = io.StringIO('{"time": "soon", "stripe": 0, "i": 0, "j": 0}\n')
    # "soon" float()s to an error
    with pytest.raises(ValueError):
        load_user_reads(buf)


def test_loaded_workload_drives_controller(tmp_path):
    """A persisted workload replays identically through the harness."""
    from repro.core.layouts import shifted_mirror
    from repro.raidsim.controller import RaidController

    ops = random_large_writes(3, 4, n_ops=10, rng=np.random.default_rng(3))
    path = tmp_path / "w.jsonl"
    save_write_ops(ops, str(path))
    replay = load_write_ops(str(path))

    def run(workload):
        ctrl = RaidController(shifted_mirror(3), n_stripes=4, payload_bytes=8)
        res = ctrl.run_write_workload(list(workload), rng=np.random.default_rng(9))
        return res.makespan_s, res.bytes_written

    assert run(ops) == run(replay)


def test_user_read_frozen_equality():
    assert UserRead(1.0, 2, 3, 4) == UserRead(1.0, 2, 3, 4)
