"""Microbenchmarks of the simulation substrate itself.

Keeps the harness honest about its own cost: event-engine request
throughput, plan generation rates, and the per-failure-case cost of the
Fig. 9 driver.  Regressions here inflate every experiment's wall time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.layouts import shifted_mirror_parity
from repro.disksim.array import ElementArray
from repro.disksim.disk import DiskParameters
from repro.disksim.request import IOKind
from repro.disksim.scheduler import ElevatorScheduler, FIFOScheduler
from repro.raidsim.availability import measure_case


def _drive(n_requests: int, scheduler_factory) -> None:
    arr = ElementArray(
        8, 4 * 1024 * 1024, DiskParameters.savvio_10k3(), scheduler_factory
    )
    rng = np.random.default_rng(0)
    for _ in range(n_requests):
        arr.submit(
            arr.element_request(
                int(rng.integers(0, 8)), int(rng.integers(0, 512)), IOKind.READ
            )
        )
    arr.run()


@pytest.mark.parametrize("scheduler", [FIFOScheduler, ElevatorScheduler])
def test_bench_engine_request_throughput(benchmark, scheduler):
    benchmark(_drive, 2000, scheduler)


def test_bench_plan_generation_rate(benchmark):
    layout = shifted_mirror_parity(7)

    def plans():
        for failed in layout.all_failure_sets(2):
            layout.reconstruction_plan(failed)

    benchmark(plans)


def test_bench_fig9_single_case_cost(benchmark):
    """One measured failure case, the Fig. 9(b) inner loop."""
    benchmark.pedantic(
        lambda: measure_case(shifted_mirror_parity(5), (0, 7), n_stripes=12),
        rounds=3,
        iterations=1,
    )
