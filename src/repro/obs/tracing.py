"""Span tracing with chrome://tracing ("Trace Event Format") export.

A :class:`Tracer` collects timestamped spans — explicit
``complete(name, ts, dur)`` records, ``begin``/``end`` pairs for
callback-driven code like the event loop, and a ``span(...)`` context
manager for straight-line code.  Timestamps are *simulated seconds*
(any monotone float works; wall-clock tracers pass their own clock).

Tracks are organised the chrome-trace way: a *pid* is a track group
(we use one pid per simulated disk, so a rebuild renders as a Gantt
chart of spindles in Perfetto / ``chrome://tracing``) and a *tid* is a
row inside it.  :meth:`Tracer.group` hands out non-overlapping pid
ranges so several simulations — e.g. the traditional and the shifted
arrangement of one campaign — coexist in a single trace without
colliding.

Two sink modes:

* **buffered** (default, ``sink=None``) — every event accumulates in
  :attr:`Tracer.events` and is exported at end-of-run
  (:func:`repro.obs.export.write_chrome_trace`);
* **streaming** (``sink=`` a :class:`repro.obs.export.JsonlTraceSink`)
  — :attr:`Tracer.events` is a *bounded* buffer that drains to the
  sink whenever it reaches :attr:`Tracer.buffer_watermark` events
  (env ``REPRO_OBS_BUFFER``), at every :meth:`phase_boundary`, and on
  :meth:`close`.  Peak tracer memory is then the watermark, not the
  campaign length — the mode long fault campaigns run under.

Per-request spans (category in :data:`SAMPLED_CATS`) can additionally
be *sampled*: ``Tracer(sample=0.1)`` keeps a deterministic ~10% of
them while always keeping controller/phase spans, and the rate is
recorded in the exported trace header so downsampled files stay
honest.  ``REPRO_OBS_SAMPLE`` / ``--trace-sample`` set this from the
environment / CLI.

Export lives in :mod:`repro.obs.export`; this module records, buffers
and drains.
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "TraceEvent",
    "SpanToken",
    "Tracer",
    "TraceGroup",
    "SAMPLED_CATS",
    "DEFAULT_BUFFER_WATERMARK",
    "resolve_sample_rate",
]

#: pids per :meth:`Tracer.group` allocation — far more spindles than
#: any simulated array uses
GROUP_PID_STRIDE = 1000

#: streaming-buffer flush threshold (events) when neither the ctor nor
#: ``REPRO_OBS_BUFFER`` says otherwise
DEFAULT_BUFFER_WATERMARK = 4096

#: event categories subject to span sampling — the high-volume
#: per-request spans.  Controller/phase spans (``cat="rebuild"``) and
#: uncategorised spans are always kept: they are the trace's skeleton.
SAMPLED_CATS = frozenset({"io"})


def resolve_sample_rate(rate: float | None = None) -> float:
    """A span sample rate: explicit value, else ``REPRO_OBS_SAMPLE``, else 1.

    Raises on values outside ``[0, 1]`` — a silent clamp would make the
    recorded header lie about what was dropped.
    """
    if rate is None:
        rate = float(os.environ.get("REPRO_OBS_SAMPLE", "1.0"))
    rate = float(rate)
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"span sample rate must be in [0, 1], got {rate}")
    return rate


@dataclass(slots=True)
class TraceEvent:
    """One trace record (chrome "complete" or "instant" event)."""

    name: str
    ph: str  # "X" complete, "i" instant
    ts: float  # seconds
    dur: float  # seconds ("X" only)
    pid: int
    tid: int
    cat: str = ""
    args: dict = field(default_factory=dict)


@dataclass(slots=True)
class SpanToken:
    """Handle returned by :meth:`Tracer.begin`, closed by :meth:`Tracer.end`."""

    name: str
    ts: float
    pid: int
    tid: int
    cat: str
    args: dict
    closed: bool = False


class Tracer:
    """Accumulates :class:`TraceEvent` records for one run.

    Parameters
    ----------
    clock:
        Zero-argument callable giving the current time in seconds for
        :meth:`span`; defaults to wall clock
        (:func:`time.perf_counter`).  Simulation code records explicit
        timestamps instead and never consults the clock.
    sink:
        Optional streaming sink (duck-typed like
        :class:`repro.obs.export.JsonlTraceSink`).  With a sink
        attached, :attr:`events` is a bounded buffer drained at the
        watermark, at phase boundaries, and on :meth:`close`.
    sample:
        Keep probability for per-request spans (categories in
        :data:`SAMPLED_CATS`); ``None`` reads ``REPRO_OBS_SAMPLE``.
        Spans outside those categories are never dropped.
    sample_seed:
        Seed for the sampling decisions — two tracers with the same
        seed and rate drop the same spans, keeping sampled traces
        reproducible.
    buffer_watermark:
        Streaming flush threshold in buffered events; ``None`` reads
        ``REPRO_OBS_BUFFER`` (default
        :data:`DEFAULT_BUFFER_WATERMARK`).  Ignored without a sink.
    """

    def __init__(
        self,
        clock=None,
        sink=None,
        sample: float | None = None,
        sample_seed: int = 2012,
        buffer_watermark: int | None = None,
    ) -> None:
        self.events: list[TraceEvent] = []
        self.clock = clock if clock is not None else time.perf_counter
        self.sink = sink
        self.sample = resolve_sample_rate(sample)
        self._rng = random.Random(sample_seed)
        if buffer_watermark is None:
            buffer_watermark = int(
                os.environ.get("REPRO_OBS_BUFFER", DEFAULT_BUFFER_WATERMARK)
            )
        self.buffer_watermark = max(1, int(buffer_watermark))
        #: events recorded (post-sampling), including already-flushed ones
        self.total_events = 0
        #: per-request spans dropped by the sampler
        self.dropped_events = 0
        self.closed = False
        self._process_names: dict[int, str] = {}
        self._names_flushed: set[int] = set()
        self._header_flushed = False
        self._next_pid_base = 0

    def __len__(self) -> int:
        """Events currently *buffered* (all events when no sink)."""
        return len(self.events)

    # ------------------------------------------------------------------
    def group(self, label: str) -> "TraceGroup":
        """Reserve a pid range for one track group (one simulation)."""
        base = self._next_pid_base
        self._next_pid_base += GROUP_PID_STRIDE
        return TraceGroup(self, base, label)

    def name_process(self, pid: int, name: str) -> None:
        """Human-readable track-group name shown by trace viewers."""
        self._process_names[pid] = name

    def process_names(self) -> dict[int, str]:
        return dict(self._process_names)

    def header_meta(self) -> dict:
        """The honesty header: sampling and buffering provenance.

        Embedded in both export formats so a reader of a downsampled
        trace can see the rate (and drop count, for end-of-run
        exports) instead of mistaking sparsity for idleness.
        """
        meta = {
            "format": "repro-trace/1",
            "sample_rate": self.sample,
            "sampled_cats": sorted(SAMPLED_CATS),
            "time_unit": "us",
        }
        if self.sink is not None:
            meta["buffer_watermark"] = self.buffer_watermark
        return meta

    # ------------------------------------------------------------------
    def _record(self, ev: TraceEvent) -> None:
        """Sampling decision, buffer append, watermark check — the one gate."""
        if self.sample < 1.0 and ev.cat in SAMPLED_CATS:
            if self._rng.random() >= self.sample:
                self.dropped_events += 1
                return
        self.events.append(ev)
        self.total_events += 1
        if self.sink is not None and len(self.events) >= self.buffer_watermark:
            self.flush()

    def complete(
        self,
        name: str,
        ts: float,
        dur: float,
        pid: int = 0,
        tid: int = 0,
        cat: str = "",
        **args,
    ) -> None:
        """Record a finished span with explicit start and duration."""
        self._record(TraceEvent(name, "X", ts, dur, pid, tid, cat, args))

    def instant(
        self, name: str, ts: float, pid: int = 0, tid: int = 0, cat: str = "", **args
    ) -> None:
        """Record a zero-duration marker."""
        self._record(TraceEvent(name, "i", ts, 0.0, pid, tid, cat, args))

    def begin(
        self, name: str, ts: float, pid: int = 0, tid: int = 0, cat: str = "", **args
    ) -> SpanToken:
        """Open a span whose end isn't lexically scoped (event loops)."""
        return SpanToken(name, ts, pid, tid, cat, args)

    def end(self, token: SpanToken, ts: float) -> None:
        """Close a :meth:`begin` span at ``ts``."""
        if token.closed:
            raise ValueError(f"span {token.name!r} already ended")
        token.closed = True
        self._record(
            TraceEvent(
                token.name,
                "X",
                token.ts,
                max(0.0, ts - token.ts),
                token.pid,
                token.tid,
                token.cat,
                token.args,
            )
        )

    @contextmanager
    def span(self, name: str, pid: int = 0, tid: int = 0, cat: str = "", **args):
        """``with tracer.span("rebuild.phase", disk=3): ...`` — clock-timed."""
        t0 = self.clock()
        token = self.begin(name, t0, pid, tid, cat, **args)
        try:
            yield token
        finally:
            self.end(token, self.clock())

    # ------------------------------------------------------------------
    # streaming: drain the bounded buffer into the sink
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Drain the buffer into the sink (no-op without one).

        Emits the honesty header on first flush and any track names
        registered since the previous flush, so a streamed file is a
        self-describing, viewer-loadable trace at every instant.
        """
        sink = self.sink
        if sink is None:
            return
        if not self._header_flushed:
            sink.write_header(self.header_meta())
            self._header_flushed = True
        new_names = {
            pid: name
            for pid, name in self._process_names.items()
            if pid not in self._names_flushed
        }
        if new_names:
            sink.write_process_names(new_names)
            self._names_flushed.update(new_names)
        if self.events:
            sink.write_events(self.events)
            self.events = []
        sink.flush()

    def phase_boundary(self) -> None:
        """Flush at a semantic boundary (end of a rebuild phase / sweep point).

        Phase boundaries are the natural durability points: an abrupt
        stop loses at most the current phase's sub-watermark tail.
        """
        self.flush()

    def close(self) -> None:
        """Final flush (events recorded after the last phase land here)
        and sink close.  Idempotent — exporters and ``finally`` blocks
        may both call it."""
        if self.closed:
            return
        self.closed = True
        if self.sink is not None:
            self.flush()
            self.sink.close()


class TraceGroup:
    """A pid-offset view of a tracer: one simulation's tracks.

    Every event recorded through a group lands in the group's reserved
    pid range, so two arrays traced into the same file keep separate
    per-disk tracks.
    """

    __slots__ = ("tracer", "base_pid", "label")

    def __init__(self, tracer: Tracer, base_pid: int, label: str) -> None:
        self.tracer = tracer
        self.base_pid = base_pid
        self.label = label

    def name_track(self, pid: int, name: str) -> None:
        """Name a track inside this group (e.g. ``disk 3``)."""
        self.tracer.name_process(
            self.base_pid + pid, f"{self.label}: {name}" if self.label else name
        )

    def complete(
        self,
        name: str,
        ts: float,
        dur: float,
        pid: int = 0,
        tid: int = 0,
        cat: str = "",
        **args,
    ) -> None:
        self.tracer.complete(
            name, ts, dur, self.base_pid + pid, tid, cat, **args
        )

    def instant(
        self, name: str, ts: float, pid: int = 0, tid: int = 0, cat: str = "", **args
    ) -> None:
        self.tracer.instant(name, ts, self.base_pid + pid, tid, cat, **args)

    def begin(
        self, name: str, ts: float, pid: int = 0, tid: int = 0, cat: str = "", **args
    ) -> SpanToken:
        return self.tracer.begin(name, ts, self.base_pid + pid, tid, cat, **args)

    def end(self, token: SpanToken, ts: float) -> None:
        self.tracer.end(token, ts)

    def phase_boundary(self) -> None:
        """Propagate a semantic flush point to the owning tracer."""
        self.tracer.phase_boundary()
