"""Layout registry: name -> builder, shared by the CLI and fan-out workers.

Campaign sweeps ship their work to process-pool workers as plain
picklable specs; a :class:`~repro.core.layouts.Layout` instance (and
especially a closure over one) is not a good wire format, so workers
rebuild layouts from the registry name.  The CLI re-exports this table
as its ``--layout`` choices.
"""

from __future__ import annotations

from .arrangement import IdentityArrangement, PermutationArrangement, ShiftedArrangement
from .layouts import (
    Layout,
    MirrorLayout,
    MirrorParityLayout,
    RAID5Layout,
    RAID6Layout,
    ThreeMirrorLayout,
    XCodeLayout,
)

__all__ = ["LAYOUTS", "build_layout", "shifted_variant_name"]


def _reverse_shift(n: int) -> PermutationArrangement:
    return PermutationArrangement(
        n, {(i, j): ((i - j) % n, i) for i in range(n) for j in range(n)}
    )


#: layout name -> builder taking the data-disk count
LAYOUTS = {
    "mirror": lambda n: MirrorLayout(n, IdentityArrangement(n)),
    "shifted-mirror": lambda n: MirrorLayout(n, ShiftedArrangement(n)),
    "mirror-parity": lambda n: MirrorParityLayout(n, IdentityArrangement(n)),
    "shifted-mirror-parity": lambda n: MirrorParityLayout(n, ShiftedArrangement(n)),
    "three-mirror": lambda n: ThreeMirrorLayout(n),
    "shifted-three-mirror": lambda n: ThreeMirrorLayout(
        n, ShiftedArrangement(n), _reverse_shift(n)
    ),
    "raid5": RAID5Layout,
    "raid6-evenodd": lambda n: RAID6Layout(n, "evenodd"),
    "raid6-rdp": lambda n: RAID6Layout(n, "rdp"),
    "xcode": XCodeLayout,  # n must be prime >= 5
}


def build_layout(name: str, n: int) -> Layout:
    """Instantiate a layout by registry name."""
    try:
        builder = LAYOUTS[name]
    except KeyError:
        raise SystemExit(
            f"unknown layout {name!r}; choose from {', '.join(sorted(LAYOUTS))}"
        ) from None
    return builder(n)


def shifted_variant_name(family: str) -> str:
    """The shifted counterpart of a traditional family name."""
    name = f"shifted-{family}"
    if name not in LAYOUTS:
        raise ValueError(f"family {family!r} has no shifted variant in the registry")
    return name
