"""The Row-Diagonal Parity code (Corbett et al., FAST'04) — RAID 6 baseline.

RDP tolerates any two device failures using pure XOR arithmetic.  For a
prime ``p`` the full stripe has ``p + 1`` columns of ``p - 1`` rows:

* columns ``0 .. p-2`` — data,
* column ``p-1`` — row parity (XOR of each row of data),
* column ``p`` — diagonal parity.

Diagonals are taken over the first ``p`` columns (data **and** row
parity); the cell at ``(row t, column j)`` belongs to diagonal
``<t + j> mod p``.  Diagonals ``0 .. p-2`` each get a parity element;
diagonal ``p - 1`` is the "missing" diagonal with no parity.  A
conceptual all-zero row ``p - 1`` completes the geometry.

Reconstruction is implemented as constraint peeling — repeatedly apply
any row/diagonal parity equation with exactly one unknown member —
which is precisely the alternating row/diagonal chain of the RDP paper
expressed declaratively, and uniformly covers every single- and
double-failure combination.

Shortening to ``n < p - 1`` real data columns (virtual zero columns)
is supported for the paper's Fig. 7 RAID 6 comparison.
"""

from __future__ import annotations

import numpy as np

from .evenodd import is_prime

__all__ = ["RDP"]


class RDP:
    """Row-Diagonal Parity code with optional shortening.

    Parameters
    ----------
    p:
        Prime controlling the geometry; the stripe has ``p - 1`` rows
        and up to ``p - 1`` data columns.
    n:
        Number of real data columns, ``1 <= n <= p - 1``; remaining
        data columns are virtual zeros.
    """

    def __init__(self, p: int, n: int | None = None) -> None:
        if not is_prime(p) or p < 3:
            raise ValueError(f"p must be an odd prime, got {p}")
        n = p - 1 if n is None else n
        if not 1 <= n <= p - 1:
            raise ValueError(f"need 1 <= n <= p-1, got n={n}, p={p}")
        self.p = p
        self.n = n
        self.rows = p - 1

    # ------------------------------------------------------------------
    def _check_stripe(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=np.uint8)
        if data.shape[:2] != (self.rows, self.n):
            raise ValueError(
                f"stripe must have shape ({self.rows}, {self.n}, size), got {data.shape}"
            )
        return data

    def encode(self, data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Compute the row-parity and diagonal-parity columns.

        Parameters
        ----------
        data:
            ``(p-1, n, size)`` uint8 stripe.

        Returns
        -------
        (row_parity, diag_parity)
            Two ``(p-1, size)`` arrays.
        """
        data = self._check_stripe(data)
        size = data.shape[2]
        p = self.p
        row_parity = np.bitwise_xor.reduce(data, axis=1)
        # extended (p, p, size) grid: data columns, virtual zero columns,
        # the row-parity column, plus the imaginary zero row — so the
        # diagonal gather below is one fancy-index expression.
        ext = np.zeros((p, p, size), dtype=np.uint8)
        ext[: self.rows, : self.n] = data
        ext[: self.rows, p - 1] = row_parity
        d_idx = np.arange(self.rows)[:, None]
        j_idx = np.arange(p)[None, :]
        gathered = ext[(d_idx - j_idx) % p, j_idx]  # (rows, p, size)
        diag_parity = np.bitwise_xor.reduce(gathered, axis=1)
        return row_parity, diag_parity

    # ------------------------------------------------------------------
    def decode(
        self,
        data: list[np.ndarray | None],
        row_parity: np.ndarray | None,
        diag_parity: np.ndarray | None,
        element_size: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Recover the stripe from at most two erased devices.

        Arguments mirror :meth:`repro.codes.evenodd.EvenOdd.decode`.
        """
        if len(data) != self.n:
            raise ValueError(f"expected {self.n} data columns, got {len(data)}")
        erased_data = [j for j, c in enumerate(data) if c is None]
        n_erased = len(erased_data) + (row_parity is None) + (diag_parity is None)
        if n_erased > 2:
            raise ValueError(f"{n_erased} erasures exceed RDP tolerance of 2")

        size = element_size
        for candidate in [*data, row_parity, diag_parity]:
            if candidate is not None:
                size = np.asarray(candidate).shape[1]
                break
        if size is None:
            raise ValueError("cannot infer element size: every device erased or absent")

        p = self.p
        # Unknown grid over the first p columns (data + row parity); the
        # diagonal-parity column is handled separately since it is not a
        # member of any constraint.
        cells = np.zeros((self.rows, p, size), dtype=np.uint8)
        known = np.zeros((self.rows, p), dtype=bool)
        for j in range(p - 1):
            if j < self.n:
                if data[j] is not None:
                    cells[:, j] = np.asarray(data[j], dtype=np.uint8)
                    known[:, j] = True
            else:
                known[:, j] = True  # virtual zero column
        if row_parity is not None:
            cells[:, p - 1] = np.asarray(row_parity, dtype=np.uint8)
            known[:, p - 1] = True

        # Constraint sets: rows (including the row-parity cell) XOR to
        # zero; stored diagonals XOR to the recorded diagonal parity.
        diag = None if diag_parity is None else np.asarray(diag_parity, dtype=np.uint8)
        self._peel(cells, known, diag)

        if not known.all():
            raise AssertionError(
                "RDP peeling stalled; this indicates an unreachable failure pattern"
            )

        out_data = np.ascontiguousarray(cells[:, : self.n])
        new_row, new_diag = self.encode(out_data)
        return out_data, new_row, new_diag

    # ------------------------------------------------------------------
    def _peel(
        self, cells: np.ndarray, known: np.ndarray, diag_parity: np.ndarray | None
    ) -> None:
        """Repeatedly solve any parity constraint with one unknown."""
        p = self.p
        size = cells.shape[2]

        # member list of each constraint: ("row", t) -> [(t, j) for j in 0..p-1]
        # ("diag", d) -> cells with (t + j) % p == d, t real.
        progress = True
        while progress and not known.all():
            progress = False
            # Row constraints: XOR over a full row (incl. parity cell) is 0.
            for t in range(self.rows):
                unknown = np.nonzero(~known[t])[0]
                if unknown.size == 1:
                    j = int(unknown[0])
                    acc = np.zeros(size, dtype=np.uint8)
                    for c in range(p):
                        if c != j:
                            acc ^= cells[t, c]
                    cells[t, j] = acc
                    known[t, j] = True
                    progress = True
            if diag_parity is None:
                continue
            # Stored diagonal constraints.
            for d in range(p - 1):
                members = [((d - j) % p, j) for j in range(p)]
                members = [(t, j) for t, j in members if t != p - 1]
                unknown = [(t, j) for t, j in members if not known[t, j]]
                if len(unknown) == 1:
                    t_u, j_u = unknown[0]
                    acc = diag_parity[d].copy()
                    for t, j in members:
                        if (t, j) != (t_u, j_u):
                            acc ^= cells[t, j]
                    cells[t_u, j_u] = acc
                    known[t_u, j_u] = True
                    progress = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RDP(p={self.p}, n={self.n})"
