"""Fault-injection campaigns: both arrangements under the same storm.

The paper's experiments rebuild under *clean* conditions — one failed
disk, perfectly healthy survivors.  Real rebuild windows are nastier:
latent sector errors surface exactly when the redundancy is thinnest,
drives go slow before they go dead, and the classic nightmare is a
*second* whole-disk failure while the first rebuild is still running.

A campaign subjects the traditional and the shifted arrangement to the
**identical** seeded :class:`~repro.disksim.faultplan.FaultPlan` — same
LSE burst, same fail-slow drive, same mid-rebuild disk death at the
same simulated instant — and compares what the user sees: how many
reads were served, how late, and how much data survived.  Because both
the fault schedule and the event engine are deterministic, a campaign
is a reproducible experiment, not an anecdote.
"""

from __future__ import annotations

import math
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.layouts import Layout
from ..core.registry import LAYOUTS, comparison_pair
from ..disksim.array import DEFAULT_ELEMENT_SIZE
from ..disksim.faultplan import FaultPlan
from ..disksim.scheduler import PriorityScheduler
from ..obs import (
    default_recorder,
    default_registry,
    default_tracer,
    scoped_recorder,
    scoped_registry,
)
from ..parallel import parallel_map
from ..workloads.generator import user_read_stream
from .controller import FaultStats, RaidController, RebuildResult, RetryPolicy
from .reconstruction import OnlineReconstruction, OnlineResult

__all__ = [
    "CampaignRun",
    "CampaignComparison",
    "SweepPoint",
    "SweepResult",
    "default_fault_plan",
    "clean_rebuild_makespan",
    "run_campaign",
    "compare_arrangements",
    "derive_sweep_seeds",
    "compare_sweep",
]


@dataclass(frozen=True)
class CampaignRun:
    """One arrangement's fate under a fault campaign."""

    layout_name: str
    online: OnlineResult
    #: user reads answered without an unrecovered error, as a fraction
    availability: float
    #: stripe-columns that survived (1.0 = no data loss)
    data_survival: float

    @property
    def rebuild(self) -> RebuildResult:
        return self.online.rebuild

    @property
    def fault_stats(self) -> FaultStats:
        assert self.online.fault_stats is not None
        return self.online.fault_stats


@dataclass(frozen=True)
class CampaignComparison:
    """Traditional vs shifted arrangement under the identical fault plan."""

    traditional: CampaignRun
    shifted: CampaignRun

    @property
    def availability_delta(self) -> float:
        """Shifted minus traditional served-read fraction."""
        return self.shifted.availability - self.traditional.availability

    @property
    def latency_speedup(self) -> float:
        """Traditional over shifted mean user latency (>1 favours shifted).

        ``inf`` when the shifted side's mean is zero (it served for
        free); ``NaN`` when either side served no reads at all, since
        zero-sample latency means are ``NaN`` and no ratio is defined.
        Text output renders these as bare ``inf``/``nan``; ``--json``
        coerces them to ``null`` (the ``_finite`` contract).
        """
        t = self.traditional.online.mean_user_latency_s
        s = self.shifted.online.mean_user_latency_s
        if math.isnan(t) or math.isnan(s):
            return float("nan")
        if s <= 0:
            return float("inf")
        return t / s

    @property
    def makespan_speedup(self) -> float:
        """Traditional over shifted rebuild makespan (>1 favours shifted)."""
        if self.shifted.rebuild.makespan_s <= 0:
            return float("inf")
        return self.traditional.rebuild.makespan_s / self.shifted.rebuild.makespan_s


def clean_rebuild_makespan(
    layout: Layout,
    failed_disks=(0,),
    n_stripes: int = 12,
    element_size: int = DEFAULT_ELEMENT_SIZE,
    payload_bytes: int = 16,
    window: int = 4,
) -> float:
    """Makespan of a fault-free rebuild — the campaign's time yardstick.

    Scheduled mid-rebuild failures are expressed as a *fraction* of
    this dry-run makespan, so "a second disk dies halfway through"
    means the same thing on both arrangements.
    """
    ctrl = RaidController(
        layout,
        n_stripes=n_stripes,
        element_size=element_size,
        payload_bytes=payload_bytes,
        # the sizing dry-run must not leak into a --trace-out trace
        tracer=False,
    )
    return ctrl.rebuild(failed_disks, window=window, verify=False).makespan_s


def default_fault_plan(
    n_disks: int,
    seed: int = 2012,
    lse_burst: int = 4,
    fail_slow_disk: int | None = None,
    fail_slow_multiplier: float = 4.0,
    second_failure_disk: int | None = None,
    second_failure_time_s: float | None = None,
    transient_rate: float = 0.05,
) -> FaultPlan:
    """The walkthrough storm: LSE burst + fail-slow + mid-rebuild death.

    ``fail_slow_disk`` defaults to the last disk of the array and
    ``second_failure_disk`` to the second-to-last; pass explicit ids
    (or ``second_failure_time_s=None`` to skip the second failure).
    """
    plan = FaultPlan(seed=seed)
    if transient_rate > 0:
        plan = plan.with_transients(rate=transient_rate)
    if lse_burst > 0:
        plan = plan.with_lse_burst(lse_burst)
    if fail_slow_disk is None:
        fail_slow_disk = n_disks - 1
    if fail_slow_multiplier > 1.0:
        plan = plan.with_fail_slow(fail_slow_disk, fail_slow_multiplier)
    if second_failure_time_s is not None:
        if second_failure_disk is None:
            second_failure_disk = n_disks - 2
        plan = plan.with_disk_failure(second_failure_disk, second_failure_time_s)
    return plan


def run_campaign(
    layout: Layout,
    fault_plan: FaultPlan,
    failed_disks=(0,),
    n_stripes: int = 12,
    element_size: int = DEFAULT_ELEMENT_SIZE,
    payload_bytes: int = 16,
    window: int = 4,
    retry_policy: RetryPolicy | None = None,
    user_read_rate_per_s: float = 30.0,
    user_read_duration_s: float | None = None,
    user_read_seed: int = 99,
) -> CampaignRun:
    """One arrangement through one campaign: rebuild under fire.

    Runs an on-line reconstruction of ``failed_disks`` with the fault
    plan active and a Poisson user-read stream on top.  Reconstruction
    is byte-verified where recoverable; unrecoverable columns are
    counted, not raised.
    """
    if user_read_duration_s is None:
        user_read_duration_s = 1.5 * clean_rebuild_makespan(
            layout,
            failed_disks,
            n_stripes=n_stripes,
            element_size=element_size,
            payload_bytes=payload_bytes,
            window=window,
        )
    ctrl = RaidController(
        layout,
        n_stripes=n_stripes,
        element_size=element_size,
        scheduler_factory=PriorityScheduler,
        payload_bytes=payload_bytes,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
    )
    reads = user_read_stream(
        layout.n,
        n_stripes,
        duration_s=user_read_duration_s,
        rate_per_s=user_read_rate_per_s,
        rng=np.random.default_rng(user_read_seed),
    )
    online = OnlineReconstruction(
        ctrl, failed_disks, reads, window=window
    ).run()
    served = online.n_user_reads
    availability = (
        1.0 - online.failed_user_reads / served if served > 0 else 1.0
    )
    total_columns = layout.n_disks * n_stripes
    stats = online.fault_stats
    lost = len(stats.lost_columns) if stats is not None else 0
    return CampaignRun(
        layout_name=layout.name,
        online=online,
        availability=availability,
        data_survival=1.0 - lost / total_columns,
    )


def compare_arrangements(
    traditional_factory: Callable[[], Layout],
    shifted_factory: Callable[[], Layout],
    fault_plan: FaultPlan,
    **campaign_kwargs,
) -> CampaignComparison:
    """Both arrangements through the identical seeded campaign.

    The frozen plan is *activated* independently per run, so both
    arrays replay the same fault schedule from the same seed — the
    arrangements differ, the storm does not.  Unless overridden, the
    user-read window is sized once (off the slower arrangement's clean
    rebuild) so both runs face the identical read stream.
    """
    if campaign_kwargs.get("user_read_duration_s") is None:
        sizing = {
            k: campaign_kwargs[k]
            for k in ("failed_disks", "n_stripes", "element_size",
                      "payload_bytes", "window")
            if k in campaign_kwargs
        }
        campaign_kwargs["user_read_duration_s"] = 1.5 * max(
            clean_rebuild_makespan(traditional_factory(), **sizing),
            clean_rebuild_makespan(shifted_factory(), **sizing),
        )
    return CampaignComparison(
        traditional=run_campaign(
            traditional_factory(), fault_plan, **campaign_kwargs
        ),
        shifted=run_campaign(shifted_factory(), fault_plan, **campaign_kwargs),
    )


# ----------------------------------------------------------------------
# Seeded sweeps: many storms, one verdict
# ----------------------------------------------------------------------

def derive_sweep_seeds(
    root_seed: int, n_seeds: int
) -> tuple[tuple[int, int], ...]:
    """Per-point ``(fault_seed, user_read_seed)`` pairs from one root.

    Each sweep point gets an independent :class:`numpy.random.SeedSequence`
    child of the root; the pair is a pure function of
    ``(root_seed, index)``, so a worker process can be handed the bare
    integers and still produce the exact stream the serial run would —
    this is what makes ``jobs=1`` and ``jobs=N`` sweeps bit-identical.
    """
    children = np.random.SeedSequence(root_seed).spawn(n_seeds)
    pairs = []
    for child in children:
        state = child.generate_state(2, dtype=np.uint64)
        pairs.append((int(state[0]), int(state[1])))
    return tuple(pairs)


@dataclass(frozen=True)
class SweepPoint:
    """One seeded comparison inside a sweep.

    The observability payloads (``metrics``, ``wall_s``) are excluded
    from equality: point identity is the seeded simulation outcome, and
    the jobs=1 vs jobs=N bit-identity regression test must keep holding
    with observability on even though worker wall times differ.
    """

    seed_index: int
    fault_seed: int
    user_read_seed: int
    comparison: CampaignComparison
    #: the worker's metrics snapshot for this point (see
    #: :meth:`repro.obs.MetricsRegistry.snapshot`); empty when
    #: observability is disabled
    metrics: dict = field(default_factory=dict, compare=False)
    #: the worker's flight-recorder snapshot (windowed simulated-time
    #: timeseries; see :meth:`repro.obs.TimelineRecorder.snapshot`);
    #: empty when no recorder is installed in the parent
    timeseries: dict = field(default_factory=dict, compare=False)
    #: worker-side wall-clock seconds spent on this point
    wall_s: float = field(default=0.0, compare=False)


@dataclass(frozen=True)
class SweepResult:
    """A family's traditional-vs-shifted verdict over many seeded storms."""

    family: str
    n: int
    root_seed: int
    points: tuple[SweepPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    @property
    def mean_availability_delta(self) -> float:
        return float(
            np.mean([p.comparison.availability_delta for p in self.points])
        )

    @property
    def mean_latency_speedup(self) -> float:
        """Mean over points with finite speedups (inf = shifted served free)."""
        finite = [
            p.comparison.latency_speedup
            for p in self.points
            if math.isfinite(p.comparison.latency_speedup)
        ]
        return float(np.mean(finite)) if finite else float("inf")

    @property
    def worst_data_survival(self) -> tuple[float, float]:
        """(traditional, shifted) minimum data survival across the sweep."""
        return (
            min(p.comparison.traditional.data_survival for p in self.points),
            min(p.comparison.shifted.data_survival for p in self.points),
        )

    @property
    def shifted_wins(self) -> int:
        """Points where the shifted arrangement served strictly more reads."""
        return sum(
            1 for p in self.points if p.comparison.availability_delta > 0
        )


def _sweep_point(task) -> SweepPoint:
    """Pool worker: rebuild layouts from registry names and run one point.

    Module-level (picklable) and handed only plain data; the layouts and
    the fault plan are constructed inside the worker so nothing
    stateful crosses the process boundary.
    """
    (
        family,
        n,
        index,
        fault_seed,
        user_seed,
        plan_kwargs,
        campaign_kwargs,
        record_ts,
        ts_window_s,
    ) = task
    baseline_name, variant_name = comparison_pair(family)
    traditional = LAYOUTS[baseline_name]
    shifted = LAYOUTS[variant_name]
    plan = default_fault_plan(
        traditional(n).n_disks, seed=fault_seed, **plan_kwargs
    )
    # each point runs under its own metrics scope (and, when the parent
    # has a flight recorder, its own recorder scope) so its snapshots
    # can be shipped back (pickled, across the process boundary) and
    # merged by the parent in deterministic seed order
    t0 = time.perf_counter()
    with (
        scoped_registry() as reg,
        scoped_recorder(enabled=record_ts, window_s=ts_window_s) as rec,
    ):
        comparison = compare_arrangements(
            lambda: traditional(n),
            lambda: shifted(n),
            plan,
            user_read_seed=user_seed,
            **campaign_kwargs,
        )
        snap = reg.snapshot()
        ts_snap = rec.snapshot() if rec is not None else {}
    return SweepPoint(
        seed_index=index,
        fault_seed=fault_seed,
        user_read_seed=user_seed,
        comparison=comparison,
        metrics=snap,
        timeseries=ts_snap,
        wall_s=time.perf_counter() - t0,
    )


def compare_sweep(
    family: str,
    n: int,
    n_seeds: int = 16,
    root_seed: int = 2012,
    jobs: int | None = None,
    plan_kwargs: dict | None = None,
    pool=None,
    **campaign_kwargs,
) -> SweepResult:
    """Baseline vs variant over ``n_seeds`` independent storms.

    ``family`` is a comparison family declared in
    :data:`repro.core.registry.COMPARISONS` (the paper's
    traditional-vs-shifted trio plus the competitor pairings such as
    ``declustered`` and ``rebuild-optimal``).  Each point derives its fault
    and user-read seeds from a :class:`numpy.random.SeedSequence` child
    of ``root_seed`` (see :func:`derive_sweep_seeds`) and runs the full
    :func:`compare_arrangements` under its own storm.  ``plan_kwargs``
    feed :func:`default_fault_plan`; everything else is passed to
    :func:`run_campaign`.

    ``jobs`` fans points across a process pool
    (:func:`repro.parallel.parallel_map` conventions: ``None``/1 serial,
    0 = all cores); passing ``pool`` (a
    :class:`repro.parallel.WorkerPool`) reuses its persistent workers
    across sweeps instead.  Results are merged in seed order and are
    bit-identical to the serial run — there is a regression test
    pinning that.
    """
    comparison_pair(family)  # validate up front, before forking
    seeds = derive_sweep_seeds(root_seed, n_seeds)
    # workers record timeseries exactly when the parent has a flight
    # recorder installed, at the parent's window width — the flag (not
    # ambient state) travels in the task so serial and pool execution
    # make the identical decision
    recorder = default_recorder()
    record_ts = recorder is not None
    ts_window_s = recorder.window_s if recorder is not None else 0.1
    tasks = [
        (
            family,
            n,
            index,
            fault_seed,
            user_seed,
            dict(plan_kwargs or {}),
            dict(campaign_kwargs),
            record_ts,
            ts_window_s,
        )
        for index, (fault_seed, user_seed) in enumerate(seeds)
    ]
    # fold worker snapshots back *as points complete* (still in seed
    # order — submission-order consumption): a live /metrics scrape
    # mid-sweep sees counters climb point by point, and merge stays
    # deterministic across jobs settings (merge is commutative for
    # counters/histograms; seed order keeps last-write-wins gauges
    # stable).  A streaming default tracer treats each finished point
    # as a phase boundary and drains its buffer.
    reg = default_registry()
    on_point = None
    if reg.enabled:
        wall = reg.histogram(
            "sweep.point_wall_s", "worker wall-clock seconds per sweep point"
        ).labels()
        size = reg.histogram(
            "sweep.point_pickle_bytes",
            "pickled result size per sweep point (pool return traffic)",
            buckets=(1e3, 1e4, 1e5, 1e6, 1e7),
        ).labels()
        done = reg.counter(
            "sweep.points_completed", "sweep points merged back so far"
        ).labels()

        def on_point(p: SweepPoint) -> None:
            reg.merge(p.metrics)
            if recorder is not None and p.timeseries:
                # submission-order consumption makes this fold
                # deterministic: same snapshots, same order, same
                # float accumulation — jobs=1 == jobs=N bit for bit
                recorder.merge(p.timeseries)
            wall.observe(p.wall_s)
            size.observe(len(pickle.dumps(p)))
            done.inc()
            tracer = default_tracer()
            if tracer is not None:
                tracer.phase_boundary()

    points = parallel_map(_sweep_point, tasks, jobs=jobs, pool=pool, on_result=on_point)
    return SweepResult(
        family=family, n=n, root_seed=root_seed, points=tuple(points)
    )
