"""Workload generation: write mixes, user read streams, synthetic content."""

from .film import DEFAULT_PAYLOAD_BYTES, FilmSource
from .generator import UserRead, WriteOp, random_large_writes, user_read_stream
from .openloop import (
    DiurnalCurve,
    FixedThrottle,
    LatencyTargetThrottle,
    RebuildThrottle,
    SLOAccountant,
    SLOSummary,
    TenantSpec,
    TokenBucketThrottle,
    make_throttle,
    open_arrivals,
)
from .persistence import (
    load_user_reads,
    load_write_ops,
    save_user_reads,
    save_write_ops,
)

__all__ = [
    "FilmSource",
    "DEFAULT_PAYLOAD_BYTES",
    "WriteOp",
    "UserRead",
    "random_large_writes",
    "user_read_stream",
    "TenantSpec",
    "DiurnalCurve",
    "open_arrivals",
    "SLOSummary",
    "SLOAccountant",
    "RebuildThrottle",
    "FixedThrottle",
    "TokenBucketThrottle",
    "LatencyTargetThrottle",
    "make_throttle",
    "save_write_ops",
    "load_write_ops",
    "save_user_reads",
    "load_user_reads",
]
