"""Self-contained HTML dashboards from flight-recorder snapshots.

The flight recorder (:mod:`repro.obs.timeseries`) captures *curves* —
latency, queue depth, rebuild progress over the simulated clock.  This
module turns those snapshots into a single-file HTML report with
inline SVG charts (via :class:`repro.experiments.svgplot.LineChart`)
and translucent fault-overlay bands, so "what did the p99 do while
disk 0 was dead?" is answered by opening one file in a browser — no
plotting stack, no server, no external assets.

Two entry points:

* :func:`serve_report_html` renders a ``repro serve --json`` document
  as a side-by-side traditional-vs-shifted dashboard (per-tenant p99
  trajectories, rebuild progress, rebuild throughput, queue depth);
* :func:`timeseries_report_html` renders any bare snapshot (or JSONL /
  ``.npz`` export) generically, one chart per metric name.

:func:`render_report` dispatches on the input file's shape and is what
``repro obs report`` calls.
"""

from __future__ import annotations

import json
from html import escape
from pathlib import Path

from ..experiments.svgplot import LineChart
from .timeseries import (
    load_timeseries_jsonl,
    load_timeseries_npz,
    window_mean,
    window_quantile,
)

__all__ = [
    "serve_report_html",
    "leaderboard_report_html",
    "timeseries_report_html",
    "render_report",
    "write_report",
]

#: overlay-band colours by fault kind (unknown kinds fall back to grey)
_BAND_COLORS = {
    "disk-death": "#d62728",
    "fail-slow": "#ff7f0e",
    "transient-burst": "#9467bd",
    "lse-storm": "#8c564b",
}

_CSS = """\
body { font-family: sans-serif; margin: 1.5em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin: 0.2em 0; }
p.meta { color: #666; margin-top: 0; }
.compare { display: flex; flex-wrap: wrap; gap: 1.5em; align-items: flex-start; }
.column { flex: 1 1 560px; min-width: 480px; }
.chart { margin-bottom: 1em; }
table.scalars { border-collapse: collapse; margin-bottom: 1em; }
table.scalars td, table.scalars th {
  border: 1px solid #ccc; padding: 2px 8px; text-align: right; }
table.scalars th { background: #f4f4f4; }
.legendnote { color: #666; font-size: 0.85em; }
"""


def _right_edges(wins: list[dict], window_s: float) -> list[float]:
    """Window right edges in simulated seconds — each window's x point."""
    return [(w["w"] + 1) * window_s for w in wins]


def _add_overlays(chart: LineChart, overlays) -> None:
    for band in overlays:
        chart.add_band(
            band["t0"],
            band["t1"],
            label=band.get("label", band.get("kind", "fault")),
            color=_BAND_COLORS.get(band.get("kind", ""), "#7f7f7f"),
        )


def _series_by_name(snapshot: dict, name: str) -> list[dict]:
    """Snapshot series entries with the given metric name, key-sorted."""
    series = snapshot.get("series", {})
    return [series[k] for k in sorted(series) if series[k]["name"] == name]


def _label_text(labels: dict) -> str:
    return ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) or "all"


def _chart_svg(chart: LineChart, overlays) -> str:
    _add_overlays(chart, overlays)
    return f'<div class="chart">{chart.to_svg()}</div>'


def _serve_charts(snapshot: dict, overlays, heading: str) -> list[str]:
    """The serve-tier chart set for one arrangement's snapshot."""
    window_s = snapshot["window_s"]
    buckets = snapshot["buckets"]
    parts: list[str] = []

    latency = _series_by_name(snapshot, "serve.latency_s")
    if latency:
        chart = LineChart(
            f"{heading}: user-read p99 over simulated time",
            "simulated time (s)",
            "window p99 latency (ms)",
            width=560,
            height=340,
        )
        for entry in latency:
            tenant = entry["labels"].get("tenant", "all")
            chart.add_series(
                f"tenant {tenant}",
                _right_edges(entry["windows"], window_s),
                [
                    window_quantile(w, 0.99, buckets) * 1e3
                    for w in entry["windows"]
                ],
            )
        parts.append(_chart_svg(chart, overlays))

    progress = _series_by_name(snapshot, "rebuild.progress")
    if progress:
        chart = LineChart(
            f"{heading}: rebuild progress",
            "simulated time (s)",
            "fraction of stripes rebuilt",
            width=560,
            height=300,
        )
        for entry in progress:
            # progress is monotone, so the window max is the value at
            # the window's right edge
            chart.add_series(
                _label_text(entry["labels"]),
                _right_edges(entry["windows"], window_s),
                [w["max"] for w in entry["windows"]],
            )
        parts.append(_chart_svg(chart, overlays))

    throughput = _series_by_name(snapshot, "rebuild.throughput_mbps")
    if throughput:
        chart = LineChart(
            f"{heading}: rebuild read throughput",
            "simulated time (s)",
            "window mean (MB/s)",
            width=560,
            height=300,
        )
        for entry in throughput:
            chart.add_series(
                _label_text(entry["labels"]),
                _right_edges(entry["windows"], window_s),
                [window_mean(w) for w in entry["windows"]],
            )
        parts.append(_chart_svg(chart, overlays))

    depth = _series_by_name(snapshot, "serve.queue_depth")
    if depth:
        chart = LineChart(
            f"{heading}: in-flight queue depth",
            "simulated time (s)",
            "window mean depth",
            width=560,
            height=300,
        )
        for entry in depth:
            chart.add_series(
                _label_text(entry["labels"]),
                _right_edges(entry["windows"], window_s),
                [window_mean(w) for w in entry["windows"]],
            )
        parts.append(_chart_svg(chart, overlays))

    return parts


def _fmt_ms(seconds) -> str:
    if seconds is None:
        return "n/a"
    return f"{seconds * 1e3:.1f} ms"


def _serve_scalars(record: dict) -> str:
    slo = record.get("slo", {})
    rows = [
        ("rebuild makespan", f"{record['rebuild_makespan_s']:.3f} s"),
        ("p50 / p99", f"{_fmt_ms(slo.get('p50_s'))} / {_fmt_ms(slo.get('p99_s'))}"),
        ("served", str(slo.get("served", "n/a"))),
        ("availability", f"{record['availability']:.4f}"),
    ]
    cells = "".join(
        f"<tr><th>{escape(k)}</th><td>{escape(v)}</td></tr>" for k, v in rows
    )
    return f'<table class="scalars">{cells}</table>'


def _html_page(title: str, meta: str, body: str) -> str:
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{escape(title)}</title>\n<style>{_CSS}</style></head>\n"
        f"<body>\n<h1>{escape(title)}</h1>\n"
        f'<p class="meta">{escape(meta)}</p>\n{body}\n'
        '<p class="legendnote">Shaded bands mark active fault intervals '
        "(hover for the fault kind and disk).</p>\n"
        "</body></html>\n"
    )


def serve_report_html(doc: dict, title: str | None = None) -> str:
    """A ``repro serve --json`` document as a two-column dashboard.

    One column per arrangement (traditional | shifted), each showing
    the per-tenant p99 trajectory, rebuild progress, rebuild
    throughput and queue depth over the simulated clock, with fault
    intervals shaded behind every chart.  Raises :class:`ValueError`
    when the document carries no timeseries (the run was made with
    observability off).
    """
    sides = [
        (side, doc[side]) for side in ("traditional", "shifted") if side in doc
    ]
    if not sides:
        raise ValueError("not a serve report: no traditional/shifted records")
    if all(not rec.get("timeseries", {}).get("series") for _, rec in sides):
        raise ValueError(
            "serve report carries no timeseries — rerun `repro serve --json` "
            "with observability on (REPRO_OBS=1, the default)"
        )
    if title is None:
        title = (
            f"Serve dashboard: {doc.get('family', 'mirror')} "
            f"n={doc.get('n', '?')} seed={doc.get('seed', '?')}"
        )
    columns = []
    for _, rec in sides:
        charts = _serve_charts(
            rec.get("timeseries", {}) or {"series": {}, "window_s": 1.0, "buckets": []},
            rec.get("overlays", ()),
            rec["layout"],
        )
        columns.append(
            '<div class="column">'
            f"<h2>{escape(rec['layout'])}</h2>"
            + _serve_scalars(rec)
            + "".join(charts)
            + "</div>"
        )
    meta = (
        f"throttle {doc.get('throttle', 'none')}, "
        f"{doc.get('process', 'poisson')} arrivals, "
        f"duration {doc.get('duration_s', float('nan')):.3f} s (simulated)"
    )
    return _html_page(title, meta, f'<div class="compare">{"".join(columns)}</div>')


def _lb_cell(value, fmt: str) -> str:
    """One leaderboard metric cell; ``None`` (a null p99) renders n/a."""
    if value is None:
        return "n/a"
    return format(value, fmt)


def leaderboard_report_html(doc: dict, title: str | None = None) -> str:
    """A ``repro leaderboard --json`` document as a ranked table.

    The entries arrive already ranked (availability down, then rebuild
    makespan, degraded p99, name); the section renders them as one
    scalars table with rank numbers, so the dashboard answers "which
    layout, when?" at a glance.  Raises :class:`ValueError` when the
    document has no entries.
    """
    entries = doc.get("entries", [])
    if not entries:
        raise ValueError("not a leaderboard report: no entries")
    if title is None:
        title = (
            f"Layout leaderboard: n={doc.get('n', '?')} "
            f"seed={doc.get('seed', '?')}"
        )
    head = (
        "<tr><th>#</th><th>layout</th><th>availability</th>"
        "<th>rebuild makespan (s)</th><th>degraded p99 (ms)</th>"
        "<th>data survival</th><th>storage eff.</th><th>served</th>"
        "<th>verified</th></tr>"
    )
    rows = []
    for rank, e in enumerate(entries, start=1):
        rows.append(
            f"<tr><td>{rank}</td><td>{escape(e['layout'])}</td>"
            f"<td>{_lb_cell(e.get('availability'), '.4f')}</td>"
            f"<td>{_lb_cell(e.get('rebuild_makespan_s'), '.3f')}</td>"
            f"<td>{_lb_cell(e.get('degraded_p99_ms'), '.1f')}</td>"
            f"<td>{_lb_cell(e.get('data_survival'), '.4f')}</td>"
            f"<td>{_lb_cell(e.get('storage_efficiency'), '.3f')}</td>"
            f"<td>{e.get('served', 'n/a')}</td>"
            f"<td>{e.get('rebuild_verified', 'n/a')}</td></tr>"
        )
    table = f'<table class="scalars">{head}{"".join(rows)}</table>'
    meta = (
        f"{len(entries)} layouts under one seeded storm + open-loop serve "
        f"mix, duration {doc.get('duration_s', float('nan')):.3f} s "
        "(simulated); ranked by availability, then rebuild makespan, "
        "then degraded p99"
    )
    return _html_page(title, meta, table)


def timeseries_report_html(
    snapshot: dict, overlays=(), title: str = "Timeseries report"
) -> str:
    """A bare flight-recorder snapshot as a generic dashboard.

    One chart per metric name (one series per label set, plotting the
    window mean), fault overlays shaded behind each.  Raises
    :class:`ValueError` on an empty snapshot.
    """
    series = snapshot.get("series", {})
    if not series:
        raise ValueError(
            "snapshot has no series — was the run made with REPRO_OBS=0?"
        )
    window_s = snapshot["window_s"]
    names = sorted({series[k]["name"] for k in series})
    charts = []
    for name in names:
        chart = LineChart(
            name, "simulated time (s)", "window mean", width=640, height=320
        )
        for entry in _series_by_name(snapshot, name):
            chart.add_series(
                _label_text(entry["labels"]),
                _right_edges(entry["windows"], window_s),
                [window_mean(w) for w in entry["windows"]],
            )
        charts.append(_chart_svg(chart, overlays))
    meta = (
        f"{len(series)} series, window {window_s:g} s (simulated), "
        f"schema {snapshot.get('schema', '?')}"
    )
    return _html_page(title, meta, "".join(charts))


def render_report(path, title: str | None = None) -> str:
    """Render whatever timeseries artifact lives at ``path`` to HTML.

    Dispatches on shape: a ``repro serve --json`` document goes through
    :func:`serve_report_html`; a bare snapshot (``.json``), a JSONL
    export or a columnar ``.npz`` goes through
    :func:`timeseries_report_html`.
    """
    path = Path(path)
    if path.suffix == ".npz":
        snapshot = load_timeseries_npz(path)
        return timeseries_report_html(snapshot, title=title or path.name)
    if path.suffix == ".jsonl":
        snapshot = load_timeseries_jsonl(path)
        return timeseries_report_html(snapshot, title=title or path.name)
    with path.open("r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("kind") == "leaderboard":
        return leaderboard_report_html(doc, title=title)
    if doc.get("kind") == "serve" or "traditional" in doc:
        return serve_report_html(doc, title=title)
    if "series" in doc:
        return timeseries_report_html(doc, title=title or path.name)
    raise ValueError(
        f"{path}: not a serve report or timeseries snapshot "
        "(expected `repro serve --json` output or a flight-recorder export)"
    )


def write_report(path, html: str) -> Path:
    """Write rendered HTML to ``path`` and return it."""
    path = Path(path)
    path.write_text(html, encoding="utf-8")
    return path
