"""Simulated-time flight recorder: windowed metric timeseries.

Cumulative counters answer "how much, in total"; the paper's claims
are *trajectories* — user-read latency and rebuild progress **during**
reconstruction.  :class:`TimelineRecorder` is the first-class data
structure for those curves: named series accept ``observe(t, value)``
feeds (``t`` is the **simulated** clock, never wall time) and fold
them into fixed-width windows holding ``count/sum/min/max`` plus
fixed-bucket counts, from which mean and streaming quantiles derive.
Closed windows live in a ring buffer bounded by ``horizon`` windows
per series, so a week-long campaign records in O(horizon), not O(events).

The recorder follows the null-sink contract of the rest of
:mod:`repro.obs`: components resolve :func:`default_recorder` at
construction and keep a per-series handle (one ``is not None`` test on
the hot path).  With ``REPRO_OBS=0`` :func:`default_recorder` returns
``None`` even when a recorder is installed, so recording is skipped
entirely and the engine stays inside the ≤2% overhead gate.

Merging is defined on plain-data snapshots — windows with the same
index add counts and sums and combine min/max — and is used by
``compare_sweep`` to fold worker recorders into the parent in
submission order, which keeps ``jobs=1`` and ``jobs=N`` sweeps
bit-identical.  Exports: JSONL (torn-tail recoverable, mirroring
``load_streaming_trace``) and a columnar ``.npz``.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from contextlib import contextmanager
from pathlib import Path

from .metrics import MetricsRegistry, default_registry, obs_enabled

__all__ = [
    "DEFAULT_WINDOW_S",
    "DEFAULT_HORIZON",
    "DEFAULT_TS_BUCKETS",
    "TIMESERIES_SCHEMA",
    "SeriesWindow",
    "TimeSeries",
    "TimelineRecorder",
    "window_quantile",
    "window_mean",
    "default_recorder",
    "set_default_recorder",
    "scoped_recorder",
    "write_timeseries_jsonl",
    "load_timeseries_jsonl",
    "write_timeseries_npz",
    "load_timeseries_npz",
]

#: schema version stamped into snapshots and both export formats
TIMESERIES_SCHEMA = 1

#: default simulated-time window width (seconds)
DEFAULT_WINDOW_S = 0.1

#: default ring-buffer bound: closed windows kept per series
DEFAULT_HORIZON = 4096

#: default quantile buckets — upper bounds in seconds, tuned for I/O
#: latencies like ``repro.obs.metrics.DEFAULT_BUCKETS`` but denser in
#: the 1–500 ms band where rebuild-vs-serve contention lives
DEFAULT_TS_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 120.0,
)

#: window-close gauges published per closed window (most recent wins)
_WINDOW_AGGS = ("count", "mean", "min", "max", "p50", "p99")


def _series_key(name: str, labels: dict) -> str:
    """Canonical dict key for one (name, labels) series."""
    if not labels:
        return name
    return name + "|" + ",".join(f"{k}={labels[k]}" for k in sorted(labels))


def window_mean(win: dict) -> float:
    """Mean of one window dict (NaN when the window is empty)."""
    return win["sum"] / win["count"] if win["count"] else float("nan")


def window_quantile(win: dict, q: float, buckets) -> float:
    """Streaming quantile of one window: the upper bound of the bucket
    covering rank ``q``, clamped to the window max past the last bound
    (the same convention as ``SLOAccountant``'s streaming quantiles).
    """
    total = win["count"]
    if not total:
        return float("nan")
    rank = q * total
    cumulative = 0
    for bound, count in zip(buckets, win["counts"]):
        cumulative += count
        if cumulative >= rank:
            return min(bound, win["max"])
    return win["max"]


class SeriesWindow:
    """Mutable open-window aggregates for one series (internal)."""

    __slots__ = ("w", "count", "sum", "min", "max", "counts")

    def __init__(self, w: int, n_buckets: int) -> None:
        self.w = w
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.counts = [0] * (n_buckets + 1)

    def to_dict(self) -> dict:
        return {
            "w": self.w,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "counts": list(self.counts),
        }


class TimeSeries:
    """One named, labelled series inside a :class:`TimelineRecorder`.

    Handles are cheap to hold: components capture one at construction
    and call :meth:`observe` per sample.  Samples earlier than the
    open window (possible when completion order lags the clock) clamp
    into the open window rather than reopening a closed one — window
    assignment is deterministic either way because completion order
    itself is deterministic.
    """

    __slots__ = ("name", "help", "labels", "_rec", "_bounds", "_open", "closed")

    def __init__(self, recorder: "TimelineRecorder", name: str, help: str, labels: dict) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._rec = recorder
        self._bounds = recorder._bounds
        self._open: SeriesWindow | None = None
        self.closed: list[dict] = []

    def observe(self, t: float, value: float) -> None:
        """Fold one sample at simulated time ``t`` into its window."""
        value = float(value)
        if value != value or value in (float("inf"), float("-inf")):
            return  # "no measurement" — same abstention as the baselines
        w = int(t // self._rec.window_s)
        win = self._open
        if win is None:
            win = self._open = SeriesWindow(w, len(self._bounds))
        elif w > win.w:
            self._close(win)
            win = self._open = SeriesWindow(w, len(self._bounds))
        win.count += 1
        win.sum += value
        if value < win.min:
            win.min = value
        if value > win.max:
            win.max = value
        win.counts[bisect_left(self._bounds, value)] += 1

    def advance_to(self, t: float) -> None:
        """Close the open window if ``t`` has moved past its right edge."""
        win = self._open
        if win is not None and int(t // self._rec.window_s) > win.w:
            self._close(win)
            self._open = None

    def _close(self, win: SeriesWindow) -> None:
        if win.count:
            record = win.to_dict()
            self._insert_closed(record)
            self._rec._publish(self, record)

    def _insert_closed(self, record: dict) -> None:
        """Keep ``closed`` sorted by window index, folding duplicates.

        The common close appends; the sorted-insert path exists because
        a merged snapshot can carry windows past the one still open
        here, so a later close (or fold) may arrive out of order.
        """
        closed = self.closed
        if not closed or closed[-1]["w"] < record["w"]:
            closed.append(record)
        else:
            lo, hi = 0, len(closed)
            while lo < hi:
                mid = (lo + hi) // 2
                if closed[mid]["w"] < record["w"]:
                    lo = mid + 1
                else:
                    hi = mid
            if lo < len(closed) and closed[lo]["w"] == record["w"]:
                self._fold_into(closed[lo], record)
                return
            closed.insert(lo, record)
        if len(closed) > self._rec.horizon:
            del closed[0 : len(closed) - self._rec.horizon]

    def windows(self) -> list[dict]:
        """Every non-empty window sorted by index, oldest first.

        The open window slots into position — after a merge it can
        trail closed windows folded in from another recorder.
        """
        out = [dict(w, counts=list(w["counts"])) for w in self.closed]
        win = self._open
        if win is not None and win.count:
            record = win.to_dict()
            idx = len(out)
            while idx > 0 and out[idx - 1]["w"] > record["w"]:
                idx -= 1
            out.insert(idx, record)
        return out

    def fold(self, win: dict) -> None:
        """Merge one window dict into this series (same window width)."""
        open_win = self._open
        if open_win is not None and open_win.w == win["w"]:
            target = open_win.to_dict()
            self._fold_into(target, win)
            open_win.count = target["count"]
            open_win.sum = target["sum"]
            open_win.min = target["min"]
            open_win.max = target["max"]
            open_win.counts = target["counts"]
            return
        self._insert_closed(dict(win, counts=list(win["counts"])))

    @staticmethod
    def _fold_into(target: dict, win: dict) -> None:
        target["count"] += win["count"]
        target["sum"] += win["sum"]
        target["min"] = min(target["min"], win["min"])
        target["max"] = max(target["max"], win["max"])
        target["counts"] = [a + b for a, b in zip(target["counts"], win["counts"])]


class TimelineRecorder:
    """Windowed simulated-time timeseries over many named series.

    Parameters
    ----------
    window_s:
        Fixed window width in **simulated** seconds; window ``w``
        covers ``[w * window_s, (w + 1) * window_s)``.
    horizon:
        Ring-buffer bound — closed windows kept per series (oldest
        evicted first).
    buckets:
        Ascending quantile-bucket upper bounds shared by all series.
    registry:
        Metrics registry that receives ``{name}_window`` gauges when a
        window closes (the most recent closed window, per aggregate),
        so the Prometheus endpoint exposes live trajectory points.
        Defaults to :func:`repro.obs.metrics.default_registry`;
        pass ``False`` to disable publication.
    """

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        horizon: int = DEFAULT_HORIZON,
        buckets=DEFAULT_TS_BUCKETS,
        registry: MetricsRegistry | None | bool = None,
    ) -> None:
        if window_s <= 0.0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be strictly ascending")
        self.window_s = float(window_s)
        self.horizon = int(horizon)
        self._bounds = bounds
        if registry is False:
            self._registry = None
        else:
            self._registry = registry if registry is not None else default_registry()
        self._series: dict[str, TimeSeries] = {}
        self._gauges: dict[str, object] = {}
        self._samplers: list[tuple[TimeSeries, object]] = []

    # -- series management -------------------------------------------------

    def series(self, name: str, help: str = "", **labels) -> TimeSeries:
        """Get or create the series for ``(name, labels)``."""
        key = _series_key(name, labels)
        s = self._series.get(key)
        if s is None:
            s = self._series[key] = TimeSeries(self, name, help, dict(labels))
        return s

    def sample(self, name: str, fn, help: str = "", **labels) -> TimeSeries:
        """Register ``fn()`` to be sampled at every :meth:`advance_to`.

        The callable runs on the simulated clock (once per advance, at
        the advance time) — the pull-style complement of the push-style
        :meth:`TimeSeries.observe` feed.
        """
        s = self.series(name, help, **labels)
        self._samplers.append((s, fn))
        return s

    def advance_to(self, t: float) -> None:
        """Move the recorder clock: run samplers, close elapsed windows."""
        for s, fn in self._samplers:
            value = fn()
            if value is not None:
                s.observe(t, value)
        for s in self._series.values():
            s.advance_to(t)

    # -- window-close gauge publication ------------------------------------

    def _publish(self, series: TimeSeries, win: dict) -> None:
        reg = self._registry
        if reg is None or not reg.enabled:
            return
        gauge = self._gauges.get(series.name)
        if gauge is None:
            gauge = self._gauges[series.name] = reg.gauge(
                series.name + "_window",
                (series.help or series.name) + " (most recent closed window)",
            )
        values = {
            "count": float(win["count"]),
            "mean": window_mean(win),
            "min": win["min"],
            "max": win["max"],
            "p50": window_quantile(win, 0.50, self._bounds),
            "p99": window_quantile(win, 0.99, self._bounds),
        }
        for agg in _WINDOW_AGGS:
            gauge.set(values[agg], agg=agg, **series.labels)

    # -- snapshot / merge ---------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data state: JSON-able, mergeable, export-ready.

        Open windows are included (they carry real samples); folding a
        snapshot into another recorder goes through :meth:`merge`.
        """
        series = {}
        for key in sorted(self._series):
            s = self._series[key]
            wins = s.windows()
            if wins:
                series[key] = {
                    "name": s.name,
                    "help": s.help,
                    "labels": dict(s.labels),
                    "windows": wins,
                }
        return {
            "schema": TIMESERIES_SCHEMA,
            "window_s": self.window_s,
            "horizon": self.horizon,
            "buckets": list(self._bounds),
            "series": series,
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot from another recorder into this one.

        Window width and buckets must match — window indices are only
        comparable at the same width.  Deterministic: iterates series
        in sorted key order, windows in recorded order, so merging the
        same snapshots in the same order always gives the same state
        (the ``jobs=1`` vs ``jobs=N`` bit-identity hinge).
        """
        if not snapshot or not snapshot.get("series"):
            return
        if snapshot["window_s"] != self.window_s:
            raise ValueError(
                f"window_s mismatch: recorder {self.window_s}, "
                f"snapshot {snapshot['window_s']}"
            )
        if tuple(snapshot["buckets"]) != self._bounds:
            raise ValueError("bucket-bound mismatch between recorder and snapshot")
        for key in sorted(snapshot["series"]):
            entry = snapshot["series"][key]
            s = self.series(entry["name"], entry.get("help", ""), **entry["labels"])
            for win in entry["windows"]:
                s.fold(win)


# -- process default (mirrors default_tracer) ------------------------------

_default_recorder: TimelineRecorder | None = None


def default_recorder() -> TimelineRecorder | None:
    """The process default recorder, or ``None`` when recording is off.

    Gated on :func:`repro.obs.metrics.obs_enabled`: with ``REPRO_OBS=0``
    this returns ``None`` *even when a recorder is installed*, so
    instrumented components resolve to no-recording at construction
    and the engine's null-sink overhead contract holds.
    """
    if not obs_enabled():
        return None
    return _default_recorder


def set_default_recorder(
    recorder: TimelineRecorder | None,
) -> TimelineRecorder | None:
    """Install (or clear, with ``None``) the default recorder; returns the old."""
    global _default_recorder
    old = _default_recorder
    _default_recorder = recorder
    return old


@contextmanager
def scoped_recorder(
    recorder: TimelineRecorder | None = None,
    *,
    enabled: bool = True,
    window_s: float = DEFAULT_WINDOW_S,
    horizon: int = DEFAULT_HORIZON,
):
    """Install a recorder for the duration of a ``with`` block.

    Creates a fresh :class:`TimelineRecorder` when none is given (and
    observability is on); ``enabled=False`` installs ``None`` so a
    block runs recorder-free regardless of the ambient default —
    sweep workers use this to match the parent's recording decision
    on both the serial and the process-pool path.
    """
    if recorder is None and enabled and obs_enabled():
        recorder = TimelineRecorder(window_s=window_s, horizon=horizon)
    if not enabled:
        recorder = None
    old = set_default_recorder(recorder)
    try:
        yield recorder
    finally:
        set_default_recorder(old)


# -- exports ----------------------------------------------------------------


def write_timeseries_jsonl(path, snapshot: dict) -> Path:
    """Write a snapshot as JSONL: one header line, one line per window.

    Line-per-record makes the file tail-recoverable: a crash mid-write
    loses at most the torn final line (see :func:`load_timeseries_jsonl`),
    exactly like the streaming trace sink.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        header = {k: v for k, v in snapshot.items() if k != "series"}
        header["kind"] = "timeseries"
        fh.write(json.dumps(header) + "\n")
        for key in sorted(snapshot.get("series", {})):
            entry = snapshot["series"][key]
            for win in entry["windows"]:
                record = {
                    "series": key,
                    "name": entry["name"],
                    "labels": entry["labels"],
                }
                record.update(win)
                fh.write(json.dumps(record) + "\n")
    return path


def load_timeseries_jsonl(path) -> dict:
    """Load a JSONL timeseries back into snapshot form.

    Mirrors ``load_streaming_trace``: a torn final line (killed
    process, full disk) ends the read at the last intact record
    instead of raising, so every window written before the tear is
    recovered.
    """
    path = Path(path)
    snapshot: dict = {
        "schema": TIMESERIES_SCHEMA,
        "window_s": DEFAULT_WINDOW_S,
        "horizon": DEFAULT_HORIZON,
        "buckets": list(DEFAULT_TS_BUCKETS),
        "series": {},
    }
    series = snapshot["series"]
    first = True
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail: keep everything before it
            if first:
                first = False
                if record.get("kind") == "timeseries":
                    for field in ("schema", "window_s", "horizon", "buckets"):
                        if field in record:
                            snapshot[field] = record[field]
                    continue
            key = record.get("series")
            if key is None:
                continue
            entry = series.get(key)
            if entry is None:
                entry = series[key] = {
                    "name": record["name"],
                    "help": "",
                    "labels": record.get("labels", {}),
                    "windows": [],
                }
            entry["windows"].append(
                {
                    "w": record["w"],
                    "count": record["count"],
                    "sum": record["sum"],
                    "min": record["min"],
                    "max": record["max"],
                    "counts": list(record["counts"]),
                }
            )
    return snapshot


def write_timeseries_npz(path, snapshot: dict) -> Path:
    """Write a snapshot as a columnar ``.npz``.

    One int64 window-index column, float64 count/sum/min/max columns
    and a 2-D int64 bucket-count matrix per series, plus a JSON
    ``meta`` blob naming the series — the layout numpy analysis reads
    straight into arrays without any per-window parsing.
    """
    import numpy as np

    path = Path(path)
    meta = {
        "schema": snapshot.get("schema", TIMESERIES_SCHEMA),
        "window_s": snapshot["window_s"],
        "horizon": snapshot.get("horizon", DEFAULT_HORIZON),
        "buckets": list(snapshot["buckets"]),
        "series": [],
    }
    arrays: dict = {}
    for i, key in enumerate(sorted(snapshot.get("series", {}))):
        entry = snapshot["series"][key]
        wins = entry["windows"]
        meta["series"].append(
            {"key": key, "name": entry["name"], "labels": entry["labels"]}
        )
        arrays[f"s{i}_w"] = np.array([w["w"] for w in wins], dtype=np.int64)
        arrays[f"s{i}_count"] = np.array([w["count"] for w in wins], dtype=np.int64)
        arrays[f"s{i}_sum"] = np.array([w["sum"] for w in wins], dtype=np.float64)
        arrays[f"s{i}_min"] = np.array([w["min"] for w in wins], dtype=np.float64)
        arrays[f"s{i}_max"] = np.array([w["max"] for w in wins], dtype=np.float64)
        arrays[f"s{i}_counts"] = np.array(
            [w["counts"] for w in wins], dtype=np.int64
        ).reshape(len(wins), -1)
    arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    with path.open("wb") as fh:
        np.savez(fh, **arrays)
    return path


def load_timeseries_npz(path) -> dict:
    """Load a columnar ``.npz`` timeseries back into snapshot form."""
    import numpy as np

    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        series = {}
        for i, info in enumerate(meta["series"]):
            ws = data[f"s{i}_w"]
            counts2d = data[f"s{i}_counts"]
            wins = [
                {
                    "w": int(ws[j]),
                    "count": int(data[f"s{i}_count"][j]),
                    "sum": float(data[f"s{i}_sum"][j]),
                    "min": float(data[f"s{i}_min"][j]),
                    "max": float(data[f"s{i}_max"][j]),
                    "counts": counts2d[j].tolist(),
                }
                for j in range(len(ws))
            ]
            series[info["key"]] = {
                "name": info["name"],
                "help": "",
                "labels": info["labels"],
                "windows": wins,
            }
    return {
        "schema": meta["schema"],
        "window_s": meta["window_s"],
        "horizon": meta["horizon"],
        "buckets": meta["buckets"],
        "series": series,
    }
