"""Process-pool fan-out for campaigns, sweeps and experiment batteries.

The simulator is deterministic and CPU-bound pure Python, so the way to
"run as fast as the hardware allows" is to fan independent simulation
points — campaign seeds, experiment sweep points, failure cases — out
across processes.  This module is the one place that owns that policy:

* :func:`resolve_jobs` — turn a CLI ``--jobs`` value into a worker
  count (``None``/1 = serial, 0 or negative = all cores);
* :func:`parallel_map` — order-preserving map over a process pool that
  degrades to a plain loop when one worker (or one item) makes a pool
  pointless.

Results are returned **in submission order** no matter which worker
finishes first, so callers get order-independent merging for free — a
parallel run is indistinguishable from the serial one provided the
work function is deterministic.  Every fan-out entry point in this
repo derives per-item randomness from
:class:`numpy.random.SeedSequence` children (never from shared global
state), which is what makes that guarantee hold bit-for-bit; see
``docs/performance.md``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["resolve_jobs", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int | None) -> int:
    """Worker count for a ``--jobs`` value.

    ``None`` or ``1`` mean serial; ``0`` and negative values mean "use
    every core" (the ``make -j`` convention); anything else is taken
    literally.
    """
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """``[fn(x) for x in items]``, fanned out across processes.

    ``fn`` and every item must be picklable (module-level functions and
    plain data).  With ``jobs`` resolving to 1 — or fewer than two
    items — no pool is created and the map runs inline, which keeps
    tracebacks readable and makes serial-vs-parallel comparisons a pure
    scheduling experiment.

    Results always come back in item order; a worker raising propagates
    the exception to the caller after the pool shuts down.
    """
    work: Sequence[T] = list(items)
    n_workers = min(resolve_jobs(jobs), len(work))
    if n_workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(fn, work, chunksize=chunksize))
