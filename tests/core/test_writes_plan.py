"""WritePlan mechanics independent of any particular layout."""

from __future__ import annotations

from repro.core.writes import WritePlan


def test_empty_plan():
    plan = WritePlan()
    assert plan.num_write_accesses == 0
    assert plan.num_read_accesses == 0
    assert plan.total_elements_written == 0


def test_add_write_dedups_and_sorts():
    plan = WritePlan()
    plan.add_write(2, 5)
    plan.add_write(2, 1)
    plan.add_write(2, 5)
    assert plan.writes == {2: [1, 5]}
    assert plan.total_elements_written == 2


def test_accesses_are_max_per_disk():
    plan = WritePlan()
    plan.add_write(0, 0)
    plan.add_write(0, 1)
    plan.add_write(1, 0)
    plan.add_read(3, 2)
    assert plan.num_write_accesses == 2
    assert plan.num_read_accesses == 1


def test_merge_unions_reads_and_writes():
    a = WritePlan()
    a.add_write(0, 0)
    a.add_read(1, 1)
    b = WritePlan()
    b.add_write(0, 1)
    b.add_write(2, 0)
    b.add_read(1, 1)  # duplicate read collapses
    merged = a.merge(b)
    assert merged.writes == {0: [0, 1], 2: [0]}
    assert merged.reads == {1: [1]}
    # originals untouched
    assert a.writes == {0: [0]}


def test_totals_count_elements_not_disks():
    plan = WritePlan()
    for disk in range(3):
        for row in range(2):
            plan.add_write(disk, row)
    plan.add_read(0, 0)
    assert plan.total_elements_written == 6
    assert plan.total_elements_read == 1
