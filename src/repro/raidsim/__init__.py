"""RAID-level simulation: controllers, rebuild drivers, measurements."""

from .availability import (
    AvailabilityPoint,
    average_reconstruction_throughput,
    measure_case,
    reconstruction_series,
)
from .campaign import (
    CampaignComparison,
    CampaignRun,
    SweepPoint,
    SweepResult,
    clean_rebuild_makespan,
    compare_arrangements,
    compare_sweep,
    default_fault_plan,
    derive_sweep_seeds,
    run_campaign,
)
from .controller import (
    FaultStats,
    RaidController,
    RebuildCheckpoint,
    RebuildResult,
    RetryPolicy,
    WriteResult,
)
from .degraded import DegradedArray, DegradedStats
from .leaderboard import (
    LeaderboardConfig,
    LeaderboardEntry,
    LeaderboardResult,
    leaderboard_duration_s,
    run_leaderboard,
    run_leaderboard_entry,
)
from .reconstruction import OnlineReconstruction, OnlineResult, degraded_read_sources
from .scrub import ScrubReport, Scrubber
from .serve import (
    ServeComparison,
    ServeConfig,
    ServeResult,
    compare_serve,
    run_serve,
    serve_arrivals,
)
from .writes import WritePoint, measure_write_throughput, write_series

__all__ = [
    "RaidController",
    "RebuildResult",
    "WriteResult",
    "RetryPolicy",
    "FaultStats",
    "RebuildCheckpoint",
    "CampaignRun",
    "CampaignComparison",
    "default_fault_plan",
    "clean_rebuild_makespan",
    "run_campaign",
    "compare_arrangements",
    "SweepPoint",
    "SweepResult",
    "derive_sweep_seeds",
    "compare_sweep",
    "AvailabilityPoint",
    "measure_case",
    "average_reconstruction_throughput",
    "reconstruction_series",
    "OnlineReconstruction",
    "OnlineResult",
    "degraded_read_sources",
    "ServeConfig",
    "ServeResult",
    "ServeComparison",
    "serve_arrivals",
    "run_serve",
    "compare_serve",
    "LeaderboardConfig",
    "LeaderboardEntry",
    "LeaderboardResult",
    "leaderboard_duration_s",
    "run_leaderboard",
    "run_leaderboard_entry",
    "Scrubber",
    "ScrubReport",
    "DegradedArray",
    "DegradedStats",
    "WritePoint",
    "measure_write_throughput",
    "write_series",
]
