"""The nemesis campaign loop: simulated weeks of probes under the storm.

Continuously simulating a week of disk traffic event-by-event is not
tractable in a discrete-event simulator written in Python — and not
necessary.  The campaign instead *samples* the week: the horizon is cut
into ticks (default one simulated hour) and each tick runs a small,
independent **probe simulation** — a fresh controller facing exactly
the faults the schedule says are active at that instant:

* no disk death active → a Poisson user-read probe measuring latency,
  throughput and served fraction;
* a death active → an on-line reconstruction probe (rebuild plus user
  reads), additionally measuring rebuild progress.

Each probe is a pure function of ``(config, schedule, arrangement,
tick)`` — its fault plan and read stream derive from per-tick
:class:`numpy.random.SeedSequence` spawns — which buys the three
properties a long-running nemesis daemon needs for free:

* **bit-reproducibility**: same seed → identical samples, hence an
  identical report (pinned by a digest over the sample stream);
* **checkpoint-resume**: completed ticks are replayed from the
  checkpoint file, the rest are recomputed; a campaign killed mid-week
  resumes to the very same final report;
* **identical storms across arrangements**: both arrangements consume
  the same frozen :class:`~repro.nemesis.schedule.NemesisSchedule`.

Every tick's samples feed the
:class:`~repro.nemesis.anomaly.AnomalyDetector`, and the campaign ends
by checking the attribution invariant: *every excursion overlaps an
active fault*.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import asdict, dataclass, field

import numpy as np

from ..core.registry import LAYOUTS, comparison_pair
from ..disksim.array import DEFAULT_ELEMENT_SIZE
from ..disksim.faultplan import FaultPlan
from ..disksim.scheduler import PriorityScheduler
from ..obs import default_registry, default_tracer
from ..raidsim.controller import RaidController, RetryPolicy
from ..raidsim.reconstruction import OnlineReconstruction
from ..workloads.generator import user_read_stream
from .anomaly import AnomalyDetector, AttributionReport, MetricSpec
from .schedule import HazardRates, NemesisSchedule, build_schedule
from .tracker import FaultTimeline

__all__ = [
    "NemesisConfig",
    "TickSample",
    "ArrangementReport",
    "NemesisReport",
    "run_nemesis_campaign",
]

#: bump when checkpoint / report wire formats change shape
CAMPAIGN_SCHEMA_VERSION = 1

_ROLES = ("traditional", "shifted")


@dataclass(frozen=True)
class NemesisConfig:
    """Everything a nemesis campaign run is a pure function of."""

    family: str = "mirror"
    n: int = 4
    horizon_s: float = 7 * 86_400.0
    tick_s: float = 3600.0
    seed: int = 2012
    rates: HazardRates = field(default_factory=HazardRates)
    safety_budget: int = 1
    allow_excess: bool = False
    # probe sizing
    n_stripes: int = 6
    element_size: int = DEFAULT_ELEMENT_SIZE
    payload_bytes: int = 8
    # 8 reads/s keeps the probe array comfortably below saturation, so
    # quiet-tick latency jitter stays ~6% CV — far inside the excursion
    # thresholds (saturated probes at 30/s showed 20% CV and tails past
    # 1.7x the mean, indistinguishable from real fault damage)
    reads_per_tick: int = 32
    read_rate_per_s: float = 8.0
    rebuild_window: int = 4
    backoff_jitter: float = 0.3
    # anomaly thresholds
    rel_threshold: float = 0.5
    z_threshold: float = 5.0
    baseline_window: int = 64
    min_baseline: int = 6

    def __post_init__(self) -> None:
        if self.horizon_s <= 0 or self.tick_s <= 0:
            raise ValueError("horizon_s and tick_s must be positive")
        if self.tick_s > self.horizon_s:
            raise ValueError("tick_s must not exceed horizon_s")
        if self.reads_per_tick < 1:
            raise ValueError("reads_per_tick must be >= 1")
        comparison_pair(self.family)  # validate the family up front

    @property
    def n_ticks(self) -> int:
        return int(math.ceil(self.horizon_s / self.tick_s))

    def metric_specs(self) -> tuple[MetricSpec, ...]:
        rel, z = self.rel_threshold, self.z_threshold
        win, lo = self.baseline_window, self.min_baseline
        return (
            MetricSpec("user_latency_s", "high", rel, z, win, lo),
            MetricSpec("read_throughput_rps", "low", rel, z, win, lo),
            MetricSpec("unavailability", "high", rel, z, win, min_samples=2),
            MetricSpec("rebuild_mbps", "low", rel, z, win, min_samples=3),
        )

    def to_dict(self) -> dict:
        d = asdict(self)
        d["rates"] = asdict(self.rates)
        return d

    def fingerprint(self) -> str:
        """Digest of the config — checkpoints refuse to cross it."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class TickSample:
    """One tick's probe measurements (the unit of checkpointing)."""

    tick: int
    t_s: float
    served: int
    failed: int
    user_latency_s: float
    read_throughput_rps: float
    unavailability: float
    #: rebuild progress when a death was active, else ``None``
    rebuild_mbps: float | None
    degraded: bool
    active_fault_ids: tuple[int, ...]

    def to_dict(self) -> dict:
        d = asdict(self)
        d["active_fault_ids"] = list(self.active_fault_ids)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TickSample":
        d = dict(d)
        d["active_fault_ids"] = tuple(d["active_fault_ids"])
        return cls(**d)


@dataclass(frozen=True)
class ArrangementReport:
    """One arrangement's week under the storm, summarised."""

    layout_name: str
    role: str
    n_ticks: int
    availability: float
    mean_latency_s: float
    mean_throughput_rps: float
    rebuild_ticks: int
    attribution: AttributionReport
    #: sha256 over the canonical sample stream — the determinism anchor
    digest: str

    def to_dict(self) -> dict:
        return {
            "layout": self.layout_name,
            "role": self.role,
            "n_ticks": self.n_ticks,
            "availability": self.availability,
            "mean_latency_s": self.mean_latency_s,
            "mean_throughput_rps": self.mean_throughput_rps,
            "rebuild_ticks": self.rebuild_ticks,
            "attribution": self.attribution.to_dict(),
            "digest": self.digest,
        }


@dataclass(frozen=True)
class NemesisReport:
    """Both arrangements under the identical schedule, plus the verdict."""

    config: NemesisConfig
    schedule: NemesisSchedule
    traditional: ArrangementReport
    shifted: ArrangementReport

    @property
    def availability_delta(self) -> float:
        return self.shifted.availability - self.traditional.availability

    @property
    def unexplained_total(self) -> int:
        return len(self.traditional.attribution.unexplained) + len(
            self.shifted.attribution.unexplained
        )

    @property
    def attribution_coverage(self) -> float:
        n = (
            self.traditional.attribution.n_excursions
            + self.shifted.attribution.n_excursions
        )
        if n == 0:
            return 1.0
        return 1.0 - self.unexplained_total / n

    @property
    def digest(self) -> str:
        """One digest over both arrangements' sample streams."""
        return hashlib.sha256(
            (self.traditional.digest + self.shifted.digest).encode()
        ).hexdigest()[:16]

    def assert_invariant(self) -> None:
        self.traditional.attribution.assert_invariant()
        self.shifted.attribution.assert_invariant()

    def to_dict(self) -> dict:
        timeline = FaultTimeline.from_schedule(self.schedule)
        return {
            "schema_version": CAMPAIGN_SCHEMA_VERSION,
            "config": self.config.to_dict(),
            "fingerprint": self.config.fingerprint(),
            "schedule": self.schedule.to_dict(),
            "active_fault_timeline": timeline.to_dict(),
            "traditional": self.traditional.to_dict(),
            "shifted": self.shifted.to_dict(),
            "availability_delta": self.availability_delta,
            "attribution_coverage": self.attribution_coverage,
            "unexplained_total": self.unexplained_total,
            "digest": self.digest,
        }


# ----------------------------------------------------------------------
# probes
# ----------------------------------------------------------------------
def _tick_plan(
    config: NemesisConfig, schedule: NemesisSchedule, arr_idx: int, tick: int
) -> tuple[FaultPlan, list[int], tuple[int, ...], int]:
    """The per-tick fault plan: exactly what is active at the tick start."""
    t0 = tick * config.tick_s
    active = schedule.active_at(t0)
    ss = np.random.SeedSequence(config.seed, spawn_key=(arr_idx, tick))
    fault_seed, read_seed = (int(x) for x in ss.generate_state(2, dtype=np.uint64))
    plan = FaultPlan(seed=fault_seed)
    failed: list[int] = []
    burst_rate = 0.0
    lse_burst = 0
    for f in active:
        if f.kind == "disk-death":
            failed.append(f.disk % schedule.n_disks)
        elif f.kind == "fail-slow":
            plan = plan.with_fail_slow(f.disk % schedule.n_disks, f.magnitude)
        elif f.kind == "transient-burst":
            burst_rate = max(burst_rate, f.magnitude)
        elif f.kind == "lse-storm":
            lse_burst += int(f.magnitude)
    if burst_rate > 0:
        plan = plan.with_transients(rate=burst_rate)
    if lse_burst > 0:
        plan = plan.with_lse_burst(lse_burst)
    return plan, sorted(set(failed)), tuple(f.fault_id for f in active), read_seed


def _read_probe(ctrl: RaidController, reads) -> tuple[list[float], int]:
    """Serve a user-read stream on a healthy array; no rebuild underneath."""
    latencies: list[float] = []
    failed = 0

    def schedule_read(read) -> None:
        def fire() -> None:
            cell = ctrl.place(read.stripe, ctrl.layout.data_cell(read.i, read.j))
            t0 = ctrl.array.now

            def settled(failed_reqs) -> None:
                nonlocal failed
                latencies.append(ctrl.array.now - t0)
                failed += len(failed_reqs)

            ctrl._submit_reads_with_retry([cell], "user", settled, priority=0)

        ctrl.array.sim.schedule(max(0.0, read.time - ctrl.array.now), fire)

    for read in reads:
        schedule_read(read)
    ctrl.array.run()
    return latencies, failed


def _probe_tick(
    layout, config: NemesisConfig, schedule: NemesisSchedule, arr_idx: int, tick: int
) -> TickSample:
    """Run one tick's probe simulation and distil it into a sample."""
    plan, failed_disks, active_ids, read_seed = _tick_plan(
        config, schedule, arr_idx, tick
    )
    ctrl = RaidController(
        layout,
        n_stripes=config.n_stripes,
        element_size=config.element_size,
        scheduler_factory=PriorityScheduler,
        payload_bytes=config.payload_bytes,
        fault_plan=plan,
        retry_policy=RetryPolicy(jitter=config.backoff_jitter),
        tracer=False,
    )
    reads = user_read_stream(
        layout.n,
        config.n_stripes,
        duration_s=config.reads_per_tick / config.read_rate_per_s,
        rate_per_s=config.read_rate_per_s,
        rng=np.random.default_rng(read_seed),
    )
    rebuild_mbps: float | None = None
    if failed_disks:
        online = OnlineReconstruction(
            ctrl, failed_disks, reads, window=config.rebuild_window
        ).run()
        served = online.n_user_reads
        n_failed = online.failed_user_reads
        latency = online.mean_user_latency_s
        rebuild_mbps = online.rebuild.recovered_throughput_mbps
    else:
        latencies, n_failed = _read_probe(ctrl, reads)
        served = len(latencies)
        # NaN, not 0.0, when the probe served nothing — the same
        # zero-sample contract as OnlineResult; _feed_detector gates on
        # sample.served so the detector never eats it
        latency = float(np.mean(latencies)) if latencies else float("nan")
    span = ctrl.array.now
    throughput = served / span if span > 0 else 0.0
    return TickSample(
        tick=tick,
        t_s=tick * config.tick_s,
        served=served,
        failed=n_failed,
        user_latency_s=latency,
        read_throughput_rps=throughput,
        unavailability=n_failed / served if served else 0.0,
        rebuild_mbps=rebuild_mbps,
        degraded=bool(failed_disks),
        active_fault_ids=active_ids,
    )


# ----------------------------------------------------------------------
# checkpointing
# ----------------------------------------------------------------------
def _samples_digest(samples: list[TickSample]) -> str:
    blob = json.dumps([s.to_dict() for s in samples], sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _load_checkpoint(path, fingerprint: str) -> dict[str, list[TickSample]]:
    empty: dict[str, list[TickSample]] = {role: [] for role in _ROLES}
    if path is None or not os.path.exists(path):
        return empty
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("schema_version") != CAMPAIGN_SCHEMA_VERSION:
        raise ValueError(
            f"checkpoint schema {data.get('schema_version')} unsupported"
        )
    if data.get("fingerprint") != fingerprint:
        raise ValueError(
            "checkpoint was written by a different campaign config "
            f"({data.get('fingerprint')} != {fingerprint})"
        )
    return {
        role: [TickSample.from_dict(d) for d in data.get("samples", {}).get(role, [])]
        for role in _ROLES
    }


def _save_checkpoint(
    path, fingerprint: str, samples: dict[str, list[TickSample]]
) -> None:
    if path is None:
        return
    payload = {
        "schema_version": CAMPAIGN_SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "samples": {
            role: [s.to_dict() for s in ticks] for role, ticks in samples.items()
        },
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)  # atomic: a killed campaign never truncates


# ----------------------------------------------------------------------
# the campaign loop
# ----------------------------------------------------------------------
def _feed_detector(
    detector: AnomalyDetector, timeline: FaultTimeline, sample: TickSample
) -> None:
    """Route one sample's metrics into the detector (replay-identical)."""
    t = sample.t_s
    if sample.served:
        detector.observe(t, "user_latency_s", sample.user_latency_s)
        detector.observe(t, "read_throughput_rps", sample.read_throughput_rps)
        detector.observe(t, "unavailability", sample.unavailability)
    if sample.rebuild_mbps is not None:
        # rebuild progress is baselined against *other rebuilds*: a tick
        # is quiet for this metric when the death being repaired is the
        # only active fault
        kinds = {iv.kind for iv in timeline.active_at(t)}
        detector.observe(
            t, "rebuild_mbps", sample.rebuild_mbps, quiet=kinds == {"disk-death"}
        )


def _run_arrangement(
    layout,
    role: str,
    arr_idx: int,
    config: NemesisConfig,
    schedule: NemesisSchedule,
    timeline: FaultTimeline,
    samples: dict[str, list[TickSample]],
    budget: list,
    checkpoint_path,
    fingerprint: str,
) -> ArrangementReport | None:
    reg = default_registry()
    ticks_counter = reg.counter("nemesis.ticks_total", "probe ticks completed")
    detector = AnomalyDetector(timeline, metrics=config.metric_specs())
    mine = samples[role]
    for tick in range(config.n_ticks):
        if tick < len(mine):
            sample = mine[tick]  # replayed from the checkpoint
        else:
            if budget[0] is not None and budget[0] <= 0:
                _save_checkpoint(checkpoint_path, fingerprint, samples)
                return None
            sample = _probe_tick(layout, config, schedule, arr_idx, tick)
            mine.append(sample)
            if budget[0] is not None:
                budget[0] -= 1
            _save_checkpoint(checkpoint_path, fingerprint, samples)
        _feed_detector(detector, timeline, sample)
        timeline.observe_gauge(sample.t_s, arrangement=role)
        ticks_counter.inc(1.0, arrangement=role)
    tracer = default_tracer()
    if tracer is not None:
        group = tracer.group(f"nemesis {layout.name}")
        timeline.export_spans(group, horizon_s=config.horizon_s)
    with_reads = [s for s in mine if s.served]
    availability = (
        float(np.mean([1.0 - s.unavailability for s in with_reads]))
        if with_reads
        else 1.0
    )
    return ArrangementReport(
        layout_name=layout.name,
        role=role,
        n_ticks=len(mine),
        availability=availability,
        # zero-sample aggregates are NaN (never 0.0) — same contract as
        # OnlineResult; only reachable when every tick served nothing
        mean_latency_s=(
            float(np.mean([s.user_latency_s for s in with_reads]))
            if with_reads
            else float("nan")
        ),
        mean_throughput_rps=(
            float(np.mean([s.read_throughput_rps for s in with_reads]))
            if with_reads
            else float("nan")
        ),
        rebuild_ticks=sum(1 for s in mine if s.degraded),
        attribution=detector.report(),
        digest=_samples_digest(mine),
    )


def run_nemesis_campaign(
    config: NemesisConfig,
    checkpoint_path: str | None = None,
    stop_after_ticks: int | None = None,
) -> NemesisReport | None:
    """Both arrangements through the identical stochastic schedule.

    ``checkpoint_path`` persists every completed tick (atomically);
    rerunning with the same config resumes from it and — because every
    tick is a pure function of the config — converges on the very same
    report a never-interrupted run produces.

    ``stop_after_ticks`` bounds the number of *freshly computed* ticks
    before returning ``None`` (the test harness's stand-in for a
    mid-campaign kill); replayed ticks are free.
    """
    baseline_name, variant_name = comparison_pair(config.family)
    traditional = LAYOUTS[baseline_name](config.n)
    shifted = LAYOUTS[variant_name](config.n)
    if traditional.n_disks != shifted.n_disks:
        raise ValueError(
            "arrangements disagree on array width: "
            f"{traditional.n_disks} != {shifted.n_disks}"
        )
    schedule = build_schedule(
        traditional.n_disks,
        config.horizon_s,
        seed=config.seed,
        rates=config.rates,
        safety_budget=config.safety_budget,
        allow_excess=config.allow_excess,
    )
    timeline = FaultTimeline.from_schedule(schedule)
    timeline.export_metrics()
    fingerprint = config.fingerprint()
    samples = _load_checkpoint(checkpoint_path, fingerprint)
    budget = [stop_after_ticks]
    reports: dict[str, ArrangementReport] = {}
    for arr_idx, (role, layout) in enumerate(
        (("traditional", traditional), ("shifted", shifted))
    ):
        report = _run_arrangement(
            layout,
            role,
            arr_idx,
            config,
            schedule,
            timeline,
            samples,
            budget,
            checkpoint_path,
            fingerprint,
        )
        if report is None:
            return None
        reports[role] = report
    return NemesisReport(
        config=config,
        schedule=schedule,
        traditional=reports["traditional"],
        shifted=reports["shifted"],
    )
