"""Round packing: rounds realise the paper's parallel-I/O access model."""

from __future__ import annotations

from itertools import combinations

from repro.core.layouts import (
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
)
from repro.core.planner import (
    schedule_read_rounds,
    schedule_rounds,
    schedule_write_rounds,
)


def test_empty_schedule():
    assert schedule_rounds({}) == []
    assert schedule_rounds({0: []}) == []


def test_each_round_touches_each_disk_at_most_once():
    per_disk = {0: [0, 1, 2], 1: [4], 2: [5, 6]}
    rounds = schedule_rounds(per_disk)
    for batch in rounds:
        disks = [d for d, _ in batch]
        assert len(disks) == len(set(disks))


def test_round_count_equals_max_queue():
    per_disk = {0: [0, 1, 2], 1: [4], 2: [5, 6]}
    rounds = schedule_rounds(per_disk)
    assert len(rounds) == 3


def test_all_operations_scheduled_exactly_once():
    per_disk = {0: [0, 1], 3: [2, 5, 7]}
    rounds = schedule_rounds(per_disk)
    flat = [op for batch in rounds for op in batch]
    assert sorted(flat) == [(0, 0), (0, 1), (3, 2), (3, 5), (3, 7)]


def test_rounds_equal_num_read_accesses_for_all_mirror_plans():
    """The invariant that makes `num_read_accesses` *the* access count."""
    for n in (2, 3, 5):
        for builder in (traditional_mirror, shifted_mirror):
            lay = builder(n)
            for f in range(lay.n_disks):
                plan = lay.reconstruction_plan([f])
                assert len(schedule_read_rounds(plan)) == plan.num_read_accesses


def test_rounds_equal_accesses_for_parity_double_failures():
    lay = shifted_mirror_parity(4)
    for failed in combinations(range(lay.n_disks), 2):
        plan = lay.reconstruction_plan(failed)
        assert len(schedule_read_rounds(plan)) == plan.num_read_accesses


def test_write_rounds_from_write_plan():
    lay = shifted_mirror_parity(4)
    plan = lay.large_write_plan(1)
    rounds = schedule_write_rounds(plan)
    assert len(rounds) == plan.num_write_accesses == 1
    assert len(rounds[0]) == 9  # 4 data + 4 replicas + parity
