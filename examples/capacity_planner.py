#!/usr/bin/env python3
"""Capacity planning: availability vs storage across architectures.

The paper frames its design as "balancing storage for data availability,
reconstruction efficiency, write efficiency, and other positive
features" (§VI-D).  This example builds that decision table for an
operator choosing an architecture at a given scale: storage efficiency,
fault tolerance, small/large write cost, reconstruction read accesses,
and simulated rebuild throughput — for every architecture in the
library, including the three-mirror extension of §VIII.

Run::

    python examples/capacity_planner.py [n]
"""

from __future__ import annotations

import sys

from repro.codes.evenodd import is_prime
from repro.core import (
    PermutationArrangement,
    RAID5Layout,
    RAID6Layout,
    ShiftedArrangement,
    ThreeMirrorLayout,
    XCodeLayout,
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
    traditional_mirror_parity,
)
from repro.raidsim import RaidController


def reverse_shift(n: int) -> PermutationArrangement:
    return PermutationArrangement(
        n, {(i, j): ((i - j) % n, i) for i in range(n) for j in range(n)}
    )


def architectures(n: int):
    yield traditional_mirror(n)
    yield shifted_mirror(n)
    yield traditional_mirror_parity(n)
    yield shifted_mirror_parity(n)
    yield ThreeMirrorLayout(n)
    yield ThreeMirrorLayout(n, ShiftedArrangement(n), reverse_shift(n))
    yield RAID5Layout(n)
    yield RAID6Layout(n, "rdp")
    if is_prime(n) and n >= 5:
        yield XCodeLayout(n)  # vertical RAID 6: prime widths only


def plan_metrics(layout):
    # worst case over failures that actually lose data (a failed parity
    # disk needs recomputation, but no user data is unavailable)
    worst_rebuild = 0
    for f in range(layout.n_disks):
        plan = layout.reconstruction_plan([f])
        loses_data = any(
            layout.content(*step.target).kind in ("data", "replica")
            for step in plan.steps
        )
        if loses_data:
            worst_rebuild = max(worst_rebuild, plan.num_read_accesses)
    small_write = layout.write_plan([(0, 0)]).total_elements_written
    large_write = layout.large_write_plan(0).num_write_accesses
    return worst_rebuild, small_write, large_write


def simulated_recovery_mbps(layout) -> float:
    """Recovered data per second — the paper's availability metric.

    Raw read MB/s flatters RAID 5/6, which read the whole stripe to
    recover one column; dividing by data actually recovered makes the
    architectures comparable.
    """
    controller = RaidController(layout, n_stripes=10, payload_bytes=8)
    return controller.rebuild([0]).recovered_throughput_mbps


def main(n: int) -> None:
    print(f"Architecture comparison at n={n} data disks (4 MB elements):\n")
    header = (
        f"{'architecture':<24}{'disks':>6}{'eff.':>7}{'ft':>4}"
        f"{'rd acc.':>9}{'sm wr':>7}{'lg wr':>7}{'recovery MB/s':>15}"
    )
    print(header)
    print("-" * len(header))
    for layout in architectures(n):
        rebuild_acc, small_write, large_write = plan_metrics(layout)
        mbps = simulated_recovery_mbps(layout)
        print(
            f"{layout.name:<24}{layout.n_disks:>6}"
            f"{layout.storage_efficiency():>7.2f}{layout.fault_tolerance:>4}"
            f"{rebuild_acc:>9}{small_write:>7}{large_write:>7}{mbps:>15.1f}"
        )
    print(
        "\nReading the table: the shifted variants keep their family's storage\n"
        "efficiency and write costs but collapse worst-case reconstruction\n"
        "accesses to 1-2, which the simulated rebuild throughput mirrors.\n"
        "RAID 5/6 pay full-stripe reads on every reconstruction — the paper's\n"
        "§II criticism — despite their superior storage efficiency."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
