"""The Layout contract: invariants every architecture must satisfy.

One parametrized suite over the whole zoo — anything added to the
library later gets these checks for free by joining ``ALL_LAYOUTS``.
"""

from __future__ import annotations

import pytest

from repro.core.arrangement import (
    GroupRotatedArrangement,
    PermutationArrangement,
    ShiftedArrangement,
)
from repro.core.layouts import (
    DeclusteredMirrorLayout,
    MirrorLayout,
    RAID5Layout,
    RAID6Layout,
    RebuildOptimalRDPLayout,
    ThreeMirrorLayout,
    XCodeLayout,
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
    traditional_mirror_parity,
)
from repro.core.reconstruction import split_into_phases


def _rev(n):
    return PermutationArrangement(
        n, {(i, j): ((i - j) % n, i) for i in range(n) for j in range(n)}
    )


ALL_LAYOUTS = [
    pytest.param(lambda: traditional_mirror(4), id="mirror"),
    pytest.param(lambda: shifted_mirror(4), id="shifted-mirror"),
    pytest.param(lambda: traditional_mirror_parity(4), id="mirror-parity"),
    pytest.param(lambda: shifted_mirror_parity(4), id="shifted-mirror-parity"),
    pytest.param(lambda: ThreeMirrorLayout(4), id="three-mirror"),
    pytest.param(
        lambda: ThreeMirrorLayout(4, ShiftedArrangement(4), _rev(4)),
        id="shifted-three-mirror",
    ),
    pytest.param(
        lambda: MirrorLayout(
            4, GroupRotatedArrangement(4, 2), name="group-rotated-mirror"
        ),
        id="group-rotated-mirror",
    ),
    pytest.param(lambda: DeclusteredMirrorLayout(4), id="declustered-mirror"),
    pytest.param(lambda: RAID5Layout(4), id="raid5"),
    pytest.param(lambda: RAID6Layout(4, "evenodd"), id="raid6-evenodd"),
    pytest.param(lambda: RAID6Layout(4, "rdp"), id="raid6-rdp"),
    pytest.param(
        lambda: RebuildOptimalRDPLayout(4), id="rebuild-optimal-rdp"
    ),
    pytest.param(lambda: XCodeLayout(5), id="xcode"),
]


@pytest.fixture(params=ALL_LAYOUTS)
def layout(request):
    return request.param()


def _data_rows(layout):
    return getattr(layout, "data_rows", layout.rows)


def test_contract_content_covers_every_cell(layout):
    """content() answers for every (disk, row) with a known kind."""
    kinds = {"data", "replica", "parity", "q_parity"}
    for disk in range(layout.n_disks):
        for row in range(layout.rows):
            c = layout.content(disk, row)
            assert c.kind in kinds, (disk, row, c)


def test_contract_every_data_element_stored_exactly_once(layout):
    """Each data coordinate appears at exactly one 'data' cell and
    data_cell() points there."""
    seen = {}
    for disk in range(layout.n_disks):
        for row in range(layout.rows):
            c = layout.content(disk, row)
            if c.kind == "data":
                assert (c.i, c.j) not in seen
                seen[(c.i, c.j)] = (disk, row)
    expected = {(i, j) for i in range(layout.n) for j in range(_data_rows(layout))}
    assert set(seen) == expected
    for (i, j), cell in seen.items():
        assert layout.data_cell(i, j) == cell


def test_contract_replica_cells_really_hold_replicas(layout):
    for i in range(layout.n):
        for j in range(_data_rows(layout)):
            for disk, row in layout.replica_cells(i, j):
                c = layout.content(disk, row)
                assert (c.kind, c.i, c.j) == ("replica", i, j)


def test_contract_storage_efficiency_in_unit_interval(layout):
    eff = layout.storage_efficiency()
    assert 0 < eff < 1


def test_contract_single_failure_plans_validate(layout):
    for f in range(layout.n_disks):
        plan = layout.reconstruction_plan([f])
        plan.validate(layout.n_disks, layout.rows)
        targets = [s.target for s in plan.steps]
        assert len(targets) == len(set(targets))
        assert set(targets) == {(f, r) for r in range(layout.rows)}


def test_contract_double_failure_plans_validate_when_tolerated(layout):
    from itertools import combinations

    if layout.fault_tolerance < 2:
        return
    for failed in combinations(range(layout.n_disks), 2):
        plan = layout.reconstruction_plan(failed)
        plan.validate(layout.n_disks, layout.rows)
        phases = split_into_phases(plan)
        assert [p.failed_disk for p in phases] == list(plan.failed_disks)


def test_contract_beyond_tolerance_rejected(layout):
    from repro.core.errors import UnrecoverableFailureError

    too_many = list(range(layout.fault_tolerance + 1))
    with pytest.raises(UnrecoverableFailureError):
        layout.reconstruction_plan(too_many)


def test_contract_small_write_is_one_parallel_access(layout):
    """Every architecture here writes a single element's update set to
    distinct disks — one access (RAID 6's multi-diagonal Q rows are the
    one permitted exception, still bounded by its own row count)."""
    plan = layout.write_plan([(0, 0)])
    assert plan.total_elements_written >= 2  # redundancy exists
    if isinstance(layout, RAID6Layout):
        assert plan.num_write_accesses <= layout.rows
    else:
        assert plan.num_write_accesses == 1


def test_contract_rebuild_through_controller_verifies(layout):
    from repro.raidsim.controller import RaidController

    ctrl = RaidController(layout, n_stripes=2, payload_bytes=4)
    assert ctrl.verify_redundancy()
    res = ctrl.rebuild([0])
    assert res.verified
