"""Trace collection and statistics over completed I/O.

The experiments report throughputs (MB/s) and latency statistics; this
module turns a :class:`~repro.disksim.events.Simulation`'s completion
log into those numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .events import Simulation
from .request import IOKind, IORequest

__all__ = ["TraceStats", "summarize", "read_throughput_mbps", "write_throughput_mbps"]

_MB = 1024 * 1024


@dataclass(frozen=True)
class TraceStats:
    """Aggregate statistics of a completed simulation run."""

    makespan_s: float
    bytes_read: int
    bytes_written: int
    n_reads: int
    n_writes: int
    read_throughput_mbps: float
    write_throughput_mbps: float
    mean_latency_s: float
    max_latency_s: float
    per_disk_busy_s: dict[int, float]
    per_disk_utilization: dict[int, float]
    #: requests that completed flagged with an error (LSE, transient,
    #: dead disk — see :mod:`repro.disksim.faultplan`)
    n_errors: int = 0
    #: requests that were retries (``attempt > 0``) of an earlier one
    n_retries: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"makespan {self.makespan_s * 1e3:.1f} ms, "
            f"read {self.read_throughput_mbps:.1f} MB/s, "
            f"write {self.write_throughput_mbps:.1f} MB/s"
        )


def _filter(requests: list[IORequest], tag: str | None) -> list[IORequest]:
    if tag is None:
        return requests
    return [r for r in requests if r.tag == tag]


def summarize(sim: Simulation, tag: str | None = None) -> TraceStats:
    """Statistics over the simulation's completed requests.

    Parameters
    ----------
    sim:
        A drained simulation.
    tag:
        Restrict to requests with this tag (e.g. only ``"user"`` reads
        of an on-line reconstruction run).
    """
    reqs = _filter(sim.completed, tag)
    makespan = max((r.finish_time for r in reqs), default=0.0)
    reads = [r for r in reqs if r.kind is IOKind.READ]
    writes = [r for r in reqs if r.kind is IOKind.WRITE]
    bytes_read = sum(r.size for r in reads)
    bytes_written = sum(r.size for r in writes)
    latencies = [r.latency for r in reqs]
    if tag is None:
        # whole-run view: the disk models' own busy accounting (which
        # also includes fail-slow inflation priced during service)
        busy = {s.model.disk_id: s.model.busy_time for s in sim.disks}
    else:
        # tag-filtered view: busy time must come from the *filtered*
        # request set, otherwise dividing the full-run busy time by the
        # filtered makespan reports utilizations above 1.0
        busy = {s.model.disk_id: 0.0 for s in sim.disks}
        for r in reqs:
            busy[r.disk] += r.service_duration
    util = {
        d: (b / makespan if makespan > 0 else 0.0) for d, b in busy.items()
    }
    return TraceStats(
        makespan_s=makespan,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        n_reads=len(reads),
        n_writes=len(writes),
        read_throughput_mbps=(bytes_read / _MB / makespan) if makespan > 0 else 0.0,
        write_throughput_mbps=(bytes_written / _MB / makespan) if makespan > 0 else 0.0,
        mean_latency_s=(sum(latencies) / len(latencies)) if latencies else 0.0,
        max_latency_s=max(latencies, default=0.0),
        per_disk_busy_s=busy,
        per_disk_utilization=util,
        n_errors=sum(1 for r in reqs if r.error),
        n_retries=sum(1 for r in reqs if r.attempt > 0),
    )


def read_throughput_mbps(sim: Simulation, tag: str | None = None) -> float:
    """Read MB/s over the run's makespan."""
    return summarize(sim, tag).read_throughput_mbps


def write_throughput_mbps(sim: Simulation, tag: str | None = None) -> float:
    """Write MB/s over the run's makespan."""
    return summarize(sim, tag).write_throughput_mbps
