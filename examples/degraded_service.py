#!/usr/bin/env python3
"""Life of a degraded array: fail, keep serving, resync, verify.

The paper's premise (§III) is that storage systems do not stop when a
disk dies. This walkthrough drives the explicit degraded-mode API:

1. a disk of a shifted mirror-with-parity array fails;
2. the array keeps serving reads (routed to replicas or the parity
   path) and writes (skipped cells tracked in a dirty map, parity
   advanced by read-modify-write deltas);
3. a replacement arrives; resync rebuilds the disk and replays the
   dirty state;
4. everything is verified byte-for-byte: old data against the
   pre-failure snapshot, writes accepted while degraded against their
   surviving redundancy.

Run::

    python examples/degraded_service.py
"""

from __future__ import annotations

import numpy as np

from repro.core import shifted_mirror_parity
from repro.raidsim import DegradedArray, RaidController
from repro.workloads import random_large_writes

N = 4
N_STRIPES = 6


def main() -> None:
    controller = RaidController(shifted_mirror_parity(N), n_stripes=N_STRIPES, payload_bytes=16)
    print(f"Healthy {controller.layout.name} array, n={N}: "
          f"redundancy intact = {controller.verify_redundancy()}")

    print("\n-- disk 1 fails; entering degraded mode --")
    degraded = DegradedArray(controller, [1])

    rng = np.random.default_rng(42)
    print("Serving reads that used to live on the failed disk:")
    for j in range(3):
        value = degraded.read(0, 1, j)
        print(f"  a[1,{j}] of stripe 0 -> {value[:4].tolist()}... "
              f"(served degraded: {degraded.stats.degraded_reads})")

    print("\nAccepting writes while degraded:")
    for op in random_large_writes(N, N_STRIPES, n_ops=8, rng=rng):
        degraded.write(op, rng=rng)
    print(f"  writes served: {degraded.stats.writes_served}, "
          f"elements deferred to resync: {degraded.stats.elements_skipped}")
    dirty_cells = sum(len(v) for v in degraded.dirty.values())
    print(f"  dirty map holds {dirty_cells} stale cells")

    print("\n-- replacement disk arrives; resyncing --")
    result = degraded.resync()
    print(f"  rebuilt {result.recovered_bytes / 2**20:.0f} MB in "
          f"{result.makespan_s:.2f} s ({result.read_throughput_mbps:.1f} MB/s reads)")
    print(f"  verified (old data + degraded writes): {result.verified}")
    print(f"  full redundancy restored: {controller.verify_redundancy()}")


if __name__ == "__main__":
    main()
