"""RDP: geometry, diagonal algebra, exhaustive double-erasure decode."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.rdp import RDP

GEOMETRIES = [(3, 2), (5, 4), (5, 2), (7, 6), (7, 3), (11, 9)]


def _stripe(rng, p, n, size=8):
    return rng.integers(0, 256, (p - 1, n, size)).astype(np.uint8)


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------


def test_rejects_non_prime_p():
    with pytest.raises(ValueError, match="odd prime"):
        RDP(6)


def test_rejects_bad_shortening():
    with pytest.raises(ValueError, match="1 <= n <= p-1"):
        RDP(5, 5)  # RDP fits at most p-1 data columns
    with pytest.raises(ValueError, match="1 <= n <= p-1"):
        RDP(5, 0)


def test_geometry():
    code = RDP(7, 5)
    assert code.rows == 6
    assert code.n == 5


# ----------------------------------------------------------------------
# encoding algebra
# ----------------------------------------------------------------------


def test_row_parity_is_row_xor(rng):
    code = RDP(5, 4)
    data = _stripe(rng, 5, 4)
    P, _ = code.encode(data)
    assert np.array_equal(P, np.bitwise_xor.reduce(data, axis=1))


def test_diagonal_parity_includes_row_parity_column(rng):
    """RDP's diagonals run over data AND row-parity columns."""
    p, n = 5, 4
    code = RDP(p, n)
    data = _stripe(rng, p, n)
    P, Q = code.encode(data)
    size = data.shape[2]
    for d in range(p - 1):
        acc = np.zeros(size, dtype=np.uint8)
        for j in range(p):  # includes column p-1 == row parity
            row = (d - j) % p
            if row == p - 1:
                continue
            if j == p - 1:
                acc ^= P[row]
            elif j < n:
                acc ^= data[row, j]
        assert np.array_equal(Q[d], acc)


def test_missing_diagonal_not_stored(rng):
    """Diagonal p-1 has no parity: Q has exactly p-1 rows."""
    code = RDP(7, 6)
    data = _stripe(rng, 7, 6)
    _, Q = code.encode(data)
    assert Q.shape[0] == 6


def test_shortened_matches_zero_padded(rng):
    p = 7
    short = RDP(p, 3)
    full = RDP(p, p - 1)
    data = _stripe(rng, p, 3)
    padded = np.concatenate(
        [data, np.zeros((p - 1, p - 1 - 3, data.shape[2]), dtype=np.uint8)], axis=1
    )
    ps, qs = short.encode(data)
    pf, qf = full.encode(padded)
    assert np.array_equal(ps, pf)
    assert np.array_equal(qs, qf)


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------


@pytest.mark.parametrize("p,n", GEOMETRIES)
def test_decode_every_single_and_double_erasure(p, n, rng):
    code = RDP(p, n)
    data = _stripe(rng, p, n)
    P, Q = code.encode(data)
    devs = [data[:, j].copy() for j in range(n)]
    patterns = list(combinations(range(n + 2), 1)) + list(combinations(range(n + 2), 2))
    for lost in patterns:
        cols = [None if j in lost else devs[j] for j in range(n)]
        rp = None if n in lost else P
        dq = None if n + 1 in lost else Q
        d2, p2, q2 = code.decode(cols, rp, dq)
        assert np.array_equal(d2, data), lost
        assert np.array_equal(p2, P), lost
        assert np.array_equal(q2, Q), lost


def test_decode_rejects_triple_erasure(rng):
    code = RDP(5, 4)
    data = _stripe(rng, 5, 4)
    P, Q = code.encode(data)
    devs = [data[:, j] for j in range(4)]
    with pytest.raises(ValueError, match="exceed"):
        code.decode([None, None, devs[2], devs[3]], None, Q)


def test_decode_rejects_wrong_column_count():
    with pytest.raises(ValueError, match="data columns"):
        RDP(5, 4).decode([None] * 3, None, None)


@given(seed=st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_random_content_random_double_erasure(seed):
    rng = np.random.default_rng(seed)
    p, n = 11, 10
    code = RDP(p, n)
    data = _stripe(rng, p, n, size=4)
    P, Q = code.encode(data)
    devs = [data[:, j].copy() for j in range(n)]
    lost = sorted(rng.choice(n + 2, size=2, replace=False).tolist())
    cols = [None if j in lost else devs[j] for j in range(n)]
    rp = None if n in lost else P
    dq = None if n + 1 in lost else Q
    d2, _, _ = code.decode(cols, rp, dq)
    assert np.array_equal(d2, data)
