"""XCodeLayout: the vertical RAID 6 architecture end to end."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.core.errors import LayoutError, UnrecoverableFailureError
from repro.core.layouts import XCodeLayout
from repro.raidsim.controller import RaidController
from repro.workloads.generator import random_large_writes


def test_counts():
    lay = XCodeLayout(7)
    assert lay.n_disks == 7
    assert lay.rows == 7
    assert lay.data_rows == 5
    assert lay.fault_tolerance == 2
    assert lay.storage_efficiency() == pytest.approx(5 / 7)
    assert lay.name == "xcode"


def test_requires_prime():
    with pytest.raises(ValueError):
        XCodeLayout(6)


def test_content_kinds():
    lay = XCodeLayout(5)
    assert lay.content(2, 0).kind == "data"
    assert lay.content(2, 3).kind == "parity"
    assert lay.content(2, 4).kind == "q_parity"


def test_small_write_is_update_optimal():
    """3 elements on 3 distinct disks, one access — the property the
    paper says horizontal RAID 6 cannot have."""
    lay = XCodeLayout(7)
    for i in range(7):
        for j in range(5):
            plan = lay.write_plan([(i, j)])
            assert plan.total_elements_written == 3, (i, j)
            assert plan.num_write_accesses == 1, (i, j)
            assert len(plan.writes) == 3  # three distinct disks


def test_data_row_bounds():
    lay = XCodeLayout(5)
    with pytest.raises(LayoutError):
        lay.data_cell(0, 3)  # rows 3, 4 are parity


def test_reconstruction_reads_all_intact_columns():
    lay = XCodeLayout(7)
    for failed in [(0,), (3,), (0, 4)]:
        plan = lay.reconstruction_plan(failed)
        assert plan.num_read_accesses == lay.rows
        assert plan.total_elements_read == (7 - len(failed)) * 7


def test_triple_failure_rejected():
    with pytest.raises(UnrecoverableFailureError):
        XCodeLayout(5).reconstruction_plan([0, 1, 2])


# ----------------------------------------------------------------------
# through the controller
# ----------------------------------------------------------------------


def _ctrl(p=5, **kw):
    kw.setdefault("n_stripes", 3)
    kw.setdefault("payload_bytes", 8)
    return RaidController(XCodeLayout(p), **kw)


def test_controller_content_verifies():
    assert _ctrl().verify_redundancy()


def test_rebuild_every_single_and_double_failure():
    p = 5
    for failed in [(j,) for j in range(p)] + list(combinations(range(p), 2)):
        res = _ctrl(p).rebuild(failed)
        assert res.verified, failed


def test_write_workload_preserves_xcode_parity():
    ctrl = _ctrl(5)
    rng = np.random.default_rng(4)
    # data rows only: generator produces j < n, clamp to data rows
    ops = []
    for op in random_large_writes(5, 3, n_ops=20, rng=rng):
        cells = tuple((i, j % 3) for i, j in op.elements)
        ops.append(type(op)(op.stripe, cells))
    ctrl.run_write_workload(ops, rng=rng)
    assert ctrl.verify_redundancy()


def test_write_then_double_failure_roundtrip():
    ctrl = _ctrl(7, n_stripes=2)
    rng = np.random.default_rng(9)
    from repro.workloads.generator import WriteOp

    ctrl.run_write_workload([WriteOp(0, ((0, 0), (3, 2)))], rng=rng)
    res = ctrl.rebuild([0, 3])
    assert res.verified
    assert ctrl.verify_redundancy()
