"""Tests for the per-machine batch-threshold calibration."""

from __future__ import annotations

import json

import pytest

from repro.disksim import autotune


@pytest.fixture(autouse=True)
def _fresh_memo(monkeypatch, tmp_path):
    """Isolate each test: no process memo, cache under tmp_path."""
    monkeypatch.setattr(autotune, "_resolved", None)
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
    monkeypatch.delenv("REPRO_BATCH_THRESHOLD", raising=False)
    yield


def test_env_override_wins(monkeypatch):
    monkeypatch.setenv("REPRO_BATCH_THRESHOLD", "123")
    assert autotune.batch_threshold() == 123


def test_env_override_garbage_falls_through(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BATCH_THRESHOLD", "not-a-number")
    value = autotune.batch_threshold()
    assert 8 <= value <= 512


def test_cache_hit_skips_measurement(monkeypatch, tmp_path):
    path = tmp_path / "repro" / "batch_threshold.json"
    path.parent.mkdir(parents=True)
    path.write_text(
        json.dumps({"key": autotune.machine_key(), "threshold": 64})
    )

    def boom():  # pragma: no cover - must not run
        raise AssertionError("calibrate() called despite cache hit")

    monkeypatch.setattr(autotune, "calibrate", boom)
    assert autotune.batch_threshold() == 64


def test_stale_cache_key_triggers_recalibration(monkeypatch, tmp_path):
    path = tmp_path / "repro" / "batch_threshold.json"
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps({"key": "other|machine", "threshold": 7}))
    monkeypatch.setattr(autotune, "calibrate", lambda: 96)
    assert autotune.batch_threshold() == 96
    # and the cache was refreshed for this machine
    data = json.loads(path.read_text())
    assert data == {"key": autotune.machine_key(), "threshold": 96}


def test_calibration_failure_falls_back_to_default(monkeypatch):
    def boom():
        raise RuntimeError("no clock")

    monkeypatch.setattr(autotune, "calibrate", boom)
    assert autotune.batch_threshold() == autotune.DEFAULT_THRESHOLD


def test_memoised_within_process(monkeypatch):
    monkeypatch.setattr(autotune, "calibrate", lambda: 32)
    assert autotune.batch_threshold() == 32
    monkeypatch.setattr(autotune, "calibrate", lambda: 256)
    assert autotune.batch_threshold() == 32  # memo, not re-measured


def test_calibrate_returns_clamped_value():
    value = autotune.calibrate()
    assert 8 <= value <= 512


def test_submit_batch_uses_resolved_threshold(monkeypatch):
    from repro.disksim import array as array_mod
    from repro.disksim.array import ElementArray
    from repro.disksim.disk import DiskParameters
    from repro.disksim.request import IOKind

    monkeypatch.setattr(array_mod, "_numpy_min_ops", None)
    monkeypatch.setenv("REPRO_BATCH_THRESHOLD", "4")
    arr = ElementArray(4, 4096, DiskParameters.savvio_10k3())
    sub = arr.submit_batch([0, 1, 2, 3], [0, 1, 2, 3], IOKind.READ)
    arr.run()
    assert len(sub) == 4
    assert array_mod._numpy_min_ops == 4
