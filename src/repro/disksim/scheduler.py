"""Per-disk I/O schedulers.

Three policies, selectable per simulation:

* :class:`FIFOScheduler` — arrival order;
* :class:`ElevatorScheduler` — C-SCAN: serve the pending request with
  the smallest offset at or beyond the head, wrapping around; this is
  what merges the shifted arrangement's scattered element reads into
  efficient ascending sweeps;
* :class:`PriorityScheduler` — strict priority classes (lower first)
  with elevator order inside each class; used for on-line
  reconstruction, where user reads preempt rebuild I/O (§III).

The elevator variants keep their queues **sorted by (offset, req_id)**
and locate the next request with a binary search instead of scanning
(and copying) the whole pending list on every pop — under deep queues
(on-line reconstruction with a heavy user-read stream) the old
O(pending) scan per pop dominated the event loop.
``tests/disksim/test_scheduler_equivalence.py`` property-checks that
the ordering is identical to the original linear-scan definition.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from typing import Iterable

from .request import IORequest

__all__ = ["Scheduler", "FIFOScheduler", "ElevatorScheduler", "PriorityScheduler"]


def _sort_key(request: IORequest) -> tuple[int, int]:
    return (request.offset, request.req_id)


class Scheduler:
    """Queue discipline interface for one disk's pending requests."""

    __slots__ = ("_pending",)

    def __init__(self) -> None:
        self._pending: list[IORequest] = []

    def add(self, request: IORequest) -> None:
        self._pending.append(request)

    def pop(self, head_position: int) -> IORequest:
        """Remove and return the next request to serve."""
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def peek_all(self) -> Iterable[IORequest]:
        """Live view of pending requests — **no copy** (diagnostics).

        The returned object reflects subsequent ``add``/``pop`` calls
        and must not be mutated; call :meth:`snapshot` for an
        independent copy.
        """
        return self._pending

    def snapshot(self) -> list[IORequest]:
        """Explicit point-in-time copy of the pending requests."""
        return list(self.peek_all())


class FIFOScheduler(Scheduler):
    """First in, first out."""

    __slots__ = ()

    def __init__(self) -> None:
        # a deque pops from the left in O(1); the old list.pop(0)
        # shifted the whole queue on every dispatch
        self._pending: deque[IORequest] = deque()  # type: ignore[assignment]

    def pop(self, head_position: int) -> IORequest:
        if not self._pending:
            raise IndexError("pop from empty scheduler")
        return self._pending.popleft()  # type: ignore[attr-defined]


class ElevatorScheduler(Scheduler):
    """C-SCAN: ascending offsets from the head, wrapping to the lowest.

    The queue is kept sorted by ``(offset, req_id)``; ``pop`` binary
    searches for the first request at or beyond the head and wraps to
    index 0 when nothing is ahead — exactly the request the original
    linear scan selected via ``min`` over the ahead (or whole) pool.
    """

    __slots__ = ()

    def add(self, request: IORequest) -> None:
        insort(self._pending, request, key=_sort_key)

    def pop(self, head_position: int) -> IORequest:
        pending = self._pending
        if not pending:
            raise IndexError("pop from empty scheduler")
        idx = bisect_left(pending, head_position, key=lambda r: r.offset)
        if idx == len(pending):
            idx = 0  # wrap: lowest offset
        return pending.pop(idx)


class PriorityScheduler(Scheduler):
    """Strict priority classes, C-SCAN within a class.

    ``priority`` 0 beats 10; within equal priority the elevator rule
    applies.  This realises the paper's on-line reconstruction policy:
    "the failed data is recovered and responded to user with a higher
    priority than other reconstruction I/Os".

    One sorted queue per priority class; there are only a handful of
    classes (0 for user reads, 10 for rebuild I/O), so the ``min`` over
    class keys is effectively constant-time.
    """

    __slots__ = ("_classes", "_count")

    def __init__(self) -> None:
        self._classes: dict[int, list[IORequest]] = {}
        self._count = 0

    def add(self, request: IORequest) -> None:
        queue = self._classes.get(request.priority)
        if queue is None:
            queue = self._classes[request.priority] = []
        insort(queue, request, key=_sort_key)
        self._count += 1

    def pop(self, head_position: int) -> IORequest:
        if not self._count:
            raise IndexError("pop from empty scheduler")
        top = min(self._classes)
        queue = self._classes[top]
        idx = bisect_left(queue, head_position, key=lambda r: r.offset)
        if idx == len(queue):
            idx = 0
        request = queue.pop(idx)
        if not queue:
            del self._classes[top]
        self._count -= 1
        return request

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def peek_all(self) -> list[IORequest]:
        # classes are separate queues, so this view is necessarily
        # assembled — still only built when diagnostics ask for it
        return [r for p in sorted(self._classes) for r in self._classes[p]]
