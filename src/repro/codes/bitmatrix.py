"""Cauchy Reed-Solomon bit-matrix coding (the second half of Jerasure).

Jerasure-1.2 ships two coding engines: the GF(2^w) matrix coder
(:mod:`repro.codes.reed_solomon`) and the *bit-matrix* coder, which
expands each field element into a ``w x w`` binary matrix so that both
encoding and decoding become pure XORs of word-aligned *packets* —
no multiplication tables on the data path.  Combined with a Cauchy
generator matrix this is Cauchy Reed-Solomon (CRS) coding
(Blomer et al.; Plank & Xu).

Representation
--------------
Multiplying by a constant ``c`` in GF(2^w) is linear over GF(2); in the
polynomial basis ``1, x, x^2, ...`` it is the binary matrix whose j-th
column holds the bits of ``c * x^j``.  A ``(k+m) x k`` field matrix
thus becomes a ``(k+m)w x kw`` binary matrix.  Each device region is
split into ``w`` equal packets, and coding packet ``r`` of device ``i``
is the XOR of every data packet whose bit-matrix entry is one.

The number of ones in the coding rows is exactly the XOR count of an
encode, which :meth:`BitMatrixCode.encode_xor_count` exposes — the
metric Jerasure's papers optimise.
"""

from __future__ import annotations

import numpy as np

from .galois import GF
from .matrix import cauchy_matrix, identity, invert

__all__ = [
    "gf_constant_to_bitmatrix",
    "gf_matrix_to_bitmatrix",
    "BitMatrixCode",
    "CauchyRSCode",
]


def gf_constant_to_bitmatrix(constant: int, gf: GF) -> np.ndarray:
    """The ``w x w`` GF(2) matrix of "multiply by ``constant``".

    Column ``j`` holds the bit decomposition (LSB first) of
    ``constant * x^j``.
    """
    w = gf.w
    out = np.zeros((w, w), dtype=np.uint8)
    for j in range(w):
        product = gf.multiply(constant, 1 << j)
        for bit in range(w):
            out[bit, j] = (product >> bit) & 1
    return out


def gf_matrix_to_bitmatrix(matrix: np.ndarray, gf: GF) -> np.ndarray:
    """Expand an ``r x c`` field matrix into an ``rw x cw`` binary matrix."""
    matrix = np.asarray(matrix)
    r, c = matrix.shape
    w = gf.w
    out = np.zeros((r * w, c * w), dtype=np.uint8)
    for i in range(r):
        for j in range(c):
            out[i * w : (i + 1) * w, j * w : (j + 1) * w] = gf_constant_to_bitmatrix(
                int(matrix[i, j]), gf
            )
    return out


class BitMatrixCode:
    """Systematic erasure code driven by a binary coding matrix.

    Parameters
    ----------
    k, m:
        Data and coding device counts.
    w:
        Packets per device (= the field word size the matrix came from).
    field_matrix:
        The ``(k+m) x k`` *field* distribution matrix whose top block is
        the identity.  Kept around so decoding can invert survivor
        submatrices in the field (cheaper and better tested than a
        GF(2) inversion of the expanded matrix).
    gf:
        The field the matrix lives in.
    """

    def __init__(self, k: int, m: int, field_matrix: np.ndarray, gf: GF) -> None:
        field_matrix = np.asarray(field_matrix)
        if field_matrix.shape != (k + m, k):
            raise ValueError(
                f"field matrix must be ({k + m}, {k}), got {field_matrix.shape}"
            )
        if not np.array_equal(field_matrix[:k], identity(k, gf)):
            raise ValueError("field matrix must be systematic (identity on top)")
        self.k = k
        self.m = m
        self.gf = gf
        self.w = gf.w
        self.field_matrix = field_matrix.astype(gf.dtype)
        #: the m*w x k*w binary generator of the coding packets
        self.coding_bitmatrix = gf_matrix_to_bitmatrix(field_matrix[k:], gf)

    # ------------------------------------------------------------------
    def _packets(self, region: np.ndarray) -> np.ndarray:
        region = np.ascontiguousarray(region, dtype=np.uint8)
        if region.size % self.w:
            raise ValueError(
                f"region of {region.size} bytes not divisible into {self.w} packets"
            )
        return region.reshape(self.w, -1)

    def encode(self, data_regions: list[np.ndarray]) -> list[np.ndarray]:
        """Compute the ``m`` coding regions with XORs only."""
        if len(data_regions) != self.k:
            raise ValueError(f"expected {self.k} data regions, got {len(data_regions)}")
        packets = [self._packets(r) for r in data_regions]
        sizes = {p.shape[1] for p in packets}
        if len(sizes) != 1:
            raise ValueError("all data regions must have equal length")
        psize = sizes.pop()
        out: list[np.ndarray] = []
        for i in range(self.m):
            coded = np.zeros((self.w, psize), dtype=np.uint8)
            for r in range(self.w):
                row = self.coding_bitmatrix[i * self.w + r]
                for j in range(self.k):
                    for s in range(self.w):
                        if row[j * self.w + s]:
                            coded[r] ^= packets[j][s]
            out.append(coded.reshape(-1))
        return out

    def encode_xor_count(self) -> int:
        """Packet XORs per encode: ones in the coding bit-matrix minus
        one per output packet (the first term is a copy)."""
        ones = int(self.coding_bitmatrix.sum())
        return ones - self.m * self.w

    # ------------------------------------------------------------------
    def decode(self, devices: list[np.ndarray | None]) -> list[np.ndarray]:
        """Recover every device from any ``k`` survivors."""
        if len(devices) != self.k + self.m:
            raise ValueError(
                f"expected {self.k + self.m} device slots, got {len(devices)}"
            )
        erased = [i for i, d in enumerate(devices) if d is None]
        if len(erased) > self.m:
            raise ValueError(f"{len(erased)} erasures exceed tolerance m={self.m}")
        survivors = [i for i, d in enumerate(devices) if d is not None][: self.k]
        sub = self.field_matrix[survivors]
        inv = invert(sub, self.gf)  # k x k over the field
        inv_bits = gf_matrix_to_bitmatrix(inv, self.gf)
        packets = [self._packets(devices[i]) for i in survivors]
        psize = packets[0].shape[1]
        data: list[np.ndarray] = []
        for i in range(self.k):
            out = np.zeros((self.w, psize), dtype=np.uint8)
            for r in range(self.w):
                row = inv_bits[i * self.w + r]
                for j in range(self.k):
                    for s in range(self.w):
                        if row[j * self.w + s]:
                            out[r] ^= packets[j][s]
            data.append(out.reshape(-1))
        coding = self.encode(data)
        return data + coding


class CauchyRSCode(BitMatrixCode):
    """Cauchy Reed-Solomon: a Cauchy matrix under the identity.

    Every square submatrix of a Cauchy matrix over GF(2^w) is
    invertible, so any ``m`` erasures decode; all data-path work is
    XOR of packets.
    """

    def __init__(self, k: int, m: int, w: int = 8) -> None:
        gf = GF(w)
        if k + m > gf.size:
            raise ValueError(f"k+m = {k + m} exceeds field size 2^{w}")
        field_matrix = np.concatenate(
            [identity(k, gf), cauchy_matrix(k, m, gf)], axis=0
        )
        super().__init__(k, m, field_matrix, gf)
