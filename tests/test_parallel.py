"""Persistent worker pool: reuse, shared film payloads, bit-identity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import WorkerPool, parallel_map, resolve_jobs
from repro.workloads.film import (
    FilmSource,
    _element_payload,
    build_film_block,
    register_shared_film,
    unregister_shared_film,
)


def _square(x: int) -> int:
    return x * x


def _film_bytes(args) -> bytes:
    """Worker fn: read one film element (via shared block when mapped)."""
    seed, payload_bytes, stripe, i, j = args
    return FilmSource(payload_bytes, seed).element(stripe, i, j).tobytes()


def test_resolve_jobs_conventions():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) >= 1


def test_pool_of_one_runs_inline():
    with WorkerPool(jobs=1) as pool:
        assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
    with pytest.raises(RuntimeError, match="closed"):
        pool.map(_square, [1, 2])


def test_pool_reused_across_maps_preserving_order():
    with WorkerPool(jobs=2) as pool:
        first = pool.map(_square, range(8))
        second = pool.map(_square, range(8, 16))
    assert first == [x * x for x in range(8)]
    assert second == [x * x for x in range(8, 16)]


def test_parallel_map_delegates_to_pool():
    with WorkerPool(jobs=2) as pool:
        assert parallel_map(_square, [3, 4], pool=pool) == [9, 16]
    # without a pool the per-call path still works
    assert parallel_map(_square, [3, 4], jobs=1) == [9, 16]


def test_film_block_matches_on_demand_generation():
    block = build_film_block(5, 8, n_stripes=3, n_i=2, n_j=2)
    for stripe in range(3):
        for i in range(2):
            for j in range(2):
                assert np.array_equal(
                    block[stripe, i, j], _element_payload(5, 8, stripe, i, j)
                )


def test_registered_block_serves_lookups_and_falls_back_out_of_range():
    seed, payload = 123, 8
    block = build_film_block(seed, payload, n_stripes=2, n_i=2, n_j=2)
    register_shared_film(seed, payload, block)
    try:
        src = FilmSource(payload, seed)
        covered = src.element(1, 1, 1)
        assert np.array_equal(covered, block[1, 1, 1])
        assert not covered.flags.writeable
        # beyond the block: generated on demand, identical content rules
        beyond = src.element(5, 0, 0)
        assert np.array_equal(beyond, _element_payload(seed, payload, 5, 0, 0))
    finally:
        unregister_shared_film(seed, payload)


def test_shared_film_workers_see_identical_bytes():
    """Workers reading through the shared-memory block must return the
    exact bytes the parent (and on-demand generation) produce."""
    seed, payload = 77, 8
    tasks = [(seed, payload, stripe, i, j) for stripe in range(2) for i in range(2) for j in range(2)]
    expected = [
        _element_payload(seed, payload, s, i, j).tobytes()
        for (_, _, s, i, j) in tasks
    ]
    with WorkerPool(jobs=2) as pool:
        pool.share_film(seed, payload, n_stripes=2, n_i=2, n_j=2)
        got = pool.map(_film_bytes, tasks)
    assert got == expected
    # the parent registration is gone after close; regeneration still agrees
    assert _film_bytes(tasks[0]) == expected[0]


# ----------------------------------------------------------------------
# flight-recorder snapshots across the pool boundary
# ----------------------------------------------------------------------


def _record_chunk(args) -> dict:
    """Worker fn: fold one chunk of (t, value) samples into a recorder."""
    from repro.obs import TimelineRecorder

    window_s, chunk = args
    rec = TimelineRecorder(window_s=window_s, registry=False)
    series = rec.series("prop.latency_s")
    for t, v in chunk:
        series.observe(t, v)
    return rec.snapshot()


def _merge_snapshots(snapshots, window_s: float) -> dict:
    from repro.obs import TimelineRecorder

    rec = TimelineRecorder(window_s=window_s, registry=False)
    for snap in snapshots:
        rec.merge(snap)
    return rec.snapshot()


@given(
    samples=st.lists(
        st.tuples(
            st.floats(0.0, 8.0, allow_nan=False, allow_infinity=False),
            # dyadic rationals: float addition is exact, so the serial
            # sum and the chunked merge agree bit-for-bit
            st.integers(1, 2048).map(lambda k: k / 1024.0),
        ),
        min_size=1,
        max_size=48,
    ),
    n_chunks=st.integers(1, 4),
)
@settings(max_examples=25, deadline=None)
def test_chunked_snapshot_merge_matches_the_serial_feed(samples, n_chunks):
    """Splitting a sample stream into per-worker recorders and merging
    their snapshots yields exactly the windows of one serial recorder."""
    samples.sort(key=lambda tv: tv[0])  # completion order, like the engine
    window_s = 0.5
    serial = _record_chunk((window_s, samples))
    size = -(-len(samples) // n_chunks)
    chunks = [samples[i : i + size] for i in range(0, len(samples), size)]
    merged = _merge_snapshots(
        [_record_chunk((window_s, c)) for c in chunks], window_s
    )
    assert merged == serial


def test_window_aggregates_are_bit_identical_across_the_pool_boundary():
    """jobs=1 vs jobs=N: the merged timeseries must not depend on
    whether chunk snapshots crossed a process boundary."""
    rng = np.random.default_rng(2012)
    window_s = 0.25
    chunks = [
        [(float(t), float(v)) for t, v in zip(rng.uniform(0, 4, 40), rng.exponential(0.02, 40))]
        for _ in range(4)
    ]
    tasks = [(window_s, chunk) for chunk in chunks]
    inline = _merge_snapshots([_record_chunk(t) for t in tasks], window_s)
    with WorkerPool(jobs=2) as pool:
        pooled = _merge_snapshots(pool.map(_record_chunk, tasks), window_s)
    assert pooled == inline
