"""Experiment drivers: each regenerates its paper artifact with the
expected qualitative shape (quick parameters keep CI fast)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.experiments import fig7, fig8, fig9, fig10, table1
from repro.experiments.reporting import ExperimentResult, Table, format_series


# ----------------------------------------------------------------------
# reporting primitives
# ----------------------------------------------------------------------


def test_table_render_alignment():
    t = Table(["a", "long header"], title="T")
    t.add(1, "x")
    out = t.render()
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "long header" in lines[1]
    assert lines[2].startswith("-")


def test_table_rejects_wrong_cell_count():
    t = Table(["a", "b"])
    with pytest.raises(ValueError):
        t.add(1)


def test_format_series_columns():
    out = format_series("n", [1, 2], {"y": [1.5, 2.5]})
    assert "1.50" in out and "2.50" in out


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------


def test_table1_run_asserts_agreement():
    res = table1.run(n_values=(3, 4))
    assert isinstance(res, ExperimentResult)
    assert res.data[3]["avg_read"] == Fraction(12, 7)
    assert res.data[4]["avg_read_matches_4n_over_2n_plus_1"]
    assert "F1" in res.text and "F3" in res.text


def test_table1_classifier():
    n = 3  # parity disk is 6
    assert table1.classify_failure(n, (0, 6)) == "F1"
    assert table1.classify_failure(n, (0, 2)) == "F2"
    assert table1.classify_failure(n, (3, 5)) == "F2"
    assert table1.classify_failure(n, (0, 4)) == "F3"


# ----------------------------------------------------------------------
# Fig. 7
# ----------------------------------------------------------------------


def test_fig7_run_shape():
    res = fig7.run(2, 50)
    trad = res.data["vs_traditional_percent"]
    r6 = res.data["vs_raid6_percent"]
    assert trad[0] > 50  # small n: little headroom
    assert trad[-1] < 5  # paper: "as low as 5 percent"
    assert r6[-1] <= trad[-1]
    assert all(a >= b for a, b in zip(trad, trad[1:]))


# ----------------------------------------------------------------------
# Fig. 8
# ----------------------------------------------------------------------


def test_fig8_run_checks_paper_claims():
    res = fig8.run()
    assert res.data[1] == {"P1": True, "P2": True, "P3": True}
    assert res.data[3]["P3"] is False
    assert res.data[5]["P3"] is True
    assert "iterate 3" in res.text


def test_fig8_grid_is_permutation_of_elements():
    grid = fig8.arrangement_grid(3, 1)
    numbers = sorted(int(x) for x in grid.split())
    assert numbers == list(range(1, 10))


# ----------------------------------------------------------------------
# Fig. 9 (small sweeps)
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_fig9a_improvement_band():
    res = fig9.run_a(n_values=(3, 5), n_stripes=8)
    ratios = res.data["improvement (x)"]
    assert res.data["verified"]
    assert 1.3 < ratios[0] < 2.6
    assert ratios[1] > ratios[0]  # grows with n
    trad = res.data["traditional mirror (MB/s)"]
    assert abs(trad[1] - trad[0]) / trad[0] < 0.05  # flat


@pytest.mark.slow
def test_fig9b_improvement_band():
    res = fig9.run_b(n_values=(3, 5), n_stripes=6)
    ratios = res.data["improvement (x)"]
    assert res.data["verified"]
    assert 1.2 < ratios[0] < 2.0
    assert ratios[1] > ratios[0]


# ----------------------------------------------------------------------
# Fig. 10 (small sweeps)
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_fig10_shapes():
    a = fig10.run_a(n_values=(3, 5), n_ops=40)
    b = fig10.run_b(n_values=(3, 5), n_ops=40)
    assert a.data["intact"] and b.data["intact"]
    for res in (a, b):
        ratios = res.data["shifted/traditional"]
        assert all(0.85 < r <= 1.05 for r in ratios)  # "about the same"
    # the parity variant is strictly slower at matching n
    assert (
        b.data["traditional mirror+parity (MB/s)"][0]
        < a.data["traditional mirror (MB/s)"][0]
    )


# ----------------------------------------------------------------------
# extension experiments
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_ext_three_mirror_gain():
    from repro.experiments import ext_three_mirror

    res = ext_three_mirror.run(n_values=(3, 5), n_stripes=6)
    assert res.data["verified"]
    ratios = res.data["improvement (x)"]
    assert ratios[0] > 1.15 and ratios[1] > ratios[0]


@pytest.mark.slow
def test_ext_lse_survival_ordering():
    from repro.experiments import ext_lse

    res = ext_lse.run(n=4, error_counts=(0, 6), trials=8, n_stripes=6)
    at_zero = {name: vals[0] for name, vals in res.data.items() if name != "error_counts"}
    assert all(v == 1.0 for v in at_zero.values())  # no LSEs: everyone survives
    at_six = {name: vals[1] for name, vals in res.data.items() if name != "error_counts"}
    # more protection -> no worse survival
    assert at_six["mirror"] <= at_six["mirror+parity"]
    assert at_six["mirror"] <= at_six["mirror + scrub"]
    assert at_six["mirror+parity + scrub"] == 1.0


@pytest.mark.slow
def test_ext_raid6_measured_comparison():
    from repro.experiments import ext_raid6

    res = ext_raid6.run(n_values=(4, 6), n_stripes=6)
    shifted = res.data["shifted mirror+parity (MB/s)"]
    raid6 = res.data["RAID 6 rdp (MB/s)"]
    trad = res.data["traditional mirror+parity (MB/s)"]
    for s, r, t in zip(shifted, raid6, trad):
        assert s > r > t  # shifted > RAID 6 > traditional, recovered MB/s
    ratios = res.data["shifted over RAID 6 (x)"]
    assert ratios[1] > ratios[0]  # the gap widens with n
