"""Serialisation of traces and metrics snapshots.

Two trace formats:

* **chrome trace** — the ``chrome://tracing`` / Perfetto "Trace Event
  Format" JSON object (``{"traceEvents": [...]}``).  Timestamps are
  converted from simulated seconds to the format's microseconds, and
  each named pid gets a ``process_name`` metadata record so tracks read
  "mirror(5)x12: disk 3" instead of bare numbers.
* **JSONL** — one flat JSON object per event, for ad-hoc ``jq``-style
  analysis and for loading back with :func:`load_trace_jsonl`.

Metrics snapshots (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`)
are already plain data; :func:`write_metrics` / :func:`load_metrics`
just add the file framing, and the round-trip is exact — a snapshot
written, loaded and merged into a fresh registry reproduces every
counter (there is a test pinning that).
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import MetricsRegistry
from .tracing import TraceEvent, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_trace_jsonl",
    "load_trace_jsonl",
    "write_metrics",
    "load_metrics",
    "registry_from_file",
]

_S_TO_US = 1e6


def chrome_trace(tracer: Tracer) -> dict:
    """The tracer's events as a Trace Event Format object (plain data)."""
    events: list[dict] = []
    for pid, name in sorted(tracer.process_names().items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
        # sort index keeps tracks in disk order, not first-event order
        events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": pid},
            }
        )
    for ev in tracer.events:
        rec = {
            "name": ev.name,
            "ph": ev.ph,
            "ts": ev.ts * _S_TO_US,
            "pid": ev.pid,
            "tid": ev.tid,
        }
        if ev.ph == "X":
            rec["dur"] = ev.dur * _S_TO_US
        if ev.ph == "i":
            rec["s"] = "t"  # instant scope: thread
        if ev.cat:
            rec["cat"] = ev.cat
        if ev.args:
            rec["args"] = ev.args
        events.append(rec)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, tracer: Tracer) -> Path:
    """Write a ``chrome://tracing``-loadable JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer)) + "\n", encoding="utf-8")
    return path


def write_trace_jsonl(path, tracer: Tracer) -> Path:
    """Write one flat JSON object per event; returns the path."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for ev in tracer.events:
            fh.write(
                json.dumps(
                    {
                        "name": ev.name,
                        "ph": ev.ph,
                        "ts": ev.ts,
                        "dur": ev.dur,
                        "pid": ev.pid,
                        "tid": ev.tid,
                        "cat": ev.cat,
                        "args": ev.args,
                    }
                )
            )
            fh.write("\n")
    return path


def load_trace_jsonl(path) -> list[TraceEvent]:
    """Load a :func:`write_trace_jsonl` file back into event records."""
    events = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            events.append(
                TraceEvent(
                    name=rec["name"],
                    ph=rec["ph"],
                    ts=rec["ts"],
                    dur=rec["dur"],
                    pid=rec["pid"],
                    tid=rec["tid"],
                    cat=rec.get("cat", ""),
                    args=rec.get("args", {}),
                )
            )
    return events


def write_metrics(path, registry_or_snapshot) -> Path:
    """Write a registry (or a prepared snapshot) as JSON; returns the path."""
    snap = registry_or_snapshot
    if hasattr(snap, "snapshot"):
        snap = snap.snapshot()
    path = Path(path)
    path.write_text(json.dumps(snap, indent=2) + "\n", encoding="utf-8")
    return path


def load_metrics(path) -> dict:
    """Load a :func:`write_metrics` snapshot (mergeable via ``merge``)."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def registry_from_file(path) -> MetricsRegistry:
    """Convenience: a fresh registry holding a file's snapshot."""
    reg = MetricsRegistry()
    reg.merge(load_metrics(path))
    return reg
