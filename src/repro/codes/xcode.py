"""X-Code (Xu & Bruck, 1999): the classic *vertical* RAID 6 code.

The paper's baselines (EVENODD, RDP) are horizontal codes — dedicated
parity disks — and §II-C2 criticises their update behaviour; the
"shorten" reference [22] (P-code) is a vertical code, where parity is
spread across all disks.  X-Code is the canonical vertical
representative and completes the baseline zoo:

* ``p`` disks (``p`` prime), each holding ``p`` elements;
* rows ``0 .. p-3`` hold data, row ``p-2`` holds diagonal parity and
  row ``p-1`` anti-diagonal parity:

.. math::

    C_{p-2,i} = \\bigoplus_{k=0}^{p-3} C_{k,\\langle i+k+2\\rangle_p}
    \\qquad
    C_{p-1,i} = \\bigoplus_{k=0}^{p-3} C_{k,\\langle i-k-2\\rangle_p}

* every single data element belongs to exactly two parity chains, so
  X-Code *is* update-optimal (unlike the horizontal RAID 6 codes) —
  but a vertical code cannot be shortened by zeroing columns, because
  parity lives in every column; the geometry is all-or-nothing.
  (:class:`XCode` therefore supports full width only.)

Decoding uses constraint peeling over the 2p parity chains; any two
column erasures leave a chain with a single unknown to start from
(proved in the original paper, exhaustively exercised in the tests).
"""

from __future__ import annotations

import numpy as np

from .evenodd import is_prime

__all__ = ["XCode"]


class XCode:
    """X-Code over ``p`` disks (``p`` prime, ``p >= 5``).

    Stripes are ``(p-2, p, size)`` data arrays (rows x columns x
    bytes); full columns — data plus the column's two parity cells —
    are ``(p, size)``.
    """

    def __init__(self, p: int) -> None:
        if not is_prime(p) or p < 5:
            raise ValueError(f"p must be a prime >= 5, got {p}")
        self.p = p
        self.data_rows = p - 2

    # ------------------------------------------------------------------
    def _check(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 3 or data.shape[:2] != (self.data_rows, self.p):
            raise ValueError(
                f"stripe must have shape ({self.data_rows}, {self.p}, size), "
                f"got {data.shape}"
            )
        return data

    def encode(self, data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """The two parity rows, each ``(p, size)``."""
        data = self._check(data)
        p = self.p
        size = data.shape[2]
        cols = np.arange(p)
        diag = np.zeros((p, size), dtype=np.uint8)
        anti = np.zeros((p, size), dtype=np.uint8)
        for k in range(self.data_rows):
            diag ^= data[k, (cols + k + 2) % p]
            anti ^= data[k, (cols - k - 2) % p]
        return diag, anti

    def full_columns(self, data: np.ndarray) -> list[np.ndarray]:
        """Per-disk columns: data rows then the two parity cells."""
        data = self._check(data)
        diag, anti = self.encode(data)
        out = []
        for j in range(self.p):
            out.append(
                np.concatenate([data[:, j], diag[j][None, :], anti[j][None, :]])
            )
        return out

    # ------------------------------------------------------------------
    def _constraints(self):
        """All 2p parity chains as (members, parity_cell) tuples.

        A chain XORs to zero over members + its parity cell; cells are
        (row, column).
        """
        p = self.p
        chains = []
        for i in range(p):
            members = [((k), (i + k + 2) % p) for k in range(self.data_rows)]
            chains.append((members, (p - 2, i)))
            members = [((k), (i - k - 2) % p) for k in range(self.data_rows)]
            chains.append((members, (p - 1, i)))
        return chains

    def decode(self, columns: list[np.ndarray | None]) -> np.ndarray:
        """Recover the full ``(p, p, size)`` cell grid from survivors.

        ``columns`` has ``p`` slots of ``(p, size)`` arrays; at most two
        may be ``None``.
        """
        p = self.p
        if len(columns) != p:
            raise ValueError(f"expected {p} column slots, got {len(columns)}")
        erased = [j for j, c in enumerate(columns) if c is None]
        if len(erased) > 2:
            raise ValueError(f"{len(erased)} erasures exceed X-Code tolerance of 2")
        size = None
        for c in columns:
            if c is not None:
                c = np.asarray(c)
                if c.shape[0] != p:
                    raise ValueError(
                        f"columns must have {p} rows (data + 2 parity), got {c.shape}"
                    )
                size = c.shape[1]
                break
        if size is None:
            raise ValueError("cannot infer element size: every column erased")

        grid = np.zeros((p, p, size), dtype=np.uint8)
        known = np.zeros((p, p), dtype=bool)
        for j, c in enumerate(columns):
            if c is not None:
                grid[:, j] = np.asarray(c, dtype=np.uint8)
                known[:, j] = True

        chains = self._constraints()
        progress = True
        while progress and not known.all():
            progress = False
            for members, parity in chains:
                cells = members + [parity]
                unknown = [(r, c) for r, c in cells if not known[r, c]]
                if len(unknown) != 1:
                    continue
                ur, uc = unknown[0]
                acc = np.zeros(size, dtype=np.uint8)
                for r, c in cells:
                    if (r, c) != (ur, uc):
                        acc ^= grid[r, c]
                grid[ur, uc] = acc
                known[ur, uc] = True
                progress = True
        if not known.all():
            raise AssertionError(
                "X-Code peeling stalled; this contradicts the code's MDS proof"
            )
        return grid

    def decode_data(self, columns: list[np.ndarray | None]) -> np.ndarray:
        """Like :meth:`decode`, returning only the data block."""
        return self.decode(columns)[: self.data_rows]

    def elements_updated_per_write(self) -> int:
        """A single data-element write updates itself + 2 parity cells.

        This is the update-optimal count for two-fault tolerance —
        the property the horizontal codes lack (§II-C2).
        """
        return 3

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"XCode(p={self.p})"
