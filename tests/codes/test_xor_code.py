"""Single XOR parity: the RAID 5 / parity-disk kernel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codes.xor_code import parity_region, recover_from_parity, verify_parity, xor_fold

region = arrays(np.uint8, 16, elements=st.integers(0, 255))


def test_xor_fold_single_region_copies(rng):
    r = rng.integers(0, 256, 8).astype(np.uint8)
    out = xor_fold([r])
    assert np.array_equal(out, r)
    out[0] ^= 0xFF
    assert not np.array_equal(out, r)  # result is a copy, not a view


def test_xor_fold_empty_raises():
    with pytest.raises(ValueError, match="at least one region"):
        xor_fold([])


def test_xor_fold_shape_mismatch(rng):
    a = rng.integers(0, 256, 8).astype(np.uint8)
    b = rng.integers(0, 256, 9).astype(np.uint8)
    with pytest.raises(ValueError, match="shape mismatch"):
        xor_fold([a, b])


@given(regions=st.lists(region, min_size=2, max_size=6))
@settings(max_examples=50)
def test_parity_enables_recovery_of_any_region(regions):
    parity = parity_region(regions)
    for lost in range(len(regions)):
        survivors = [r for i, r in enumerate(regions) if i != lost]
        recovered = recover_from_parity(survivors, parity)
        assert np.array_equal(recovered, regions[lost])


@given(regions=st.lists(region, min_size=1, max_size=5))
@settings(max_examples=30)
def test_verify_parity_accepts_true_parity(regions):
    assert verify_parity(regions, parity_region(regions))


def test_verify_parity_rejects_corruption(rng):
    regions = [rng.integers(0, 256, 8).astype(np.uint8) for _ in range(3)]
    parity = parity_region(regions)
    parity[0] ^= 1
    assert not verify_parity(regions, parity)


def test_recover_from_parity_with_no_survivors(rng):
    parity = rng.integers(0, 256, 8).astype(np.uint8)
    out = recover_from_parity([], parity)
    assert np.array_equal(out, parity)
    out[0] ^= 1
    assert not np.array_equal(out, parity)  # copy semantics
