"""Fault timelines: lifecycle, queries, observability exports."""

from __future__ import annotations

import math

import pytest

from repro.disksim.faultplan import FaultPlan
from repro.nemesis import (
    FaultInterval,
    FaultTimeline,
    build_schedule,
    timeline_from_plan,
)
from repro.obs import MetricsRegistry


class _SpanSink:
    """Stand-in for a TraceGroup: records complete() calls."""

    def __init__(self) -> None:
        self.spans = []

    def complete(self, name, ts, dur, **kw):
        self.spans.append((name, ts, dur, kw))


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------


def test_activate_then_deactivate_closes_the_interval():
    tl = FaultTimeline()
    iv = tl.activate(0, "fail-slow", disk=2, start_s=10.0, magnitude=4.0)
    assert math.isinf(iv.end_s)
    assert tl.active_at(1e12)  # open interval extends to infinity
    closed = tl.deactivate(0, end_s=50.0)
    assert closed.end_s == 50.0
    assert tl.active_at(30.0) == (closed,)
    assert tl.active_at(50.0) == ()


def test_duplicate_fault_id_is_rejected():
    tl = FaultTimeline()
    tl.activate(7, "disk-death", disk=0, start_s=0.0)
    with pytest.raises(ValueError, match="already recorded"):
        tl.activate(7, "disk-death", disk=1, start_s=5.0)


def test_deactivate_guards_its_preconditions():
    tl = FaultTimeline()
    with pytest.raises(ValueError, match="never activated"):
        tl.deactivate(3, end_s=1.0)
    tl.activate(3, "lse-storm", disk=-1, start_s=10.0)
    with pytest.raises(ValueError, match="precedes activation"):
        tl.deactivate(3, end_s=5.0)
    tl.deactivate(3, end_s=20.0)
    with pytest.raises(ValueError, match="already deactivated"):
        tl.deactivate(3, end_s=30.0)


def test_margin_pads_the_attribution_window_both_ways():
    tl = FaultTimeline()
    tl.record(FaultInterval(0, "fail-slow", 1, 100.0, 200.0, 3.0))
    assert tl.active_at(90.0) == ()
    assert len(tl.active_at(90.0, margin=15.0)) == 1
    assert len(tl.active_at(210.0, margin=15.0)) == 1
    assert tl.overlapping(0.0, 50.0) == ()
    assert len(tl.overlapping(0.0, 150.0)) == 1


def test_intervals_are_sorted_by_start_time():
    tl = FaultTimeline()
    tl.record(FaultInterval(0, "disk-death", 0, 50.0, 60.0))
    tl.record(FaultInterval(1, "fail-slow", 1, 10.0, 20.0))
    assert [iv.fault_id for iv in tl.intervals] == [1, 0]
    assert len(tl) == 2


# ----------------------------------------------------------------------
# schedule / plan projections
# ----------------------------------------------------------------------


def test_from_schedule_mirrors_every_scheduled_fault():
    sched = build_schedule(8, 86_400.0, seed=4)
    tl = FaultTimeline.from_schedule(sched)
    assert len(tl) == len(sched)
    for f, iv in zip(sched.faults, tl.intervals):
        assert (iv.fault_id, iv.kind, iv.disk) == (f.fault_id, f.kind, f.disk)
        assert (iv.start_s, iv.end_s, iv.magnitude) == (
            f.start_s,
            f.end_s,
            f.magnitude,
        )


def test_timeline_from_plan_projects_every_fault_class():
    plan = (
        FaultPlan(seed=1)
        .with_transients(rate=0.1)
        .with_lse_burst(3)
        .with_fail_slow(2, 4.0, start_s=10.0, end_s=99_999.0)
        .with_disk_failure(1, 500.0)
    )
    tl = timeline_from_plan(plan, horizon_s=1000.0)
    kinds = {iv.kind for iv in tl.intervals}
    assert kinds == {"disk-death", "fail-slow", "transient-burst", "lse-storm"}
    (fs,) = [iv for iv in tl.intervals if iv.kind == "fail-slow"]
    assert fs.end_s == 1000.0  # clamped to the horizon
    assert fs.magnitude == 4.0
    (death,) = [iv for iv in tl.intervals if iv.kind == "disk-death"]
    assert death.start_s == 500.0 and death.disk == 1


def test_timeline_from_plan_on_an_empty_plan_is_empty():
    assert len(timeline_from_plan(FaultPlan(seed=0), 100.0)) == 0


# ----------------------------------------------------------------------
# observability exports
# ----------------------------------------------------------------------


def test_export_spans_emits_one_span_per_interval():
    tl = FaultTimeline()
    tl.record(FaultInterval(0, "fail-slow", 3, 10.0, 40.0, 2.5))
    tl.activate(1, "disk-death", disk=0, start_s=20.0)
    sink = _SpanSink()
    with pytest.raises(ValueError, match="horizon_s"):
        tl.export_spans(sink)  # open interval, no clamp
    sink = _SpanSink()
    assert tl.export_spans(sink, horizon_s=100.0) == 2
    (name0, ts0, dur0, kw0), (name1, ts1, dur1, kw1) = sink.spans
    assert (name0, ts0, dur0) == ("fail-slow", 10.0, 30.0)
    assert kw0["disk"] == 3 and kw0["fault_id"] == 0 and kw0["cat"] == "nemesis"
    assert (name1, ts1, dur1) == ("disk-death", 20.0, 80.0)


def test_export_metrics_counts_intervals_per_kind():
    tl = FaultTimeline()
    tl.record(FaultInterval(0, "fail-slow", 1, 0.0, 10.0))
    tl.record(FaultInterval(1, "fail-slow", 2, 5.0, 15.0))
    tl.record(FaultInterval(2, "lse-storm", -1, 8.0, 9.0))
    reg = MetricsRegistry()
    tl.export_metrics(reg)
    counter = reg.counter("nemesis.faults_recorded_total")
    assert counter.value(kind="fail-slow") == 2.0
    assert counter.value(kind="lse-storm") == 1.0


def test_observe_gauge_tracks_the_active_count():
    tl = FaultTimeline()
    tl.record(FaultInterval(0, "fail-slow", 1, 0.0, 10.0))
    tl.record(FaultInterval(1, "lse-storm", -1, 5.0, 15.0))
    reg = MetricsRegistry()
    assert tl.observe_gauge(7.0, reg, arrangement="traditional") == 2
    assert reg.gauge("nemesis.active_faults").value(arrangement="traditional") == 2.0
    assert tl.observe_gauge(20.0, reg, arrangement="traditional") == 0


def test_to_dict_maps_open_end_to_none():
    tl = FaultTimeline()
    tl.activate(0, "disk-death", disk=2, start_s=1.0)
    d = tl.to_dict()
    assert d["schema_version"] == 1
    assert d["n_faults"] == 1
    assert d["faults"][0]["end_s"] is None


def test_overlay_bands_clamp_open_intervals_and_label_disks():
    tl = FaultTimeline()
    tl.record(FaultInterval(0, "fail-slow", 2, 1.0, 4.0, 3.0))
    tl.activate(1, "disk-death", 0, 2.0)
    tl.record(FaultInterval(2, "transient-burst", -1, 0.0, 5.0, 0.5))
    with pytest.raises(ValueError, match="horizon"):
        tl.overlay_bands()  # open interval needs a clamp
    bands = tl.overlay_bands(horizon_s=10.0)
    assert [b["kind"] for b in bands] == [
        "transient-burst", "fail-slow", "disk-death",
    ]
    death = bands[2]
    assert death["t0"] == 2.0 and death["t1"] == 10.0
    assert death["label"] == "disk-death (disk 0)"
    # a whole-array fault (disk -1) gets no per-disk suffix
    assert bands[0]["label"] == "transient-burst"
    assert all(b["t1"] >= b["t0"] for b in bands)
