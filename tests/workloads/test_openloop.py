"""Open-loop arrival processes, SLO accounting, throttle policies."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.workloads.openloop import (
    DiurnalCurve,
    FixedThrottle,
    LatencyTargetThrottle,
    RebuildThrottle,
    SLOAccountant,
    TenantSpec,
    TokenBucketThrottle,
    make_throttle,
    open_arrivals,
)


# ----------------------------------------------------------------------
# TenantSpec / DiurnalCurve validation
# ----------------------------------------------------------------------


def test_tenant_rejects_bad_specs():
    with pytest.raises(ValueError):
        TenantSpec("", 10.0)
    with pytest.raises(ValueError):
        TenantSpec("t", 0.0)
    with pytest.raises(ValueError):
        TenantSpec("t", 10.0, process="pareto")
    with pytest.raises(ValueError):
        TenantSpec("t", 10.0, zipf_s=-1.0)


def test_diurnal_amplitude_must_keep_rate_positive():
    with pytest.raises(ValueError):
        DiurnalCurve(amplitude=1.0)
    curve = DiurnalCurve(amplitude=0.8, period_s=10.0)
    t = np.linspace(0, 20, 500)
    assert np.all(curve.factor(t) > 0)
    assert curve.peak_factor == pytest.approx(1.8)


# ----------------------------------------------------------------------
# arrival generation
# ----------------------------------------------------------------------


def _mix():
    return (
        TenantSpec("vod", 40.0, zipf_s=1.1),
        TenantSpec("burst", 10.0, process="bursty"),
    )


def test_arrivals_are_bit_identical_for_the_same_seed():
    a = open_arrivals(5, 12, 8.0, _mix(), diurnal=DiurnalCurve(0.5, 8.0), seed=7)
    b = open_arrivals(5, 12, 8.0, _mix(), diurnal=DiurnalCurve(0.5, 8.0), seed=7)
    assert a == b
    assert a != open_arrivals(5, 12, 8.0, _mix(), diurnal=DiurnalCurve(0.5, 8.0), seed=8)


def test_arrivals_are_sorted_tagged_and_in_range():
    reads = open_arrivals(5, 12, 6.0, _mix(), seed=3)
    times = [r.time for r in reads]
    assert times == sorted(times)
    assert all(0 <= r.time < 6.0 for r in reads)
    assert all(0 <= r.stripe < 12 and 0 <= r.i < 5 and 0 <= r.j < 5 for r in reads)
    assert {r.tenant for r in reads} == {"vod", "burst"}


def test_poisson_rate_is_respected_on_average():
    reads = open_arrivals(5, 12, 50.0, [TenantSpec("t", 40.0)], seed=1)
    # 2000 expected arrivals; 5 sigma ≈ 224
    assert len(reads) == pytest.approx(2000, abs=250)


def test_adding_a_tenant_does_not_perturb_existing_streams():
    solo = open_arrivals(5, 12, 6.0, [TenantSpec("vod", 40.0, zipf_s=1.1)], seed=7)
    mixed = open_arrivals(
        5, 12, 6.0, [TenantSpec("vod", 40.0, zipf_s=1.1), TenantSpec("extra", 5.0)], seed=7
    )
    assert [r for r in mixed if r.tenant == "vod"] == solo


def test_zipf_skews_toward_low_stripes():
    reads = open_arrivals(5, 8, 60.0, [TenantSpec("t", 40.0, zipf_s=1.5)], seed=2)
    counts = np.bincount([r.stripe for r in reads], minlength=8)
    assert counts[0] > 3 * counts[-1]
    uniform = open_arrivals(5, 8, 60.0, [TenantSpec("t", 40.0)], seed=2)
    ucounts = np.bincount([r.stripe for r in uniform], minlength=8)
    assert ucounts.max() < 2 * max(1, ucounts.min())


def test_bursty_process_is_burstier_than_poisson():
    """Index of dispersion of 1 s bin counts: ~1 for Poisson, >1 for on/off."""
    def dispersion(reads, duration):
        counts = np.bincount(
            [int(r.time) for r in reads], minlength=int(duration)
        )
        return counts.var() / counts.mean()

    poisson = open_arrivals(5, 12, 200.0, [TenantSpec("p", 20.0)], seed=5)
    bursty = open_arrivals(
        5, 12, 200.0, [TenantSpec("b", 20.0, process="bursty")], seed=5
    )
    assert dispersion(bursty, 200) > 2 * dispersion(poisson, 200)
    # the long-run mean rate still matches the spec
    assert len(bursty) == pytest.approx(len(poisson), rel=0.25)


def test_diurnal_curve_modulates_arrival_density():
    curve = DiurnalCurve(amplitude=0.9, period_s=100.0, phase=np.pi / 2)
    reads = open_arrivals(5, 12, 100.0, [TenantSpec("t", 50.0)], diurnal=curve, seed=4)
    times = np.array([r.time for r in reads])
    # phase π/2: peak (×1.9) in the first quarter, trough (×0.1) in the third
    peak = np.sum(times < 25.0)
    trough = np.sum((times >= 50.0) & (times < 75.0))
    # expected densities ~39 vs ~11 arrivals per unit rate: ratio ≈ 3.7
    assert peak > 2.5 * trough


def test_target_disk_pins_reads_and_is_bounds_checked():
    reads = open_arrivals(5, 12, 4.0, [TenantSpec("t", 30.0, target_disk=2)], seed=1)
    assert all(r.i == 2 for r in reads)
    with pytest.raises(ValueError, match=r"target_disk must be in \[0, 5\)"):
        open_arrivals(5, 12, 4.0, [TenantSpec("t", 30.0, target_disk=5)], seed=1)


def test_open_arrivals_validates_mix():
    with pytest.raises(ValueError, match="at least one tenant"):
        open_arrivals(5, 12, 4.0, [], seed=1)
    with pytest.raises(ValueError, match="unique"):
        open_arrivals(5, 12, 4.0, [TenantSpec("t", 1.0), TenantSpec("t", 2.0)], seed=1)
    with pytest.raises(ValueError, match="duration"):
        open_arrivals(5, 12, 0.0, [TenantSpec("t", 1.0)], seed=1)


# ----------------------------------------------------------------------
# SLO accounting
# ----------------------------------------------------------------------


def test_slo_summary_percentiles_match_numpy():
    reg = MetricsRegistry()
    acc = SLOAccountant(deadline_s=0.05, registry=reg)
    lats = np.random.default_rng(0).exponential(0.03, size=500)
    for x in lats:
        acc.record(float(x), tenant="vod")
    s = acc.summary(duration_s=10.0)
    assert s.served == 500
    assert s.p50_s == pytest.approx(float(np.percentile(lats, 50)))
    assert s.p99_s == pytest.approx(float(np.percentile(lats, 99)))
    assert s.p999_s == pytest.approx(float(np.percentile(lats, 99.9)))
    assert s.mean_s == pytest.approx(float(lats.mean()))
    assert s.max_s == pytest.approx(float(lats.max()))
    assert s.deadline_misses == int(np.sum(lats > 0.05))
    assert s.goodput_rps == pytest.approx((500 - s.deadline_misses) / 10.0)
    assert dict(s.per_tenant_served) == {"vod": 500}


def test_slo_empty_summary_is_nan_and_json_null():
    s = SLOAccountant(registry=MetricsRegistry()).summary(duration_s=5.0)
    assert s.served == 0
    assert math.isnan(s.p50_s) and math.isnan(s.p99_s) and math.isnan(s.p999_s)
    assert math.isnan(s.mean_s) and math.isnan(s.max_s)
    assert s.goodput_rps == 0.0
    d = s.to_dict()
    assert d["p99_s"] is None and d["mean_s"] is None


def test_slo_streaming_quantile_tracks_exact_quantile():
    reg = MetricsRegistry()
    acc = SLOAccountant(registry=reg, gauge_every=10)
    lats = np.random.default_rng(1).exponential(0.02, size=300)
    for x in lats:
        acc.record(float(x))
    exact = float(np.percentile(lats, 99))
    est = acc.streaming_quantile(0.99)
    # bucketed estimate: right bucket's upper bound, so within one
    # power-of-two bracket of the exact value
    assert exact <= est <= 4 * exact
    assert math.isnan(SLOAccountant(registry=MetricsRegistry()).streaming_quantile(0.5))


def test_slo_wires_metrics_registry():
    reg = MetricsRegistry()
    acc = SLOAccountant(deadline_s=0.01, registry=reg)
    acc.record(0.005, tenant="a")
    acc.record(0.5, tenant="b")
    acc.observe_queue_depth(7)
    snap = reg.snapshot()
    assert "serve.reads_total" in snap["counters"]
    assert "serve.deadline_miss_total" in snap["counters"]
    assert "serve.read_latency_s" in snap["histograms"]
    assert "serve.queue_depth" in snap["gauges"]


# ----------------------------------------------------------------------
# throttle policies
# ----------------------------------------------------------------------


def test_fixed_throttle():
    assert FixedThrottle(0.25).delay_s(1.0) == 0.25
    with pytest.raises(ValueError):
        FixedThrottle(-0.1)


def test_token_bucket_charges_debt_at_the_configured_rate():
    tb = TokenBucketThrottle(ios_per_s=10.0, burst=10.0)
    assert tb.delay_s(0.0, n_ios=5) == 0.0  # within burst
    # 5 tokens left, spend 25: debt 20 -> 2 s to refill
    assert tb.delay_s(0.0, n_ios=25) == pytest.approx(2.0)
    # 3 s later the debt is repaid and 10 more accrued (capped at burst)
    assert tb.delay_s(3.0, n_ios=5) == 0.0
    with pytest.raises(ValueError):
        TokenBucketThrottle(0.0)


def test_latency_target_throttle_ramps_and_decays():
    p = LatencyTargetThrottle(0.05, window=8, base_delay_s=0.01, max_delay_s=0.5)
    assert p.delay_s(0.0) == 0.0  # no observations yet
    for _ in range(8):
        p.observe(0.2)  # 4x over target
    ramp = [p.delay_s(float(t)) for t in range(8)]
    assert ramp[0] == pytest.approx(0.01)
    assert ramp[-1] == pytest.approx(0.5)  # capped
    assert all(b >= a for a, b in zip(ramp, ramp[1:]))
    for _ in range(8):
        p.observe(0.001)  # well under target
    decay = [p.delay_s(float(t)) for t in range(8)]
    assert all(b <= a for a, b in zip(decay, decay[1:]))
    assert decay[-1] == 0.0  # fully released


def test_make_throttle_specs():
    assert make_throttle("none") == 0.0
    assert isinstance(make_throttle("fixed:0.05"), FixedThrottle)
    assert isinstance(make_throttle("token:25"), TokenBucketThrottle)
    lt = make_throttle("latency:100")
    assert isinstance(lt, LatencyTargetThrottle)
    assert lt.target_p99_s == pytest.approx(0.1)
    for bad in ("fixed", "warp:3", "token:fast"):
        with pytest.raises(ValueError):
            make_throttle(bad)


def test_policies_satisfy_the_throttle_protocol():
    for p in (FixedThrottle(0.1), TokenBucketThrottle(5.0), LatencyTargetThrottle(0.1)):
        assert isinstance(p, RebuildThrottle)
