"""On-line reconstruction: degraded reads, priorities, latency effect."""

from __future__ import annotations

import pytest

from repro.core.layouts import (
    RAID5Layout,
    RAID6Layout,
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
)
from repro.disksim.scheduler import PriorityScheduler
from repro.raidsim.controller import RaidController
from repro.raidsim.reconstruction import OnlineReconstruction, degraded_read_sources
from repro.workloads.generator import UserRead, user_read_stream


def _ctrl(layout, **kw):
    kw.setdefault("n_stripes", 12)
    kw.setdefault("payload_bytes", 8)
    kw.setdefault("scheduler_factory", PriorityScheduler)
    return RaidController(layout, **kw)


# ----------------------------------------------------------------------
# degraded-read source selection
# ----------------------------------------------------------------------


def test_intact_element_reads_primary():
    lay = shifted_mirror(3)
    assert degraded_read_sources(lay, {4}, 0, 0) == [lay.data_cell(0, 0)]


def test_failed_element_reads_replica():
    lay = shifted_mirror(3)
    src = degraded_read_sources(lay, {0}, 0, 1)
    assert src == lay.replica_cells(0, 1)


def test_double_failure_falls_back_to_parity_row():
    lay = shifted_mirror_parity(3)
    i, j = 0, 2
    (rd, _), = lay.replica_cells(i, j)
    src = degraded_read_sources(lay, {0, rd}, i, j)
    assert lay.parity_cell(j) in src
    assert len(src) == 3  # two surviving row elements + parity


def test_raid5_degraded_read_uses_row():
    lay = RAID5Layout(4)
    src = degraded_read_sources(lay, {1}, 1, 2)
    assert (lay.parity_disk, 2) in src
    assert len(src) == 4


def test_raid6_double_failure_reads_everything():
    lay = RAID6Layout(4, "rdp")
    src = degraded_read_sources(lay, {0, lay.p_disk}, 0, 1)
    assert len(src) == (lay.n_disks - 2) * lay.rows


def test_mirror_unrecoverable_raises():
    from repro.core.errors import UnrecoverableFailureError

    lay = shifted_mirror(3)
    (rd, _), = lay.replica_cells(0, 0)
    with pytest.raises(UnrecoverableFailureError):
        degraded_read_sources(lay, {0, rd}, 0, 0)


# ----------------------------------------------------------------------
# the online driver
# ----------------------------------------------------------------------


def test_requires_priority_scheduler():
    ctrl = RaidController(shifted_mirror(3), n_stripes=4, payload_bytes=8)
    with pytest.raises(ValueError, match="PriorityScheduler"):
        OnlineReconstruction(ctrl, [0], [])


def test_online_run_completes_and_verifies():
    ctrl = _ctrl(shifted_mirror(3))
    reads = user_read_stream(3, 12, duration_s=1.0, rate_per_s=10, target_disk=0)
    res = OnlineReconstruction(ctrl, [0], reads).run()
    assert res.rebuild.verified
    assert res.n_user_reads == len(reads)
    assert res.degraded_reads == len(reads)  # all targeted the failed disk
    assert res.mean_user_latency_s > 0
    assert res.p95_user_latency_s >= res.mean_user_latency_s * 0.5


def test_reads_to_intact_disks_are_not_degraded():
    ctrl = _ctrl(shifted_mirror(3))
    reads = [UserRead(0.1, 0, 1, 0), UserRead(0.2, 1, 2, 2)]  # disks 1, 2 intact
    res = OnlineReconstruction(ctrl, [0], reads).run()
    assert res.degraded_reads == 0


def test_shifted_improves_user_latency_over_traditional():
    """The paper's §III motivation, measured: during rebuild, degraded
    user reads suffer far less under the shifted arrangement."""
    latencies = {}
    for name, builder in (("trad", traditional_mirror), ("shift", shifted_mirror)):
        ctrl = _ctrl(builder(5), n_stripes=20)
        reads = user_read_stream(5, 20, duration_s=2.0, rate_per_s=15, target_disk=0)
        res = OnlineReconstruction(ctrl, [0], reads).run()
        assert res.rebuild.verified
        latencies[name] = res.mean_user_latency_s
    assert latencies["shift"] < latencies["trad"] / 2


def test_user_reads_preempt_rebuild_io():
    """With priorities, a user read overtakes queued rebuild requests
    on the same disk; its latency stays below a FIFO-queued wait."""
    ctrl = _ctrl(traditional_mirror(3), n_stripes=30)
    # one user read early in the rebuild, targeting the hot replica disk
    reads = [UserRead(0.5, 20, 0, 1)]
    res = OnlineReconstruction(ctrl, [0], reads, window=8).run()
    # without priority it would wait for ~all queued rebuild column reads
    assert res.max_user_latency_s < 1.5


def test_empty_read_stream_reports_nan_latencies():
    """Regression: zero-sample aggregates used to collapse to 0.0."""
    import math

    res = OnlineReconstruction(_ctrl(shifted_mirror(3)), [0], []).run()
    assert res.n_user_reads == 0
    assert math.isnan(res.mean_user_latency_s)
    assert math.isnan(res.p95_user_latency_s)
    assert math.isnan(res.max_user_latency_s)
    # the rebuild itself is unaffected
    assert res.rebuild.verified
