"""Span tracer and trace exporters: chrome JSON shape, JSONL round-trip."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Tracer,
    chrome_trace,
    default_tracer,
    load_trace_jsonl,
    metrics_summary,
    set_default_tracer,
    summarize_files,
    trace_summary,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.obs.tracing import GROUP_PID_STRIDE


def test_complete_and_instant_record_events():
    tr = Tracer()
    tr.complete("serve", 1.0, 0.5, pid=3, cat="io", bytes=4096)
    tr.instant("failure", 2.0, pid=1)
    assert len(tr) == 2
    ev = tr.events[0]
    assert (ev.name, ev.ph, ev.ts, ev.dur, ev.pid) == ("serve", "X", 1.0, 0.5, 3)
    assert ev.args == {"bytes": 4096}
    assert tr.events[1].ph == "i"


def test_begin_end_pairs_and_double_end_rejected():
    tr = Tracer()
    token = tr.begin("phase", 10.0, pid=2, idx=0)
    tr.end(token, 12.5)
    assert tr.events[0].dur == pytest.approx(2.5)
    assert tr.events[0].args == {"idx": 0}
    with pytest.raises(ValueError, match="already ended"):
        tr.end(token, 13.0)


def test_span_context_manager_uses_the_clock():
    ticks = iter([5.0, 8.0])
    tr = Tracer(clock=lambda: next(ticks))
    with tr.span("work", pid=1):
        pass
    ev = tr.events[0]
    assert (ev.ts, ev.dur) == (5.0, 3.0)


def test_groups_reserve_disjoint_pid_ranges():
    tr = Tracer()
    a = tr.group("traditional")
    b = tr.group("shifted")
    assert b.base_pid - a.base_pid == GROUP_PID_STRIDE
    a.complete("io", 0.0, 1.0, pid=2)
    b.complete("io", 0.0, 1.0, pid=2)
    assert tr.events[0].pid == 2
    assert tr.events[1].pid == GROUP_PID_STRIDE + 2
    a.name_track(2, "disk 2")
    assert tr.process_names()[2] == "traditional: disk 2"


def test_chrome_trace_shape_and_microsecond_conversion():
    tr = Tracer()
    g = tr.group("mirror(3)")
    g.name_track(0, "disk 0")
    g.complete("read", 0.001, 0.002, pid=0, cat="io", tag="rebuild")
    g.instant("marker", 0.004, pid=0)
    doc = chrome_trace(tr)
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {m["name"] for m in meta} == {"process_name", "process_sort_index"}
    assert any(m["args"] == {"name": "mirror(3): disk 0"} for m in meta)
    x = next(e for e in events if e["ph"] == "X")
    assert x["ts"] == pytest.approx(1000.0)  # seconds -> microseconds
    assert x["dur"] == pytest.approx(2000.0)
    assert x["args"]["tag"] == "rebuild"
    inst = next(e for e in events if e["ph"] == "i")
    assert inst["s"] == "t" and "dur" not in inst


def test_write_chrome_trace_is_loadable_json(tmp_path):
    tr = Tracer()
    tr.complete("io", 0.0, 1.0)
    path = write_chrome_trace(tmp_path / "trace.json", tr)
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    assert doc == chrome_trace(tr)


def test_jsonl_round_trip(tmp_path):
    tr = Tracer()
    tr.complete("read", 1.5, 0.25, pid=7, tid=1, cat="io", bytes=8)
    tr.instant("blip", 2.0)
    path = write_trace_jsonl(tmp_path / "trace.jsonl", tr)
    assert load_trace_jsonl(path) == tr.events


def test_default_tracer_install_and_restore():
    tr = Tracer()
    old = set_default_tracer(tr)
    try:
        assert default_tracer() is tr
    finally:
        set_default_tracer(old)
    assert default_tracer() is old


# ----------------------------------------------------------------------
# summaries
# ----------------------------------------------------------------------


def test_trace_summary_accounts_busy_time_per_track():
    tr = Tracer()
    tr.name_process(0, "disk 0")
    tr.complete("rebuild", 0.0, 1.0, pid=0)
    tr.complete("rebuild", 0.0, 0.5, pid=1)
    text = trace_summary(chrome_trace(tr))
    assert "2 spans" in text
    assert "rebuild" in text
    assert "disk 0" in text and "pid 1" in text


def test_trace_summary_empty():
    assert trace_summary({"traceEvents": []}) == "(no spans)"


def test_metrics_summary_lists_each_instrument():
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    reg.counter("c").inc(3, kind="read")
    reg.gauge("g").set(2)
    reg.histogram("h", buckets=(1.0,)).observe(0.5)
    text = metrics_summary(reg.snapshot())
    assert "c{kind=read} = 3" in text
    assert "g = 2" in text
    assert "h: n=1" in text
    assert metrics_summary({}) == "(empty snapshot)"


def test_summarize_files_round_trip(tmp_path):
    from repro.obs import MetricsRegistry, write_metrics

    tr = Tracer()
    tr.complete("io", 0.0, 1.0)
    trace_path = write_chrome_trace(tmp_path / "t.json", tr)
    reg = MetricsRegistry()
    reg.counter("c").inc()
    metrics_path = write_metrics(tmp_path / "m.json", reg)
    text = summarize_files(metrics_path=metrics_path, trace_path=trace_path)
    assert "== metrics:" in text and "== trace:" in text
    assert "nothing to summarize" in summarize_files()
