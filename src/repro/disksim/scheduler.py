"""Per-disk I/O schedulers.

Three policies, selectable per simulation:

* :class:`FIFOScheduler` — arrival order;
* :class:`ElevatorScheduler` — C-SCAN: serve the pending request with
  the smallest offset at or beyond the head, wrapping around; this is
  what merges the shifted arrangement's scattered element reads into
  efficient ascending sweeps;
* :class:`PriorityScheduler` — strict priority classes (lower first)
  with elevator order inside each class; used for on-line
  reconstruction, where user reads preempt rebuild I/O (§III).

The elevator variants keep their queues **sorted by (offset, req_id)**
as ``((offset, req_id), request)`` pairs — comparisons stay entirely in
C tuple code (no ``key=`` callable per probe), and ``req_id`` is unique
so ordering never falls through to comparing requests.  Arrivals stage
in a plain append-only list and merge into the sorted queue lazily at
the next pop: a burst of ``add`` calls costs one ``sort`` instead of a
memmove-per-insert.  ``tests/disksim/test_scheduler_equivalence.py``
property-checks that the ordering is identical to the original
linear-scan definition.

Every scheduler also supports :meth:`Scheduler.drain` — the full serve
order under no further arrivals — which the event engine's vectorized
drain path uses to compute a disk's remaining timeline in one call
instead of one ``pop`` per completion event.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from typing import Iterable

import numpy as np

from .request import IORequest

__all__ = ["Scheduler", "FIFOScheduler", "ElevatorScheduler", "PriorityScheduler"]

#: Below this queue length the Python sweep beats the numpy grid path's
#: fixed array-materialisation cost.
_GRID_MIN = 128


def _grid_drain_staged(staged: list[IORequest], head: int) -> list[IORequest] | None:
    """Vectorized drain order straight from unsorted arrivals, else ``None``.

    Same uniform-grid argument as :func:`_cscan_drain_grid`, but starting
    from the elevator's *staged* (arrival-order) list: one ``lexsort`` by
    ``(offset, req_id)`` replaces the comparison sort the lazy merge
    would otherwise pay, and no ``((offset, req_id), request)`` pair
    tuples are ever built.
    """
    n = len(staged)
    first_size = staged[0].size
    sizes = np.fromiter((r.size for r in staged), np.int64, n)
    if not (sizes == first_size).all():
        return None
    offs = np.fromiter((r.offset for r in staged), np.int64, n)
    if (offs % first_size).any():
        return None
    rids = np.fromiter((r.req_id for r in staged), np.int64, n)
    order = np.lexsort((rids, offs))
    offs = offs[order]
    start = int(np.searchsorted(offs, head, side="left"))
    if start == n:
        start = 0  # wrap: the first sweep covers the whole queue
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(offs[1:], offs[:-1], out=boundary[1:])
    run_starts = np.flatnonzero(boundary)
    run_lengths = np.diff(run_starts, append=np.int64(n))
    occurrence = np.arange(n, dtype=np.int64) - np.repeat(run_starts, run_lengths)
    sweep = occurrence + (np.arange(n) < start)
    final = order[np.argsort(sweep, kind="stable")]
    return [staged[i] for i in final.tolist()]


def _cscan_drain_grid(q: list, head: int) -> list[IORequest] | None:
    """Vectorized drain order for uniform-grid queues, else ``None``.

    When every request has the same size ``s`` and every offset is a
    multiple of ``s`` (the element-array common case), consecutive
    distinct offsets differ by at least ``s`` — so each C-SCAN sweep
    serves exactly the *first remaining* request of every distinct
    offset it covers.  A request's sweep number is therefore its
    occurrence index within its equal-offset run, plus one if it sits
    before the initial head (the first sweep only covers offsets at or
    beyond the head).  The serve order is then a single stable argsort
    by sweep number: ties keep the queue's (offset, req_id) order,
    which is exactly the order each sweep picks them in.
    """
    n = len(q)
    s = q[0][1].size
    sizes = np.fromiter((pair[1].size for pair in q), np.int64, n)
    if not (sizes == s).all():
        return None
    offs = np.fromiter((pair[0][0] for pair in q), np.int64, n)
    if (offs % s).any():
        return None
    start = int(np.searchsorted(offs, head, side="left"))
    if start == n:
        start = 0  # wrap: the first sweep covers the whole queue
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(offs[1:], offs[:-1], out=boundary[1:])
    run_starts = np.flatnonzero(boundary)
    run_lengths = np.diff(run_starts, append=np.int64(n))
    occurrence = np.arange(n, dtype=np.int64) - np.repeat(run_starts, run_lengths)
    sweep = occurrence + (np.arange(n) < start)
    order = np.argsort(sweep, kind="stable")
    return [q[i][1] for i in order.tolist()]


def _cscan_drain(q: list, head: int) -> list[IORequest]:
    """Serve order of repeated C-SCAN pops over a sorted pair list.

    ``q`` is a ``((offset, req_id), request)`` list sorted ascending;
    it is consumed.  Each sweep walks forward from the head greedily
    chaining requests whose offset is at or beyond the previous
    request's end (the head after serving), wraps to the lowest
    remaining offset, and repeats — exactly the sequence of
    ``pop(head)`` results, computed in O(n) per sweep instead of a
    bisect plus list memmove per pop.
    """
    if len(q) >= _GRID_MIN:
        ordered = _cscan_drain_grid(q, head)
        if ordered is not None:
            q.clear()
            return ordered
    out: list[IORequest] = []
    low_yield_sweeps = 0
    while q:
        n_before = len(q)
        start = bisect_left(q, ((head, -1),))
        if start == len(q):
            start = 0  # wrap: lowest remaining offset
        leftovers = q[:start]
        cur_end = -1  # first pick is unconditional (offsets are >= 0)
        append = out.append
        skip = leftovers.append
        for j in range(start, n_before):
            pair = q[j]
            if pair[0][0] >= cur_end:
                req = pair[1]
                append(req)
                cur_end = req.offset + req.size
            else:
                skip(pair)
        q = leftovers
        head = cur_end
        # degenerate queues (many requests overlapping one hot range)
        # pick O(1) requests per sweep; finish those with per-pop
        # bisects rather than going quadratic in whole-queue sweeps.
        # One low-yield sweep is normal (the first sweep starts at an
        # arbitrary head, so it only covers the top of the range) —
        # only bail after two in a row.
        if (n_before - len(q)) * 8 < n_before:
            low_yield_sweeps += 1
            if low_yield_sweeps >= 2 and len(q) > 512:
                while q:
                    idx = bisect_left(q, ((head, -1),))
                    if idx == len(q):
                        idx = 0
                    req = q.pop(idx)[1]
                    append(req)
                    head = req.offset + req.size
                break
        else:
            low_yield_sweeps = 0
    return out


class Scheduler:
    """Queue discipline interface for one disk's pending requests."""

    __slots__ = ("_pending",)

    def __init__(self) -> None:
        self._pending: list[IORequest] = []

    def add(self, request: IORequest) -> None:
        self._pending.append(request)

    def pop(self, head_position: int) -> IORequest:
        """Remove and return the next request to serve."""
        raise NotImplementedError

    def drain(self, head_position: int) -> list[IORequest]:
        """Full serve order assuming no further arrivals; empties the queue.

        Semantically identical to calling :meth:`pop` until empty with
        the head advanced to each served request's end — which is what
        the engine does between arrivals, since the disk model moves
        its head to ``request.end`` after every serve.  Subclasses
        override this with O(n)-ish extraction; the base implementation
        is the literal pop loop, so any scheduler is drainable.
        """
        out: list[IORequest] = []
        pop = self.pop
        while self:
            request = pop(head_position)
            out.append(request)
            head_position = request.offset + request.size
        return out

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def peek_all(self) -> Iterable[IORequest]:
        """View of pending requests in queue order (diagnostics).

        May be a live view or an assembled list depending on the
        scheduler's internal layout; it must not be mutated.  Call
        :meth:`snapshot` for an independent copy.
        """
        return self._pending

    def snapshot(self) -> list[IORequest]:
        """Explicit point-in-time copy of the pending requests."""
        return list(self.peek_all())


class FIFOScheduler(Scheduler):
    """First in, first out."""

    __slots__ = ()

    def __init__(self) -> None:
        # a deque pops from the left in O(1); the old list.pop(0)
        # shifted the whole queue on every dispatch
        self._pending: deque[IORequest] = deque()  # type: ignore[assignment]

    def pop(self, head_position: int) -> IORequest:
        if not self._pending:
            raise IndexError("pop from empty scheduler")
        return self._pending.popleft()  # type: ignore[attr-defined]

    def drain(self, head_position: int) -> list[IORequest]:
        out = list(self._pending)
        self._pending.clear()
        return out


class ElevatorScheduler(Scheduler):
    """C-SCAN: ascending offsets from the head, wrapping to the lowest.

    The queue is kept sorted by ``(offset, req_id)``; ``pop`` binary
    searches for the first request at or beyond the head and wraps to
    index 0 when nothing is ahead — exactly the request the original
    linear scan selected via ``min`` over the ahead (or whole) pool.
    New arrivals stage unsorted and merge at the next pop.
    """

    __slots__ = ("_q", "_staged")

    def __init__(self) -> None:
        self._q: list[tuple[tuple[int, int], IORequest]] = []
        self._staged: list[IORequest] = []

    def add(self, request: IORequest) -> None:
        # bare request, no sort-key pair — arrivals are the engine's
        # hottest path and the key is only needed once the queue is
        # actually ordered (lazily, at the next pop or drain)
        self._staged.append(request)

    def _merge(self) -> None:
        staged = self._staged
        if staged:
            q = self._q
            if len(staged) == 1 and q:
                r = staged[0]
                insort(q, ((r.offset, r.req_id), r))
            else:
                q.extend(((r.offset, r.req_id), r) for r in staged)
                q.sort()
            staged.clear()

    def pop(self, head_position: int) -> IORequest:
        self._merge()
        q = self._q
        if not q:
            raise IndexError("pop from empty scheduler")
        # the probe 1-tuple sorts before any real ((offset, req_id),
        # request) entry with the same key, and req_id >= 0 means the
        # keys never tie with (head, -1) — so this finds the first
        # entry with offset >= head without ever comparing requests
        idx = bisect_left(q, ((head_position, -1),))
        if idx == len(q):
            idx = 0  # wrap: lowest offset
        return q.pop(idx)[1]

    def drain(self, head_position: int) -> list[IORequest]:
        staged = self._staged
        if not self._q and len(staged) >= _GRID_MIN:
            out = _grid_drain_staged(staged, head_position)
            if out is not None:
                staged.clear()
                return out
        self._merge()
        q = self._q
        self._q = []
        return _cscan_drain(q, head_position)

    def __len__(self) -> int:
        return len(self._q) + len(self._staged)

    def __bool__(self) -> bool:
        return bool(self._q) or bool(self._staged)

    def peek_all(self) -> list[IORequest]:
        self._merge()
        return [pair[1] for pair in self._q]


class PriorityScheduler(Scheduler):
    """Strict priority classes, C-SCAN within a class.

    ``priority`` 0 beats 10; within equal priority the elevator rule
    applies.  This realises the paper's on-line reconstruction policy:
    "the failed data is recovered and responded to user with a higher
    priority than other reconstruction I/Os".

    One sorted pair queue per priority class; there are only a handful
    of classes (0 for user reads, 10 for rebuild I/O), so the ``min``
    over class keys is effectively constant-time.
    """

    __slots__ = ("_classes", "_count")

    def __init__(self) -> None:
        self._classes: dict[int, list[tuple[tuple[int, int], IORequest]]] = {}
        self._count = 0

    def add(self, request: IORequest) -> None:
        queue = self._classes.get(request.priority)
        if queue is None:
            queue = self._classes[request.priority] = []
        insort(queue, ((request.offset, request.req_id), request))
        self._count += 1

    def pop(self, head_position: int) -> IORequest:
        if not self._count:
            raise IndexError("pop from empty scheduler")
        top = min(self._classes)
        queue = self._classes[top]
        idx = bisect_left(queue, ((head_position, -1),))
        if idx == len(queue):
            idx = 0
        request = queue.pop(idx)[1]
        if not queue:
            del self._classes[top]
        self._count -= 1
        return request

    def drain(self, head_position: int) -> list[IORequest]:
        # with no arrivals, strict priority serves class 0 to empty,
        # then class 1, ... — the head carries across class boundaries
        out: list[IORequest] = []
        for priority in sorted(self._classes):
            chain = _cscan_drain(self._classes[priority], head_position)
            out.extend(chain)
            if chain:
                last = chain[-1]
                head_position = last.offset + last.size
        self._classes.clear()
        self._count = 0
        return out

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def peek_all(self) -> list[IORequest]:
        # classes are separate queues, so this view is necessarily
        # assembled — still only built when diagnostics ask for it
        return [pair[1] for p in sorted(self._classes) for pair in self._classes[p]]
