"""Scrubbing: detection, repair, and the scrub-before-rebuild payoff."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import UnrecoverableFailureError
from repro.core.layouts import (
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
)
from repro.disksim.faults import LatentSectorErrors
from repro.raidsim.controller import RaidController
from repro.raidsim.scrub import Scrubber

ELEM = 4 * 1024 * 1024


def _ctrl(layout, lse, **kw):
    kw.setdefault("n_stripes", 4)
    kw.setdefault("payload_bytes", 8)
    return RaidController(layout, element_size=ELEM, lse=lse, **kw)


def test_scrubber_requires_fault_model():
    ctrl = RaidController(shifted_mirror(3), n_stripes=2, payload_bytes=8)
    with pytest.raises(ValueError, match="LSE model"):
        Scrubber(ctrl)


def test_clean_array_scrub_reports_clean():
    lse = LatentSectorErrors(ELEM)
    ctrl = _ctrl(shifted_mirror(3), lse)
    report = Scrubber(ctrl).run()
    assert report.clean
    assert report.elements_scanned == 6 * 4 * 3
    assert report.errors_repaired == 0
    assert report.scan_throughput_mbps > 0


def test_scan_runs_at_streaming_rate_per_disk():
    """The sweep is sequential per disk and parallel across disks."""
    lse = LatentSectorErrors(ELEM)
    ctrl = _ctrl(shifted_mirror(3), lse, n_stripes=16)
    report = Scrubber(ctrl).run()
    # 6 disks each streaming ~54.8 MB/s
    assert report.scan_throughput_mbps == pytest.approx(6 * 54.8, rel=0.05)


def test_scrub_finds_and_repairs_mirror_lse():
    lse = LatentSectorErrors(ELEM)
    ctrl = _ctrl(shifted_mirror(3), lse)
    (rep_cell,) = ctrl.layout.replica_cells(0, 1)
    pd, slot = ctrl.place(1, rep_cell)
    lse.inject(pd, slot)
    report = Scrubber(ctrl).run()
    assert report.errors_found == 1
    assert report.errors_repaired == 1
    assert report.fully_repaired
    assert not lse.is_bad(pd, slot)  # rewrite healed the sector


def test_scrub_repairs_parity_element_from_row():
    lse = LatentSectorErrors(ELEM)
    ctrl = _ctrl(shifted_mirror_parity(3), lse)
    pd, slot = ctrl.place(2, ctrl.layout.parity_cell(1))
    lse.inject(pd, slot)
    report = Scrubber(ctrl).run()
    assert report.errors_repaired == 1


def test_scrub_repairs_many_random_errors():
    lse = LatentSectorErrors(ELEM)
    ctrl = _ctrl(shifted_mirror_parity(4), lse, n_stripes=6)
    rng = np.random.default_rng(5)
    lse.inject_random(rng, 8, ctrl.layout.n_disks, 6 * 4)
    report = Scrubber(ctrl).run()
    assert report.errors_found == 8
    assert report.fully_repaired
    assert len(lse) == 0


def test_element_with_both_copies_dead_is_unrepairable_in_mirror():
    lse = LatentSectorErrors(ELEM)
    ctrl = _ctrl(shifted_mirror(3), lse)
    data_cell = ctrl.layout.data_cell(0, 1)
    (rep_cell,) = ctrl.layout.replica_cells(0, 1)
    for cell in (data_cell, rep_cell):
        lse.inject(*ctrl.place(0, cell))
    report = Scrubber(ctrl).run()
    assert report.errors_found == 2
    assert len(report.unrepairable) == 2
    assert not report.fully_repaired


def test_parity_variant_repairs_dual_copy_loss_via_parity():
    """Same double hit, but the parity path still regenerates both."""
    lse = LatentSectorErrors(ELEM)
    ctrl = _ctrl(shifted_mirror_parity(3), lse)
    data_cell = ctrl.layout.data_cell(0, 1)
    (rep_cell,) = ctrl.layout.replica_cells(0, 1)
    for cell in (data_cell, rep_cell):
        lse.inject(*ctrl.place(0, cell))
    report = Scrubber(ctrl).run()
    assert report.fully_repaired


def test_scrub_before_rebuild_prevents_data_loss():
    """The operational story: the same LSE that kills a mirror rebuild
    is harmless if a scrub ran first."""
    def poisoned_controller():
        lse = LatentSectorErrors(ELEM)
        ctrl = _ctrl(traditional_mirror(3), lse)
        (rep_cell,) = ctrl.layout.replica_cells(0, 1)
        lse.inject(*ctrl.place(1, rep_cell))
        return ctrl

    # without scrubbing: data loss
    with pytest.raises(UnrecoverableFailureError):
        poisoned_controller().rebuild([0])
    # with a scrub first: clean rebuild
    ctrl = poisoned_controller()
    report = Scrubber(ctrl).run()
    assert report.fully_repaired
    assert ctrl.rebuild([0]).verified


def test_scrub_without_repair_only_reports():
    lse = LatentSectorErrors(ELEM)
    ctrl = _ctrl(shifted_mirror(3), lse)
    (rep_cell,) = ctrl.layout.replica_cells(1, 1)
    pd, slot = ctrl.place(0, rep_cell)
    lse.inject(pd, slot)
    report = Scrubber(ctrl).run(repair=False)
    assert report.errors_found == 1
    assert report.errors_repaired == 0
    assert lse.is_bad(pd, slot)
