"""The nemesis campaign loop: determinism, resume, the invariant."""

from __future__ import annotations

import json

import pytest

from repro.nemesis import HazardRates, NemesisConfig, run_nemesis_campaign

# a few hours of simulated time: fast, but with real faults in it
TINY = NemesisConfig(
    n=3,
    horizon_s=8 * 600.0,
    tick_s=600.0,
    seed=41,
    rates=HazardRates(
        disk_death_per_day=12.0,
        fail_slow_per_day=24.0,
        transient_burst_per_day=24.0,
        lse_storm_per_day=12.0,
    ),
    n_stripes=4,
    reads_per_tick=16,
)


def test_config_validation():
    with pytest.raises(ValueError, match="positive"):
        NemesisConfig(horizon_s=0.0)
    with pytest.raises(ValueError, match="tick_s"):
        NemesisConfig(horizon_s=10.0, tick_s=20.0)
    with pytest.raises(ValueError, match="reads_per_tick"):
        NemesisConfig(reads_per_tick=0)
    with pytest.raises(ValueError, match="no registered comparison pair"):
        NemesisConfig(family="raid60")


def test_fingerprint_tracks_config_identity():
    assert TINY.fingerprint() == TINY.fingerprint()
    other = NemesisConfig(
        **{**TINY.to_dict(), "seed": 42, "rates": TINY.rates}
    )
    assert other.fingerprint() != TINY.fingerprint()


def test_campaign_is_bit_reproducible():
    rep1 = run_nemesis_campaign(TINY)
    rep2 = run_nemesis_campaign(TINY)
    assert rep1.digest == rep2.digest
    assert rep1.to_dict() == rep2.to_dict()


def test_both_arrangements_face_the_identical_schedule():
    rep = run_nemesis_campaign(TINY)
    assert rep.schedule.seed == TINY.seed
    assert len(rep.schedule) > 0
    # per-tick active-fault sets derive from the one shared schedule
    assert rep.traditional.n_ticks == rep.shifted.n_ticks == TINY.n_ticks


def test_campaign_attribution_invariant_holds():
    rep = run_nemesis_campaign(TINY)
    rep.assert_invariant()
    assert rep.attribution_coverage == 1.0
    assert rep.unexplained_total == 0
    # the storm was real: probes did hit degraded ticks
    assert rep.traditional.rebuild_ticks > 0


def test_checkpoint_resume_converges_on_the_uninterrupted_report(tmp_path):
    ckpt = tmp_path / "nemesis.ckpt"
    baseline = run_nemesis_campaign(TINY)
    # kill the campaign after 5 fresh ticks...
    assert (
        run_nemesis_campaign(TINY, checkpoint_path=str(ckpt), stop_after_ticks=5)
        is None
    )
    assert ckpt.exists()
    partial = json.loads(ckpt.read_text())
    assert partial["fingerprint"] == TINY.fingerprint()
    assert len(partial["samples"]["traditional"]) == 5
    # ...and resume: the final report matches the never-killed run
    resumed = run_nemesis_campaign(TINY, checkpoint_path=str(ckpt))
    assert resumed is not None
    assert resumed.to_dict() == baseline.to_dict()


def test_checkpoint_refuses_a_different_config(tmp_path):
    ckpt = tmp_path / "nemesis.ckpt"
    assert (
        run_nemesis_campaign(TINY, checkpoint_path=str(ckpt), stop_after_ticks=2)
        is None
    )
    other = NemesisConfig(**{**TINY.to_dict(), "seed": 99, "rates": TINY.rates})
    with pytest.raises(ValueError, match="different campaign config"):
        run_nemesis_campaign(other, checkpoint_path=str(ckpt))


def test_report_wire_form_carries_the_timeline_block():
    rep = run_nemesis_campaign(TINY)
    d = rep.to_dict()
    assert d["schema_version"] == 1
    tl = d["active_fault_timeline"]
    assert tl["schema_version"] == 1
    assert tl["n_faults"] == len(rep.schedule)
    assert d["traditional"]["attribution"]["n_unexplained"] == 0
    # the JSON wire form round-trips through the stdlib encoder
    json.loads(json.dumps(d))


@pytest.mark.slow
def test_week_long_campaign_meets_the_acceptance_bar():
    """A seeded week on both arrangements: 100% attribution, bit-stable."""
    config = NemesisConfig(seed=2012)
    assert config.horizon_s >= 7 * 86_400.0
    rep = run_nemesis_campaign(config)
    rep.assert_invariant()
    assert rep.attribution_coverage == 1.0
    assert rep.traditional.attribution.n_excursions > 0  # the storm bit
    assert run_nemesis_campaign(config).digest == rep.digest
