"""Ablation: read-modify-write vs reconstruct-write parity updates.

DESIGN.md §5: for a partial-row write of k of n elements, RMW reads
``k + 1`` old elements while reconstruct-write reads ``n - k``; the
plans cross over around ``k = (n - 1) / 2``, and the simulated
throughput should follow the plan sizes.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.core.layouts import shifted_mirror_parity
from repro.raidsim.controller import RaidController
from repro.workloads.generator import WriteOp


def test_bench_parity_strategy_plan_crossover(benchmark):
    def sweep():
        n = 7
        lay = shifted_mirror_parity(n)
        rows = []
        for k in range(1, n + 1):
            cells = [(i, 0) for i in range(k)]
            rmw = lay.write_plan(cells, strategy="rmw").total_elements_read
            rec = lay.write_plan(cells, strategy="reconstruct").total_elements_read
            rows.append((k, rmw, rec))
        return rows

    rows = run_once(benchmark, sweep)
    n = 7
    for k, rmw, rec in rows:
        if k == n:
            assert rmw == rec == 0  # full row: no reads either way
        else:
            assert rmw == k + 1
            assert rec == n - k
    # crossover: small writes favour RMW, near-full rows favour reconstruct
    assert rows[0][1] < rows[0][2]
    assert rows[n - 2][1] > rows[n - 2][2]
    benchmark.extra_info["reads_by_k"] = rows


def test_bench_parity_strategy_bytes_and_throughput(benchmark):
    """Simulated confirmation: the strategy choice shows up as bytes
    read from disk (RMW reads k+1 old elements, reconstruct reads n-k),
    while the *access* count — and hence throughput under parallel I/O
    — stays comparable.  That both strategies survive in practice is
    exactly this trade-off."""

    def measure(k, strategy):
        n = 5
        ctrl = RaidController(shifted_mirror_parity(n), n_stripes=6, payload_bytes=8)
        rng = np.random.default_rng(1)
        ops = []
        for _ in range(40):
            row = int(rng.integers(0, n))
            ops.append(
                WriteOp(int(rng.integers(0, 6)), tuple((i, row) for i in range(k)))
            )
        res = ctrl.run_write_workload(ops, strategy=strategy, window=1)
        return res.write_throughput_mbps, res.bytes_read

    def sweep():
        return {
            ("small", "rmw"): measure(1, "rmw"),
            ("small", "reconstruct"): measure(1, "reconstruct"),
            ("large", "rmw"): measure(4, "rmw"),
            ("large", "reconstruct"): measure(4, "reconstruct"),
        }

    res = run_once(benchmark, sweep)
    # bytes read follow the plan sizes: k+1=2 vs n-k=4 at k=1; 5 vs 1 at k=4
    assert res[("small", "rmw")][1] < res[("small", "reconstruct")][1]
    assert res[("large", "reconstruct")][1] < res[("large", "rmw")][1]
    # throughput stays in the same ballpark (both are one read access)
    for size in ("small", "large"):
        a, b = res[(size, "rmw")][0], res[(size, "reconstruct")][0]
        assert abs(a - b) / max(a, b) < 0.25, (size, a, b)
    benchmark.extra_info["mbps_and_bytes"] = {f"{a}/{b}": v for (a, b), v in res.items()}
