"""Workload persistence: JSON Lines save/load for reproducible runs.

Experiments should be replayable byte-for-byte.  Generated workloads
are deterministic given a seed, but persisting them decouples replays
from generator-version drift and lets externally captured traces (e.g.
converted from blktrace) drive the same harness.

Format: one JSON object per line.  Write ops::

    {"stripe": 3, "elements": [[0, 1], [1, 1]]}

User reads::

    {"time": 0.183, "stripe": 5, "i": 0, "j": 2}
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from .generator import UserRead, WriteOp

__all__ = [
    "save_write_ops",
    "load_write_ops",
    "save_user_reads",
    "load_user_reads",
]


def _open_for(path_or_file, mode: str):
    if hasattr(path_or_file, "read") or hasattr(path_or_file, "write"):
        return path_or_file, False
    return open(path_or_file, mode, encoding="utf-8"), True


def save_write_ops(ops: Iterable[WriteOp], path_or_file) -> int:
    """Write ops as JSONL; returns the count written."""
    fh: IO
    fh, owned = _open_for(path_or_file, "w")
    try:
        count = 0
        for op in ops:
            fh.write(
                json.dumps(
                    {"stripe": op.stripe, "elements": [list(e) for e in op.elements]}
                )
                + "\n"
            )
            count += 1
        return count
    finally:
        if owned:
            fh.close()


def load_write_ops(path_or_file) -> list[WriteOp]:
    """Read a JSONL write workload; validates field shapes."""
    fh, owned = _open_for(path_or_file, "r")
    try:
        ops: list[WriteOp] = []
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            try:
                stripe = int(record["stripe"])
                elements = tuple((int(i), int(j)) for i, j in record["elements"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"malformed write op on line {lineno}: {line!r}") from exc
            if not elements:
                raise ValueError(f"write op on line {lineno} has no elements")
            ops.append(WriteOp(stripe, elements))
        return ops
    finally:
        if owned:
            fh.close()


def save_user_reads(reads: Iterable[UserRead], path_or_file) -> int:
    """Write user reads as JSONL; returns the count written."""
    fh, owned = _open_for(path_or_file, "w")
    try:
        count = 0
        for r in reads:
            record = {"time": r.time, "stripe": r.stripe, "i": r.i, "j": r.j}
            if r.tenant:
                record["tenant"] = r.tenant
            fh.write(json.dumps(record) + "\n")
            count += 1
        return count
    finally:
        if owned:
            fh.close()


def load_user_reads(path_or_file) -> list[UserRead]:
    """Read a JSONL user-read stream, re-sorted by arrival time."""
    fh, owned = _open_for(path_or_file, "r")
    try:
        reads: list[UserRead] = []
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            try:
                reads.append(
                    UserRead(
                        float(record["time"]),
                        int(record["stripe"]),
                        int(record["i"]),
                        int(record["j"]),
                        tenant=str(record.get("tenant", "")),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"malformed user read on line {lineno}: {line!r}") from exc
        reads.sort(key=lambda r: r.time)
        return reads
    finally:
        if owned:
            fh.close()
