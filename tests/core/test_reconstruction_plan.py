"""ReconstructionPlan mechanics: dedup, accounting, validation, phases."""

from __future__ import annotations

import pytest

from repro.core.layouts import shifted_mirror_parity, traditional_mirror_parity
from repro.core.reconstruction import (
    ReconstructionPlan,
    RecoveryMethod,
    split_into_phases,
)


def test_add_read_dedups_and_sorts():
    plan = ReconstructionPlan((9,))
    plan.add_read(1, 3)
    plan.add_read(1, 0)
    plan.add_read(1, 3)
    assert plan.reads == {1: [0, 3]}


def test_num_read_accesses_is_max_per_disk():
    plan = ReconstructionPlan((9,))
    for r in range(4):
        plan.add_read(0, r)
    plan.add_read(1, 0)
    assert plan.num_read_accesses == 4
    assert plan.total_elements_read == 5
    assert plan.reads_per_disk() == {0: 4, 1: 1}


def test_empty_plan_zero_accesses():
    plan = ReconstructionPlan(())
    assert plan.num_read_accesses == 0


def test_add_step_registers_source_reads():
    plan = ReconstructionPlan((5,))
    plan.add_step((5, 0), RecoveryMethod.COPY, [(2, 1)])
    assert plan.reads == {2: [1]}


def test_add_step_skips_failed_and_produced_sources():
    plan = ReconstructionPlan((5, 6))
    plan.add_step((5, 0), RecoveryMethod.XOR, [(0, 0), (1, 0)])
    # second step sources the first step's output and a failed disk
    plan.add_step((6, 0), RecoveryMethod.COPY, [(5, 0)])
    assert 5 not in plan.reads and 6 not in plan.reads


def test_validate_rejects_read_from_failed_disk():
    plan = ReconstructionPlan((1,))
    plan.add_read(1, 0)
    with pytest.raises(AssertionError, match="failed disk"):
        plan.validate(4, 4)


def test_validate_rejects_unread_source():
    from repro.core.reconstruction import RecoveryStep

    plan = ReconstructionPlan((3,))
    plan.steps.append(RecoveryStep((3, 0), RecoveryMethod.COPY, ((1, 0),)))
    with pytest.raises(AssertionError, match="never read"):
        plan.validate(4, 4)


def test_validate_rejects_unrecovered_failed_source():
    from repro.core.reconstruction import RecoveryStep

    plan = ReconstructionPlan((2, 3))
    plan.steps.append(RecoveryStep((2, 0), RecoveryMethod.COPY, ((3, 0),)))
    with pytest.raises(AssertionError, match="unrecovered source"):
        plan.validate(5, 4)


def test_validate_rejects_out_of_range():
    plan = ReconstructionPlan((0,))
    plan.add_read(10, 0)
    with pytest.raises(AssertionError, match="out of range"):
        plan.validate(4, 4)


# ----------------------------------------------------------------------
# phase splitting
# ----------------------------------------------------------------------


def test_phases_cover_plan_exactly():
    lay = shifted_mirror_parity(5)
    plan = lay.reconstruction_plan([1, 8])
    phases = split_into_phases(plan)
    assert [p.failed_disk for p in phases] == [1, 8]
    # steps partition
    phase_steps = [s for p in phases for s in p.steps]
    assert phase_steps == plan.steps
    # reads partition (no element fetched twice)
    seen = set()
    for p in phases:
        for disk, rows in p.reads.items():
            for r in rows:
                assert (disk, r) not in seen
                seen.add((disk, r))
    want = {(d, r) for d, rows in plan.reads.items() for r in rows}
    assert seen == want


def test_phase_read_dedup_across_phases():
    """Traditional replica-pair failure: phase 2 (mirror column) copies
    from phase 1's recovered data and reads nothing new."""
    n = 4
    lay = traditional_mirror_parity(n)
    plan = lay.reconstruction_plan([1, n + 1])
    phases = split_into_phases(plan)
    assert phases[0].num_read_accesses == n  # parity path reads columns
    assert phases[1].reads == {}  # pure copy from recovered content


def test_single_failure_single_phase():
    lay = shifted_mirror_parity(4)
    plan = lay.reconstruction_plan([2])
    phases = split_into_phases(plan)
    assert len(phases) == 1
    assert phases[0].reads == plan.reads


def test_phase_accesses_never_exceed_plan_accesses_summed():
    """Sanity: splitting cannot create reads out of thin air."""
    lay = shifted_mirror_parity(6)
    for failed in [(0, 3), (0, 7), (2, 12), (6, 7)]:
        plan = lay.reconstruction_plan(failed)
        phases = split_into_phases(plan)
        total_phase_reads = sum(
            len(rows) for p in phases for rows in p.reads.values()
        )
        assert total_phase_reads == plan.total_elements_read
