"""The registry's comparison-pair mechanism and leaderboard rosters.

Guards the ISSUE 10 bugfix: family pairings are *declared* in the
registry (``COMPARISONS``), never derived from a ``shifted-`` name
prefix, and an unpaired name fails fast with the valid choices.
"""

from __future__ import annotations

import pytest

from repro.core.registry import (
    COMPARISONS,
    LAYOUTS,
    REGISTRY,
    LayoutSpec,
    build_layout,
    comparison_families,
    comparison_pair,
    leaderboard_layouts,
    register,
    shifted_variant_name,
)


def test_every_family_resolves_to_registered_layouts():
    for family in comparison_families():
        baseline, variant = comparison_pair(family)
        assert baseline in LAYOUTS and variant in LAYOUTS
        assert baseline != variant


def test_paper_families_keep_their_shifted_pairing():
    assert comparison_pair("mirror") == ("mirror", "shifted-mirror")
    assert comparison_pair("mirror-parity") == (
        "mirror-parity", "shifted-mirror-parity"
    )
    assert comparison_pair("three-mirror") == (
        "three-mirror", "shifted-three-mirror"
    )


def test_competitor_families_pair_against_natural_baselines():
    assert comparison_pair("declustered") == ("mirror", "declustered-mirror")
    assert comparison_pair("group-rotated") == ("mirror", "group-rotated-mirror")
    assert comparison_pair("rebuild-optimal") == (
        "raid6-rdp", "rebuild-optimal-rdp"
    )


@pytest.mark.parametrize("name", ["raid5", "xcode", "shifted-mirror", "nope"])
def test_unpaired_name_fails_fast_with_choices(name):
    """The fail-before test: layout names that are not comparison
    families raise ValueError listing the valid families."""
    with pytest.raises(ValueError) as exc:
        comparison_pair(name)
    message = str(exc.value)
    assert repr(name) in message
    for family in comparison_families():
        assert family in message


def test_pair_sides_agree_on_array_width():
    """Nemesis runs both sides against one fault schedule sized off the
    disk count — every declared pair must agree on it."""
    for family in comparison_families():
        baseline, variant = (
            build_layout(name, 4) for name in comparison_pair(family)
        )
        assert baseline.n_disks == variant.n_disks, family


def test_shifted_variant_name_back_compat():
    assert shifted_variant_name("mirror") == "shifted-mirror"
    with pytest.raises(ValueError):
        shifted_variant_name("declustered")  # variant is not shifted-*


def test_leaderboard_roster_contents():
    roster = leaderboard_layouts(5)
    for required in (
        "mirror", "shifted-mirror", "declustered-mirror",
        "rebuild-optimal-rdp", "group-rotated-mirror",
    ):
        assert required in roster
    assert "xcode" not in roster  # vertical geometry, excluded by spec
    # registration order is the roster order (stable across runs)
    assert roster == [n for n in REGISTRY if n in set(roster)]


def test_leaderboard_roster_respects_min_n():
    assert "xcode" not in leaderboard_layouts(7)  # flag, not just min_n
    small = leaderboard_layouts(2)
    assert "mirror" in small and "declustered-mirror" in small


def test_registry_and_layouts_dict_stay_in_sync():
    assert set(REGISTRY) == set(LAYOUTS)
    for name, spec in REGISTRY.items():
        assert spec.name == name
        assert LAYOUTS[name] is spec.builder
        assert spec.redundancy in {"mirror", "parity", "code"}


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError):
        register(LayoutSpec("mirror", lambda n: None, "dup"))


def test_every_spec_builds_a_layout_bearing_its_name():
    for name, spec in REGISTRY.items():
        lay = build_layout(name, spec.min_n if name == "xcode" else 4)
        assert lay.name == name, (name, lay.name)


def test_unknown_layout_name_exits():
    with pytest.raises(SystemExit):
        build_layout("not-a-layout", 4)
