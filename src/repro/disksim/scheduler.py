"""Per-disk I/O schedulers.

Three policies, selectable per simulation:

* :class:`FIFOScheduler` — arrival order;
* :class:`ElevatorScheduler` — C-SCAN: serve the pending request with
  the smallest offset at or beyond the head, wrapping around; this is
  what merges the shifted arrangement's scattered element reads into
  efficient ascending sweeps;
* :class:`PriorityScheduler` — strict priority classes (lower first)
  with elevator order inside each class; used for on-line
  reconstruction, where user reads preempt rebuild I/O (§III).
"""

from __future__ import annotations

from .request import IORequest

__all__ = ["Scheduler", "FIFOScheduler", "ElevatorScheduler", "PriorityScheduler"]


class Scheduler:
    """Queue discipline interface for one disk's pending requests."""

    def __init__(self) -> None:
        self._pending: list[IORequest] = []

    def add(self, request: IORequest) -> None:
        self._pending.append(request)

    def pop(self, head_position: int) -> IORequest:
        """Remove and return the next request to serve."""
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def peek_all(self) -> list[IORequest]:
        """Snapshot of pending requests (tests/diagnostics)."""
        return list(self._pending)


class FIFOScheduler(Scheduler):
    """First in, first out."""

    def pop(self, head_position: int) -> IORequest:
        if not self._pending:
            raise IndexError("pop from empty scheduler")
        return self._pending.pop(0)


class ElevatorScheduler(Scheduler):
    """C-SCAN: ascending offsets from the head, wrapping to the lowest."""

    def pop(self, head_position: int) -> IORequest:
        if not self._pending:
            raise IndexError("pop from empty scheduler")
        ahead = [r for r in self._pending if r.offset >= head_position]
        pool = ahead if ahead else self._pending
        best = min(pool, key=lambda r: (r.offset, r.req_id))
        self._pending.remove(best)
        return best


class PriorityScheduler(Scheduler):
    """Strict priority classes, C-SCAN within a class.

    ``priority`` 0 beats 10; within equal priority the elevator rule
    applies.  This realises the paper's on-line reconstruction policy:
    "the failed data is recovered and responded to user with a higher
    priority than other reconstruction I/Os".
    """

    def pop(self, head_position: int) -> IORequest:
        if not self._pending:
            raise IndexError("pop from empty scheduler")
        top = min(r.priority for r in self._pending)
        pool = [r for r in self._pending if r.priority == top]
        ahead = [r for r in pool if r.offset >= head_position]
        pool = ahead if ahead else pool
        best = min(pool, key=lambda r: (r.offset, r.req_id))
        self._pending.remove(best)
        return best
