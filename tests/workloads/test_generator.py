"""Workload generators: the Fig. 10 write mix and user read streams."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generator import (
    UserRead,
    WriteOp,
    random_large_writes,
    user_read_stream,
)


# ----------------------------------------------------------------------
# random large writes
# ----------------------------------------------------------------------


def test_op_count_and_types():
    ops = random_large_writes(4, 8, n_ops=50, rng=np.random.default_rng(0))
    assert len(ops) == 50
    assert all(isinstance(op, WriteOp) for op in ops)


@given(seed=st.integers(0, 10_000), n=st.integers(2, 7))
@settings(max_examples=40, deadline=None)
def test_ops_respect_stripe_bounds_and_are_row_major(seed, n):
    ops = random_large_writes(n, 5, n_ops=20, rng=np.random.default_rng(seed))
    for op in ops:
        assert 0 <= op.stripe < 5
        assert 1 <= op.n_elements <= n * n
        # row-major contiguity: element indices form a consecutive run
        indices = [j * n + i for i, j in op.elements]
        assert indices == list(range(indices[0], indices[0] + len(indices)))
        for i, j in op.elements:
            assert 0 <= i < n and 0 <= j < n


def test_sizes_span_element_to_full_stripe():
    ops = random_large_writes(3, 4, n_ops=500, rng=np.random.default_rng(1))
    sizes = {op.n_elements for op in ops}
    assert 1 in sizes
    assert 9 in sizes  # whole stripe


def test_deterministic_given_rng():
    a = random_large_writes(4, 4, 30, np.random.default_rng(7))
    b = random_large_writes(4, 4, 30, np.random.default_rng(7))
    assert a == b


def test_default_rng_is_seeded():
    assert random_large_writes(3, 3, 5) == random_large_writes(3, 3, 5)


# ----------------------------------------------------------------------
# user read stream
# ----------------------------------------------------------------------


def test_poisson_stream_within_duration():
    reads = user_read_stream(4, 6, duration_s=2.0, rate_per_s=50, rng=np.random.default_rng(2))
    assert reads  # 100 expected arrivals
    assert all(0 < r.time < 2.0 for r in reads)
    times = [r.time for r in reads]
    assert times == sorted(times)


def test_target_disk_pinning():
    reads = user_read_stream(
        4, 6, duration_s=1.0, rate_per_s=30, target_disk=2, rng=np.random.default_rng(3)
    )
    assert all(r.i == 2 for r in reads)


def test_unpinned_reads_spread_over_disks():
    reads = user_read_stream(4, 6, duration_s=5.0, rate_per_s=60, rng=np.random.default_rng(4))
    assert {r.i for r in reads} == {0, 1, 2, 3}


def test_rate_must_be_positive():
    with pytest.raises(ValueError):
        user_read_stream(4, 4, 1.0, 0)


def test_arrival_rate_roughly_matches():
    reads = user_read_stream(4, 4, duration_s=50.0, rate_per_s=10, rng=np.random.default_rng(5))
    assert len(reads) == pytest.approx(500, rel=0.2)


def test_user_read_is_frozen():
    r = UserRead(1.0, 0, 1, 2)
    with pytest.raises(AttributeError):
        r.time = 2.0


def test_target_disk_out_of_range_is_rejected():
    """Regression: out-of-range targets used to generate unreadable reads."""
    for bad in (-1, 4, 99):
        with pytest.raises(ValueError, match=r"target_disk must be in \[0, 4\)"):
            user_read_stream(4, 4, 1.0, 10.0, target_disk=bad)
    # boundary values stay legal
    assert all(
        r.i == 3 for r in user_read_stream(4, 4, 1.0, 10.0, target_disk=3)
    )
