"""Experiment: reproduce Fig. 8 (paper §VI-E).

Fig. 8 shows the element arrangements obtained by iterating the
transformation function T on an n = 3 stripe, annotated by which of the
three properties each iterate satisfies.  The paper's observations:

* iterates obtained by an odd number of transformations satisfy
  Properties 1 and 2;
* Property 3 is *not* automatic — the 1st and 5th iterates satisfy it,
  the 3rd does not.

We regenerate the arrangement grids and the property report for each
iterate, and cross-check the paper's specific claims.
"""

from __future__ import annotations

from ..core.arrangement import IteratedArrangement
from ..core.properties import property_report
from .reporting import ExperimentResult, Table

__all__ = ["arrangement_grid", "run"]


def arrangement_grid(n: int, k: int) -> str:
    """Ascii picture of iterate ``k``'s mirror array, Fig. 8 style.

    Cells show the 1-based data-element number ``i + j*n + 1`` the
    paper's figures use (element numbers count row-major through the
    data array).
    """
    arr = IteratedArrangement(n, k)
    labels = arr.mirror_layout_labels()
    lines = []
    for row in range(n):
        cells = []
        for disk in range(n):
            i, j = labels[disk, row]
            cells.append(f"{i + j * n + 1:3d}")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def run(n: int = 3, max_iterations: int = 6) -> ExperimentResult:
    """Property report and grids for iterates 0..max_iterations."""
    table = Table(
        ["iterate k", "P1", "P2", "P3", "equals shifted"],
        title=f"Fig. 8: iterated transformations of the n={n} stripe",
    )
    data = {}
    shifted = IteratedArrangement(n, 1)
    for k in range(max_iterations + 1):
        arr = IteratedArrangement(n, k)
        rep = property_report(arr)
        table.add(
            k,
            "yes" if rep["P1"] else "no",
            "yes" if rep["P2"] else "no",
            "yes" if rep["P3"] else "no",
            "yes" if arr == shifted else "no",
        )
        data[k] = rep
    # the paper's specific n=3 claims
    if n == 3:
        for k in (1, 3, 5):
            if not (data[k]["P1"] and data[k]["P2"]):
                raise AssertionError(f"odd iterate {k} should satisfy P1 and P2")
        if data[3]["P3"] or not data[5]["P3"]:
            raise AssertionError("paper claims iterate 5 satisfies P3 while iterate 3 does not")
    grids = "\n\n".join(
        f"iterate {k}:\n{arrangement_grid(n, k)}" for k in range(max_iterations + 1)
    )
    return ExperimentResult(
        experiment_id="fig8",
        description="Property satisfaction of iterated element arrangements",
        text=table.render() + "\n\n" + grids,
        data=data,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
