"""Bench: Fig. 7 — theoretical relative read accesses up to n = 50.

Checks the shape the paper plots: both curves fall fast, reach ~4-5 %
at n = 50, and the RAID 6 (shorten) curve sits at or below the
traditional mirror-with-parity curve.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig7 import run


def test_bench_fig7_series(benchmark):
    result = run_once(benchmark, run, 2, 50)
    trad = result.data["vs_traditional_percent"]
    raid6 = result.data["vs_raid6_percent"]
    assert all(a >= b for a, b in zip(trad, trad[1:]))  # monotone fall
    assert trad[-1] < 5.0  # "as low as 5 percent"
    assert all(r6 <= tr + 1e-9 for r6, tr in zip(raid6, trad))
    benchmark.extra_info["vs_traditional_at_50"] = trad[-1]
    benchmark.extra_info["vs_raid6_at_50"] = raid6[-1]
