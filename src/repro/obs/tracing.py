"""Span tracing with chrome://tracing ("Trace Event Format") export.

A :class:`Tracer` collects timestamped spans — explicit
``complete(name, ts, dur)`` records, ``begin``/``end`` pairs for
callback-driven code like the event loop, and a ``span(...)`` context
manager for straight-line code.  Timestamps are *simulated seconds*
(any monotone float works; wall-clock tracers pass their own clock).

Tracks are organised the chrome-trace way: a *pid* is a track group
(we use one pid per simulated disk, so a rebuild renders as a Gantt
chart of spindles in Perfetto / ``chrome://tracing``) and a *tid* is a
row inside it.  :meth:`Tracer.group` hands out non-overlapping pid
ranges so several simulations — e.g. the traditional and the shifted
arrangement of one campaign — coexist in a single trace without
colliding.

Export lives in :mod:`repro.obs.export`; this module only records.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["TraceEvent", "SpanToken", "Tracer", "TraceGroup"]

#: pids per :meth:`Tracer.group` allocation — far more spindles than
#: any simulated array uses
GROUP_PID_STRIDE = 1000


@dataclass(slots=True)
class TraceEvent:
    """One trace record (chrome "complete" or "instant" event)."""

    name: str
    ph: str  # "X" complete, "i" instant
    ts: float  # seconds
    dur: float  # seconds ("X" only)
    pid: int
    tid: int
    cat: str = ""
    args: dict = field(default_factory=dict)


@dataclass(slots=True)
class SpanToken:
    """Handle returned by :meth:`Tracer.begin`, closed by :meth:`Tracer.end`."""

    name: str
    ts: float
    pid: int
    tid: int
    cat: str
    args: dict
    closed: bool = False


class Tracer:
    """Accumulates :class:`TraceEvent` records for one run.

    Parameters
    ----------
    clock:
        Zero-argument callable giving the current time in seconds for
        :meth:`span`; defaults to wall clock
        (:func:`time.perf_counter`).  Simulation code records explicit
        timestamps instead and never consults the clock.
    """

    def __init__(self, clock=None) -> None:
        self.events: list[TraceEvent] = []
        self.clock = clock if clock is not None else time.perf_counter
        self._process_names: dict[int, str] = {}
        self._next_pid_base = 0

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    def group(self, label: str) -> "TraceGroup":
        """Reserve a pid range for one track group (one simulation)."""
        base = self._next_pid_base
        self._next_pid_base += GROUP_PID_STRIDE
        return TraceGroup(self, base, label)

    def name_process(self, pid: int, name: str) -> None:
        """Human-readable track-group name shown by trace viewers."""
        self._process_names[pid] = name

    def process_names(self) -> dict[int, str]:
        return dict(self._process_names)

    # ------------------------------------------------------------------
    def complete(
        self,
        name: str,
        ts: float,
        dur: float,
        pid: int = 0,
        tid: int = 0,
        cat: str = "",
        **args,
    ) -> None:
        """Record a finished span with explicit start and duration."""
        self.events.append(TraceEvent(name, "X", ts, dur, pid, tid, cat, args))

    def instant(
        self, name: str, ts: float, pid: int = 0, tid: int = 0, cat: str = "", **args
    ) -> None:
        """Record a zero-duration marker."""
        self.events.append(TraceEvent(name, "i", ts, 0.0, pid, tid, cat, args))

    def begin(
        self, name: str, ts: float, pid: int = 0, tid: int = 0, cat: str = "", **args
    ) -> SpanToken:
        """Open a span whose end isn't lexically scoped (event loops)."""
        return SpanToken(name, ts, pid, tid, cat, args)

    def end(self, token: SpanToken, ts: float) -> None:
        """Close a :meth:`begin` span at ``ts``."""
        if token.closed:
            raise ValueError(f"span {token.name!r} already ended")
        token.closed = True
        self.events.append(
            TraceEvent(
                token.name,
                "X",
                token.ts,
                max(0.0, ts - token.ts),
                token.pid,
                token.tid,
                token.cat,
                token.args,
            )
        )

    @contextmanager
    def span(self, name: str, pid: int = 0, tid: int = 0, cat: str = "", **args):
        """``with tracer.span("rebuild.phase", disk=3): ...`` — clock-timed."""
        t0 = self.clock()
        token = self.begin(name, t0, pid, tid, cat, **args)
        try:
            yield token
        finally:
            self.end(token, self.clock())


class TraceGroup:
    """A pid-offset view of a tracer: one simulation's tracks.

    Every event recorded through a group lands in the group's reserved
    pid range, so two arrays traced into the same file keep separate
    per-disk tracks.
    """

    __slots__ = ("tracer", "base_pid", "label")

    def __init__(self, tracer: Tracer, base_pid: int, label: str) -> None:
        self.tracer = tracer
        self.base_pid = base_pid
        self.label = label

    def name_track(self, pid: int, name: str) -> None:
        """Name a track inside this group (e.g. ``disk 3``)."""
        self.tracer.name_process(
            self.base_pid + pid, f"{self.label}: {name}" if self.label else name
        )

    def complete(
        self,
        name: str,
        ts: float,
        dur: float,
        pid: int = 0,
        tid: int = 0,
        cat: str = "",
        **args,
    ) -> None:
        self.tracer.complete(
            name, ts, dur, self.base_pid + pid, tid, cat, **args
        )

    def instant(
        self, name: str, ts: float, pid: int = 0, tid: int = 0, cat: str = "", **args
    ) -> None:
        self.tracer.instant(name, ts, self.base_pid + pid, tid, cat, **args)

    def begin(
        self, name: str, ts: float, pid: int = 0, tid: int = 0, cat: str = "", **args
    ) -> SpanToken:
        return self.tracer.begin(name, ts, self.base_pid + pid, tid, cat, **args)

    def end(self, token: SpanToken, ts: float) -> None:
        self.tracer.end(token, ts)
