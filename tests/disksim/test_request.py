"""IORequest construction and derived properties."""

from __future__ import annotations

import pytest

from repro.disksim.request import IOKind, IORequest


def test_basic_fields_and_end():
    r = IORequest(disk=1, offset=100, size=50, kind=IOKind.READ)
    assert r.end == 150
    assert r.priority == 10
    assert r.tag == ""


def test_ids_are_unique():
    a = IORequest(0, 0, 1, IOKind.READ)
    b = IORequest(0, 0, 1, IOKind.READ)
    assert a.req_id != b.req_id


def test_invalid_sizes_rejected():
    with pytest.raises(ValueError):
        IORequest(0, 0, 0, IOKind.READ)
    with pytest.raises(ValueError):
        IORequest(0, -1, 1, IOKind.WRITE)


def test_latency_and_service_duration():
    r = IORequest(0, 0, 1, IOKind.READ)
    r.submit_time = 1.0
    r.start_time = 2.5
    r.finish_time = 4.0
    assert r.latency == pytest.approx(3.0)
    assert r.service_duration == pytest.approx(1.5)


def test_kind_is_stringy_enum():
    assert str(IOKind.READ) == "read"
    assert IOKind("write") is IOKind.WRITE
