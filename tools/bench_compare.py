#!/usr/bin/env python
"""Gate perfbench runs against a baseline: fail on regressions.

Compares the *last* run in each ``BENCH_simperf.json``-style trajectory
(or a bare run record) kernel by kernel::

    python tools/bench_compare.py benchmarks/BENCH_simperf_baseline.json \
        BENCH_simperf.json --tolerance 0.2

A kernel regresses when ``current > baseline * (1 + tolerance)``.  The
default tolerance of 0.2 flags >20% slowdowns; CI smoke runs use a
looser gate (the checked-in baseline was recorded on different
hardware, so only gross regressions are catchable there — see
docs/performance.md).  Exit status: 0 clean, 1 regression, 2 usage
error.  Kernels only present on one side are reported but never fail
the gate; runs at different scales refuse to compare.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_last_run(path: Path) -> dict:
    """The most recent run record from a trajectory (or a bare record)."""
    data = json.loads(path.read_text())
    if isinstance(data, dict) and "runs" in data:
        runs = data["runs"]
        if not runs:
            raise SystemExit(f"error: {path} has an empty 'runs' list")
        return runs[-1]
    if isinstance(data, dict) and "kernels" in data:
        return data
    raise SystemExit(f"error: {path} is not a perfbench trajectory")


def compare(baseline: dict, current: dict, tolerance: float) -> int:
    """Print a kernel-by-kernel table; return the regression count."""
    if baseline.get("scale") != current.get("scale"):
        raise SystemExit(
            f"error: scale mismatch — baseline is "
            f"{baseline.get('scale')!r}, current is {current.get('scale')!r}"
        )
    base_k = baseline["kernels"]
    curr_k = current["kernels"]
    regressions = 0
    print(f"{'kernel':<20} {'baseline':>10} {'current':>10} {'ratio':>7}  verdict")
    for name in sorted(set(base_k) | set(curr_k)):
        if name not in base_k:
            print(f"{name:<20} {'--':>10} {curr_k[name]:>10.3f} {'--':>7}  new (not gated)")
            continue
        if name not in curr_k:
            print(f"{name:<20} {base_k[name]:>10.3f} {'--':>10} {'--':>7}  missing (not gated)")
            continue
        b, c = base_k[name], curr_k[name]
        ratio = c / b if b > 0 else float("inf")
        if ratio > 1.0 + tolerance:
            verdict = f"REGRESSION (>{tolerance:.0%} over baseline)"
            regressions += 1
        elif ratio < 1.0 - tolerance:
            verdict = "improved"
        else:
            verdict = "ok"
        print(f"{name:<20} {b:>10.3f} {c:>10.3f} {ratio:>6.2f}x  {verdict}")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional slowdown (default 0.2 = 20%%)")
    args = parser.parse_args(argv)
    for path in (args.baseline, args.current):
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 2

    baseline = load_last_run(args.baseline)
    current = load_last_run(args.current)
    regressions = compare(baseline, current, args.tolerance)
    if regressions:
        print(f"\n{regressions} kernel(s) regressed", file=sys.stderr)
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
