"""Experiment: reproduce Fig. 7 (paper §VI-A).

Fig. 7 plots, as the number of data disks grows to 50, the ratio (in
percent) of the shifted-mirror-with-parity method's average
reconstruction read accesses over (a) the traditional mirror method
with parity and (b) RAID 6 under the "shorten" method.

Expected shape: both curves fall quickly — 4/(2n+1) against the
traditional arrangement — reaching about 4-5 % at n = 50, with the
RAID 6 curve slightly *below* the traditional one because shortening
forces a prime geometry ``p >= n + 1`` whose ``p - 1`` rows must all
be read.
"""

from __future__ import annotations

from ..core.analysis import fig7_series
from .reporting import ExperimentResult, format_series

__all__ = ["run"]


def run(n_min: int = 2, n_max: int = 50, code: str = "rdp") -> ExperimentResult:
    """Both Fig. 7 curves over ``n_min..n_max`` data disks."""
    series = fig7_series(n_min, n_max, code)
    ns = [int(x) for x in series["n"]]
    text = format_series(
        "n",
        ns,
        {
            "vs traditional mirror+parity (%)": series["vs_traditional_percent"],
            f"vs RAID 6 [{code}] (%)": series["vs_raid6_percent"],
        },
    )
    final_trad = series["vs_traditional_percent"][-1]
    final_r6 = series["vs_raid6_percent"][-1]
    summary = (
        f"\nAt n={n_max}: {final_trad:.2f}% of traditional accesses, "
        f"{final_r6:.2f}% of RAID 6 accesses (paper: 'as low as 5 percent')."
    )
    return ExperimentResult(
        experiment_id="fig7",
        description="Theoretical read accesses during reconstruction, relative (%)",
        text=text + summary,
        data=series,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
