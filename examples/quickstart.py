#!/usr/bin/env python3
"""Quickstart: the shifted element arrangement in five minutes.

Walks the paper's core idea end to end:

1. build the traditional and shifted mirror layouts;
2. show where one data disk's replicas live under each arrangement;
3. compare the read accesses a reconstruction needs;
4. run both reconstructions on the simulated Savvio array and print
   measured throughput — the Fig. 9(a) effect on one failure case.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    ShiftedArrangement,
    property_report,
    shifted_mirror,
    traditional_mirror,
)
from repro.raidsim import RaidController

N = 5  # data disks, as in the middle of the paper's sweep


def show_arrangement() -> None:
    arr = ShiftedArrangement(N)
    print(f"Shifted arrangement for n={N}: a[i,j] -> mirror disk (i+j) mod n, row i")
    print("Replicas of data disk 0's elements land on mirror disks:",
          arr.replica_disks_of_data_disk(0))
    print("Properties:", property_report(arr))
    print()


def show_plans() -> None:
    for layout in (traditional_mirror(N), shifted_mirror(N)):
        plan = layout.reconstruction_plan([0])  # data disk 0 fails
        print(f"{layout.name}: rebuilding data disk 0 needs "
              f"{plan.num_read_accesses} parallel read access(es); "
              f"reads per disk = {plan.reads_per_disk()}")
    print()


def run_simulation() -> None:
    print(f"Simulated reconstruction of one failed disk (n={N}, 4 MB elements,")
    print("Savvio 10K.3 array, 24 stripes):")
    for build in (traditional_mirror, shifted_mirror):
        controller = RaidController(build(N), n_stripes=24, payload_bytes=16)
        result = controller.rebuild([0])
        assert result.verified, "recovered bytes must match the original"
        print(f"  {build(N).name:<16} {result.read_throughput_mbps:7.1f} MB/s "
              f"(content verified: {result.verified})")
    print()
    print("The shifted arrangement turns one sequential replica stream into")
    print(f"{N} parallel reads — the paper's factor-n data-availability gain.")


if __name__ == "__main__":
    show_arrangement()
    show_plans()
    run_simulation()
