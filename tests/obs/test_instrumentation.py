"""Instrumentation through the stack: engine, controller, cache, sweeps.

The headline structural test is the paper's claim made checkable: in a
chrome trace of a one-disk rebuild, the traditional mirror's
reconstruction reads all land on a single surviving track while the
shifted arrangement spreads them across every surviving spindle.
"""

from __future__ import annotations

import pytest

from repro.core.layouts import shifted_mirror, traditional_mirror
from repro.core.plancache import PlanCache
from repro.disksim.array import ElementArray
from repro.disksim.disk import DiskParameters
from repro.disksim.faultplan import FaultPlan
from repro.disksim.request import IOKind
from repro.disksim.trace import summarize
from repro.obs import Tracer, chrome_trace, scoped_registry, set_obs_enabled
from repro.raidsim.campaign import compare_sweep
from repro.raidsim.controller import RaidController, RetryPolicy

_MB = 1024 * 1024
ELEM = 4 * _MB
N = 5


@pytest.fixture
def registry():
    old = set_obs_enabled(True)
    try:
        with scoped_registry() as reg:
            yield reg
    finally:
        set_obs_enabled(old)


# ----------------------------------------------------------------------
# the structural acceptance test: rebuild-read track spread
# ----------------------------------------------------------------------


def _rebuild_read_tracks(layout) -> set[int]:
    """Distinct pids carrying rebuild-read spans in a one-disk rebuild."""
    tracer = Tracer()
    ctrl = RaidController(
        layout, n_stripes=6, element_size=ELEM, payload_bytes=8, tracer=tracer
    )
    ctrl.rebuild([0])
    return {
        ev["pid"]
        for ev in chrome_trace(tracer)["traceEvents"]
        if ev.get("ph") == "X"
        and ev.get("args", {}).get("tag") == "rebuild"
        and ev["args"].get("kind") == "read"
    }


def test_traditional_rebuild_reads_hit_one_track():
    assert len(_rebuild_read_tracks(traditional_mirror(N))) == 1


def test_shifted_rebuild_reads_spread_over_all_survivors():
    assert len(_rebuild_read_tracks(shifted_mirror(N))) == N


def test_controller_trace_names_disk_and_controller_tracks():
    tracer = Tracer()
    ctrl = RaidController(
        shifted_mirror(3), n_stripes=4, element_size=ELEM,
        payload_bytes=8, tracer=tracer,
    )
    ctrl.rebuild([0])
    names = set(tracer.process_names().values())
    assert "shifted-mirror: disk 0" in names
    assert "shifted-mirror: rebuild controller" in names
    phases = [ev for ev in tracer.events if ev.name == "rebuild.phase"]
    assert phases and all(ev.args["failed"] == [0] for ev in phases)


def test_tracer_false_opts_out_even_with_default_tracer():
    from repro.obs import set_default_tracer

    tr = Tracer()
    old = set_default_tracer(tr)
    try:
        ctrl = RaidController(
            traditional_mirror(3), n_stripes=2, element_size=ELEM,
            payload_bytes=8, tracer=False,
        )
        ctrl.rebuild([0])
        assert len(tr) == 0
    finally:
        set_default_tracer(old)


# ----------------------------------------------------------------------
# engine and array metrics
# ----------------------------------------------------------------------


def test_simulation_counts_requests_bytes_and_events(registry):
    arr = ElementArray(2, ELEM, DiskParameters.ideal())
    # stride-2 slots so batch coalescing cannot merge the reads
    arr.submit_elements([(0, 2 * k) for k in range(3)], IOKind.READ, tag="r")
    arr.submit_elements([(1, 0)], IOKind.WRITE, tag="w")
    arr.run()
    snap = registry.snapshot()
    counters = snap["counters"]
    reads = {
        tuple(sorted(e["labels"].items())): e["value"]
        for e in counters["sim.requests"]["values"]
    }
    assert reads[(("kind", "read"),)] == 3
    assert reads[(("kind", "write"),)] == 1
    moved = {
        e["labels"]["kind"]: e["value"] for e in counters["sim.bytes"]["values"]
    }
    assert moved["read"] == 3 * ELEM and moved["write"] == ELEM
    dispatched = counters["sim.events_dispatched"]["values"][0]["value"]
    assert dispatched >= 4
    lat = snap["histograms"]["sim.request_latency_s"]["values"][0]
    assert lat["count"] == 4


def test_engine_runs_bare_when_observability_off():
    old = set_obs_enabled(False)
    try:
        arr = ElementArray(1, ELEM, DiskParameters.ideal())
        assert arr.sim._obs is None
        arr.submit_elements([(0, 0)], IOKind.READ)
        arr.run()
        assert len(arr.sim.completed) == 1
    finally:
        set_obs_enabled(old)


def test_plan_cache_counts_hits_misses_invalidations(registry):
    cache = PlanCache(shifted_mirror(3))
    cache.plan((0,))
    cache.plan((0,))
    cache.plan((0,))
    assert registry.counter("plancache.misses").value() == 1
    assert registry.counter("plancache.hits").value() == 2
    assert cache.invalidate() == 1
    assert registry.counter("plancache.invalidated").value() == 1
    cache.plan((0,))
    cache.invalidate(affected=(1,))  # disjoint: nothing dropped
    assert registry.counter("plancache.invalidated").value() == 1
    cache.invalidate(affected=(0,))
    assert registry.counter("plancache.invalidated").value() == 2


# ----------------------------------------------------------------------
# fault-path metrics agree with TraceStats
# ----------------------------------------------------------------------


def test_retry_and_error_metrics_match_trace_stats(registry):
    plan = FaultPlan(seed=7).with_transients(rate=0.4)
    ctrl = RaidController(
        shifted_mirror(N), n_stripes=8, element_size=ELEM, payload_bytes=8,
        fault_plan=plan, retry_policy=RetryPolicy(max_attempts=3),
        tracer=False,
    )
    ctrl.rebuild([0])
    stats = summarize(ctrl.array.sim)
    assert stats.n_errors > 0
    assert stats.n_retries > 0
    snap = registry.snapshot()["counters"]
    assert snap["sim.request_errors"]["values"][0]["value"] == stats.n_errors
    assert snap["sim.request_retries"]["values"][0]["value"] == stats.n_retries
    # the controller-side retry count only covers requests it reissued,
    # which is what the engine later completes with attempt > 0
    assert snap["rebuild.retries"]["values"][0]["value"] >= stats.n_retries


# ----------------------------------------------------------------------
# sweep metrics: deterministic across jobs settings
# ----------------------------------------------------------------------


def _comparable(snapshot: dict) -> dict:
    """Snapshot minus the wall-clock / pool-shape families."""
    timing = ("sweep.point_wall_s", "sweep.point_pickle_bytes", "pool.")
    return {
        kind: {
            name: data
            for name, data in metrics.items()
            if not name.startswith(timing)
        }
        for kind, metrics in snapshot.items()
    }


def _sweep_with_metrics(jobs):
    old = set_obs_enabled(True)
    try:
        with scoped_registry() as reg:
            result = compare_sweep(
                "mirror", 3, n_seeds=2, jobs=jobs,
                n_stripes=4, payload_bytes=8, window=2,
            )
            return result, reg.snapshot()
    finally:
        set_obs_enabled(old)


def test_sweep_metrics_identical_serial_vs_parallel():
    serial, serial_snap = _sweep_with_metrics(jobs=1)
    fanned, fanned_snap = _sweep_with_metrics(jobs=2)
    assert serial.points == fanned.points  # bit-identity with obs on
    assert _comparable(serial_snap) == _comparable(fanned_snap)
    assert "sim.requests" in serial_snap["counters"]
