"""Data-availability measurement: the Fig. 9 experiment drivers (§VII-A).

"We enumerated all the disks ... to be the virtual failed disk ...
tried to reconstruct the failed disk and recorded the read throughput
during this reconstruction process.  Finally, we averaged these
values."  These functions do exactly that against the simulator:
every failure case gets a fresh array (parked heads, fresh content),
its rebuild is timed, and the read throughputs are averaged.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable

from ..core.layouts import Layout
from ..disksim.array import DEFAULT_ELEMENT_SIZE
from ..disksim.disk import DiskParameters
from .controller import RaidController, RebuildResult

__all__ = [
    "AvailabilityPoint",
    "measure_case",
    "average_reconstruction_throughput",
    "reconstruction_series",
]


@dataclass(frozen=True)
class AvailabilityPoint:
    """Averaged reconstruction read throughput for one architecture size."""

    layout_name: str
    n: int
    n_cases: int
    mean_read_throughput_mbps: float
    min_read_throughput_mbps: float
    max_read_throughput_mbps: float
    all_verified: bool


def measure_case(
    layout: Layout,
    failed,
    n_stripes: int = 24,
    element_size: int = DEFAULT_ELEMENT_SIZE,
    params: DiskParameters | None = None,
    window: int = 8,
    payload_bytes: int = 16,
) -> RebuildResult:
    """Time the reconstruction of one failure case on a fresh array."""
    controller = RaidController(
        layout,
        n_stripes=n_stripes,
        element_size=element_size,
        params=params,
        payload_bytes=payload_bytes,
    )
    return controller.rebuild(failed, window=window)


def average_reconstruction_throughput(
    layout_factory: Callable[[], Layout],
    n_failed: int = 1,
    n_stripes: int = 24,
    element_size: int = DEFAULT_ELEMENT_SIZE,
    params: DiskParameters | None = None,
    window: int = 8,
    payload_bytes: int = 16,
) -> AvailabilityPoint:
    """Average rebuild read throughput over *all* failure combinations.

    ``n_failed = 1`` reproduces Fig. 9(a) (every disk in turn),
    ``n_failed = 2`` Fig. 9(b) (every pair — 105 cases at n = 7).
    Unrecoverable combinations (none exist within the architectures'
    tolerance) would raise, as they should.
    """
    layout = layout_factory()
    cases = list(combinations(range(layout.n_disks), n_failed))
    results: list[RebuildResult] = []
    for failed in cases:
        results.append(
            measure_case(
                layout_factory(),
                failed,
                n_stripes=n_stripes,
                element_size=element_size,
                params=params,
                window=window,
                payload_bytes=payload_bytes,
            )
        )
    throughputs = [r.read_throughput_mbps for r in results]
    return AvailabilityPoint(
        layout_name=layout.name,
        n=layout.n,
        n_cases=len(cases),
        mean_read_throughput_mbps=sum(throughputs) / len(throughputs),
        min_read_throughput_mbps=min(throughputs),
        max_read_throughput_mbps=max(throughputs),
        all_verified=all(r.verified for r in results),
    )


def reconstruction_series(
    layout_builder: Callable[[int], Layout],
    n_values,
    n_failed: int = 1,
    **kwargs,
) -> list[AvailabilityPoint]:
    """One Fig. 9 curve: a point per data-disk count."""
    return [
        average_reconstruction_throughput(
            (lambda n=n: layout_builder(n)), n_failed=n_failed, **kwargs
        )
        for n in n_values
    ]
