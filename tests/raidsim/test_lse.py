"""Latent sector errors during reconstruction (paper §I motivation).

The decisive behavioural contrast: a mirror-method rebuild that hits an
unreadable sector on the replica disk loses data; the mirror method
with parity re-routes the element through the parity path and still
recovers every byte.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import UnrecoverableFailureError
from repro.core.layouts import (
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
    traditional_mirror_parity,
)
from repro.disksim.faults import LatentSectorErrors
from repro.disksim.request import IOKind, IORequest
from repro.raidsim.controller import RaidController

ELEM = 4 * 1024 * 1024


def _controller(layout, lse, **kw):
    kw.setdefault("n_stripes", 4)
    kw.setdefault("payload_bytes", 8)
    return RaidController(layout, element_size=ELEM, lse=lse, **kw)


# ----------------------------------------------------------------------
# fault model mechanics
# ----------------------------------------------------------------------


def test_inject_query_heal():
    lse = LatentSectorErrors(ELEM)
    lse.inject(2, 5)
    assert lse.is_bad(2, 5)
    assert len(lse) == 1
    lse.heal(2, 5)
    assert not lse.is_bad(2, 5)
    lse.heal(2, 5)  # idempotent


def test_invalid_parameters():
    with pytest.raises(ValueError):
        LatentSectorErrors(0)
    with pytest.raises(ValueError):
        LatentSectorErrors(ELEM).inject(0, -1)


def test_slots_hit_maps_byte_ranges():
    lse = LatentSectorErrors(ELEM)
    lse.inject(0, 3)
    req = IORequest(0, 2 * ELEM, 3 * ELEM, IOKind.READ)  # slots 2..4
    assert lse.slots_hit(req) == [3]
    miss = IORequest(0, 0, 2 * ELEM, IOKind.READ)  # slots 0..1
    assert lse.slots_hit(miss) == []


def test_engine_flags_bad_reads_and_heals_on_write():
    lse = LatentSectorErrors(ELEM)
    lse.inject(0, 1)
    ctrl = _controller(shifted_mirror_parity(3), lse)
    reqs = ctrl.array.submit_elements([(0, 1)], IOKind.READ)
    ctrl.array.run()
    assert reqs[0].error
    # a write reallocates the sector
    ctrl.array.submit_elements([(0, 1)], IOKind.WRITE)
    ctrl.array.run()
    assert not lse.is_bad(0, 1)


def test_inject_random_places_distinct_errors():
    lse = LatentSectorErrors(ELEM)
    placed = lse.inject_random(np.random.default_rng(0), 10, 4, 16)
    assert len(placed) == 10
    assert len(set(placed)) == 10
    assert len(lse) == 10


# ----------------------------------------------------------------------
# reconstruction behaviour
# ----------------------------------------------------------------------


def _replica_slot(ctrl, stripe, i, j):
    """Physical (disk, slot) of a[i, j]'s replica."""
    (cell,) = ctrl.layout.replica_cells(i, j)
    return ctrl.place(stripe, cell)


@pytest.mark.parametrize("builder", [traditional_mirror, shifted_mirror])
def test_mirror_method_loses_data_on_rebuild_lse(builder):
    """The §I hazard: single-fault tolerance + one LSE = data loss."""
    lse = LatentSectorErrors(ELEM)
    ctrl = _controller(builder(3), lse)
    pd, slot = _replica_slot(ctrl, 1, 0, 1)  # replica of a[0,1] in stripe 1
    lse.inject(pd, slot)
    with pytest.raises(UnrecoverableFailureError, match="latent sector"):
        ctrl.rebuild([0])


@pytest.mark.parametrize("builder", [traditional_mirror_parity, shifted_mirror_parity])
def test_parity_method_survives_rebuild_lse(builder):
    """The parity path absorbs the unreadable replica."""
    lse = LatentSectorErrors(ELEM)
    ctrl = _controller(builder(3), lse)
    pd, slot = _replica_slot(ctrl, 1, 0, 1)
    lse.inject(pd, slot)
    res = ctrl.rebuild([0])
    assert res.verified


def test_fallback_actually_avoids_the_bad_element():
    """Corrupt the stored bytes at the LSE cell: if the controller had
    copied them, verification would fail — it must use the parity path."""
    lse = LatentSectorErrors(ELEM)
    ctrl = _controller(shifted_mirror_parity(3), lse)
    pd, slot = _replica_slot(ctrl, 0, 0, 1)
    lse.inject(pd, slot)
    ctrl.content[pd, slot] ^= 0xFF  # poison the unreadable copy
    res = ctrl.rebuild([0])
    assert res.verified  # recovered from parity, not from the poison


def test_fallback_issues_extra_reads():
    lse = LatentSectorErrors(ELEM)
    ctrl = _controller(shifted_mirror_parity(4), lse)
    pd, slot = _replica_slot(ctrl, 0, 1, 2)
    lse.inject(pd, slot)
    res = ctrl.rebuild([1])
    assert res.verified
    fallback_reads = [r for r in ctrl.array.sim.completed if r.tag == "lse-fallback"]
    assert fallback_reads  # the parity-path reads are visible in the trace


def test_lse_on_xor_source_swaps_in_replica():
    """Doubly-failed element (F3): its row source hits an LSE, the
    fallback reads that row element's replica instead."""
    n = 4
    lse = LatentSectorErrors(ELEM)
    ctrl = _controller(shifted_mirror_parity(n), lse)
    # failed: data disk 0 and mirror disk that holds a[0, jd]
    mirror_disk = ctrl.layout.mirror_cell(0, 1)[0]
    jd = 1
    # one row-mate of the doubly failed element, on an intact data disk
    for stripe in range(ctrl.n_stripes):
        pd, slot = ctrl.place(stripe, ctrl.layout.data_cell(2, jd))
        lse.inject(pd, slot)
    res = ctrl.rebuild([0, mirror_disk])
    assert res.verified


def test_replica_and_parity_both_dead_is_unrecoverable():
    lse = LatentSectorErrors(ELEM)
    ctrl = _controller(shifted_mirror_parity(3), lse)
    pd, slot = _replica_slot(ctrl, 0, 0, 1)
    lse.inject(pd, slot)
    # also kill the parity element of that row in the same stripe
    ppd, pslot = ctrl.place(0, ctrl.layout.parity_cell(1))
    lse.inject(ppd, pslot)
    with pytest.raises(UnrecoverableFailureError, match="parity path"):
        ctrl.rebuild([0])


def test_lse_model_element_size_must_match():
    lse = LatentSectorErrors(1024)
    with pytest.raises(ValueError, match="disagrees"):
        RaidController(shifted_mirror(3), element_size=ELEM, lse=lse)


def test_clean_disks_rebuild_unaffected_by_inactive_model():
    lse = LatentSectorErrors(ELEM)
    ctrl = _controller(shifted_mirror(3), lse)
    assert ctrl.rebuild([0]).verified


# ----------------------------------------------------------------------
# property-based fault-model invariants
# ----------------------------------------------------------------------


def test_lse_inject_heal_roundtrip_property():
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        cells=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 63)),
            max_size=20,
        )
    )
    @settings(max_examples=50)
    def check(cells):
        lse = LatentSectorErrors(ELEM)
        for d, s in cells:
            lse.inject(d, s)
        assert len(lse) == len(set(cells))
        for d, s in set(cells):
            assert lse.is_bad(d, s)
            lse.heal(d, s)
        assert len(lse) == 0

    check()


def test_slots_hit_matches_manual_range_property():
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        bad=st.sets(st.integers(0, 40), max_size=10),
        start=st.integers(0, 35),
        n_el=st.integers(1, 5),
    )
    @settings(max_examples=80)
    def check(bad, start, n_el):
        lse = LatentSectorErrors(ELEM)
        for s in bad:
            lse.inject(0, s)
        req = IORequest(0, start * ELEM, n_el * ELEM, IOKind.READ)
        expect = sorted(s for s in bad if start <= s < start + n_el)
        assert lse.slots_hit(req) == expect

    check()
