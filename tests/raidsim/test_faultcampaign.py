"""Fault campaigns end to end: retry, reroute, mid-rebuild failure, resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.layouts import (
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
    traditional_mirror_parity,
)
from repro.disksim.faultplan import FaultPlan
from repro.raidsim.campaign import (
    clean_rebuild_makespan,
    compare_arrangements,
    default_fault_plan,
    run_campaign,
)
from repro.raidsim.controller import (
    RaidController,
    RebuildCheckpoint,
    RetryPolicy,
)

ELEM = 4 * 1024 * 1024
N = 4
STRIPES = 6


def _controller(layout, plan, **kw):
    kw.setdefault("n_stripes", STRIPES)
    kw.setdefault("payload_bytes", 8)
    return RaidController(layout, element_size=ELEM, fault_plan=plan, **kw)


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------


def test_retry_policy_validation_and_backoff():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(timeout_s=0.0)
    p = RetryPolicy(backoff_base_s=0.01, backoff_factor=2.0)
    assert p.backoff_s(0) == pytest.approx(0.01)
    assert p.backoff_s(2) == pytest.approx(0.04)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=-0.1)


def test_backoff_jitter_bounds_and_seeded_determinism():
    """Jittered backoff stays within ``[1-j, 1+j]`` times the base delay
    and, drawn from a seeded generator, replays bit-identically."""
    p = RetryPolicy(backoff_base_s=0.01, backoff_factor=2.0, jitter=0.5)
    rng = np.random.default_rng(7)
    draws = [p.backoff_s(1, rng) for _ in range(64)]
    assert all(0.01 <= d <= 0.03 for d in draws)
    assert len(set(draws)) > 1  # jitter actually spreads
    rng2 = np.random.default_rng(7)
    assert draws == [p.backoff_s(1, rng2) for _ in range(64)]
    # no rng (or zero jitter) degrades to the deterministic exponential
    assert p.backoff_s(1) == pytest.approx(0.02)


def test_jittered_campaign_is_bit_reproducible():
    """End-to-end determinism: the controller's retry stream is derived
    from the plan seed, so a jittered faulty rebuild replays the exact
    makespan and fault counters — and a different plan seed moves the
    jitter draws."""

    def run(seed):
        plan = default_fault_plan(2 * N, seed=seed, transient_rate=0.3)
        policy = RetryPolicy(max_attempts=4, backoff_base_s=0.01, jitter=0.5)
        ctrl = _controller(shifted_mirror(N), plan, retry_policy=policy)
        result = ctrl.rebuild([0])
        return result.makespan_s, result.fault_stats

    span_a, stats_a = run(5)
    span_b, stats_b = run(5)
    assert span_a == span_b
    assert stats_a == stats_b
    assert stats_a.retries > 0  # the jittered path actually exercised


def test_mutually_exclusive_fault_sources():
    from repro.disksim.faults import LatentSectorErrors

    with pytest.raises(ValueError, match="not both"):
        RaidController(
            shifted_mirror(N),
            element_size=ELEM,
            lse=LatentSectorErrors(ELEM),
            fault_plan=FaultPlan(),
        )


# ----------------------------------------------------------------------
# timeout / retry interplay (_RetryBatch)
# ----------------------------------------------------------------------


def test_timed_out_but_successful_final_attempt_is_accepted_as_slow():
    """A read that only ever ran out of *timeout* retries did deliver its
    bytes — it must count as ``slow_reads_accepted``, never as an
    ``abandoned_request`` (those are reads that errored out of budget)."""
    # every read on every source disk is slow enough to trip the timeout
    plan = FaultPlan(seed=1).with_transients(rate=0.0)
    for d in range(2 * N):  # mirror: n data + n replica disks
        plan = plan.with_fail_slow(d, 50.0)
    policy = RetryPolicy(max_attempts=2, backoff_base_s=0.001, timeout_s=1e-6)
    ctrl = _controller(shifted_mirror(N), plan, retry_policy=policy)
    result = ctrl.rebuild([0])
    stats = result.fault_stats
    assert result.verified and not result.aborted
    assert stats.timeouts > 0
    assert stats.retries > 0
    # the final attempts were still too slow, yet carried the data
    assert stats.slow_reads_accepted > 0
    assert stats.abandoned_requests == 0


def test_timeout_retry_backoff_appears_in_makespan():
    """Backoff is priced in simulated time: the same timed-out rebuild
    with a fatter backoff base must take measurably longer."""
    def run(backoff_base_s):
        # no fail-slow: the backoff must starve the source disk, not
        # hide inside an already-saturated queue
        plan = FaultPlan(seed=1).with_transients(rate=0.0)
        policy = RetryPolicy(
            max_attempts=3, backoff_base_s=backoff_base_s, timeout_s=1e-6
        )
        ctrl = _controller(shifted_mirror(N), plan, retry_policy=policy)
        result = ctrl.rebuild([0])
        return result.makespan_s, result.fault_stats

    fast_span, fast_stats = run(0.0)
    slow_span, slow_stats = run(0.5)
    assert fast_stats.retries == slow_stats.retries > 0
    assert slow_stats.backoff_time_s > fast_stats.backoff_time_s == 0.0
    assert slow_span > fast_span + 0.4  # at least one 0.5 s backoff visible


def test_timeout_rebuild_deterministic_with_batch_path_off():
    """The retry/timeout pipeline must not depend on the batch fast
    path: REPRO_BATCH=0 replays the identical rebuild."""
    from repro.disksim.array import set_batch_enabled

    def run():
        plan = FaultPlan(seed=3).with_transients(rate=0.2).with_fail_slow(1, 20.0)
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.01, timeout_s=0.05)
        ctrl = _controller(shifted_mirror_parity(N), plan, retry_policy=policy)
        result = ctrl.rebuild([0])
        s = result.fault_stats
        return (
            result.makespan_s,
            result.verified,
            s.retries,
            s.timeouts,
            s.slow_reads_accepted,
            s.abandoned_requests,
            s.backoff_time_s,
        )

    batched = run()
    old = set_batch_enabled(False)
    try:
        unbatched = run()
    finally:
        set_batch_enabled(old)
    assert batched == unbatched
    assert batched[1] is True


# ----------------------------------------------------------------------
# transient errors during rebuild
# ----------------------------------------------------------------------


def test_rebuild_retries_transients_and_still_verifies():
    plan = FaultPlan(seed=7).with_transients(rate=0.3)
    ctrl = _controller(shifted_mirror(N), plan)
    result = ctrl.rebuild([0])
    assert result.verified and not result.aborted
    stats = result.fault_stats
    assert stats.retries > 0
    assert stats.transient_errors > 0
    assert stats.backoff_time_s > 0
    assert stats.data_loss_events == 0
    # backoff is priced into simulated time
    clean = _controller(shifted_mirror(N), FaultPlan(seed=7)).rebuild([0])
    assert result.makespan_s > clean.makespan_s


def test_rebuild_with_faults_is_deterministic():
    plan = default_fault_plan(
        2 * N, seed=11, lse_burst=2, fail_slow_multiplier=2.0, transient_rate=0.2
    )
    a = _controller(shifted_mirror(N), plan).rebuild([0])
    b = _controller(shifted_mirror(N), plan).rebuild([0])
    assert a.makespan_s == b.makespan_s
    assert a.fault_stats == b.fault_stats
    assert a.verified == b.verified


def test_exhausted_transients_reroute_and_count_losses_honestly():
    # retry_success_rate is so low that the retry budget gets exhausted;
    # abandoned reads are rerouted through alternate sources, and
    # whatever still cannot be recovered is *counted*, never papered over
    plan = FaultPlan(seed=3).with_transients(
        rate=0.4, retry_success_rate=0.05, max_failures=8
    )
    ctrl = _controller(
        shifted_mirror_parity(N), plan, retry_policy=RetryPolicy(max_attempts=2)
    )
    result = ctrl.rebuild([0])
    stats = result.fault_stats
    assert stats.abandoned_requests > 0
    assert stats.rerouted_reads > 0
    assert result.aborted == (not result.verified)
    if not result.verified:
        assert stats.data_loss_events == len(stats.lost_columns) > 0
        ckpt = result.checkpoint
        assert ckpt is not None
        done = set(ckpt.completed[0])
        gone = {s for d, s in ckpt.lost if d == 0}
        assert done | gone == set(range(STRIPES))


# ----------------------------------------------------------------------
# fail-slow
# ----------------------------------------------------------------------


def test_fail_slow_source_disk_slows_the_rebuild():
    # disk N+1 is in the mirror array, i.e. on the rebuild's read path
    fast = _controller(shifted_mirror(N), FaultPlan(seed=1)).rebuild([0])
    slow = _controller(
        shifted_mirror(N), FaultPlan(seed=1).with_fail_slow(N + 1, 4.0)
    ).rebuild([0])
    assert slow.verified
    assert slow.makespan_s > fast.makespan_s


# ----------------------------------------------------------------------
# mid-rebuild whole-disk failure
# ----------------------------------------------------------------------


def _mid_rebuild_plan(layout, dead_disk, fraction=0.5, seed=2):
    t = fraction * clean_rebuild_makespan(
        layout, (0,), n_stripes=STRIPES, element_size=ELEM, payload_bytes=8
    )
    return FaultPlan(seed=seed).with_disk_failure(dead_disk, t)


def test_second_data_disk_death_is_replanned_in_plain_mirror():
    # both dead disks are data disks: every element still has a live
    # replica, so the enlarged failure set remains recoverable
    layout = shifted_mirror(N)
    ctrl = _controller(layout, _mid_rebuild_plan(layout, 2))
    result = ctrl.rebuild([0])
    assert result.fault_stats.mid_rebuild_failures == (2,)
    assert result.verified and not result.aborted
    assert result.checkpoint is None


def test_mirror_death_of_replica_disk_aborts_with_checkpoint():
    # data disk 0 under rebuild + a mirror disk dying mid-flight:
    # their overlapping columns are gone in a plain mirror
    layout = shifted_mirror(N)
    ctrl = _controller(layout, _mid_rebuild_plan(layout, N + 1))
    result = ctrl.rebuild([0])
    stats = result.fault_stats
    assert stats.mid_rebuild_failures == (N + 1,)
    assert result.aborted and not result.verified
    assert stats.data_loss_events > 0
    assert stats.lost_columns
    ckpt = result.checkpoint
    assert ckpt is not None
    assert set(ckpt.failed_disks) == {0, N + 1}
    # every column is accounted for: rebuilt, or recorded lost
    for d in ckpt.failed_disks:
        done = set(ckpt.completed.get(d, frozenset()))
        gone = {s for dd, s in ckpt.lost if dd == d}
        assert done | gone == set(range(STRIPES))


def test_mirror_parity_survives_the_same_death():
    layout = shifted_mirror_parity(N)
    ctrl = _controller(layout, _mid_rebuild_plan(layout, N + 1))
    result = ctrl.rebuild([0])
    assert result.fault_stats.mid_rebuild_failures == (N + 1,)
    assert result.verified and not result.aborted
    assert result.fault_stats.data_loss_events == 0


def test_death_after_rebuild_completion_does_not_interrupt():
    layout = shifted_mirror(N)
    plan = FaultPlan(seed=2).with_disk_failure(N + 1, 1e6)
    result = _controller(layout, plan).rebuild([0])
    assert result.verified
    assert result.fault_stats.mid_rebuild_failures == ()


# ----------------------------------------------------------------------
# checkpoint resume
# ----------------------------------------------------------------------


def test_resume_from_checkpoint_redoes_only_the_remainder():
    ctrl = _controller(shifted_mirror(N), FaultPlan(seed=4))
    assert ctrl.rebuild([0]).verified
    # damage the second half of disk 0 again, as if a crash had
    # interrupted the rebuild there
    done = frozenset(range(STRIPES // 2))
    for s in range(STRIPES // 2, STRIPES):
        for row in range(ctrl.layout.rows):
            ctrl.content[0, ctrl.stack.element_offset(s, row)] = 0xEE
    ckpt = RebuildCheckpoint(
        failed_disks=(0,), n_stripes=STRIPES, completed={0: done}
    )
    n_before = len(ctrl.array.sim.completed)
    result = ctrl.rebuild([0], resume_from=ckpt)
    assert result.verified and result.checkpoint is None
    assert ctrl.verify_redundancy()
    # the resumed run read only the remaining stripes' sources
    redone = [
        r for r in ctrl.array.sim.completed[n_before:] if r.tag == "rebuild"
    ]
    full_reads = STRIPES * ctrl.layout.rows
    assert sum(r.size for r in redone) == full_reads * ELEM // 2


def test_checkpoint_remaining_accounting():
    ckpt = RebuildCheckpoint(
        failed_disks=(0, 5),
        n_stripes=4,
        completed={0: frozenset({0, 1}), 5: frozenset()},
        lost=((5, 3),),
    )
    assert ckpt.remaining(0) == [2, 3]
    assert ckpt.remaining(5) == [0, 1, 2]
    assert not ckpt.is_complete


# ----------------------------------------------------------------------
# campaigns over both arrangements
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_campaign_runs_both_arrangements_deterministically():
    layout = traditional_mirror_parity(N)
    plan = default_fault_plan(
        layout.n_disks,
        seed=2012,
        lse_burst=3,
        fail_slow_multiplier=3.0,
        second_failure_disk=layout.n_disks - 2,
        second_failure_time_s=0.5
        * clean_rebuild_makespan(
            layout, (0,), n_stripes=STRIPES, element_size=ELEM, payload_bytes=8
        ),
        transient_rate=0.05,
    )
    kwargs = dict(
        n_stripes=STRIPES,
        element_size=ELEM,
        payload_bytes=8,
        user_read_rate_per_s=20.0,
    )
    cmp_a = compare_arrangements(
        lambda: traditional_mirror_parity(N),
        lambda: shifted_mirror_parity(N),
        plan,
        **kwargs,
    )
    cmp_b = compare_arrangements(
        lambda: traditional_mirror_parity(N),
        lambda: shifted_mirror_parity(N),
        plan,
        **kwargs,
    )
    for run in (cmp_a.traditional, cmp_a.shifted):
        assert run.rebuild.verified and not run.rebuild.aborted
        assert run.data_survival == 1.0
        assert run.fault_stats.mid_rebuild_failures
        assert run.online.n_user_reads > 0
    # same plan, same seeds -> byte-identical campaign outcomes
    assert cmp_a.traditional.availability == cmp_b.traditional.availability
    assert (
        cmp_a.shifted.rebuild.makespan_s == cmp_b.shifted.rebuild.makespan_s
    )
    assert cmp_a.traditional.fault_stats == cmp_b.traditional.fault_stats
    assert np.isfinite(cmp_a.availability_delta)


@pytest.mark.slow
def test_campaign_counts_loss_on_plain_mirror():
    # disk N is data disk 0's direct replica under the traditional
    # arrangement, so its mid-rebuild death takes the whole column set
    layout = traditional_mirror(N)
    plan = _mid_rebuild_plan(layout, N, seed=6)
    run = run_campaign(
        layout,
        plan,
        n_stripes=STRIPES,
        element_size=ELEM,
        payload_bytes=8,
        user_read_rate_per_s=10.0,
    )
    assert run.rebuild.aborted
    assert run.data_survival < 1.0
    assert run.fault_stats.data_loss_events > 0
    assert run.rebuild.checkpoint is not None


def test_rebuild_heals_lses_on_the_rebuilt_column():
    # the rebuilt disk's sectors are all rewritten, so latent errors
    # recorded there are healed; a surviving source disk's LSE is the
    # scrubber's job and must stay
    plan = FaultPlan(seed=8).with_lse((0, 3)).with_lse((N + 2, 5))
    ctrl = _controller(shifted_mirror_parity(N), plan)
    result = ctrl.rebuild([0])
    assert result.verified
    assert result.fault_stats.healed_lses == 1
    assert not ctrl.lse.is_bad(0, 3)
    assert ctrl.lse.is_bad(N + 2, 5)
