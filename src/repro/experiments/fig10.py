"""Experiment: reproduce Fig. 10 (paper §VII-B).

Write throughput under one thousand random large writes (sizes from a
single element up to a whole stripe), identical workload per layout:

* **Fig. 10(a)** — mirror method, traditional vs shifted;
* **Fig. 10(b)** — mirror method with parity (read-modify-write parity
  updates), traditional vs shifted.

Expected shape: traditional and shifted are "about the same to a large
extent" (the shifted variant pays slightly more head positioning on
the mirror array), the mirror method outperforms the parity variant
(whose writes read old data and parity first), and both grow with n.
After the run, every replica and parity element is re-verified against
its definition.
"""

from __future__ import annotations

from ..core.layouts import (
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
    traditional_mirror_parity,
)
from ..raidsim.writes import measure_write_throughput
from .reporting import ExperimentResult, format_series

__all__ = ["run_a", "run_b", "run"]


def _series(builders, n_values, n_ops, strategy):
    out = {name: [] for name in builders}
    intact = True
    for n in n_values:
        for name, builder in builders.items():
            point = measure_write_throughput(
                builder(n), n_ops=n_ops, strategy=strategy, window=1
            )
            out[name].append(point.write_throughput_mbps)
            intact &= point.redundancy_intact
    return out, intact


def run_a(n_values=(3, 4, 5, 6, 7), n_ops: int = 200) -> ExperimentResult:
    """Fig. 10(a): the mirror method under the random-write workload."""
    builders = {
        "traditional mirror (MB/s)": traditional_mirror,
        "shifted mirror (MB/s)": shifted_mirror,
    }
    series, intact = _series(builders, n_values, n_ops, strategy="rmw")
    trad = series["traditional mirror (MB/s)"]
    shif = series["shifted mirror (MB/s)"]
    series["shifted/traditional"] = [s / t for s, t in zip(shif, trad)]
    text = format_series("n", list(n_values), series, precision=2)
    text += f"\nredundancy intact after workload: {intact}"
    return ExperimentResult(
        experiment_id="fig10a",
        description="Write throughput, mirror method (random large writes)",
        text=text,
        data={"n": list(n_values), **series, "intact": intact},
    )


def run_b(n_values=(3, 4, 5, 6, 7), n_ops: int = 200) -> ExperimentResult:
    """Fig. 10(b): the mirror method with parity (RMW updates)."""
    builders = {
        "traditional mirror+parity (MB/s)": traditional_mirror_parity,
        "shifted mirror+parity (MB/s)": shifted_mirror_parity,
    }
    series, intact = _series(builders, n_values, n_ops, strategy="rmw")
    trad = series["traditional mirror+parity (MB/s)"]
    shif = series["shifted mirror+parity (MB/s)"]
    series["shifted/traditional"] = [s / t for s, t in zip(shif, trad)]
    text = format_series("n", list(n_values), series, precision=2)
    text += f"\nredundancy intact after workload: {intact}"
    return ExperimentResult(
        experiment_id="fig10b",
        description="Write throughput, mirror method with parity (random large writes)",
        text=text,
        data={"n": list(n_values), **series, "intact": intact},
    )


def run(n_values=(3, 4, 5, 6, 7), n_ops: int = 200) -> list[ExperimentResult]:
    """Both Fig. 10 panels."""
    return [run_a(n_values, n_ops), run_b(n_values, n_ops)]


if __name__ == "__main__":  # pragma: no cover
    for result in run():
        print(result)
        print()
