#!/usr/bin/env python3
"""Scenario: keeping the p99 inside the SLO while a rebuild runs.

A viewer population is open-loop: arrivals land on the wall clock no
matter how busy the array is, and the queues absorb the difference —
which is where tail latency lives.  This example serves the same
seeded open-loop Poisson stream to both mirror arrangements while a
failed disk rebuilds, then turns the rebuild-throttle knob and watches
the tradeoff: a slower rebuild buys a smaller p99.

Run::

    python examples/serve_slo.py
"""

from __future__ import annotations

import dataclasses

from repro.raidsim import ServeConfig, compare_serve
from repro.workloads import TenantSpec

CONFIG = ServeConfig(
    family="mirror",
    n=5,
    n_stripes=6,
    seed=11,
    deadline_s=0.2,
    tenants=(TenantSpec("viewers", 30.0),),
)


def show(title: str, throttle: str) -> None:
    cmp_ = compare_serve(dataclasses.replace(CONFIG, throttle=throttle))
    print(f"\n{title} (throttle {throttle}):")
    for r in (cmp_.traditional, cmp_.shifted):
        s = r.slo
        print(
            f"  {r.layout_name:15s} rebuild {r.rebuild_makespan_s:5.2f} s | "
            f"p50 {s.p50_s * 1e3:6.1f} ms  p99 {s.p99_s * 1e3:6.1f} ms | "
            f"goodput {s.goodput_rps:5.1f}/s  misses {s.deadline_misses}"
        )
    print(f"  p99 ratio (trad/shifted): {cmp_.p99_ratio:.2f}x, "
          f"rebuild speedup {cmp_.makespan_speedup:.2f}x")


def main() -> None:
    print("Open-loop serve under rebuild: the p99-vs-rebuild-time knob")
    show("Full-speed rebuild", "none")
    show("Token-bucket rebuild (5 IOs/s)", "token:5")
    print(
        "\nThe throttle slows the rebuild and shrinks the user p99 — and "
        "the shifted arrangement needs less of the knob in the first "
        "place, because replicas of the failed disk spread over all "
        "surviving disks instead of queueing behind the rebuild stream."
    )


if __name__ == "__main__":
    main()
