"""Declarative fault plans: validation, determinism, injection mechanics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disksim.array import ElementArray
from repro.disksim.faultplan import (
    ActiveFaults,
    DiskFailure,
    FailSlow,
    FaultPlan,
    TransientFaults,
)
from repro.disksim.faults import LatentSectorErrors
from repro.disksim.request import IOKind, IORequest

ELEM = 4 * 1024 * 1024


def _read(
    disk: int,
    slot: int,
    attempt: int = 0,
    t: float = 1.0,
    root_id: int = -1,
) -> IORequest:
    """A completed single-element read, as the engine would hand over."""
    req = IORequest(
        disk, slot * ELEM, ELEM, IOKind.READ, attempt=attempt, root_id=root_id
    )
    req.finish_time = t
    return req


def _activate(plan: FaultPlan, n_disks: int = 4, slots: int = 8) -> ActiveFaults:
    return plan.activate(ELEM, n_disks, slots)


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------


def test_spec_validation():
    with pytest.raises(ValueError):
        TransientFaults(rate=1.5)
    with pytest.raises(ValueError):
        TransientFaults(rate=0.1, retry_success_rate=0.0)
    with pytest.raises(ValueError):
        TransientFaults(rate=0.1, max_failures=0)
    with pytest.raises(ValueError):
        FailSlow(disk=0, multiplier=0.5)
    with pytest.raises(ValueError):
        FailSlow(disk=0, multiplier=2.0, start_s=3.0, end_s=1.0)
    with pytest.raises(ValueError):
        DiskFailure(disk=-1, time_s=0.0)
    with pytest.raises(ValueError):
        FaultPlan(n_random_lses=-1)
    with pytest.raises(ValueError, match="fail twice"):
        FaultPlan().with_disk_failure(2, 1.0).with_disk_failure(2, 2.0)


def test_activation_range_checks():
    with pytest.raises(ValueError, match="outside"):
        _activate(FaultPlan().with_lse((9, 0)))
    with pytest.raises(ValueError, match="outside"):
        _activate(FaultPlan().with_fail_slow(9, 2.0))
    with pytest.raises(ValueError, match="outside"):
        _activate(FaultPlan().with_disk_failure(9, 1.0))


def test_builders_compose_and_leave_original_untouched():
    base = FaultPlan(seed=3)
    full = (
        base.with_transients(rate=0.1)
        .with_fail_slow(1, 2.0)
        .with_disk_failure(2, 5.0)
        .with_lse((0, 1))
        .with_lse_burst(2)
    )
    assert base.transient is None and base.lse_cells == ()
    assert full.transient.rate == 0.1
    assert full.fail_slow[0].disk == 1
    assert full.disk_failures[0].time_s == 5.0
    assert full.lse_cells == ((0, 1),)
    assert full.n_random_lses == 2
    assert full.seed == 3


# ----------------------------------------------------------------------
# inject_random validation (regression: used to loop forever)
# ----------------------------------------------------------------------


def test_inject_random_rejects_impossible_requests():
    lse = LatentSectorErrors(ELEM)
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        lse.inject_random(rng, -1, 2, 4)
    with pytest.raises(ValueError):
        lse.inject_random(rng, 1, 0, 4)
    with pytest.raises(ValueError, match="only"):
        lse.inject_random(rng, 9, 2, 4)  # 9 errors into 8 cells
    # filling the array exactly is fine
    lse.inject_random(rng, 8, 2, 4)
    assert len(lse) == 8
    with pytest.raises(ValueError, match="only"):
        lse.inject_random(rng, 1, 2, 4)  # already full


def test_heal_counts_only_real_heals():
    lse = LatentSectorErrors(ELEM)
    lse.inject(0, 1)
    lse.heal(0, 1)
    lse.heal(0, 1)  # idempotent, not double counted
    lse.heal(1, 2)  # never bad
    assert lse.healed_count == 1


# ----------------------------------------------------------------------
# transient errors
# ----------------------------------------------------------------------


def test_transient_triggers_and_succeeds_within_budget():
    plan = FaultPlan(seed=0).with_transients(
        rate=1.0, retry_success_rate=0.5, max_failures=3
    )
    active = _activate(plan)
    attempts = 0
    root = -1
    for attempt in range(10):
        req = _read(0, 0, attempt=attempt, root_id=root)
        if root < 0:
            root = req.req_id  # retries descend from the first request
        active.on_completion(req)
        attempts += 1
        if not req.error:
            break
    assert attempts <= plan.transient.max_failures + 1
    assert active.counters.transient_errors >= 1
    # the error was flagged as transient on the failing attempts
    first = _read(1, 0)
    active.on_completion(first)
    assert first.error and first.error_kind == "transient"


def test_transient_rate_zero_never_fires():
    active = _activate(FaultPlan(seed=0).with_transients(rate=0.0))
    for slot in range(8):
        req = _read(0, slot)
        active.on_completion(req)
        assert not req.error


def test_unretried_transient_does_not_leak_into_fresh_reads():
    """Regression: a triggered transient that was never retried left its
    pending failure budget behind, so a *later independent read* of the
    same geometry was misclassified as a retry (it errored, or silently
    consumed the stale budget).  A fresh ``attempt == 0`` read must
    redraw from the trigger probability instead."""
    # a seed where the first read triggers with a multi-failure budget
    # (leaving pending state behind) and the second read's redraw stays
    # clean — mirroring the ActiveFaults rng stream exactly
    rate, success = 0.5, 0.3
    for seed in range(1000):
        rng = np.random.default_rng(seed)
        if (
            float(rng.random()) < rate
            and int(rng.geometric(success)) >= 2
            and float(rng.random()) >= rate
        ):
            break
    else:  # pragma: no cover - the search space makes this unreachable
        pytest.fail("no suitable seed found")
    plan = FaultPlan(seed=seed).with_transients(
        rate=rate, retry_success_rate=success, max_failures=4
    )
    active = _activate(plan)
    first = _read(0, 0)
    active.on_completion(first)
    assert first.error and first.error_kind == "transient"
    assert active._transient_pending  # budget parked, never retried
    second = _read(0, 0)  # independent fresh read, attempt == 0
    active.on_completion(second)
    assert not second.error
    assert active._transient_pending == {}


def test_transients_ignore_writes():
    active = _activate(FaultPlan(seed=0).with_transients(rate=1.0))
    req = IORequest(0, 0, ELEM, IOKind.WRITE)
    req.finish_time = 1.0
    active.on_completion(req)
    assert not req.error


# ----------------------------------------------------------------------
# fail-slow
# ----------------------------------------------------------------------


def test_fail_slow_window_and_counter():
    plan = FaultPlan().with_fail_slow(2, 3.0, start_s=1.0, end_s=2.0)
    active = _activate(plan)
    assert active.service_factor(2, 0.5) == 1.0
    assert active.service_factor(2, 1.5) == 3.0
    assert active.service_factor(2, 2.0) == 1.0
    assert active.service_factor(0, 1.5) == 1.0
    assert active.counters.slowed_requests == 1


def test_fail_slow_inflates_simulated_service_time():
    def run(plan):
        array = ElementArray(2, ELEM, faults=_activate(plan, n_disks=2))
        array.submit_elements([(0, s) for s in range(4)], IOKind.READ)
        return array.run()

    t_clean = run(FaultPlan())
    t_slow = run(FaultPlan().with_fail_slow(0, 5.0))
    assert t_slow > 4 * t_clean


# ----------------------------------------------------------------------
# scheduled whole-disk failures
# ----------------------------------------------------------------------


def test_scheduled_failure_flags_reads_after_the_hour():
    active = _activate(FaultPlan().with_disk_failure(1, 2.0))
    early = _read(1, 0, t=1.0)
    active.on_completion(early)
    assert not early.error
    late = _read(1, 0, t=2.5)
    active.on_completion(late)
    assert late.error and late.error_kind == "disk-failed"
    assert active.failed_disks(2.5) == [1]
    assert active.failed_disks(1.0) == []


def test_lse_cells_and_burst_are_injected():
    plan = FaultPlan(seed=5).with_lse((1, 2)).with_lse_burst(3)
    active = _activate(plan)
    assert active.lse.is_bad(1, 2)
    assert len(active.lse) == 4


# ----------------------------------------------------------------------
# seeded determinism (the campaign-comparability property)
# ----------------------------------------------------------------------


@given(seed=st.integers(0, 2**31), rate=st.floats(0.05, 0.9))
@settings(max_examples=25, deadline=None)
def test_same_plan_replays_identical_fault_schedule(seed, rate):
    plan = FaultPlan(seed=seed, n_random_lses=3).with_transients(rate=rate)

    def trace(active):
        out = []
        for slot in range(6):
            for disk in range(4):
                req = _read(disk, slot)
                active.on_completion(req)
                out.append((req.error, req.error_kind))
        return out, sorted(active.lse._bad)

    a = trace(_activate(plan))
    b = trace(_activate(plan))
    assert a == b


@given(
    seed=st.integers(0, 2**31),
    success=st.floats(0.1, 1.0),
    max_failures=st.integers(1, 5),
)
@settings(max_examples=25, deadline=None)
def test_transients_always_succeed_within_max_failures_retries(
    seed, success, max_failures
):
    plan = FaultPlan(seed=seed).with_transients(
        rate=1.0, retry_success_rate=success, max_failures=max_failures
    )
    active = _activate(plan)
    failures = 0
    root = -1
    for attempt in range(max_failures + 1):
        req = _read(2, 3, attempt=attempt, root_id=root)
        if root < 0:
            root = req.req_id
        active.on_completion(req)
        if not req.error:
            break
        failures += 1
    assert failures <= max_failures
    # after the budget, the geometry is clean again
    assert (2, 3 * ELEM, ELEM) not in active._transient_pending


# ----------------------------------------------------------------------
# retry-chain identity (ActiveFaults audit regressions)
# ----------------------------------------------------------------------


def _seed_with_budget(rate: float, success: float, min_total: int) -> int:
    """A seed whose first draw triggers with ``>= min_total`` failures."""
    for seed in range(2000):
        rng = np.random.default_rng(seed)
        if float(rng.random()) < rate and int(rng.geometric(success)) >= min_total:
            return seed
    pytest.fail("no suitable seed found")  # pragma: no cover


def test_retry_of_one_chain_cannot_steal_anothers_budget():
    """Regression (sibling of the PR 3 stale-pending leak): pending
    budgets were keyed by geometry alone, so a retry belonging to a
    *different* request chain that happened to touch the same geometry
    consumed — or errored against — another in-flight read's budget.
    A retry must only match state drawn for its own chain."""
    rate, success = 0.9, 0.2
    seed = _seed_with_budget(rate, success, min_total=3)
    plan = FaultPlan(seed=seed).with_transients(
        rate=rate, retry_success_rate=success, max_failures=5
    )
    active = _activate(plan)
    first = _read(0, 0)
    active.on_completion(first)
    assert first.error and first.error_kind == "transient"
    parked = dict(active._transient_pending)
    assert parked  # multi-failure budget parked for first's chain
    # a retry from an unrelated chain (e.g. a timeout retry elsewhere)
    # lands on the same geometry: it must be served clean and must not
    # touch the parked budget
    foreign = _read(0, 0, attempt=1, root_id=first.req_id + 10_000)
    active.on_completion(foreign)
    assert not foreign.error
    assert active._transient_pending == parked
    # first's own retry still consumes its budget and fails
    own = _read(0, 0, attempt=1, root_id=first.req_id)
    active.on_completion(own)
    assert own.error and own.error_kind == "transient"


def test_reactivation_shares_no_state():
    """Activating one plan twice must give fully isolated instances —
    counters, pending budgets, LSEs and dynamic faults must not leak
    from a prior (even mutated) activation."""
    plan = FaultPlan(seed=11, n_random_lses=2).with_transients(rate=1.0)
    first = _activate(plan)
    # drive and mutate the first activation hard
    req = _read(0, 0)
    active_errors = []
    first.on_completion(req)
    active_errors.append(req.error)
    first.fail_disk(3, time_s=0.5)
    first.add_fail_slow(1, 4.0)
    first.add_transient_window(0.0, 9.0, TransientFaults(rate=1.0))
    first.inject_lse_storm(3)
    # a second activation starts from the plan alone
    second = _activate(plan)
    assert second.counters.transient_errors == 0
    assert second._transient_pending == {}
    assert second._dynamic_fail_slow == []
    assert second._transient_windows == []
    assert second.failed_disks(10.0) == []
    assert len(second.lse) == 2  # plan burst only, no storm
    assert second.service_factor(1, 1.0) == 1.0


def test_overlapping_fail_slow_windows_compose():
    """Planned and dynamically injected windows on one disk multiply
    while they overlap and fully deactivate when both close."""
    plan = FaultPlan().with_fail_slow(2, 3.0, start_s=0.0, end_s=10.0)
    active = _activate(plan)
    active.add_fail_slow(2, 2.0, start_s=5.0, end_s=15.0)
    assert active.service_factor(2, 1.0) == 3.0  # plan window only
    assert active.service_factor(2, 7.0) == 6.0  # overlap: 3 * 2
    assert active.service_factor(2, 12.0) == 2.0  # dynamic only
    assert active.service_factor(2, 20.0) == 1.0  # both closed
    assert active.service_factor(0, 7.0) == 1.0  # other disks untouched
    assert active.counters.slowed_requests == 3


def test_fail_disk_revive_lifecycle():
    active = _activate(FaultPlan())
    active.fail_disk(1, time_s=2.0)
    assert not active.is_failed(1, 1.0)
    assert active.is_failed(1, 3.0)
    with pytest.raises(ValueError, match="revive first"):
        active.fail_disk(1, time_s=5.0)
    with pytest.raises(ValueError, match="outside"):
        active.fail_disk(99, time_s=1.0)
    active.revive_disk(1)
    assert not active.is_failed(1, 10.0)
    active.fail_disk(1, time_s=8.0)  # re-failing after revive is clean
    assert active.failed_disks(9.0) == [1]


def test_transient_window_governs_by_completion_time():
    """A dynamic burst window raises the trigger rate only inside its
    span; budgets drawn inside the window persist past its end."""
    active = _activate(FaultPlan(seed=0))  # no baseline transients
    spec = TransientFaults(rate=1.0, retry_success_rate=0.05, max_failures=4)
    active.add_transient_window(10.0, 20.0, spec)
    before = _read(0, 0, t=5.0)
    active.on_completion(before)
    assert not before.error  # window not open yet
    inside = _read(0, 1, t=15.0)
    active.on_completion(inside)
    assert inside.error and inside.error_kind == "transient"
    # the drawn budget outlives the window: a retry completing after
    # end_s still consumes it (rate=1, success=.05 makes budget>1 for
    # seed 0's stream — assert rather than assume)
    assert active._transient_pending
    late_retry = _read(0, 1, t=25.0, attempt=1, root_id=inside.req_id)
    active.on_completion(late_retry)
    assert late_retry.error and late_retry.error_kind == "transient"
    after = _read(0, 2, t=25.0)
    active.on_completion(after)
    assert not after.error  # window closed for fresh reads


def test_transient_window_highest_rate_wins():
    plan = FaultPlan(seed=0).with_transients(rate=0.0)
    active = _activate(plan)
    active.add_transient_window(0.0, 10.0, TransientFaults(rate=1.0))
    req = _read(0, 0, t=1.0)
    active.on_completion(req)
    assert req.error and req.error_kind == "transient"


def test_inject_lse_storm_caps_at_capacity():
    active = _activate(FaultPlan(seed=3), n_disks=2, slots=4)
    assert active.inject_lse_storm(5) == 5
    assert active.inject_lse_storm(10) == 3  # only 3 cells left
    assert active.inject_lse_storm(1) == 0  # full array: no-op
    assert len(active.lse) == 8
