"""Availability measurement drivers (the Fig. 9 machinery)."""

from __future__ import annotations

import pytest

from repro.core.layouts import (
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
)
from repro.raidsim.availability import (
    average_reconstruction_throughput,
    measure_case,
    reconstruction_series,
)


def test_measure_case_returns_verified_result():
    res = measure_case(shifted_mirror(3), (0,), n_stripes=6)
    assert res.verified
    assert res.read_throughput_mbps > 0
    assert res.recovered_bytes == 3 * 6 * res.failed_disks.__len__() * 4 * 1024 * 1024


def test_average_enumerates_all_single_failures():
    point = average_reconstruction_throughput(
        lambda: shifted_mirror(3), n_failed=1, n_stripes=6
    )
    assert point.n_cases == 6
    assert point.all_verified
    assert point.min_read_throughput_mbps <= point.mean_read_throughput_mbps
    assert point.mean_read_throughput_mbps <= point.max_read_throughput_mbps


def test_average_enumerates_all_double_failures():
    point = average_reconstruction_throughput(
        lambda: shifted_mirror_parity(3), n_failed=2, n_stripes=4
    )
    assert point.n_cases == 21  # C(7, 2)
    assert point.all_verified


def test_paper_case_count_105_at_n7():
    from itertools import combinations

    lay = shifted_mirror_parity(7)
    assert len(list(combinations(range(lay.n_disks), 2))) == 105


def test_series_one_point_per_n():
    series = reconstruction_series(
        shifted_mirror, [3, 4], n_failed=1, n_stripes=4
    )
    assert [p.n for p in series] == [3, 4]
    assert all(p.layout_name == "shifted-mirror" for p in series)


def test_shifted_series_grows_traditional_flat():
    shifted = reconstruction_series(shifted_mirror, [3, 5], n_failed=1, n_stripes=8)
    trad = reconstruction_series(traditional_mirror, [3, 5], n_failed=1, n_stripes=8)
    assert shifted[1].mean_read_throughput_mbps > 1.4 * shifted[0].mean_read_throughput_mbps
    t0, t1 = (p.mean_read_throughput_mbps for p in trad)
    assert abs(t1 - t0) / t0 < 0.05
