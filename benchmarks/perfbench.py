#!/usr/bin/env python
"""Perf-regression harness: time the simulator's hot kernels.

Unlike the ``bench_*`` pytest-benchmark files (which regenerate paper
artifacts), this is a plain script that times the *engine itself* and
appends a run record to a trajectory file, so speedups and regressions
are visible across commits::

    PYTHONPATH=src python benchmarks/perfbench.py               # full scale
    PYTHONPATH=src python benchmarks/perfbench.py --tiny        # CI smoke
    PYTHONPATH=src python benchmarks/perfbench.py --out my.json --no-append

Kernels:

* ``rebuild_cached``      — 1024-stripe single-failure rebuild, plan cache on
* ``rebuild_nocache``     — same rebuild with ``plan_cache=False`` (ablation)
* ``engine_elevator``     — raw event-engine throughput, elevator scheduling
* ``batch_submission``    — vectorized ``submit_batch`` over bulk numpy ops
* ``engine_calendar``     — run-phase A/B of the heapq tuple calendar vs
                            the typed opcode calendar on a pre-submitted
                            workload (``calendar_heapq``/``calendar_typed``
                            kernels, ``calendar_speedup`` derived ratio;
                            ``--calendar-ab`` gates it in CI)
* ``plan_generation``     — reconstruction plans for every 2-failure set
* ``nemesis_schedule``    — drawing dense year-long nemesis fault schedules
* ``campaign_serial``     — 16-seed compare_sweep, ``jobs=1``
* ``campaign_parallel``   — the same sweep fanned over every core
* ``campaign_pooled``     — the same sweep on a persistent ``WorkerPool``
                            with a shared-memory film block
* ``obs_overhead``        — the engine kernel under five observability
                            configurations: a hook-free engine subclass
                            (``bare``), the real engine with the null
                            sink (``REPRO_OBS=0``, with a flight
                            recorder *installed but gated off* — the
                            gate proves it is ignored), fully
                            instrumented, instrumented with a live
                            ``TimelineRecorder`` folding per-request
                            latency windows (``engine_timeseries``),
                            and instrumented with a streaming JSONL
                            trace sink draining to disk

Derived ratios land in the record too: ``plan_cache_speedup``
(nocache / cached), ``parallel_speedup`` (serial / parallel),
``pool_speedup`` (per-call pool / persistent pool) and
``obs_null_overhead`` (null-sink slowdown over the hook-free engine —
the ≤2% contract ``--obs-overhead`` gates in CI).
Gate a run against a baseline with ``tools/bench_compare.py``.

``--no-batch`` disables the vectorized batch path for the whole run
(the per-element ablation); CI times both and gates the batch path
against the per-element record so it can never silently regress.
"""

from __future__ import annotations

import argparse
import heapq
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.layouts import shifted_mirror_parity  # noqa: E402
from repro.disksim.array import ElementArray  # noqa: E402
from repro.disksim.disk import DiskParameters  # noqa: E402
from repro.disksim.events import Simulation  # noqa: E402
from repro.disksim.request import IOKind  # noqa: E402
from repro.disksim.scheduler import ElevatorScheduler  # noqa: E402
from repro.raidsim.campaign import compare_sweep  # noqa: E402
from repro.raidsim.controller import RaidController  # noqa: E402

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_simperf.json"


# ----------------------------------------------------------------------
# kernels — each returns elapsed seconds for one execution
# ----------------------------------------------------------------------

def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def kernel_rebuild(n_stripes: int, plan_cache: bool) -> float:
    """Single-threaded rebuild; controller construction excluded."""
    ctrl = RaidController(
        shifted_mirror_parity(5),
        n_stripes=n_stripes,
        payload_bytes=8,
        plan_cache=plan_cache,
    )
    return _time(lambda: ctrl.rebuild((0,), verify=False))


def kernel_engine(n_requests: int) -> float:
    """Raw submit/run throughput through the elevator scheduler."""
    import numpy as np

    arr = ElementArray(
        8, 4 * 1024 * 1024, DiskParameters.savvio_10k3(), ElevatorScheduler
    )
    rng = np.random.default_rng(0)
    disks = rng.integers(0, 8, size=n_requests)
    offsets = rng.integers(0, 512, size=n_requests)

    def drive() -> None:
        for d, off in zip(disks, offsets):
            arr.submit(arr.element_request(int(d), int(off), IOKind.READ))
        arr.run()

    return _time(drive)


def kernel_batch(n_ops: int) -> float:
    """Bulk batch submission straight from numpy arrays."""
    import numpy as np

    arr = ElementArray(
        8, 4 * 1024 * 1024, DiskParameters.savvio_10k3(), ElevatorScheduler
    )
    rng = np.random.default_rng(0)
    disks = rng.integers(0, 8, size=n_ops)
    slots = rng.integers(0, 512, size=n_ops)

    def drive() -> None:
        arr.submit_batch(disks, slots, IOKind.READ)
        arr.run()

    return _time(drive)


def kernel_openloop_submit(n_arrivals: int) -> float:
    """Open-loop arrival scheduling: ``submit_many_at`` fan-in and drain.

    Generation is outside the timed region; the kernel prices turning a
    pre-built arrival stream into timestamped OP_CALL submissions plus
    the calendar drain that serves them — the serve tier's hot path.
    """
    import numpy as np

    from repro.workloads.openloop import TenantSpec, open_arrivals

    duration_s = 10.0
    reads = open_arrivals(
        8,
        64,
        duration_s,
        (TenantSpec("bench", n_arrivals / duration_s, zipf_s=1.1),),
        seed=0,
    )
    arr = ElementArray(
        8, 4 * 1024 * 1024, DiskParameters.savvio_10k3(), ElevatorScheduler
    )
    batches = [
        (t, [arr.element_request(r.i, (r.stripe * 8 + r.j) % 512, IOKind.READ)
             for r in reads[k:k + 64]])
        for k, t in ((k, reads[k].time) for k in range(0, len(reads), 64))
    ]

    def drive() -> None:
        for t, reqs in batches:
            arr.sim.submit_many_at(max(t, arr.sim.now), list(reqs))
        arr.run()

    return _time(drive)


def kernel_calendar(n_requests: int, repeats: int) -> dict:
    """Run-phase heapq-vs-typed A/B on an identical pre-submitted workload.

    Submission happens outside the timed region, so this isolates
    exactly what the typed calendar changed: event pop, dispatch and
    completion.  Configs interleave within each round for the same
    reason ``kernel_obs_overhead`` interleaves — sequential blocks put
    warm-up and frequency drift entirely on one side of the ratio.
    """
    import numpy as np

    element = 4 * 1024 * 1024
    rng = np.random.default_rng(0)
    disks = [int(d) for d in rng.integers(0, 8, size=n_requests)]
    slots = [int(o) for o in rng.integers(0, 512, size=n_requests)]

    def drive(kind: str) -> float:
        arr = ElementArray(
            8, element, DiskParameters.savvio_10k3(), ElevatorScheduler,
            calendar=kind,
        )
        for d, slot in zip(disks, slots):
            arr.submit(arr.element_request(d, slot, IOKind.READ))
        return _time(arr.run)

    heapq_t, typed_t = [], []
    for _ in range(repeats):
        heapq_t.append(drive("heapq"))
        typed_t.append(drive("typed"))
    heapq_s = min(heapq_t)
    typed_s = min(typed_t)
    return {
        "heapq_s": heapq_s,
        "typed_s": typed_s,
        "speedup": heapq_s / max(typed_s, 1e-9),
    }


def kernel_plans() -> float:
    layout = shifted_mirror_parity(7)

    def plans() -> None:
        for failed in layout.all_failure_sets(2):
            layout.reconstruction_plan(failed)

    return _time(plans)


def kernel_nemesis_schedule(days: float) -> float:
    """Drawing (and wire-forming) dense multi-week nemesis schedules."""
    from repro.nemesis import HazardRates, build_schedule

    rates = HazardRates(
        disk_death_per_day=2.0,
        fail_slow_per_day=6.0,
        transient_burst_per_day=12.0,
        lse_storm_per_day=6.0,
    )

    def draw() -> None:
        for seed in range(4):
            build_schedule(
                12, days * 86_400.0, seed=seed, rates=rates
            ).to_dict()

    return _time(draw)


def kernel_campaign(n_seeds: int, n_stripes: int, jobs: int | None) -> float:
    return _time(
        lambda: compare_sweep(
            "mirror", 4, n_seeds=n_seeds, n_stripes=n_stripes, jobs=jobs
        )
    )


def kernel_campaign_pooled(n_seeds: int, n_stripes: int) -> float:
    """The sweep on a persistent pool with a shared-memory film block.

    Pool spin-up and film materialisation are inside the timing — the
    point is that they are paid once per pool, not once per sweep.
    """
    from repro.parallel import WorkerPool

    def drive() -> None:
        with WorkerPool(jobs=0) as pool:
            if pool.n_workers > 1:
                pool.share_film(2012, 16, n_stripes, 4, 4)  # mirror(4) geometry
            compare_sweep(
                "mirror", 4, n_seeds=n_seeds, n_stripes=n_stripes, pool=pool
            )

    return _time(drive)


class _BareSimulation(Simulation):
    """The engine with its observability hooks surgically removed.

    On the heapq calendar, ``_complete`` and ``run`` carry the
    pre-instrumentation bodies, so timing this subclass against the
    real engine under ``REPRO_OBS=0`` prices exactly the null-sink
    residue (one ``is not None`` check per completion plus one counter
    flush per ``run``) and nothing else.  The typed calendar's batch
    loop already pays its observability residue per *run* rather than
    per event — a null check before the final counter flush and one
    inside the vectorized drain — so there is no per-event body left
    to strip; the parent loop with ``_obs = None`` *is* the bare
    engine, and the twin only guarantees the hooks stay off.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._obs = None

    def _complete(self, server, request) -> None:
        server.busy = False
        server.current = None
        if self.faults is not None:
            self.faults.on_completion(request)
        self.completed.append(request)
        cb = self._callbacks.pop(request.req_id, None)
        if cb is not None:
            cb(request)
        self._start_next(server)

    def run(self, until=None):
        if self._cal is not None:
            return super().run(until)
        events = self._events
        if until is not None and until <= self.now:
            return self.now
        while events:
            t = events[0][0]
            if until is not None and t > until:
                self.now = until
                return self.now
            _, _, action, args = heapq.heappop(events)
            self.now = t
            action(*args)
        if until is not None and until > self.now:
            self.now = until
        return self.now


def kernel_obs_overhead(n_requests: int, repeats: int) -> dict:
    """Engine kernel under bare / null-sink / instrumented / streaming.

    Returns best-of-``repeats`` seconds per config plus the slowdown
    ratios.  The null-sink ratio is the observability contract:
    components constructed under ``REPRO_OBS=0`` must cost within 2%
    of an engine that never heard of metrics — and that must keep
    holding with the streaming machinery merged in but idle (no sink
    attached is the null path; there is nothing extra to disable).
    The ``streaming`` config prices the opposite end: fully
    instrumented with a JSONL sink draining the span buffer to disk —
    informational, not gated.
    """
    import tempfile

    import numpy as np

    from repro.obs import (
        JsonlTraceSink,
        TimelineRecorder,
        Tracer,
        set_default_recorder,
        set_default_tracer,
        set_obs_enabled,
    )

    element = 4 * 1024 * 1024
    rng = np.random.default_rng(0)
    disks = [int(d) for d in rng.integers(0, 8, size=n_requests)]
    offsets = [int(o) * element for o in rng.integers(0, 512, size=n_requests)]

    def drive(sim_cls, enabled: bool, tracer=None, recorder=None) -> float:
        from repro.disksim.request import IORequest

        old = set_obs_enabled(enabled)
        old_tracer = set_default_tracer(tracer)
        old_recorder = set_default_recorder(recorder)
        try:
            sim = sim_cls(8, DiskParameters.savvio_10k3(), ElevatorScheduler)
        finally:
            set_default_recorder(old_recorder)
            set_default_tracer(old_tracer)
            set_obs_enabled(old)

        def go() -> None:
            for d, off in zip(disks, offsets):
                sim.submit(IORequest(disk=d, offset=off, size=element, kind=IOKind.READ))
            sim.run()

        elapsed = _time(go)
        if tracer is not None:
            tracer.close()
        return elapsed

    def drive_streaming() -> float:
        with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as tmp:
            path = Path(tmp.name)
        try:
            return drive(
                Simulation, enabled=True, tracer=Tracer(sink=JsonlTraceSink(path))
            )
        finally:
            path.unlink(missing_ok=True)

    # interleave the configs within each round: sequential blocks bias
    # the comparison (warm-up and CPU frequency drift land entirely on
    # whichever config runs first), which at a 2% threshold drowns the
    # signal being gated.  The null config keeps a flight recorder
    # *installed* — the gate must hold with one present, because
    # REPRO_OBS=0 is contracted to skip it at construction.
    bare, null, instrumented, timeseries, streaming = [], [], [], [], []
    for _ in range(repeats):
        bare.append(drive(_BareSimulation, enabled=False))
        null.append(
            drive(
                Simulation,
                enabled=False,
                recorder=TimelineRecorder(registry=False),
            )
        )
        instrumented.append(drive(Simulation, enabled=True))
        timeseries.append(
            drive(
                Simulation,
                enabled=True,
                recorder=TimelineRecorder(registry=False),
            )
        )
        streaming.append(drive_streaming())
    bare_s = min(bare)
    null_s = min(null)
    instrumented_s = min(instrumented)
    timeseries_s = min(timeseries)
    streaming_s = min(streaming)
    return {
        "bare_s": bare_s,
        "null_s": null_s,
        "instrumented_s": instrumented_s,
        "timeseries_s": timeseries_s,
        "streaming_s": streaming_s,
        "null_overhead": null_s / max(bare_s, 1e-9) - 1.0,
        "instrumented_overhead": instrumented_s / max(bare_s, 1e-9) - 1.0,
        "timeseries_overhead": timeseries_s / max(bare_s, 1e-9) - 1.0,
        "streaming_overhead": streaming_s / max(bare_s, 1e-9) - 1.0,
    }


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------

def run_suite(tiny: bool, repeats: int) -> dict:
    """Best-of-``repeats`` seconds per kernel, plus derived ratios."""
    scale = {
        "rebuild_stripes": 64 if tiny else 1024,
        "engine_requests": 2000 if tiny else 20000,
        "openloop_arrivals": 2000 if tiny else 20000,
        "sweep_seeds": 4 if tiny else 16,
        "sweep_stripes": 4 if tiny else 12,
        "nemesis_days": 30.0 if tiny else 365.0,
    }

    def best(fn) -> float:
        return min(fn() for _ in range(repeats))

    kernels: dict[str, float] = {}
    print(f"perfbench ({'tiny' if tiny else 'full'} scale, best of {repeats})")
    kernels["rebuild_cached"] = best(
        lambda: kernel_rebuild(scale["rebuild_stripes"], plan_cache=True)
    )
    print(f"  rebuild_cached    {kernels['rebuild_cached']:.3f} s")
    kernels["rebuild_nocache"] = best(
        lambda: kernel_rebuild(scale["rebuild_stripes"], plan_cache=False)
    )
    print(f"  rebuild_nocache   {kernels['rebuild_nocache']:.3f} s")
    kernels["engine_elevator"] = best(
        lambda: kernel_engine(scale["engine_requests"])
    )
    print(f"  engine_elevator   {kernels['engine_elevator']:.3f} s")
    kernels["batch_submission"] = best(
        lambda: kernel_batch(scale["engine_requests"])
    )
    print(f"  batch_submission  {kernels['batch_submission']:.3f} s")
    kernels["openloop_submit"] = best(
        lambda: kernel_openloop_submit(scale["openloop_arrivals"])
    )
    print(f"  openloop_submit   {kernels['openloop_submit']:.3f} s")
    calendar = kernel_calendar(scale["engine_requests"], repeats)
    kernels["calendar_heapq"] = calendar["heapq_s"]
    kernels["calendar_typed"] = calendar["typed_s"]
    print(f"  engine_calendar   heapq {calendar['heapq_s']:.3f} s, "
          f"typed {calendar['typed_s']:.3f} s "
          f"({calendar['speedup']:.2f}x)")
    kernels["plan_generation"] = best(kernel_plans)
    print(f"  plan_generation   {kernels['plan_generation']:.3f} s")
    kernels["nemesis_schedule"] = best(
        lambda: kernel_nemesis_schedule(scale["nemesis_days"])
    )
    print(f"  nemesis_schedule  {kernels['nemesis_schedule']:.3f} s")
    # the sweep kernels run once each: the pool spin-up is part of the cost
    kernels["campaign_serial"] = kernel_campaign(
        scale["sweep_seeds"], scale["sweep_stripes"], jobs=1
    )
    print(f"  campaign_serial   {kernels['campaign_serial']:.3f} s")
    kernels["campaign_parallel"] = kernel_campaign(
        scale["sweep_seeds"], scale["sweep_stripes"], jobs=0
    )
    print(f"  campaign_parallel {kernels['campaign_parallel']:.3f} s")
    kernels["campaign_pooled"] = kernel_campaign_pooled(
        scale["sweep_seeds"], scale["sweep_stripes"]
    )
    print(f"  campaign_pooled   {kernels['campaign_pooled']:.3f} s")
    obs = kernel_obs_overhead(scale["engine_requests"], repeats)
    kernels["engine_bare"] = obs["bare_s"]
    kernels["engine_nullsink"] = obs["null_s"]
    kernels["engine_instrumented"] = obs["instrumented_s"]
    kernels["engine_timeseries"] = obs["timeseries_s"]
    kernels["engine_streaming"] = obs["streaming_s"]
    print(f"  obs_overhead      bare {obs['bare_s']:.3f} s, "
          f"null {obs['null_s']:.3f} s ({obs['null_overhead']:+.1%}), "
          f"instrumented {obs['instrumented_s']:.3f} s "
          f"({obs['instrumented_overhead']:+.1%}), "
          f"timeseries {obs['timeseries_s']:.3f} s "
          f"({obs['timeseries_overhead']:+.1%}), "
          f"streaming {obs['streaming_s']:.3f} s "
          f"({obs['streaming_overhead']:+.1%})")

    derived = {
        "calendar_speedup": calendar["speedup"],
        "obs_null_overhead": obs["null_overhead"],
        "obs_instrumented_overhead": obs["instrumented_overhead"],
        "obs_timeseries_overhead": obs["timeseries_overhead"],
        "obs_streaming_overhead": obs["streaming_overhead"],
        "plan_cache_speedup": kernels["rebuild_nocache"]
        / max(kernels["rebuild_cached"], 1e-9),
        "parallel_speedup": kernels["campaign_serial"]
        / max(kernels["campaign_parallel"], 1e-9),
        "pool_speedup": kernels["campaign_parallel"]
        / max(kernels["campaign_pooled"], 1e-9),
    }
    print(f"  plan-cache speedup {derived['plan_cache_speedup']:.2f}x, "
          f"parallel speedup {derived['parallel_speedup']:.2f}x, "
          f"pool speedup {derived['pool_speedup']:.2f}x "
          f"({os.cpu_count()} cores)")
    from repro.disksim.array import batch_enabled

    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "scale": "tiny" if tiny else "full",
        "repeats": repeats,
        "batch_path": batch_enabled(),
        "kernels": kernels,
        "derived": derived,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing for the serial kernels")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"trajectory file (default {DEFAULT_OUT.name})")
    parser.add_argument("--no-append", action="store_true",
                        help="overwrite the trajectory instead of appending")
    parser.add_argument("--no-batch", action="store_true",
                        help="disable the vectorized batch path for the "
                             "whole run (per-element ablation)")
    parser.add_argument("--obs-overhead", action="store_true",
                        help="run only the observability overhead gate: "
                             "fail (exit 1) if the null-sink engine is "
                             "more than 2%% slower than the hook-free one")
    parser.add_argument("--obs-tolerance", type=float, default=0.02,
                        help="allowed null-sink slowdown for --obs-overhead "
                             "(default 0.02 = 2%%)")
    parser.add_argument("--calendar-ab", action="store_true",
                        help="run only the heapq-vs-typed calendar A/B gate: "
                             "fail (exit 1) if the typed calendar's run phase "
                             "is not at least --calendar-min-speedup faster")
    parser.add_argument("--calendar-min-speedup", type=float, default=1.5,
                        help="minimum run-phase speedup the typed calendar "
                             "must show over heapq for --calendar-ab "
                             "(default 1.5)")
    args = parser.parse_args(argv)

    if args.calendar_ab:
        n_requests = 2000 if args.tiny else 20000
        repeats = max(args.repeats, 5)  # ratio gating needs stable best-of
        ab = kernel_calendar(n_requests, repeats)
        print(f"calendar A/B gate ({n_requests} requests, best of {repeats}):")
        print(f"  heapq  {ab['heapq_s']:.4f} s")
        print(f"  typed  {ab['typed_s']:.4f} s  ({ab['speedup']:.2f}x)")
        if ab["speedup"] < args.calendar_min_speedup:
            print(f"FAIL: typed-calendar speedup {ab['speedup']:.2f}x below "
                  f"{args.calendar_min_speedup:.2f}x", file=sys.stderr)
            return 1
        print(f"OK: typed calendar >= {args.calendar_min_speedup:.2f}x faster")
        return 0

    if args.obs_overhead:
        n_requests = 2000 if args.tiny else 20000
        repeats = max(args.repeats, 5)  # 2%-level gating needs stable best-of
        obs = kernel_obs_overhead(n_requests, repeats)
        print(f"obs overhead gate ({n_requests} requests, best of {repeats}):")
        print(f"  bare          {obs['bare_s']:.4f} s")
        print(f"  null sink     {obs['null_s']:.4f} s  ({obs['null_overhead']:+.2%})")
        print(f"  instrumented  {obs['instrumented_s']:.4f} s  "
              f"({obs['instrumented_overhead']:+.2%})")
        print(f"  timeseries    {obs['timeseries_s']:.4f} s  "
              f"({obs['timeseries_overhead']:+.2%})")
        print(f"  streaming     {obs['streaming_s']:.4f} s  "
              f"({obs['streaming_overhead']:+.2%})")
        if obs["null_overhead"] > args.obs_tolerance:
            print(f"FAIL: null-sink overhead {obs['null_overhead']:.2%} exceeds "
                  f"{args.obs_tolerance:.0%}", file=sys.stderr)
            return 1
        print(f"OK: null-sink overhead within {args.obs_tolerance:.0%}")
        return 0

    if args.no_batch:
        from repro.disksim.array import set_batch_enabled

        os.environ["REPRO_BATCH"] = "0"  # pool workers inherit the toggle
        set_batch_enabled(False)
    record = run_suite(tiny=args.tiny, repeats=args.repeats)
    runs = []
    if not args.no_append and args.out.exists():
        try:
            runs = json.loads(args.out.read_text()).get("runs", [])
        except (json.JSONDecodeError, AttributeError):
            print(f"warning: {args.out} unreadable, starting fresh",
                  file=sys.stderr)
    runs.append(record)
    args.out.write_text(json.dumps({"runs": runs}, indent=2) + "\n")
    print(f"appended run #{len(runs)} to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
