"""Write workload execution: dependencies, content updates, throughput."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.layouts import (
    RAID5Layout,
    RAID6Layout,
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
    traditional_mirror_parity,
)
from repro.disksim.request import IOKind
from repro.raidsim.controller import RaidController
from repro.workloads.generator import WriteOp, random_large_writes


def _ctrl(layout, **kw):
    kw.setdefault("n_stripes", 4)
    kw.setdefault("payload_bytes", 8)
    return RaidController(layout, **kw)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: traditional_mirror(3),
        lambda: shifted_mirror(3),
        lambda: traditional_mirror_parity(3),
        lambda: shifted_mirror_parity(3),
        lambda: RAID5Layout(3),
        lambda: RAID6Layout(3, "rdp"),
    ],
)
def test_workload_preserves_redundancy(factory):
    ctrl = _ctrl(factory())
    rng = np.random.default_rng(1)
    ops = random_large_writes(3, 4, n_ops=25, rng=rng)
    res = ctrl.run_write_workload(ops, rng=rng)
    assert res.n_ops == 25
    assert res.write_throughput_mbps > 0
    assert ctrl.verify_redundancy()


def test_written_data_lands_in_store():
    ctrl = _ctrl(shifted_mirror(3))
    rng = np.random.default_rng(2)
    op = WriteOp(1, ((0, 0), (1, 0)))
    before = ctrl.element_content(1, (0, 0)).copy()
    ctrl.run_write_workload([op], rng=rng)
    after = ctrl.element_content(1, (0, 0))
    assert not np.array_equal(before, after)


def test_mirror_write_has_no_reads():
    ctrl = _ctrl(shifted_mirror(3))
    ctrl.run_write_workload([WriteOp(0, ((0, 0),))])
    assert ctrl.array.sim.total_bytes_read == 0


def test_partial_row_rmw_reads_before_writes():
    ctrl = _ctrl(shifted_mirror_parity(3))
    ctrl.run_write_workload([WriteOp(0, ((0, 0),))], strategy="rmw")
    reads = [r for r in ctrl.array.sim.completed if r.kind is IOKind.READ]
    writes = [r for r in ctrl.array.sim.completed if r.kind is IOKind.WRITE]
    assert reads and writes
    assert max(r.finish_time for r in reads) <= min(w.start_time for w in writes)


def test_full_row_write_skips_reads():
    ctrl = _ctrl(shifted_mirror_parity(3))
    ctrl.run_write_workload([WriteOp(0, tuple((i, 1) for i in range(3)))])
    assert ctrl.array.sim.total_bytes_read == 0


def test_reconstruct_strategy_also_preserves_parity():
    ctrl = _ctrl(shifted_mirror_parity(3))
    rng = np.random.default_rng(3)
    ops = random_large_writes(3, 4, n_ops=15, rng=rng)
    ctrl.run_write_workload(ops, strategy="reconstruct", rng=rng)
    assert ctrl.verify_redundancy()


def test_user_bytes_counts_data_not_redundancy():
    ctrl = _ctrl(shifted_mirror(3))
    res = ctrl.run_write_workload([WriteOp(0, ((0, 0), (1, 0)))])
    assert res.user_bytes == 2 * ctrl.array.element_size
    # physical writes include the replicas
    assert res.bytes_written == 4 * ctrl.array.element_size


def test_windowed_pipeline_faster_than_serial():
    rng = np.random.default_rng(4)
    ops = random_large_writes(3, 4, n_ops=30, rng=rng)
    serial = _ctrl(shifted_mirror(3)).run_write_workload(list(ops), window=1)
    piped = _ctrl(shifted_mirror(3)).run_write_workload(list(ops), window=6)
    assert piped.makespan_s < serial.makespan_s


def test_traditional_and_shifted_write_throughput_close():
    """Fig. 10's claim: 'about the same to a large extent'."""
    rng_seed = 5
    results = {}
    for name, builder in (("trad", traditional_mirror), ("shift", shifted_mirror)):
        ctrl = _ctrl(builder(5), n_stripes=6)
        rng = np.random.default_rng(rng_seed)
        ops = random_large_writes(5, 6, n_ops=60, rng=rng)
        results[name] = ctrl.run_write_workload(ops, rng=rng).write_throughput_mbps
    ratio = results["shift"] / results["trad"]
    assert 0.85 < ratio <= 1.05


def test_healthy_read_path_identical_across_arrangements():
    """The shifted arrangement must not tax the healthy read path: the
    primary copies live in the (unchanged) data array."""
    import numpy as np

    from repro.core.layouts import shifted_mirror, traditional_mirror

    rng = np.random.default_rng(17)
    reads = [
        (int(rng.integers(0, 6)), int(rng.integers(0, 5)), int(rng.integers(0, 5)))
        for _ in range(60)
    ]
    times = {}
    for name, builder in (("trad", traditional_mirror), ("shift", shifted_mirror)):
        ctrl = RaidController(builder(5), n_stripes=6, payload_bytes=8)
        stats = ctrl.run_read_workload(list(reads))
        times[name] = stats.makespan_s
        assert stats.n_reads >= 1
    assert times["shift"] == pytest.approx(times["trad"], rel=1e-9)


def test_replica_reads_equally_fast_under_both_arrangements():
    """Reading from the mirror array: the shifted layout scatters the
    replicas but each disk carries the same per-disk load, so a random
    read stream performs comparably."""
    import numpy as np

    from repro.core.layouts import shifted_mirror, traditional_mirror

    rng = np.random.default_rng(23)
    reads = [
        (int(rng.integers(0, 6)), int(rng.integers(0, 5)), int(rng.integers(0, 5)))
        for _ in range(60)
    ]
    times = {}
    for name, builder in (("trad", traditional_mirror), ("shift", shifted_mirror)):
        ctrl = RaidController(builder(5), n_stripes=6, payload_bytes=8)
        times[name] = ctrl.run_read_workload(list(reads), from_replica=True).makespan_s
    assert abs(times["shift"] - times["trad"]) / times["trad"] < 0.2
