"""Element addressing and stripe geometry (paper §II-A terms).

The paper reasons about one *stripe* at a time: an ``n x n`` block of
data elements, its replica block in the mirror array, and (for the
parity variants) a column of parity elements.  This module pins down
the coordinate system shared by every other core module:

* disks within one array are numbered ``0 .. n-1`` left to right;
* elements within one disk are numbered ``0 .. n-1`` top to bottom;
* arrays are named by :class:`ArrayKind` (data / mirror / second
  mirror / parity);
* a *global disk id* enumerates every disk of the architecture, data
  array first, then mirror array(s), then the parity disk.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ArrayKind", "ElementAddr", "StripeGeometry"]


class ArrayKind(str, enum.Enum):
    """Which disk array a disk or element belongs to."""

    DATA = "data"
    MIRROR = "mirror"
    MIRROR2 = "mirror2"  # the three-mirror extension's second mirror array
    PARITY = "parity"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class ElementAddr:
    """Address of one element: ``(array, disk-within-array, row)``.

    For the parity disk, ``disk`` is always 0 and ``row`` indexes the
    parity elements ``c_0 .. c_{n-1}``.
    """

    array: ArrayKind
    disk: int
    row: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.array.value}[{self.disk},{self.row}]"


@dataclass(frozen=True)
class StripeGeometry:
    """Shape of one stripe for a mirror-family architecture.

    Parameters
    ----------
    n:
        Disks per array; also rows per stripe (the paper picks ``n``
        rows so Property 1 can distribute one replica per mirror disk).
    n_mirror_arrays:
        1 for the mirror methods, 2 for the three-mirror extension.
    has_parity:
        Whether a parity disk is part of the architecture.
    """

    n: int
    n_mirror_arrays: int = 1
    has_parity: bool = False

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"need n >= 1, got {self.n}")
        if self.n_mirror_arrays not in (1, 2):
            raise ValueError(f"n_mirror_arrays must be 1 or 2, got {self.n_mirror_arrays}")

    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        return self.n

    @property
    def n_disks(self) -> int:
        """Total disks in the architecture."""
        return self.n * (1 + self.n_mirror_arrays) + (1 if self.has_parity else 0)

    @property
    def data_elements_per_stripe(self) -> int:
        return self.n * self.n

    # ------------------------------------------------------------------
    # global disk ids: data, mirror, (mirror2,) parity
    # ------------------------------------------------------------------
    def global_disk(self, array: ArrayKind, disk: int) -> int:
        """Global id of ``disk`` within ``array``."""
        if array is ArrayKind.PARITY:
            if not self.has_parity:
                raise ValueError("this geometry has no parity disk")
            if disk != 0:
                raise IndexError("the parity disk id within its array is 0")
            return self.n * (1 + self.n_mirror_arrays)
        if not 0 <= disk < self.n:
            raise IndexError(f"disk {disk} outside array of {self.n} disks")
        if array is ArrayKind.DATA:
            return disk
        if array is ArrayKind.MIRROR:
            return self.n + disk
        if array is ArrayKind.MIRROR2:
            if self.n_mirror_arrays < 2:
                raise ValueError("this geometry has a single mirror array")
            return 2 * self.n + disk
        raise ValueError(f"unknown array kind {array!r}")

    def locate_disk(self, global_disk: int) -> tuple[ArrayKind, int]:
        """Inverse of :meth:`global_disk`."""
        if not 0 <= global_disk < self.n_disks:
            raise IndexError(f"global disk {global_disk} outside {self.n_disks} disks")
        if global_disk < self.n:
            return ArrayKind.DATA, global_disk
        if global_disk < 2 * self.n:
            return ArrayKind.MIRROR, global_disk - self.n
        if self.n_mirror_arrays == 2 and global_disk < 3 * self.n:
            return ArrayKind.MIRROR2, global_disk - 2 * self.n
        return ArrayKind.PARITY, 0

    def all_disks(self) -> list[int]:
        """Every global disk id of the architecture."""
        return list(range(self.n_disks))

    def elements_on_disk(self, global_disk: int) -> list[ElementAddr]:
        """All element addresses stored on one physical column."""
        array, disk = self.locate_disk(global_disk)
        return [ElementAddr(array, disk, row) for row in range(self.rows)]
