"""End-to-end integration: the paper's storyline on one array.

Each test walks a full scenario through the public API — layout,
controller, simulator, content verification — the way a downstream
user would compose the library.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    RotatedStack,
    ShiftedArrangement,
    analysis,
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
    traditional_mirror_parity,
)
from repro.disksim import PriorityScheduler
from repro.raidsim import OnlineReconstruction, RaidController
from repro.workloads import random_large_writes, user_read_stream


def test_write_fail_rebuild_read_cycle():
    """Write user data, lose two disks, rebuild, and confirm every byte
    — the full lifecycle of the shifted mirror method with parity."""
    ctrl = RaidController(shifted_mirror_parity(4), n_stripes=5, payload_bytes=8)
    rng = np.random.default_rng(11)
    ops = random_large_writes(4, 5, n_ops=30, rng=rng)
    ctrl.run_write_workload(ops, rng=rng)
    assert ctrl.verify_redundancy()

    # remember what user data looks like, then lose a data disk and a
    # mirror disk (the paper's interesting F3 situation)
    snapshot = {
        (s, i, j): ctrl.element_content(s, (i, j)).copy()
        for s in range(5)
        for i in range(4)
        for j in range(4)
    }
    res = ctrl.rebuild([1, 6])
    assert res.verified
    for (s, i, j), want in snapshot.items():
        assert np.array_equal(ctrl.element_content(s, (i, j)), want)


def test_theory_predicts_simulation_on_ideal_disks():
    """The closed-form access ratio of §VI-A appears as a wall-clock
    ratio once mechanical overheads are stripped from the disks."""
    from repro.disksim import DiskParameters

    n = 4
    params = DiskParameters.ideal()
    times = {}
    for name, builder in (
        ("trad", traditional_mirror),
        ("shift", shifted_mirror),
    ):
        ctrl = RaidController(
            builder(n), n_stripes=6, params=params, payload_bytes=8
        )
        times[name] = ctrl.rebuild([0]).makespan_s
    gain = times["trad"] / times["shift"]
    assert gain == pytest.approx(float(analysis.mirror_reconstruction_gain(n)), rel=0.1)


def test_rotated_stack_physical_failure_covers_logical_cases():
    """A physical failure on a rotated stack hits each logical role
    exactly once — and rebuild handles the mixture correctly."""
    lay = shifted_mirror_parity(3)
    ctrl = RaidController(lay, n_stripes=lay.n_disks, rotate=True, payload_bytes=8)
    stack = ctrl.stack
    roles = [stack.logical_disk(s, 2) for s in range(stack.n_stripes)]
    assert sorted(roles) == list(range(lay.n_disks))
    assert ctrl.rebuild([2]).verified


def test_online_reconstruction_story():
    """§III end-to-end: user reads hit the disk under reconstruction;
    the shifted arrangement serves them an order of magnitude faster."""
    stats = {}
    for name, builder in (("trad", traditional_mirror), ("shift", shifted_mirror)):
        ctrl = RaidController(
            builder(5),
            n_stripes=16,
            payload_bytes=8,
            scheduler_factory=PriorityScheduler,
        )
        reads = user_read_stream(5, 16, duration_s=1.5, rate_per_s=12, target_disk=0)
        res = OnlineReconstruction(ctrl, [0], reads).run()
        assert res.rebuild.verified
        stats[name] = res
    assert stats["shift"].mean_user_latency_s < stats["trad"].mean_user_latency_s
    # both rebuilds recovered identical content (same film seed)
    assert stats["shift"].rebuild.recovered_bytes == stats["trad"].rebuild.recovered_bytes


def test_paper_headline_numbers_coexist():
    """One assertion per headline claim of the abstract."""
    n = 5
    # "improves data availability by a factor of n" (mirror)
    assert analysis.mirror_reconstruction_gain(n) == n
    # "... or (2n+1)/4" (mirror with parity)
    assert analysis.mirror_parity_reconstruction_gain(n) == pytest.approx(11 / 4)
    # "still enjoying the theoretical optimal write efficiency"
    assert shifted_mirror(n).write_plan([(0, 0)]).num_write_accesses == 1
    assert shifted_mirror_parity(n).large_write_plan(0).num_write_accesses == 1
    # and the arrangement really is the paper's formula
    arr = ShiftedArrangement(n)
    assert arr.mirror_location(2, 4) == ((2 + 4) % n, 2)


def test_stack_definition_from_paper_terms():
    """§II-A: 'the loss of any two physical disks in a stack covers all
    combinations of failure of two logical disks' — with rotation, each
    physical pair sweeps through n_disks distinct logical pairs."""
    lay = traditional_mirror_parity(3)
    stack = RotatedStack(lay)
    cases = set(stack.logical_failures([1, 4]))
    assert len(cases) == stack.n_stripes
