"""PlanCache: one derivation per logical-failure equivalence class."""

from __future__ import annotations

import pytest

from repro.core.errors import UnrecoverableFailureError
from repro.core.layouts import MirrorLayout, shifted_mirror, shifted_mirror_parity
from repro.core.plancache import PlanCache
from repro.raidsim.controller import RaidController


def test_plan_computed_once_per_failure_set():
    cache = PlanCache(shifted_mirror_parity(3))
    first = cache.plan((0,))
    assert cache.plan((0,)) is first  # shared object, not a copy
    assert (cache.hits, cache.misses) == (1, 1)
    cache.plan((1,))
    assert (cache.hits, cache.misses) == (1, 2)
    assert len(cache) == 2


def test_cached_plan_matches_direct_derivation():
    layout = shifted_mirror_parity(3)
    cache = PlanCache(layout)
    assert cache.plan((0, 2)).num_read_accesses == (
        layout.reconstruction_plan((0, 2)).num_read_accesses
    )


def test_phases_and_rounds_are_memoised():
    cache = PlanCache(shifted_mirror(3))
    assert cache.phases((0,)) is cache.phases((0,))
    assert cache.read_rounds((0,)) is cache.read_rounds((0,))


def test_unrecoverable_failures_cached_as_negative_results():
    layout = MirrorLayout(3)
    # find a 2-disk set beyond the mirror's tolerance
    bad = next(
        failed
        for failed in layout.all_failure_sets(2)
        if _unrecoverable(layout, failed)
    )
    cache = PlanCache(layout)
    with pytest.raises(UnrecoverableFailureError):
        cache.plan(tuple(bad))
    misses = cache.misses
    with pytest.raises(UnrecoverableFailureError):
        cache.plan(tuple(bad))
    assert cache.misses == misses  # second probe was a (negative) hit
    assert cache.hits == 1


def _unrecoverable(layout, failed) -> bool:
    try:
        layout.reconstruction_plan(failed)
    except UnrecoverableFailureError:
        return True
    return False


def test_invalidate_clears_everything():
    cache = PlanCache(shifted_mirror(3))
    cache.plan((0,))
    cache.phases((0,))
    cache.read_rounds((0,))
    cache.invalidate()
    assert len(cache) == 0
    misses = cache.misses
    cache.plan((0,))
    assert cache.misses == misses + 1  # truly recomputed


def test_incremental_invalidate_drops_only_intersecting_sets():
    """Keys fully encode their failure sets, so growing the failure set
    only needs to drop entries the new logical disks touch."""
    cache = PlanCache(shifted_mirror_parity(3))
    for key in ((0,), (1,), (0, 2)):
        cache.plan(key)
        cache.phases(key)
        cache.read_rounds(key)
    dropped = cache.invalidate({2})
    assert dropped == 1  # only (0, 2) intersects
    assert len(cache) == 2
    misses = cache.misses
    cache.plan((0,))
    cache.plan((1,))
    assert cache.misses == misses  # survivors still serve hits
    cache.plan((0, 2))
    assert cache.misses == misses + 1  # the intersecting entry was dropped
    assert cache.phases((0,)) is cache.phases((0,))


def test_incremental_invalidate_drops_negative_results_too():
    layout = MirrorLayout(3)
    bad = next(
        failed
        for failed in layout.all_failure_sets(2)
        if _unrecoverable(layout, failed)
    )
    cache = PlanCache(layout)
    with pytest.raises(UnrecoverableFailureError):
        cache.plan(tuple(bad))
    cache.invalidate({bad[0]})
    misses = cache.misses
    with pytest.raises(UnrecoverableFailureError):
        cache.plan(tuple(bad))
    assert cache.misses == misses + 1  # negative entry gone, re-derived


def test_disabled_cache_recomputes_every_call():
    cache = PlanCache(shifted_mirror(3), enabled=False)
    a = cache.plan((0,))
    b = cache.plan((0,))
    assert a is not b
    assert len(cache) == 0


def test_rebuild_results_identical_with_and_without_cache():
    """The cache is a pure memo: same makespan, same verification."""
    results = []
    for plan_cache in (True, False):
        ctrl = RaidController(
            shifted_mirror_parity(3),
            n_stripes=6,
            payload_bytes=8,
            plan_cache=plan_cache,
        )
        results.append(ctrl.rebuild((0,)))
    cached, uncached = results
    assert cached.makespan_s == uncached.makespan_s
    assert cached.recovered_bytes == uncached.recovered_bytes
    assert cached.verified and uncached.verified


def test_controller_cache_hits_across_stripes():
    """Identical stripes of a rotated stack share one plan derivation."""
    ctrl = RaidController(shifted_mirror(3), n_stripes=8, payload_bytes=8)
    ctrl.rebuild((0,))
    # one logical class per rotation offset at most; far fewer misses
    # than the 8 per-stripe derivations the seed code performed
    assert ctrl.plan_cache.hits > 0
    assert ctrl.plan_cache.misses <= ctrl.layout.n_disks
