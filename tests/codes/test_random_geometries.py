"""Property-based geometry sweeps: random (p, n) through every code."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.evenodd import EvenOdd
from repro.codes.rdp import RDP
from repro.codes.xcode import XCode

PRIMES_EO = [3, 5, 7, 11, 13]
PRIMES_X = [5, 7, 11, 13]


@st.composite
def evenodd_case(draw):
    p = draw(st.sampled_from(PRIMES_EO))
    n = draw(st.integers(1, p))
    seed = draw(st.integers(0, 2**31))
    return p, n, seed


@st.composite
def rdp_case(draw):
    p = draw(st.sampled_from(PRIMES_EO))
    n = draw(st.integers(1, p - 1))
    seed = draw(st.integers(0, 2**31))
    return p, n, seed


def _erase_two(rng, count):
    if count < 2:
        return [0]
    return sorted(rng.choice(count, size=2, replace=False).tolist())


@given(case=evenodd_case())
@settings(max_examples=40, deadline=None)
def test_evenodd_random_geometry_roundtrip(case):
    p, n, seed = case
    rng = np.random.default_rng(seed)
    code = EvenOdd(p, n)
    data = rng.integers(0, 256, (p - 1, n, 4), dtype=np.uint8)
    P, Q = code.encode(data)
    devs = [data[:, j].copy() for j in range(n)]
    lost = _erase_two(rng, n + 2)
    cols = [None if j in lost else devs[j] for j in range(n)]
    rp = None if n in lost else P
    dq = None if n + 1 in lost else Q
    d2, p2, q2 = code.decode(cols, rp, dq)
    assert np.array_equal(d2, data)
    assert np.array_equal(p2, P) and np.array_equal(q2, Q)


@given(case=rdp_case())
@settings(max_examples=40, deadline=None)
def test_rdp_random_geometry_roundtrip(case):
    p, n, seed = case
    rng = np.random.default_rng(seed)
    code = RDP(p, n)
    data = rng.integers(0, 256, (p - 1, n, 4), dtype=np.uint8)
    P, Q = code.encode(data)
    devs = [data[:, j].copy() for j in range(n)]
    lost = _erase_two(rng, n + 2)
    cols = [None if j in lost else devs[j] for j in range(n)]
    rp = None if n in lost else P
    dq = None if n + 1 in lost else Q
    d2, _, _ = code.decode(cols, rp, dq)
    assert np.array_equal(d2, data)


@given(p=st.sampled_from(PRIMES_X), seed=st.integers(0, 2**31))
@settings(max_examples=30, deadline=None)
def test_xcode_random_geometry_roundtrip(p, seed):
    rng = np.random.default_rng(seed)
    code = XCode(p)
    data = rng.integers(0, 256, (p - 2, p, 4), dtype=np.uint8)
    cols = code.full_columns(data)
    lost = _erase_two(rng, p)
    got = code.decode_data([None if j in lost else cols[j] for j in range(p)])
    assert np.array_equal(got, data)


@given(case=evenodd_case())
@settings(max_examples=25, deadline=None)
def test_evenodd_parity_linear_in_data(case):
    """Encoding is GF(2)-linear for random geometries too."""
    p, n, seed = case
    rng = np.random.default_rng(seed)
    code = EvenOdd(p, n)
    a = rng.integers(0, 256, (p - 1, n, 4), dtype=np.uint8)
    b = rng.integers(0, 256, (p - 1, n, 4), dtype=np.uint8)
    pa, qa = code.encode(a)
    pb, qb = code.encode(b)
    pab, qab = code.encode(a ^ b)
    assert np.array_equal(pa ^ pb, pab)
    assert np.array_equal(qa ^ qb, qab)
