"""Degraded-mode service: the array keeps working between failure and repair.

§III's premise is that "the storage system keeps on serving user
applications" after a failure.  :class:`DegradedArray` makes that mode
explicit, the way md/RAID drivers do:

* **reads** route around the failed disks via
  :func:`~repro.raidsim.reconstruction.degraded_read_sources` (replica
  first, then the parity path);
* **writes** execute their plan minus the failed disks' cells; the
  skipped cells are tracked in a *dirty map* (md's write-intent bitmap);
* **resync** rebuilds the failed disks and replays the dirty map so the
  rebuilt columns reflect every write accepted while degraded.

Content-store semantics match throughout, so the byte-for-byte
verification used everywhere else still applies after a
write-while-degraded-then-resync cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..core.layouts import (
    DeclusteredMirrorLayout,
    MirrorLayout,
    MirrorParityLayout,
    RAID5Layout,
    ThreeMirrorLayout,
)
from ..disksim.request import IOKind
from ..workloads.generator import WriteOp
from .controller import RaidController, RebuildResult
from .reconstruction import degraded_read_sources

__all__ = ["DegradedArray", "DegradedStats"]

_MB = 1024 * 1024


@dataclass
class DegradedStats:
    """Service counters for one degraded episode."""

    reads_served: int = 0
    degraded_reads: int = 0
    writes_served: int = 0
    elements_skipped: int = 0  # writes destined for failed disks
    read_latencies_s: list[float] = field(default_factory=list)

    @property
    def mean_read_latency_s(self) -> float:
        """Mean service latency; ``NaN`` when no reads were served.

        Zero would be indistinguishable from a genuine zero-latency
        collapse, so an empty sample set answers "no measurement", not
        "instant" — JSON emitters coerce it to ``null`` and the anomaly
        detector abstains on it.
        """
        if not self.read_latencies_s:
            return float("nan")
        return float(np.mean(self.read_latencies_s))


class DegradedArray:
    """A controller operating with one or more failed disks.

    Parameters
    ----------
    controller:
        The healthy controller; failing the disks is this class's job.
    failed_disks:
        Physical disks that just died.  Their content is destroyed on
        entry (it is, after all, gone).
    """

    SUPPORTED = (
        MirrorLayout,
        MirrorParityLayout,
        ThreeMirrorLayout,
        DeclusteredMirrorLayout,
        RAID5Layout,
    )

    def __init__(self, controller: RaidController, failed_disks) -> None:
        if not isinstance(controller.layout, self.SUPPORTED):
            raise NotImplementedError(
                f"degraded-mode service is implemented for the mirror family "
                f"and RAID 5, not {controller.layout.name}"
            )
        self.controller = controller
        self.failed = tuple(sorted(set(failed_disks)))
        if len(self.failed) > controller.layout.fault_tolerance:
            from ..core.errors import UnrecoverableFailureError

            raise UnrecoverableFailureError(
                f"{len(self.failed)} failures exceed tolerance "
                f"{controller.layout.fault_tolerance}"
            )
        self._lost_snapshot = {f: controller.content[f].copy() for f in self.failed}
        for f in self.failed:
            controller.content[f] = 0xEE  # the platters are gone
        #: logical cells whose on-disk (failed) copy is stale:
        #: ``stripe -> set of (disk, row)``
        self.dirty: dict[int, set[tuple[int, int]]] = {}
        self.stats = DegradedStats()
        self._resynced = False

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read(self, stripe: int, i: int, j: int) -> np.ndarray:
        """Serve one data-element read, timing it on the simulator."""
        ctrl = self.controller
        logical_failed = {
            ctrl.stack.logical_disk(stripe, f) for f in self.failed
        }
        sources = degraded_read_sources(ctrl.layout, logical_failed, i, j)
        degraded = sources != [ctrl.layout.data_cell(i, j)]
        cells = [ctrl.place(stripe, c) for c in sources]
        t0 = ctrl.array.now
        done = {}

        def on_complete() -> None:
            done["t"] = ctrl.array.now

        ctrl.array.submit_elements(
            cells, IOKind.READ, priority=0, tag="degraded-read", on_complete=on_complete
        )
        ctrl.array.run()
        self.stats.reads_served += 1
        self.stats.degraded_reads += int(degraded)
        self.stats.read_latencies_s.append(done["t"] - t0)
        # value reconstruction from the content store
        if not degraded:
            return ctrl.element_content(stripe, sources[0]).copy()
        if len(sources) == 1:
            return ctrl.element_content(stripe, sources[0]).copy()
        acc = np.zeros(ctrl.payload_bytes, dtype=np.uint8)
        for c in sources:
            acc ^= ctrl.element_content(stripe, c)
        return acc

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def write(self, op: WriteOp, rng: np.random.Generator | None = None) -> None:
        """Accept a write while degraded.

        The plan's cells on failed disks are skipped (and marked dirty
        for resync); everything else — surviving replicas, parity —
        updates normally, so redundancy over the *surviving* disks
        stays exact.
        """
        if rng is None:
            rng = np.random.default_rng(self.stats.writes_served)
        ctrl = self.controller
        plan = ctrl.layout.write_plan(list(op.elements))
        live_writes = []
        live_reads = []
        logical_failed = {
            ctrl.stack.logical_disk(op.stripe, f) for f in self.failed
        }
        for disk, rows in plan.writes.items():
            for row in rows:
                if disk in logical_failed:
                    self.dirty.setdefault(op.stripe, set()).add((disk, row))
                    self.stats.elements_skipped += 1
                else:
                    live_writes.append(ctrl.place(op.stripe, (disk, row)))
        for disk, rows in plan.reads.items():
            for row in rows:
                if disk not in logical_failed:
                    live_reads.append(ctrl.place(op.stripe, (disk, row)))

        def do_writes() -> None:
            ctrl.array.submit_elements(live_writes, IOKind.WRITE, tag="degraded-write")

        if live_reads:
            ctrl.array.submit_elements(
                live_reads, IOKind.READ, tag="degraded-rmw", on_complete=do_writes
            )
        else:
            do_writes()
        ctrl.array.run()
        self._apply_degraded_content(op, rng, logical_failed)
        self.stats.writes_served += 1

    # ------------------------------------------------------------------
    def _logical_value(
        self, stripe: int, i: int, j: int, failed: set[int]
    ) -> np.ndarray:
        """The logical (pre-write) value of ``a[i, j]`` despite failures.

        Tries the data cell, then any surviving replica, then the
        parity path — the same cascade degraded reads use, but against
        the content store.
        """
        ctrl = self.controller
        lay = ctrl.layout
        cell = lay.data_cell(i, j)
        if cell[0] not in failed:
            return ctrl.element_content(stripe, cell).copy()
        for rep in lay.replica_cells(i, j):
            if rep[0] not in failed:
                return ctrl.element_content(stripe, rep).copy()
        if isinstance(lay, (MirrorParityLayout, RAID5Layout)):
            acc = ctrl.element_content(stripe, lay.parity_cell(j)).copy()
            for ii in range(lay.n):
                if ii != i:
                    acc ^= self._logical_value(stripe, ii, j, failed)
            return acc
        from ..core.errors import UnrecoverableFailureError

        raise UnrecoverableFailureError(f"no surviving value for a[{i},{j}]")

    def _apply_degraded_content(
        self, op: WriteOp, rng: np.random.Generator, logical_failed: set[int]
    ) -> None:
        """Content-store semantics of a degraded write.

        Cells on failed disks stay destroyed (the platters are gone);
        parity advances by the XOR *delta* of each overwritten element
        — old logical value XOR new — exactly the read-modify-write
        arithmetic, which never needs the failed cell itself.
        """
        ctrl = self.controller
        lay = ctrl.layout
        # pass 1: old logical values (before anything is overwritten —
        # a parity-path lookup reads row-mates)
        updates: list[tuple[int, int, np.ndarray, np.ndarray]] = []
        for i, j in op.elements:
            payload = ctrl.film.fresh(rng)
            old = self._logical_value(op.stripe, i, j, logical_failed)
            updates.append((i, j, old, payload))
        # pass 2: apply
        deltas: dict[int, np.ndarray] = {}
        for i, j, old, payload in updates:
            deltas.setdefault(j, np.zeros(ctrl.payload_bytes, dtype=np.uint8))
            deltas[j] ^= old ^ payload
            for cell in [lay.data_cell(i, j), *lay.replica_cells(i, j)]:
                if cell[0] not in logical_failed:
                    pd, slot = ctrl.place(op.stripe, cell)
                    ctrl.content[pd, slot] = payload
        if isinstance(lay, (MirrorParityLayout, RAID5Layout)):
            for j, delta in deltas.items():
                pcell = lay.parity_cell(j)
                if pcell[0] in logical_failed:
                    continue  # parity disk dead; dirty map already has it
                pd, slot = ctrl.place(op.stripe, pcell)
                ctrl.content[pd, slot] ^= delta

    # ------------------------------------------------------------------
    # resync
    # ------------------------------------------------------------------
    def resync(self, window: int = 4) -> RebuildResult:
        """Rebuild the failed disks (replacement hardware arrived).

        The rebuild regenerates every element of the failed disks from
        surviving redundancy — including the elements written while
        degraded, whose surviving copies/parity are current.  The dirty
        map then clears; verification compares against pre-failure
        content *except* dirty cells, which are checked against their
        surviving redundancy instead.
        """
        ctrl = self.controller
        result = ctrl.rebuild(self.failed, window=window, verify=False)
        # verification: unwritten cells must match the pre-failure
        # snapshot; dirty cells must satisfy verify_redundancy (checked
        # globally below).
        verified = True
        for f in self.failed:
            snapshot = self._lost_snapshot[f]
            for stripe in range(ctrl.n_stripes):
                logical = ctrl.stack.logical_disk(stripe, f)
                dirty_rows = {
                    row for d, row in self.dirty.get(stripe, set()) if d == logical
                }
                for row in range(ctrl.layout.rows):
                    slot = ctrl.stack.element_offset(stripe, row)
                    if row in dirty_rows:
                        continue  # overwritten while degraded, by design
                    if not np.array_equal(ctrl.content[f, slot], snapshot[slot]):
                        verified = False
        verified = verified and ctrl.verify_redundancy()
        self.dirty.clear()
        self._resynced = True
        return replace(result, verified=verified)
