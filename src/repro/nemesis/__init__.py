"""Nemesis: continuous stochastic fault orchestration with attribution.

Fixed, replayable fault storms (:mod:`repro.disksim.faultplan`) answer
"what happens under *this* storm?"; a production mirror array faces an
open-ended stochastic stream of hazards.  This package closes that gap
with three cooperating pieces:

* :mod:`repro.nemesis.schedule` — a seeded **scheduler** composing
  hazard classes (disk deaths, fail-slow windows, transient bursts,
  LSE storms) into a frozen schedule over simulated weeks, with
  per-class rate knobs and a hard safety budget;
* :mod:`repro.nemesis.tracker` — an **active-faults timeline**
  recording every activation/deactivation interval as a first-class
  object, exported through the observability layer (spans, gauges,
  Prometheus series);
* :mod:`repro.nemesis.anomaly` — an **anomaly detector** keeping
  rolling quiet-period baselines of latency/throughput/rebuild-progress
  and correlating every excursion against the timeline.

:func:`~repro.nemesis.campaign.run_nemesis_campaign` drives both
arrangements through the identical schedule tick by tick and checks
the campaign invariant — *every excursion overlaps an active fault* —
so an unexplained excursion is a real engine bug, surfaced by the
daemon.  The CLI front-end is ``repro nemesis``; see
``docs/nemesis.md``.
"""

from __future__ import annotations

from .anomaly import (
    DEFAULT_METRICS,
    AnomalyDetector,
    AttributionReport,
    Excursion,
    MetricSpec,
)
from .campaign import (
    ArrangementReport,
    NemesisConfig,
    NemesisReport,
    TickSample,
    run_nemesis_campaign,
)
from .schedule import (
    FAULT_KINDS,
    HazardRates,
    NemesisSchedule,
    ScheduledFault,
    build_schedule,
)
from .tracker import FaultInterval, FaultTimeline, timeline_from_plan

__all__ = [
    # schedule
    "FAULT_KINDS",
    "HazardRates",
    "ScheduledFault",
    "NemesisSchedule",
    "build_schedule",
    # tracker
    "FaultInterval",
    "FaultTimeline",
    "timeline_from_plan",
    # anomaly
    "MetricSpec",
    "Excursion",
    "AttributionReport",
    "AnomalyDetector",
    "DEFAULT_METRICS",
    # campaign
    "NemesisConfig",
    "TickSample",
    "ArrangementReport",
    "NemesisReport",
    "run_nemesis_campaign",
]
