"""Logical address space: user byte offsets to stripe elements and back.

The paper works in element coordinates; a real volume exposes a flat
byte range.  :class:`LogicalAddressSpace` defines the mapping used
throughout the harness: user data is laid out **row-major across the
data array, stripe by stripe** (element ``e`` of stripe ``s`` sits at
data disk ``e mod n``, row ``e div n``), which is exactly the order
large writes proceed in (§VI-C) and the order the workload generator's
"random large writes" use.

It also provides range splitting: a user extent becomes per-stripe
element runs, each of which is one
:class:`~repro.workloads.generator.WriteOp` for the controller.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.generator import WriteOp

__all__ = ["LogicalAddressSpace"]


@dataclass(frozen=True)
class LogicalAddressSpace:
    """Byte-addressable view over a mirror-family volume.

    Parameters
    ----------
    n:
        Data disks (stripe width).
    n_stripes:
        Stripes in the volume.
    element_size:
        Bytes per element.
    """

    n: int
    n_stripes: int
    element_size: int

    def __post_init__(self) -> None:
        if self.n < 1 or self.n_stripes < 1 or self.element_size < 1:
            raise ValueError(
                f"invalid address space: n={self.n}, stripes={self.n_stripes}, "
                f"element={self.element_size}"
            )

    # ------------------------------------------------------------------
    @property
    def elements_per_stripe(self) -> int:
        return self.n * self.n

    @property
    def capacity_bytes(self) -> int:
        """User-visible bytes (data elements only — redundancy excluded)."""
        return self.n_stripes * self.elements_per_stripe * self.element_size

    # ------------------------------------------------------------------
    def locate(self, offset: int) -> tuple[int, int, int, int]:
        """``offset -> (stripe, data disk i, row j, byte within element)``."""
        if not 0 <= offset < self.capacity_bytes:
            raise ValueError(
                f"offset {offset} outside volume of {self.capacity_bytes} bytes"
            )
        element_index, within = divmod(offset, self.element_size)
        stripe, e = divmod(element_index, self.elements_per_stripe)
        j, i = divmod(e, self.n)
        return stripe, i, j, within

    def offset_of(self, stripe: int, i: int, j: int) -> int:
        """First byte of data element ``a[i, j]`` of ``stripe``."""
        if not (0 <= stripe < self.n_stripes and 0 <= i < self.n and 0 <= j < self.n):
            raise ValueError(f"cell (stripe={stripe}, i={i}, j={j}) out of range")
        e = j * self.n + i
        return (stripe * self.elements_per_stripe + e) * self.element_size

    # ------------------------------------------------------------------
    def extent_to_ops(self, offset: int, length: int) -> list[WriteOp]:
        """Split a user extent into per-stripe element-aligned write ops.

        Partial elements at the edges still dirty their whole element
        (element-granular redundancy updates — the paper's model).
        """
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        if offset < 0 or offset + length > self.capacity_bytes:
            raise ValueError("extent outside the volume")
        first = offset // self.element_size
        last = (offset + length - 1) // self.element_size
        ops: list[WriteOp] = []
        cells: list[tuple[int, int]] = []
        current_stripe: int | None = None
        for element_index in range(first, last + 1):
            stripe, e = divmod(element_index, self.elements_per_stripe)
            j, i = divmod(e, self.n)
            if current_stripe is None:
                current_stripe = stripe
            if stripe != current_stripe:
                ops.append(WriteOp(current_stripe, tuple(cells)))
                cells = []
                current_stripe = stripe
            cells.append((i, j))
        ops.append(WriteOp(current_stripe, tuple(cells)))
        return ops
