"""Streaming observability: JSONL sink, span sampling, live /metrics.

The contract under test: a streamed trace holds at most
``buffer_watermark`` events in memory no matter how long the campaign
runs, the file on disk is a loadable trace at every instant (including
after an abrupt kill mid-line), sampling never drops the
controller/phase skeleton, and the Prometheus endpoint serves a
parseable exposition of the live registry and shuts down cleanly.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    JsonlTraceSink,
    MetricsRegistry,
    MetricsServer,
    Tracer,
    chrome_trace,
    load_streaming_trace,
    prometheus_text,
    resolve_sample_rate,
    scoped_registry,
    set_obs_enabled,
)


@pytest.fixture
def registry():
    old = set_obs_enabled(True)
    try:
        with scoped_registry() as reg:
            yield reg
    finally:
        set_obs_enabled(old)


def _streaming_tracer(tmp_path, watermark=4, **kwargs):
    sink = JsonlTraceSink(tmp_path / "trace.jsonl")
    return Tracer(sink=sink, buffer_watermark=watermark, **kwargs), sink


# ----------------------------------------------------------------------
# bounded buffer: watermark and phase-boundary flushes
# ----------------------------------------------------------------------


def test_watermark_flush_bounds_the_buffer(tmp_path):
    tr, sink = _streaming_tracer(tmp_path, watermark=4)
    peak = 0
    for i in range(11):
        tr.complete("io", float(i), 0.5, pid=i % 3)
        peak = max(peak, len(tr))
    assert peak <= 4  # never exceeds the watermark
    assert sink.events_written == 8  # two watermark flushes happened
    tr.close()
    loaded = load_streaming_trace(sink.path)
    assert [ev.ts for ev in loaded.events] == [float(i) for i in range(11)]
    assert loaded.header["buffer_watermark"] == 4


def test_phase_boundary_flushes_below_the_watermark(tmp_path):
    tr, sink = _streaming_tracer(tmp_path, watermark=100)
    tr.complete("io", 0.0, 1.0)
    tr.complete("io", 1.0, 1.0)
    assert sink.events_written == 0
    tr.phase_boundary()
    assert sink.events_written == 2 and len(tr) == 0
    # the partial file is already a loadable trace
    assert len(load_streaming_trace(sink.path).events) == 2


def test_group_phase_boundary_reaches_the_tracer(tmp_path):
    tr, sink = _streaming_tracer(tmp_path, watermark=100)
    group = tr.group("mirror(3)")
    group.complete("rebuild.phase", 0.0, 1.0, cat="rebuild")
    group.phase_boundary()
    assert sink.events_written == 1


def test_track_names_stream_as_they_register(tmp_path):
    tr, sink = _streaming_tracer(tmp_path, watermark=100)
    g = tr.group("shifted")
    g.name_track(0, "disk 0")
    g.complete("io", 0.0, 1.0, pid=0)
    tr.flush()
    g.name_track(1, "disk 1")  # registered after the first flush
    g.complete("io", 1.0, 1.0, pid=1)
    tr.close()
    loaded = load_streaming_trace(sink.path)
    assert set(loaded.process_names.values()) == {"shifted: disk 0", "shifted: disk 1"}


# ----------------------------------------------------------------------
# close: final flush, idempotence
# ----------------------------------------------------------------------


def test_close_flushes_the_tail_and_is_idempotent(tmp_path):
    tr, sink = _streaming_tracer(tmp_path, watermark=100)
    tr.complete("io", 0.0, 1.0)
    tr.phase_boundary()
    # events recorded after the final phase flush must still land
    token = tr.begin("late", 2.0)
    tr.end(token, 3.0)
    tr.close()
    tr.close()  # repeated close is a no-op, not an error
    assert sink.closed
    loaded = load_streaming_trace(sink.path)
    assert [ev.name for ev in loaded.events] == ["io", "late"]


def test_empty_streamed_trace_still_carries_a_header(tmp_path):
    tr, sink = _streaming_tracer(tmp_path)
    tr.close()
    loaded = load_streaming_trace(sink.path)
    assert loaded.events == []
    assert loaded.header["format"] == "repro-trace/1"


# ----------------------------------------------------------------------
# abrupt-stop recovery and viewer-loadability
# ----------------------------------------------------------------------


def test_truncated_file_recovers_complete_prefix(tmp_path):
    tr, sink = _streaming_tracer(tmp_path, watermark=2)
    for i in range(6):
        tr.complete("io", float(i), 0.5)
    tr.flush()
    sink.close()  # simulate a kill: no tracer.close() bookkeeping
    raw = sink.path.read_text()
    torn = raw[: len(raw) - 17]  # cut mid-record
    sink.path.write_text(torn)
    loaded = load_streaming_trace(sink.path)
    assert 0 < len(loaded.events) < 6
    assert [ev.ts for ev in loaded.events] == [float(i) for i in range(len(loaded.events))]


def test_streamed_lines_are_chrome_array_format(tmp_path):
    """First line ``[``, every record a JSON object with trailing comma —
    the tolerant chrome://tracing array format, parseable line-by-line."""
    tr, sink = _streaming_tracer(tmp_path)
    tr.complete("read", 0.001, 0.002, pid=1, cat="io", bytes=8)
    tr.close()
    lines = sink.path.read_text().splitlines()
    assert lines[0] == "["
    records = [json.loads(line.rstrip(",")) for line in lines[1:]]
    assert records[0]["name"] == "trace_header"
    span = records[-1]
    assert span["ts"] == pytest.approx(1000.0)  # seconds -> microseconds
    assert span["dur"] == pytest.approx(2000.0)
    assert span["args"]["bytes"] == 8


# ----------------------------------------------------------------------
# span sampling
# ----------------------------------------------------------------------


def test_sample_zero_keeps_controller_and_phase_spans(tmp_path):
    tr, sink = _streaming_tracer(tmp_path, watermark=100, sample=0.0)
    for i in range(20):
        tr.complete("read", float(i), 0.5, cat="io")
    tr.complete("rebuild.phase", 0.0, 10.0, cat="rebuild")
    tr.instant("second-failure", 5.0)
    tr.close()
    loaded = load_streaming_trace(sink.path)
    assert [ev.name for ev in loaded.events] == ["rebuild.phase", "second-failure"]
    assert tr.dropped_events == 20
    assert loaded.header["sample_rate"] == 0.0


def test_sampling_is_deterministic_per_seed():
    def kept(seed):
        tr = Tracer(sample=0.5, sample_seed=seed)
        for i in range(200):
            tr.complete("read", float(i), 0.5, cat="io")
        return [ev.ts for ev in tr.events]

    assert kept(7) == kept(7)
    assert 0 < len(kept(7)) < 200


def test_chrome_trace_header_stays_honest_about_sampling():
    tr = Tracer(sample=0.25, sample_seed=3)
    for i in range(100):
        tr.complete("read", float(i), 0.5, cat="io")
    doc = chrome_trace(tr)
    meta = doc["metadata"]
    assert meta["sample_rate"] == 0.25
    assert meta["dropped_events"] == tr.dropped_events > 0


def test_resolve_sample_rate_env_and_validation(monkeypatch):
    monkeypatch.setenv("REPRO_OBS_SAMPLE", "0.125")
    assert resolve_sample_rate() == 0.125
    assert resolve_sample_rate(1.0) == 1.0  # explicit beats env
    with pytest.raises(ValueError, match="sample rate"):
        resolve_sample_rate(1.5)


def test_buffer_watermark_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_OBS_BUFFER", "2")
    tr, sink = _streaming_tracer(tmp_path, watermark=None)
    assert tr.buffer_watermark == 2


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def test_prometheus_text_renders_all_three_kinds():
    reg = MetricsRegistry()
    reg.counter("sim.requests", "completed I/O requests").inc(3, kind="read")
    reg.gauge("pool.n_workers").set(4)
    reg.histogram("sim.request_latency_s", buckets=(0.1, 1.0)).observe(0.5)
    reg.histogram("sim.request_latency_s", buckets=(0.1, 1.0)).observe(5.0)
    text = prometheus_text(reg.snapshot())
    assert "# TYPE sim_requests counter" in text
    assert 'sim_requests{kind="read"} 3.0' in text
    assert "pool_n_workers 4.0" in text
    # cumulative buckets with a +Inf terminator matching _count
    assert 'sim_request_latency_s_bucket{le="0.1"} 0' in text
    assert 'sim_request_latency_s_bucket{le="1.0"} 1' in text
    assert 'sim_request_latency_s_bucket{le="+Inf"} 2' in text
    assert "sim_request_latency_s_count 2" in text
    assert "sim_request_latency_s_sum 5.5" in text


def test_prometheus_text_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter("c").inc(1, tag='say "hi"\nback\\slash')
    text = prometheus_text(reg.snapshot())
    assert r'c{tag="say \"hi\"\nback\\slash"} 1.0' in text


def test_prometheus_text_empty_snapshot_is_valid():
    assert prometheus_text({}) == ""


def test_metrics_server_serves_and_shuts_down(registry):
    registry.counter("sweep.points_completed").inc(2)
    with MetricsServer(port=0) as srv:
        assert srv.port > 0
        body = urllib.request.urlopen(f"{srv.url}/metrics", timeout=5).read().decode()
        assert "sweep_points_completed 2.0" in body
        index = urllib.request.urlopen(srv.url + "/", timeout=5)
        assert index.status == 200
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(srv.url + "/nope", timeout=5)
        assert err.value.code == 404
    srv.close()  # second close after context exit: still fine
    assert srv.closed


def test_metrics_server_scrapes_the_provider_live():
    reg = MetricsRegistry()
    with MetricsServer(port=0, registry_provider=lambda: reg) as srv:
        first = urllib.request.urlopen(f"{srv.url}/metrics", timeout=5).read().decode()
        reg.counter("sim.requests").inc(7)
        second = urllib.request.urlopen(f"{srv.url}/metrics", timeout=5).read().decode()
    assert "sim_requests" not in first
    assert "sim_requests 7.0" in second


# ----------------------------------------------------------------------
# the acceptance contract: a campaign's tracer memory is bounded
# ----------------------------------------------------------------------


class _WatchedTracer(Tracer):
    """A tracer that remembers its peak buffered-event count."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.peak_buffered = 0

    def _record(self, ev):
        super()._record(ev)
        self.peak_buffered = max(self.peak_buffered, len(self.events))


def test_rebuild_under_streaming_tracer_holds_the_watermark(tmp_path):
    from repro.core.layouts import shifted_mirror
    from repro.raidsim.controller import RaidController

    sink = JsonlTraceSink(tmp_path / "rebuild.jsonl")
    tracer = _WatchedTracer(sink=sink, buffer_watermark=32)
    ctrl = RaidController(
        shifted_mirror(5), n_stripes=24, payload_bytes=8, tracer=tracer
    )
    ctrl.rebuild((0,), verify=False)
    tracer.close()
    assert tracer.total_events > 32  # the run genuinely overflowed the buffer
    assert tracer.peak_buffered <= 32
    loaded = load_streaming_trace(sink.path)
    assert len(loaded.events) == tracer.total_events
    names = {ev.name for ev in loaded.events}
    assert "rebuild.phase" in names  # phase skeleton survived
    assert any(v.startswith("shifted-mirror") for v in loaded.process_names.values())


def test_sweep_merges_worker_metrics_as_points_complete(registry):
    from repro.raidsim.campaign import compare_sweep

    sweep = compare_sweep("mirror", 3, n_seeds=3, n_stripes=4, jobs=1)
    assert len(sweep) == 3
    assert registry.counter("sweep.points_completed").value() == 3
    # the merged registry is servable as a live exposition
    text = prometheus_text(registry.snapshot())
    assert "sweep_points_completed 3.0" in text
    assert "sim_requests" in text
