"""Rolling metric baselines for anomaly detection.

The nemesis daemon (:mod:`repro.nemesis`) needs to decide, tick by
tick, whether a latency/throughput sample is *ordinary* or an
*excursion*.  :class:`RollingBaseline` holds a bounded window of
recent quiet-period samples and answers that question with a combined
relative + z-score test:

* the sample must deviate from the rolling mean by more than
  ``rel_threshold`` (a fraction of the mean) — this filters the tiny
  absolute wiggles of a near-constant series whose standard deviation
  is almost zero, and
* when the window has any spread, the sample must also sit more than
  ``z_threshold`` standard deviations out — this filters ordinary
  Poisson-arrival jitter on noisy series.

Both tests are directional (``"high"`` flags inflated samples such as
latency, ``"low"`` flags collapsed ones such as throughput).  The
window only ever receives samples the caller deems quiet, so a fault
can never teach the baseline that its own degradation is normal.
"""

from __future__ import annotations

import math
from collections import deque

__all__ = [
    "RollingBaseline",
    "EWMABaseline",
    "SeasonalBaseline",
    "make_baseline",
    "BASELINE_KINDS",
]

#: baseline kinds `make_baseline` (and `nemesis.anomaly.MetricSpec`) accept
BASELINE_KINDS = ("rolling", "ewma", "seasonal")


def _excursion(
    value: float, mean: float, std: float, rel_threshold: float,
    z_threshold: float, direction: str,
) -> bool:
    """The combined relative + z-score test shared by every baseline."""
    if direction not in ("high", "low"):
        raise ValueError(f"direction must be 'high' or 'low', got {direction!r}")
    if direction == "high":
        beyond_rel = value > mean + rel_threshold * abs(mean)
        beyond_z = std == 0.0 or value > mean + z_threshold * std
    else:
        beyond_rel = value < mean - rel_threshold * abs(mean)
        beyond_z = std == 0.0 or value < mean - z_threshold * std
    return beyond_rel and beyond_z


class RollingBaseline:
    """Windowed mean/std over the most recent ``window`` samples.

    ``min_samples`` gates readiness: until that many samples arrived
    the baseline abstains (nothing is an excursion), so campaign
    warm-up can never produce false positives.
    """

    __slots__ = ("window", "min_samples", "_samples", "_sum", "_sumsq")

    def __init__(self, window: int = 64, min_samples: int = 8) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if not 2 <= min_samples <= window:
            raise ValueError(
                f"min_samples must be in [2, window], got {min_samples}"
            )
        self.window = window
        self.min_samples = min_samples
        self._samples: deque[float] = deque(maxlen=window)
        self._sum = 0.0
        self._sumsq = 0.0

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def ready(self) -> bool:
        """Whether enough quiet samples arrived to judge excursions."""
        return len(self._samples) >= self.min_samples

    @property
    def mean(self) -> float:
        n = len(self._samples)
        return self._sum / n if n else 0.0

    @property
    def std(self) -> float:
        n = len(self._samples)
        if n < 2:
            return 0.0
        var = self._sumsq / n - self.mean**2
        return var**0.5 if var > 0.0 else 0.0

    def update(self, value: float) -> None:
        """Admit a quiet-period sample into the window.

        Non-finite samples are rejected: a single NaN would poison the
        running sums for the lifetime of the window (NaN means "no
        measurement" — callers abstain instead of feeding it).
        """
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"baseline samples must be finite, got {value}")
        if len(self._samples) == self._samples.maxlen:
            old = self._samples[0]
            self._sum -= old
            self._sumsq -= old * old
        self._samples.append(value)
        self._sum += value
        self._sumsq += value * value

    def is_excursion(
        self,
        value: float,
        rel_threshold: float = 0.5,
        z_threshold: float = 4.0,
        direction: str = "high",
    ) -> bool:
        """Judge ``value`` against the baseline without admitting it."""
        if direction not in ("high", "low"):
            raise ValueError(f"direction must be 'high' or 'low', got {direction!r}")
        if not self.ready:
            return False
        return _excursion(
            value, self.mean, self.std, rel_threshold, z_threshold, direction
        )


class EWMABaseline:
    """Exponentially weighted baseline with a trend-robust noise estimate.

    The mean is a classic EWMA (smoothing factor ``alpha``; small alpha
    means long memory).  The *spread*, however, is an EW average of
    squared **first differences** (halved, so it is unbiased for the
    variance of stationary noise): successive-difference noise is blind
    to a slow trend, which is exactly what lets this detector flag a
    creeping drift.  A short rolling window re-centres on the drifting
    level and never fires; the EWMA's mean lags the ramp by
    ``rate / alpha`` while its std stays at the noise floor, so the
    drifted value eventually clears both the relative and the z test.
    """

    __slots__ = ("alpha", "min_samples", "_n", "_mean", "_var", "_last")

    def __init__(self, alpha: float = 0.05, min_samples: int = 8) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if min_samples < 2:
            raise ValueError(f"min_samples must be >= 2, got {min_samples}")
        self.alpha = alpha
        self.min_samples = min_samples
        self._n = 0
        self._mean = 0.0
        self._var = 0.0
        self._last = 0.0

    def __len__(self) -> int:
        return self._n

    @property
    def ready(self) -> bool:
        """Whether enough quiet samples arrived to judge excursions."""
        return self._n >= self.min_samples

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        return self._var**0.5 if self._var > 0.0 else 0.0

    def update(self, value: float) -> None:
        """Admit a quiet-period sample (rejects non-finite, like rolling)."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"baseline samples must be finite, got {value}")
        if self._n == 0:
            self._mean = value
        else:
            d = value - self._last
            self._var = (1.0 - self.alpha) * self._var + self.alpha * 0.5 * d * d
            self._mean += self.alpha * (value - self._mean)
        self._last = value
        self._n += 1

    def is_excursion(
        self,
        value: float,
        rel_threshold: float = 0.5,
        z_threshold: float = 4.0,
        direction: str = "high",
    ) -> bool:
        """Judge ``value`` against the baseline without admitting it."""
        if direction not in ("high", "low"):
            raise ValueError(f"direction must be 'high' or 'low', got {direction!r}")
        if not self.ready:
            return False
        return _excursion(
            value, self._mean, self.std, rel_threshold, z_threshold, direction
        )


class SeasonalBaseline:
    """Per-phase-of-period baselines for periodic (e.g. diurnal) metrics.

    The period ``period_s`` is split into ``n_phases`` equal phases,
    each owning its own :class:`RollingBaseline`.  A value ordinary at
    the daily peak can then still be an excursion at the nightly
    trough — one pooled baseline would smear the two regimes into a
    spread wide enough to hide either.

    Time-aware: :meth:`update` and :meth:`is_excursion` take the
    sample's simulated time ``t_s`` to select the phase (the anomaly
    detector checks the ``time_aware`` class flag and passes it).
    ``mean``/``std`` report the most recently addressed phase, so
    excursion records attribute against the baseline that judged them.
    """

    time_aware = True

    __slots__ = ("period_s", "n_phases", "_phases", "_current")

    def __init__(
        self,
        period_s: float = 86_400.0,
        n_phases: int = 24,
        window: int = 64,
        min_samples: int = 4,
    ) -> None:
        if period_s <= 0.0:
            raise ValueError(f"period_s must be > 0, got {period_s}")
        if n_phases < 2:
            raise ValueError(f"n_phases must be >= 2, got {n_phases}")
        self.period_s = float(period_s)
        self.n_phases = n_phases
        self._phases = [
            RollingBaseline(window, max(2, min_samples)) for _ in range(n_phases)
        ]
        self._current = 0

    def __len__(self) -> int:
        return sum(len(p) for p in self._phases)

    def phase_of(self, t_s: float) -> int:
        """The phase index owning simulated time ``t_s``."""
        frac = (t_s % self.period_s) / self.period_s
        return min(int(frac * self.n_phases), self.n_phases - 1)

    @property
    def ready(self) -> bool:
        """Whether the most recently addressed phase can judge."""
        return self._phases[self._current].ready

    @property
    def mean(self) -> float:
        return self._phases[self._current].mean

    @property
    def std(self) -> float:
        return self._phases[self._current].std

    def update(self, value: float, t_s: float = 0.0) -> None:
        """Admit a quiet-period sample into its phase's window."""
        self._current = self.phase_of(t_s)
        self._phases[self._current].update(value)

    def is_excursion(
        self,
        value: float,
        rel_threshold: float = 0.5,
        z_threshold: float = 4.0,
        direction: str = "high",
        t_s: float = 0.0,
    ) -> bool:
        """Judge ``value`` against its phase's baseline without admitting it."""
        self._current = self.phase_of(t_s)
        return self._phases[self._current].is_excursion(
            value, rel_threshold, z_threshold, direction
        )


def make_baseline(
    kind: str = "rolling",
    *,
    window: int = 64,
    min_samples: int = 8,
    alpha: float = 0.05,
    period_s: float = 86_400.0,
    n_phases: int = 24,
):
    """Build a baseline by kind — the config hook the anomaly detector uses.

    ``"rolling"`` takes ``window``/``min_samples``, ``"ewma"`` takes
    ``alpha``/``min_samples``, ``"seasonal"`` takes ``period_s``/
    ``n_phases``/``window``/``min_samples``; unused knobs are ignored
    so one config schema covers all three.
    """
    if kind == "rolling":
        return RollingBaseline(window, min_samples)
    if kind == "ewma":
        return EWMABaseline(alpha, min_samples)
    if kind == "seasonal":
        return SeasonalBaseline(period_s, n_phases, window, min_samples)
    raise ValueError(f"unknown baseline kind {kind!r} (expected one of {BASELINE_KINDS})")
