"""degraded_read_sources invariants, parametrized over layouts x failures.

Every source set returned must (1) avoid every failed disk, (2) be the
cheapest surviving path in the module's documented cascade, and (3)
actually determine the requested element — a replica carries it
verbatim, a parity path XORs to it, the RAID 6 fallback decodes it.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arrangement import PermutationArrangement, ShiftedArrangement
from repro.core.errors import UnrecoverableFailureError
from repro.core.layouts import (
    RAID5Layout,
    RAID6Layout,
    ThreeMirrorLayout,
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
    traditional_mirror_parity,
)
from repro.raidsim.reconstruction import degraded_read_sources


def _rev(n):
    return PermutationArrangement(
        n, {(i, j): ((i - j) % n, i) for i in range(n) for j in range(n)}
    )


LAYOUTS = [
    pytest.param(lambda: traditional_mirror(4), id="mirror"),
    pytest.param(lambda: shifted_mirror(4), id="shifted-mirror"),
    pytest.param(lambda: traditional_mirror_parity(4), id="mirror-parity"),
    pytest.param(lambda: shifted_mirror_parity(4), id="shifted-mirror-parity"),
    pytest.param(lambda: ThreeMirrorLayout(4), id="three-mirror"),
    pytest.param(
        lambda: ThreeMirrorLayout(4, ShiftedArrangement(4), _rev(4)),
        id="shifted-three-mirror",
    ),
    pytest.param(lambda: RAID5Layout(4), id="raid5"),
    pytest.param(lambda: RAID6Layout(4, "rdp"), id="raid6-rdp"),
]


def _failure_sets(layout):
    """All failure sets within the layout's tolerance (plus empty)."""
    disks = range(layout.n_disks)
    sets = [set()]
    sets += [{d} for d in disks]
    if layout.fault_tolerance >= 2:
        sets += [set(p) for p in itertools.combinations(disks, 2)]
    return sets


def _elements(layout):
    return [(i, j) for i in range(layout.n) for j in range(layout.rows)]


@pytest.mark.parametrize("make", LAYOUTS)
def test_sources_never_touch_a_failed_disk(make):
    layout = make()
    for failed in _failure_sets(layout):
        for i, j in _elements(layout):
            sources = degraded_read_sources(layout, failed, i, j)
            assert sources, f"empty source set for ({i},{j}) under {failed}"
            hit = [c for c in sources if c[0] in failed]
            assert not hit, f"({i},{j}) under {failed} reads failed {hit}"


@pytest.mark.parametrize("make", LAYOUTS)
def test_surviving_primary_is_always_the_single_source(make):
    layout = make()
    for failed in _failure_sets(layout):
        for i, j in _elements(layout):
            if i in failed:
                continue
            assert degraded_read_sources(layout, failed, i, j) == [(i, j)]


@pytest.mark.parametrize("make", LAYOUTS)
def test_surviving_replica_beats_the_parity_path(make):
    layout = make()
    if not hasattr(layout, "replica_cells"):
        pytest.skip("no replicas in this layout")
    for failed in _failure_sets(layout):
        for i, j in _elements(layout):
            if i not in failed:
                continue
            live = [c for c in layout.replica_cells(i, j) if c[0] not in failed]
            if not live:
                continue
            sources = degraded_read_sources(layout, failed, i, j)
            assert len(sources) == 1
            assert sources[0] in live
            # the replica really holds a copy of a[i, j]
            c = layout.content(*sources[0])
            assert (c.kind, c.i, c.j) == ("replica", i, j)


@pytest.mark.parametrize("make", LAYOUTS)
def test_source_set_determines_the_element(make):
    """XOR-path source sets are exactly row-survivors + parity."""
    layout = make()
    for failed in _failure_sets(layout):
        for i, j in _elements(layout):
            sources = degraded_read_sources(layout, failed, i, j)
            if len(sources) == 1:
                c = layout.content(*sources[0])
                assert c.kind in ("data", "replica") and (c.i, c.j) == (i, j)
            elif (
                isinstance(layout, RAID6Layout)
                and len(sources) == (layout.n_disks - len(failed)) * layout.rows
            ):
                # generic decode: every intact element of the stripe
                intact = {
                    (d, r)
                    for d in range(layout.n_disks)
                    if d not in failed
                    for r in range(layout.rows)
                }
                assert set(sources) == intact
            else:
                # XOR path: the row's survivors plus its parity element
                parity = (
                    layout.parity_cell(j)
                    if hasattr(layout, "parity_cell")
                    else (layout.p_disk, j)
                )
                row = {(ii, j) for ii in range(layout.n) if ii != i}
                assert set(sources) == row | {parity}


def test_mirror_overlap_is_the_only_unrecoverable_pair():
    layout = shifted_mirror(4)
    for failed in itertools.combinations(range(layout.n_disks), 2):
        overlapping = [
            (i, j)
            for i, j in _elements(layout)
            if {i, layout.mirror_cell(i, j)[0]} <= set(failed)
        ]
        for i, j in _elements(layout):
            if (i, j) in overlapping:
                with pytest.raises(UnrecoverableFailureError):
                    degraded_read_sources(layout, set(failed), i, j)
            else:
                degraded_read_sources(layout, set(failed), i, j)


@given(
    n=st.integers(3, 6),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_shifted_mirror_parity_survives_any_double_failure(n, data):
    layout = shifted_mirror_parity(n)
    failed = set(
        data.draw(
            st.lists(
                st.integers(0, layout.n_disks - 1),
                min_size=2,
                max_size=2,
                unique=True,
            )
        )
    )
    i = data.draw(st.integers(0, n - 1))
    j = data.draw(st.integers(0, n - 1))
    sources = degraded_read_sources(layout, failed, i, j)
    assert sources
    assert all(c[0] not in failed for c in sources)
