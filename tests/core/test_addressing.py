"""Logical address space: byte <-> element mapping and extent splitting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addressing import LogicalAddressSpace

_E = 4096  # small element for tests


def _las(n=3, stripes=4, element=_E):
    return LogicalAddressSpace(n, stripes, element)


def test_capacity():
    las = _las()
    assert las.capacity_bytes == 4 * 9 * _E
    assert las.elements_per_stripe == 9


def test_invalid_parameters():
    with pytest.raises(ValueError):
        LogicalAddressSpace(0, 1, 1)


def test_locate_first_and_last_byte():
    las = _las()
    assert las.locate(0) == (0, 0, 0, 0)
    stripe, i, j, within = las.locate(las.capacity_bytes - 1)
    assert (stripe, i, j) == (3, 2, 2)
    assert within == _E - 1


def test_locate_row_major_order():
    las = _las()
    # element 0 -> (i=0, j=0); element 1 -> (i=1, j=0); element 3 -> (i=0, j=1)
    assert las.locate(1 * _E)[:3] == (0, 1, 0)
    assert las.locate(3 * _E)[:3] == (0, 0, 1)
    assert las.locate(9 * _E)[:3] == (1, 0, 0)  # next stripe


def test_locate_out_of_range():
    las = _las()
    with pytest.raises(ValueError):
        las.locate(-1)
    with pytest.raises(ValueError):
        las.locate(las.capacity_bytes)


@given(
    n=st.integers(2, 6),
    stripes=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=50)
def test_locate_offset_roundtrip(n, stripes, seed):
    import numpy as np

    las = LogicalAddressSpace(n, stripes, _E)
    rng = np.random.default_rng(seed)
    offset = int(rng.integers(0, las.capacity_bytes))
    stripe, i, j, within = las.locate(offset)
    assert las.offset_of(stripe, i, j) + within == offset


def test_extent_to_ops_single_element():
    las = _las()
    ops = las.extent_to_ops(10, 100)  # inside element 0
    assert len(ops) == 1
    assert ops[0].stripe == 0
    assert ops[0].elements == ((0, 0),)


def test_extent_to_ops_spans_elements_and_rows():
    las = _las()
    # elements 2..4 of stripe 0: (2,0), (0,1), (1,1)
    ops = las.extent_to_ops(2 * _E, 3 * _E)
    assert len(ops) == 1
    assert ops[0].elements == ((2, 0), (0, 1), (1, 1))


def test_extent_to_ops_spans_stripes():
    las = _las()
    ops = las.extent_to_ops(8 * _E, 2 * _E)  # last element of stripe 0, first of 1
    assert [op.stripe for op in ops] == [0, 1]
    assert ops[0].elements == ((2, 2),)
    assert ops[1].elements == ((0, 0),)


def test_partial_edges_dirty_whole_elements():
    las = _las()
    ops = las.extent_to_ops(_E - 1, 2)  # one byte in element 0, one in element 1
    assert ops[0].elements == ((0, 0), (1, 0))


def test_extent_validation():
    las = _las()
    with pytest.raises(ValueError):
        las.extent_to_ops(0, 0)
    with pytest.raises(ValueError):
        las.extent_to_ops(las.capacity_bytes - 1, 2)


def test_ops_drive_the_controller():
    """A byte-extent write flows through address space -> controller."""
    from repro.core.layouts import shifted_mirror_parity
    from repro.raidsim.controller import RaidController

    las = LogicalAddressSpace(3, 4, 4 * 1024 * 1024)
    ctrl = RaidController(shifted_mirror_parity(3), n_stripes=4, payload_bytes=8)
    ops = las.extent_to_ops(7 * 4 * 1024 * 1024, 5 * 4 * 1024 * 1024)
    res = ctrl.run_write_workload(ops)
    assert res.n_ops == len(ops) == 2
    assert ctrl.verify_redundancy()
