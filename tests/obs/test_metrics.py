"""Metrics registry: instruments, labels, snapshot/merge, null sink."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    MetricsRegistry,
    default_registry,
    load_metrics,
    obs_enabled,
    registry_from_file,
    scoped_registry,
    set_obs_enabled,
    write_metrics,
)


@pytest.fixture
def registry():
    """A fresh scoped default registry with observability forced on."""
    old = set_obs_enabled(True)
    try:
        with scoped_registry() as reg:
            yield reg
    finally:
        set_obs_enabled(old)


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------


def test_counter_labels_and_totals():
    reg = MetricsRegistry()
    c = reg.counter("io.requests", "requests by kind")
    c.inc(kind="read")
    c.inc(2, kind="read")
    c.inc(kind="write")
    assert c.value(kind="read") == 3
    assert c.value(kind="write") == 1
    assert c.value(kind="trim") == 0
    assert c.total() == 4


def test_bound_children_are_cached_and_share_state():
    reg = MetricsRegistry()
    c = reg.counter("hits")
    bound = c.labels(disk="3")
    assert c.labels(disk="3") is bound
    bound.inc(5)
    assert c.value(disk="3") == 5


def test_registry_lookups_are_get_or_create():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert "a" in reg and "b" not in reg
    assert len(reg) == 1


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError, match="already registered as a counter"):
        reg.gauge("x")


def test_gauge_set_and_add():
    reg = MetricsRegistry()
    g = reg.gauge("queue_depth")
    g.set(4, disk="0")
    g.set(2, disk="0")
    g.add(3, disk="0")
    assert g.value(disk="0") == 5


def test_histogram_observe_and_state():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 0.5, 5.0):
        h.observe(v)
    state = h.state()
    assert state.count == 4
    assert state.counts == [1, 2, 1]  # <=0.1, <=1.0, +inf
    assert state.sum == pytest.approx(6.05)
    assert state.min == 0.05 and state.max == 5.0


def test_histogram_buckets_must_increase():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="strictly increasing"):
        reg.histogram("bad", buckets=(1.0, 1.0, 2.0))


# ----------------------------------------------------------------------
# snapshot / merge / export round-trip
# ----------------------------------------------------------------------


def _populate(reg: MetricsRegistry) -> None:
    reg.counter("c", "a counter").inc(7, kind="read")
    reg.gauge("g").set(3.5, disk="1")
    h = reg.histogram("h", buckets=(1.0, 10.0))
    h.observe(0.5)
    h.observe(20.0)


def test_snapshot_is_plain_data_and_merge_reproduces_it():
    src = MetricsRegistry()
    _populate(src)
    snap = src.snapshot()
    dst = MetricsRegistry()
    dst.merge(snap)
    assert dst.snapshot() == snap


def test_merge_adds_counters_and_histograms_last_write_wins_gauges():
    a = MetricsRegistry()
    _populate(a)
    b = MetricsRegistry()
    b.counter("c").inc(3, kind="read")
    b.gauge("g").set(9.0, disk="1")
    b.histogram("h", buckets=(1.0, 10.0)).observe(2.0)
    a.merge(b.snapshot())
    assert a.counter("c").value(kind="read") == 10
    assert a.gauge("g").value(disk="1") == 9.0
    state = a.histogram("h").state()
    assert state.count == 3
    assert state.min == 0.5 and state.max == 20.0


def test_merge_rejects_bucket_layout_mismatch():
    a = MetricsRegistry()
    a.histogram("h", buckets=(1.0, 10.0)).observe(2.0)
    snap = a.snapshot()
    b = MetricsRegistry()
    b.histogram("h", buckets=(1.0, 2.0))
    with pytest.raises(ValueError, match="bucket layout mismatch"):
        b.merge(snap)


def test_export_round_trip_is_exact(tmp_path):
    src = MetricsRegistry()
    _populate(src)
    path = write_metrics(tmp_path / "metrics.json", src)
    assert load_metrics(path) == src.snapshot()
    reloaded = registry_from_file(path)
    assert reloaded.snapshot() == src.snapshot()
    assert reloaded.counter("c").value(kind="read") == 7


# ----------------------------------------------------------------------
# the global switch and the null sink
# ----------------------------------------------------------------------


def test_null_registry_swallows_everything():
    assert NULL_REGISTRY.counter("anything") is NULL_INSTRUMENT
    assert NULL_REGISTRY.histogram("x").labels(a="b") is NULL_INSTRUMENT
    NULL_INSTRUMENT.inc(5)
    NULL_INSTRUMENT.observe(1.0)
    NULL_INSTRUMENT.set(2.0)
    assert NULL_INSTRUMENT.value() == 0.0
    assert NULL_REGISTRY.snapshot() == {}
    assert not NULL_REGISTRY.enabled
    assert len(NULL_REGISTRY) == 0


def test_default_registry_tracks_the_switch():
    old = set_obs_enabled(True)
    try:
        assert default_registry().enabled
        set_obs_enabled(False)
        assert not obs_enabled()
        assert default_registry() is NULL_REGISTRY
    finally:
        set_obs_enabled(old)


def test_scoped_registry_isolates_and_restores(registry):
    registry.counter("outer").inc()
    with scoped_registry() as inner:
        assert inner is default_registry()
        assert "outer" not in inner
        inner.counter("inner").inc()
    assert default_registry() is registry
    assert "inner" not in registry


def test_scoped_registry_yields_null_sink_when_disabled():
    old = set_obs_enabled(False)
    try:
        with scoped_registry() as reg:
            assert reg is NULL_REGISTRY
    finally:
        set_obs_enabled(old)
