"""Rebuild execution: correctness, timing structure, spares, rotation."""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.core.layouts import (
    RAID5Layout,
    RAID6Layout,
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
    traditional_mirror_parity,
)
from repro.disksim.disk import DiskParameters
from repro.raidsim.controller import RaidController


def _ctrl(layout, **kw):
    kw.setdefault("n_stripes", 4)
    kw.setdefault("payload_bytes", 8)
    return RaidController(layout, **kw)


# ----------------------------------------------------------------------
# correctness across the architecture zoo
# ----------------------------------------------------------------------


@pytest.mark.parametrize("builder", [traditional_mirror, shifted_mirror])
def test_mirror_rebuild_every_single_failure(builder):
    lay = builder(4)
    for f in range(lay.n_disks):
        res = _ctrl(builder(4)).rebuild([f])
        assert res.verified
        assert res.failed_disks == (f,)
        assert res.bytes_read > 0


@pytest.mark.parametrize("builder", [traditional_mirror_parity, shifted_mirror_parity])
def test_parity_rebuild_every_double_failure(builder):
    lay = builder(3)
    for failed in combinations(range(lay.n_disks), 2):
        res = _ctrl(builder(3)).rebuild(failed)
        assert res.verified, failed


@pytest.mark.parametrize("code", ["evenodd", "rdp"])
def test_raid6_rebuild_every_double_failure(code):
    lay = RAID6Layout(4, code)
    for failed in combinations(range(lay.n_disks), 2):
        res = _ctrl(RAID6Layout(4, code)).rebuild(failed)
        assert res.verified, failed


def test_raid5_rebuild_all_singles():
    for f in range(6):
        assert _ctrl(RAID5Layout(5)).rebuild([f]).verified


def test_rebuild_under_rotation():
    """With role rotation each stripe exercises a different logical
    failure; the per-stripe planner must track that."""
    ctrl = _ctrl(shifted_mirror_parity(3), rotate=True, n_stripes=7)
    for failed in [(0,), (4,), (6,), (0, 3), (2, 6)]:
        ctrl = _ctrl(shifted_mirror_parity(3), rotate=True, n_stripes=7)
        assert ctrl.rebuild(failed).verified, failed


def test_rebuild_restores_redundancy_invariant():
    ctrl = _ctrl(shifted_mirror_parity(4))
    ctrl.rebuild([1, 7])
    assert ctrl.verify_redundancy()


# ----------------------------------------------------------------------
# failure-mode handling
# ----------------------------------------------------------------------


def test_unknown_disk_rejected():
    with pytest.raises(ValueError, match="outside the architecture"):
        _ctrl(shifted_mirror(3)).rebuild([6])


def test_spare_writes_require_spares():
    ctrl = _ctrl(shifted_mirror(3), spares=0)
    with pytest.raises(ValueError, match="spares"):
        ctrl.rebuild([0], write_spare=True)


def test_rebuild_to_spare_writes_recovered_bytes():
    ctrl = _ctrl(shifted_mirror(3), spares=1)
    res = ctrl.rebuild([0], write_spare=True)
    assert res.verified
    assert res.bytes_written == res.recovered_bytes


# ----------------------------------------------------------------------
# timing structure (the paper's measured effects)
# ----------------------------------------------------------------------


def test_traditional_rebuild_streams_one_disk():
    ctrl = _ctrl(traditional_mirror(5), n_stripes=12)
    res = ctrl.rebuild([2])
    # all reads landed on the single replica disk, mostly sequential
    disk = ctrl.array.sim.disk(5 + 2)
    assert disk.bytes_read == res.bytes_read
    assert res.read_throughput_mbps == pytest.approx(54.8, rel=0.08)


def test_shifted_rebuild_spreads_over_all_disks():
    ctrl = _ctrl(shifted_mirror(5), n_stripes=12)
    res = ctrl.rebuild([2])
    readers = [
        d for d in range(ctrl.layout.n_disks) if ctrl.array.sim.disk(d).bytes_read > 0
    ]
    assert len(readers) == 5
    assert res.read_throughput_mbps > 2.5 * 54.8


def test_shifted_beats_traditional_throughput():
    for n in (3, 5, 7):
        t = _ctrl(traditional_mirror(n), n_stripes=10).rebuild([0])
        s = _ctrl(shifted_mirror(n), n_stripes=10).rebuild([0])
        ratio = s.read_throughput_mbps / t.read_throughput_mbps
        assert 1.3 < ratio < n, (n, ratio)


def test_access_counts_surface_in_result():
    res = _ctrl(shifted_mirror(5)).rebuild([0])
    assert res.max_read_accesses_per_stripe == 1
    res = _ctrl(traditional_mirror(5)).rebuild([0])
    assert res.max_read_accesses_per_stripe == 5


def test_phases_serialize_double_failure():
    """Two failed mirror columns rebuild one after the other: makespan
    is roughly double the single-failure rebuild, not equal to it."""
    single = _ctrl(traditional_mirror_parity(4), n_stripes=10).rebuild([4])
    double = _ctrl(traditional_mirror_parity(4), n_stripes=10).rebuild([4, 5])
    assert double.makespan_s > 1.7 * single.makespan_s


def test_ideal_disks_follow_access_counting():
    """With zero-overhead disks the simulator reduces to the paper's
    abstract model: shifted mirror rebuild time ~ 1/n of traditional."""
    params = DiskParameters.ideal()
    n = 5
    t = _ctrl(traditional_mirror(n), params=params, n_stripes=8).rebuild([0])
    s = _ctrl(shifted_mirror(n), params=params, n_stripes=8).rebuild([0])
    assert t.makespan_s / s.makespan_s == pytest.approx(n, rel=0.15)


def test_throttle_slows_rebuild_proportionally():
    quiet = _ctrl(shifted_mirror(3), n_stripes=10).rebuild([0]).makespan_s
    throttled = _ctrl(shifted_mirror(3), n_stripes=10).rebuild(
        [0], throttle_delay_s=0.1, window=1
    ).makespan_s
    # with window=1 each of the 10 stripes pays the 0.1 s pause
    assert throttled >= quiet + 0.9 * 10 * 0.1


def test_throttled_rebuild_still_verifies():
    res = _ctrl(shifted_mirror_parity(3)).rebuild([0, 4], throttle_delay_s=0.02)
    assert res.verified
