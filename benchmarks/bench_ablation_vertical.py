"""Ablation: horizontal vs vertical RAID 6 update cost (§II-C2).

The paper's §II-C2 faults horizontal RAID 6 for not being
update-optimal.  This bench measures it across the three implemented
RAID 6 codes at prime width p = 5 (where all three exist):

* elements written per single-element update — X-Code hits the
  theoretical 3, RDP averages above it (P-cascade diagonal), EVENODD
  worse still (adjuster rewrites every Q);
* simulated throughput of a small-write-only workload follows the same
  ordering.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.core.analysis import raid6_avg_small_write_updates
from repro.core.layouts import RAID6Layout, XCodeLayout
from repro.raidsim.controller import RaidController
from repro.workloads.generator import WriteOp

P = 5


def _layouts():
    return {
        "evenodd": RAID6Layout(P, "evenodd"),
        "rdp": RAID6Layout(P - 1, "rdp"),  # rdp fits p-1 data columns at p=5
        "xcode": XCodeLayout(P),
    }


def test_bench_update_cost_ordering(benchmark):
    def sweep():
        out = {}
        for name, lay in _layouts().items():
            if name == "xcode":
                total = cells = 0
                for i in range(lay.n):
                    for j in range(lay.data_rows):
                        total += lay.write_plan([(i, j)]).total_elements_written
                        cells += 1
                out[name] = total / cells
            else:
                out[name] = float(
                    raid6_avg_small_write_updates(lay.n, lay.code_name)
                )
        return out

    res = run_once(benchmark, sweep)
    assert res["xcode"] == 3.0  # the optimum
    assert res["rdp"] > 3.0
    assert res["evenodd"] > res["rdp"]  # the adjuster cascade dominates
    benchmark.extra_info["avg_elements_per_update"] = res


def test_bench_small_write_throughput_ordering(benchmark):
    """The plan difference shows up as simulated small-write throughput."""

    def measure(lay, data_rows):
        ctrl = RaidController(lay, n_stripes=6, payload_bytes=8)
        rng = np.random.default_rng(2)
        ops = [
            WriteOp(
                int(rng.integers(0, 6)),
                ((int(rng.integers(0, lay.n)), int(rng.integers(0, data_rows))),),
            )
            for _ in range(60)
        ]
        return ctrl.run_write_workload(ops, window=1, rng=rng).write_throughput_mbps

    def sweep():
        lays = _layouts()
        return {
            "evenodd": measure(lays["evenodd"], lays["evenodd"].rows),
            "rdp": measure(lays["rdp"], lays["rdp"].rows),
            "xcode": measure(lays["xcode"], lays["xcode"].data_rows),
        }

    res = run_once(benchmark, sweep)
    assert res["xcode"] >= res["rdp"] * 0.95
    assert res["rdp"] >= res["evenodd"] * 0.95
    benchmark.extra_info["small_write_mbps"] = res
