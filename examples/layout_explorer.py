#!/usr/bin/env python3
"""Explore the arrangement design space of §VI-E.

The paper notes its shifted arrangement is not the only one with high
reconstruction availability: any arrangement satisfying Properties 1-3
is "equally powerful", and iterating the transformation function T
generates candidates — but they must be checked.  This explorer:

1. prints the iterate sequence for a chosen n with property reports
   (the Fig. 8 picture);
2. quantifies what each property is worth: reconstruction accesses
   (P1/P2) and large-write accesses (P3) per arrangement;
3. lets you test your own arrangement given as a permutation table.

Run::

    python examples/layout_explorer.py [n]
"""

from __future__ import annotations

import sys

from repro.core import (
    IteratedArrangement,
    MirrorLayout,
    PermutationArrangement,
    property_report,
)
from repro.experiments.fig8 import arrangement_grid


def explore_iterates(n: int, max_k: int = 6) -> None:
    print(f"Iterating the transformation function T on an n={n} stripe:\n")
    header = f"{'k':>3}  {'P1':<5}{'P2':<5}{'P3':<5}{'rebuild accesses':<18}{'large-write accesses'}"
    print(header)
    print("-" * len(header))
    for k in range(max_k + 1):
        arr = IteratedArrangement(n, k)
        rep = property_report(arr)
        layout = MirrorLayout(n, arr)
        rebuild = max(
            layout.reconstruction_plan([f]).num_read_accesses
            for f in range(layout.n_disks)
        )
        write = max(layout.large_write_plan(j).num_write_accesses for j in range(n))
        print(
            f"{k:>3}  {str(rep['P1']):<5}{str(rep['P2']):<5}{str(rep['P3']):<5}"
            f"{rebuild:<18}{write}"
        )
    print("\nMirror-array contents per iterate (element numbers, Fig. 8 style):")
    for k in range(min(max_k, 5) + 1):
        print(f"\n  iterate {k}:")
        for line in arrangement_grid(n, k).splitlines():
            print(f"    {line}")


def check_custom(n: int) -> None:
    """Check a hand-built arrangement: here, the inverse shift."""
    mapping = {(i, j): ((i - j) % n, i) for i in range(n) for j in range(n)}
    arr = PermutationArrangement(n, mapping)
    print(f"\nCustom arrangement a[i,j] -> (<i-j>_{n}, i): {property_report(arr)}")
    print("Equally powerful to the paper's shifted arrangement:",
          all(property_report(arr).values()))


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    explore_iterates(n)
    check_custom(n)
