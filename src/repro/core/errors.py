"""Exceptions shared across the reproduction."""

from __future__ import annotations

__all__ = ["ReproError", "UnrecoverableFailureError", "LayoutError"]


class ReproError(Exception):
    """Base class for all library errors."""


class UnrecoverableFailureError(ReproError):
    """The failure set exceeds the architecture's fault tolerance.

    E.g. a data disk and its verbatim replica in the traditional mirror
    method without parity, or three simultaneous failures in a
    two-fault-tolerant architecture.
    """


class LayoutError(ReproError):
    """A layout was constructed or queried inconsistently."""
