"""Plain-text reporting helpers shared by the experiment drivers.

Every experiment prints the same artifact the paper shows — a table of
rows, or a figure rendered as aligned series columns — so results can
be eyeballed against the original in a terminal and diffed in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "format_series", "ExperimentResult"]


@dataclass
class Table:
    """A fixed-column ascii table."""

    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    title: str = ""

    def add(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} cells, got {len(cells)}")
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            widths = [max(w, len(c)) for w, c in zip(widths, row)]
        def fmt(cells):
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self.headers))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt(r) for r in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def format_series(x_label: str, xs, series: dict[str, list], precision: int = 2) -> str:
    """Render a figure as aligned columns: one x column, one per series."""
    table = Table([x_label, *series.keys()])
    for idx, x in enumerate(xs):
        cells = [x] + [
            (f"{vals[idx]:.{precision}f}" if isinstance(vals[idx], float) else vals[idx])
            for vals in series.values()
        ]
        table.add(*cells)
    return table.render()


@dataclass
class ExperimentResult:
    """Uniform result wrapper: an id, printable text, and raw data."""

    experiment_id: str
    description: str
    text: str
    data: dict

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"== {self.experiment_id}: {self.description} ==\n{self.text}"
