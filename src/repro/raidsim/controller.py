"""RAID controller: executes layout plans against the disk simulator.

The controller owns three things:

1. **Placement** — a :class:`~repro.core.stack.RotatedStack` maps each
   stripe's logical cells to (physical disk, element slot);
2. **Content** — a verification store holding every element's payload
   (synthetic film data, replicas, parity), so reconstruction
   correctness can be checked byte-for-byte like the paper does;
3. **Execution** — logical operations become
   :class:`~repro.disksim.request.IORequest` batches with proper
   read-before-write dependencies, pipelined with a configurable
   window, and timed by the event engine.

The controller never moves payload bytes through the simulator — the
simulator prices I/O *time*; the store settles I/O *correctness*.

Failures are specified by **physical** disk id.  With role rotation
enabled, the same physical failure exercises a different logical
failure in every stripe (the stack property of §II-A); without
rotation, physical and logical ids coincide, which is how the
throughput experiments pin down one specific logical case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..codes.decoder import EvenOddDecoder, RDPDecoder
from ..core.errors import UnrecoverableFailureError
from ..core.layouts import (
    Layout,
    MirrorParityLayout,
    RAID5Layout,
    RAID6Layout,
    XCodeLayout,
)
from ..core.reconstruction import (
    RebuildPhase,
    ReconstructionPlan,
    RecoveryMethod,
    RecoveryStep,
    split_into_phases,
)
from ..core.stack import RotatedStack
from ..disksim.array import DEFAULT_ELEMENT_SIZE, ElementArray
from ..disksim.disk import DiskParameters
from ..disksim.faults import LatentSectorErrors
from ..disksim.request import IOKind
from ..disksim.scheduler import ElevatorScheduler, Scheduler
from ..disksim.trace import TraceStats
from ..workloads.film import DEFAULT_PAYLOAD_BYTES, FilmSource
from ..workloads.generator import WriteOp

__all__ = ["RaidController", "RebuildResult", "WriteResult"]

_MB = 1024 * 1024


@dataclass(frozen=True)
class RebuildResult:
    """Outcome of a reconstruction run."""

    failed_disks: tuple[int, ...]
    makespan_s: float
    bytes_read: int
    bytes_written: int
    read_throughput_mbps: float
    recovered_bytes: int
    recovered_throughput_mbps: float
    verified: bool
    max_read_accesses_per_stripe: int


@dataclass(frozen=True)
class WriteResult:
    """Outcome of a write-workload run."""

    n_ops: int
    makespan_s: float
    user_bytes: int
    write_throughput_mbps: float
    bytes_read: int
    bytes_written: int


class RaidController:
    """Drive one RAID architecture over a simulated disk array.

    Parameters
    ----------
    layout:
        The architecture (any :class:`~repro.core.layouts.Layout`).
    n_stripes:
        Stripes laid out per disk (each adds ``layout.rows`` element
        slots per disk).
    element_size:
        Simulated bytes per element (timing); default 4 MB as in §VII.
    payload_bytes:
        Verification-store bytes per element (correctness).
    rotate:
        Rotate logical roles across stripes (see
        :class:`~repro.core.stack.RotatedStack`).
    spares:
        Extra hot-spare disks appended after the architecture's disks,
        used as rebuild targets when ``write_spare`` is requested.
    """

    def __init__(
        self,
        layout: Layout,
        n_stripes: int = 8,
        element_size: int = DEFAULT_ELEMENT_SIZE,
        params: DiskParameters | None = None,
        scheduler_factory: Callable[[], Scheduler] = ElevatorScheduler,
        payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
        rotate: bool = False,
        spares: int = 0,
        film_seed: int = 2012,
        lse: LatentSectorErrors | None = None,
    ) -> None:
        self.layout = layout
        self.stack = RotatedStack(layout, n_stripes, rotate=rotate)
        self.n_stripes = n_stripes
        self.spares = spares
        self.lse = lse
        if lse is not None and lse.element_size != element_size:
            raise ValueError(
                f"LSE model element size {lse.element_size} disagrees with "
                f"array element size {element_size}"
            )
        self.array = ElementArray(
            layout.n_disks + spares, element_size, params, scheduler_factory, faults=lse
        )
        self.film = FilmSource(payload_bytes, film_seed)
        self.payload_bytes = payload_bytes
        slots = n_stripes * layout.rows
        self.content = np.zeros(
            (layout.n_disks + spares, slots, payload_bytes), dtype=np.uint8
        )
        self._decoded: set[tuple[int, tuple[int, ...]]] = set()
        self._init_content()

    # ==================================================================
    # placement and content
    # ==================================================================
    def place(self, stripe: int, cell: tuple[int, int]) -> tuple[int, int]:
        """Physical ``(disk, slot)`` of a logical stripe cell."""
        disk, row = cell
        return self.stack.place(stripe, disk, row)

    def _stripe_data(self, stripe: int) -> np.ndarray:
        """``(data rows, n, payload)`` data block of one stripe, from the film."""
        lay = self.layout
        data_rows = getattr(lay, "data_rows", lay.rows)
        out = np.empty((data_rows, lay.n, self.payload_bytes), dtype=np.uint8)
        for j in range(data_rows):
            for i in range(lay.n):
                out[j, i] = self.film.element(stripe, i, j)
        return out

    def _init_content(self) -> None:
        for stripe in range(self.n_stripes):
            self._write_stripe_content(stripe, self._stripe_data(stripe))

    def _write_stripe_content(self, stripe: int, data: np.ndarray) -> None:
        """Install a stripe's data block and all derived redundancy."""
        lay = self.layout
        for disk in range(lay.n_disks):
            for row in range(lay.rows):
                c = lay.content(disk, row)
                pd, slot = self.place(stripe, (disk, row))
                if c.kind in ("data", "replica"):
                    self.content[pd, slot] = data[c.j, c.i]
                elif c.kind == "parity" and not isinstance(
                    lay, (RAID6Layout, XCodeLayout)
                ):
                    self.content[pd, slot] = np.bitwise_xor.reduce(data[c.j], axis=0)
        if isinstance(lay, RAID6Layout):
            self._encode_raid6_stripe(stripe, data)
        elif isinstance(lay, XCodeLayout):
            self._encode_xcode_stripe(stripe, data)

    def _encode_xcode_stripe(self, stripe: int, data: np.ndarray) -> None:
        lay = self.layout
        diag, anti = lay.code.encode(data)
        for disk in range(lay.n_disks):
            pd, slot = self.place(stripe, (disk, lay.p - 2))
            self.content[pd, slot] = diag[disk]
            pd, slot = self.place(stripe, (disk, lay.p - 1))
            self.content[pd, slot] = anti[disk]

    def _raid6_code(self):
        lay = self.layout
        dec = (
            EvenOddDecoder(lay.n, lay.p)
            if lay.code_name == "evenodd"
            else RDPDecoder(lay.n, lay.p)
        )
        return dec

    def _encode_raid6_stripe(self, stripe: int, data: np.ndarray) -> None:
        lay = self.layout
        row_par, diag_par = self._raid6_code().code.encode(data)
        for row in range(lay.rows):
            pd, slot = self.place(stripe, (lay.p_disk, row))
            self.content[pd, slot] = row_par[row]
            qd, qslot = self.place(stripe, (lay.q_disk, row))
            self.content[qd, qslot] = diag_par[row]

    def element_content(self, stripe: int, cell: tuple[int, int]) -> np.ndarray:
        """Current payload of a logical stripe cell."""
        pd, slot = self.place(stripe, cell)
        return self.content[pd, slot]

    # ==================================================================
    # reconstruction
    # ==================================================================
    def stripe_plan(self, stripe: int, failed_physical) -> ReconstructionPlan:
        """The stripe's logical reconstruction plan for a physical failure."""
        logical = tuple(
            sorted(self.stack.logical_disk(stripe, f) for f in failed_physical)
        )
        return self.layout.reconstruction_plan(logical)

    def rebuild(
        self,
        failed_disks,
        window: int = 4,
        verify: bool = True,
        write_spare: bool = False,
        throttle_delay_s: float = 0.0,
    ) -> RebuildResult:
        """Reconstruct the failed *physical* disks across every stripe.

        Failed disks are rebuilt one at a time, the way a hot spare
        replaces one device: the plan is split into sequential
        *phases*, one per failed disk (plus the parity-recompute phase
        if the parity disk is among them).  Within a phase, stripes are
        pipelined ``window`` at a time: each stripe's phase reads are
        submitted together; once they complete, the phase's recovery
        steps execute against the content store (and, if requested, the
        recovered elements are written to hot spares).

        ``throttle_delay_s`` inserts a pause before each stripe's reads
        — the classic rebuild-rate limit (md's ``speed_limit``) that
        trades reconstruction time for user-I/O headroom.  The paper
        notes its arrangement is *orthogonal* to such reconstruction
        optimisations [10, 11]; ``benchmarks/bench_ablation_throttle.py``
        measures exactly that interaction.

        Returns aggregate timing plus the byte-for-byte verification
        verdict (the paper's §VII-A post-check).
        """
        failed = tuple(sorted(set(failed_disks)))
        for f in failed:
            if not 0 <= f < self.layout.n_disks:
                raise ValueError(f"failed disk {f} outside the architecture")
        if write_spare and self.spares < len(failed):
            raise ValueError(
                f"rebuild of {len(failed)} disks to spares needs >= {len(failed)} "
                f"spares, have {self.spares}"
            )
        plans = [self.stripe_plan(s, failed) for s in range(self.n_stripes)]
        phase_lists = [split_into_phases(p) for p in plans]
        n_phases = len(failed)
        # snapshot the lost content, then destroy it
        snapshots = {f: self.content[f].copy() for f in failed}
        for f in failed:
            self.content[f] = 0xDD

        start = self.array.now
        bytes_read_before = self.array.sim.total_bytes_read
        bytes_written_before = self.array.sim.total_bytes_written
        spare_of = {f: self.layout.n_disks + k for k, f in enumerate(failed)}

        for phase_idx in range(n_phases):
            pending = list(range(self.n_stripes))

            def start_stripe(stripe: int, phase_idx: int = phase_idx) -> None:
                phase: RebuildPhase = phase_lists[stripe][phase_idx]
                plan = plans[stripe]
                reads = [
                    self.place(stripe, (disk, row))
                    for disk, rows in phase.reads.items()
                    for row in rows
                ]

                def after_recovery() -> None:
                    if write_spare:
                        pf = self.stack.physical_disk(stripe, phase.failed_disk)
                        writes = [
                            (spare_of[pf], self.place(stripe, (phase.failed_disk, r))[1])
                            for r in range(self.layout.rows)
                        ]
                        self.array.submit_elements(
                            writes, IOKind.WRITE, tag="rebuild-write"
                        )
                    if pending:
                        start_stripe(pending.pop(0))

                def on_done() -> None:
                    bad = self._bad_source_cells(stripe, phase)
                    if bad:
                        steps, extra = self._lse_substitute(stripe, plan, phase, bad)
                        extra_phys = sorted(
                            {
                                self.place(stripe, c)
                                for c in extra
                                if c[0] not in plan.failed_disks
                            }
                        )

                        def finish() -> None:
                            self._apply_steps(stripe, plan, steps)
                            after_recovery()

                        self.array.submit_elements(
                            extra_phys,
                            IOKind.READ,
                            tag="lse-fallback",
                            on_complete=finish,
                        )
                        return
                    self._apply_phase(stripe, plan, phase)
                    after_recovery()

                def submit() -> None:
                    self.array.submit_elements(
                        reads, IOKind.READ, tag="rebuild", on_complete=on_done
                    )

                if throttle_delay_s > 0:
                    self.array.sim.schedule(throttle_delay_s, submit)
                else:
                    submit()

            seeded = 0
            while pending and seeded < window:
                start_stripe(pending.pop(0))
                seeded += 1
            self.array.run()  # phase barrier

        makespan = self.array.now - start
        bytes_read = self.array.sim.total_bytes_read - bytes_read_before
        bytes_written = self.array.sim.total_bytes_written - bytes_written_before
        recovered = (
            len(failed) * self.n_stripes * self.layout.rows * self.array.element_size
        )
        verified = all(
            np.array_equal(self.content[f], snapshots[f]) for f in failed
        ) if verify else True
        return RebuildResult(
            failed_disks=failed,
            makespan_s=makespan,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            read_throughput_mbps=(bytes_read / _MB / makespan) if makespan > 0 else 0.0,
            recovered_bytes=recovered,
            recovered_throughput_mbps=(recovered / _MB / makespan) if makespan > 0 else 0.0,
            verified=verified,
            max_read_accesses_per_stripe=max(p.num_read_accesses for p in plans),
        )

    # ------------------------------------------------------------------
    # latent sector error handling (see repro.disksim.faults)
    # ------------------------------------------------------------------
    def _bad_source_cells(self, stripe: int, phase: RebuildPhase) -> set[tuple[int, int]]:
        """Phase source cells that hit an LSE on their physical slot."""
        if self.lse is None:
            return set()
        bad: set[tuple[int, int]] = set()
        for disk, rows in phase.reads.items():
            for row in rows:
                pd, slot = self.place(stripe, (disk, row))
                if self.lse.is_bad(pd, slot):
                    bad.add((disk, row))
        return bad

    def _lse_substitute(
        self,
        stripe: int,
        plan: ReconstructionPlan,
        phase: RebuildPhase,
        bad: set[tuple[int, int]],
    ) -> tuple[list[RecoveryStep], list[tuple[int, int]]]:
        """Re-route recovery steps around unreadable source elements.

        Returns the substituted step list plus the extra source cells
        the fallback must read.  Only the mirror family has alternate
        paths: the plain mirror method *loses data* when its single
        replica is unreadable — precisely the LSE-during-reconstruction
        hazard §I cites — and the parity variant survives through the
        parity path.
        """
        lay = self.layout
        failed = set(plan.failed_disks)
        phase_rank = {f: k for k, f in enumerate(plan.failed_disks)}
        current_rank = phase_rank[phase.failed_disk]

        def usable(cell: tuple[int, int]) -> bool:
            """A substitute source must be readable now."""
            if cell in bad:
                return False
            if cell[0] in failed:
                # only elements recovered by an *earlier* phase exist
                return phase_rank[cell[0]] < current_rank
            pd, slot = self.place(stripe, cell)
            return self.lse is None or not self.lse.is_bad(pd, slot)

        new_steps: list[RecoveryStep] = []
        extra: list[tuple[int, int]] = []
        for step in phase.steps:
            if not any(s in bad for s in step.sources):
                new_steps.append(step)
                continue
            if not isinstance(lay, MirrorParityLayout):
                raise UnrecoverableFailureError(
                    f"{lay.name}: source {sorted(bad)} unreadable (latent sector "
                    f"error) during reconstruction and no redundancy remains"
                )
            if step.method is RecoveryMethod.COPY:
                (src,) = step.sources
                c = lay.content(*src)
                row_sources = [
                    lay.data_cell(ii, c.j) for ii in range(lay.n) if ii != c.i
                ]
                alt = row_sources + [lay.parity_cell(c.j)]
                if not all(usable(cell) for cell in alt):
                    raise UnrecoverableFailureError(
                        f"element a[{c.i},{c.j}]: replica unreadable and the "
                        f"parity path is also damaged"
                    )
                new_steps.append(RecoveryStep(step.target, RecoveryMethod.XOR, tuple(alt)))
                extra.extend(cell for cell in alt if cell[0] not in failed)
            else:  # XOR / RECOMPUTE: swap each bad member for its replica
                substituted = []
                for s in step.sources:
                    if s not in bad:
                        substituted.append(s)
                        continue
                    c = lay.content(*s)
                    if c.kind != "data":
                        raise UnrecoverableFailureError(
                            f"unreadable {c.kind} element {s} has no replica"
                        )
                    (rep,) = lay.replica_cells(c.i, c.j)
                    if not usable(rep):
                        raise UnrecoverableFailureError(
                            f"element a[{c.i},{c.j}] and its replica both unreadable"
                        )
                    substituted.append(rep)
                    if rep[0] not in failed:
                        extra.append(rep)
                new_steps.append(
                    RecoveryStep(step.target, step.method, tuple(substituted))
                )
        return new_steps, extra

    # ------------------------------------------------------------------
    def _apply_phase(self, stripe: int, plan: ReconstructionPlan, phase: RebuildPhase) -> None:
        """Execute one phase's recovery steps on the content store."""
        self._apply_steps(stripe, plan, phase.steps)

    def _apply_recovery(self, stripe: int, plan: ReconstructionPlan) -> None:
        """Execute all of a plan's recovery steps on the content store."""
        self._apply_steps(stripe, plan, plan.steps)

    def _apply_steps(self, stripe: int, plan: ReconstructionPlan, steps) -> None:
        for step in steps:
            pd, slot = self.place(stripe, step.target)
            if step.method in (RecoveryMethod.XOR, RecoveryMethod.RECOMPUTE):
                acc = np.zeros(self.payload_bytes, dtype=np.uint8)
                for src in step.sources:
                    spd, sslot = self.place(stripe, src)
                    acc ^= self.content[spd, sslot]
                self.content[pd, slot] = acc
            elif step.method is RecoveryMethod.COPY:
                spd, sslot = self.place(stripe, step.sources[0])
                self.content[pd, slot] = self.content[spd, sslot]
            elif step.method is RecoveryMethod.CODE:
                key = (stripe, plan.failed_disks)
                if key not in self._decoded:
                    if isinstance(self.layout, XCodeLayout):
                        self._decode_xcode_stripe(stripe, plan.failed_disks)
                    else:
                        self._decode_raid6_stripe(stripe, plan.failed_disks)
                    self._decoded.add(key)
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown recovery method {step.method}")

    def _decode_raid6_stripe(self, stripe: int, failed_logical: tuple[int, ...]) -> None:
        lay = self.layout
        if not isinstance(lay, RAID6Layout):
            raise AssertionError("CODE recovery outside RAID 6")
        decoder = self._raid6_code()
        devices: list[np.ndarray | None] = []
        for d in range(lay.n_disks):
            if d in failed_logical:
                devices.append(None)
                continue
            col = np.stack(
                [self.element_content(stripe, (d, r)) for r in range(lay.rows)]
            )
            devices.append(col.reshape(-1))
        decoded = decoder.decode(devices)
        for d in failed_logical:
            col = decoded[d].reshape(lay.rows, self.payload_bytes)
            for r in range(lay.rows):
                pd, slot = self.place(stripe, (d, r))
                self.content[pd, slot] = col[r]

    def _decode_xcode_stripe(self, stripe: int, failed_logical: tuple[int, ...]) -> None:
        lay = self.layout
        columns: list[np.ndarray | None] = []
        for d in range(lay.n_disks):
            if d in failed_logical:
                columns.append(None)
                continue
            columns.append(
                np.stack([self.element_content(stripe, (d, r)) for r in range(lay.rows)])
            )
        grid = lay.code.decode(columns)
        for d in failed_logical:
            for r in range(lay.rows):
                pd, slot = self.place(stripe, (d, r))
                self.content[pd, slot] = grid[r, d]

    # ==================================================================
    # writes
    # ==================================================================
    def run_write_workload(
        self,
        ops: list[WriteOp],
        strategy: str = "rmw",
        window: int = 4,
        rng: np.random.Generator | None = None,
    ) -> WriteResult:
        """Execute a write workload with read-before-write dependencies.

        Each op's parity-input reads are issued first; its writes only
        start once they complete.  Ops are pipelined ``window`` deep.
        Throughput is user data written per wall-clock second — the
        Fig. 10 metric.
        """
        if rng is None:
            rng = np.random.default_rng(7)
        start = self.array.now
        read_before = self.array.sim.total_bytes_read
        written_before = self.array.sim.total_bytes_written
        pending = list(ops)

        def start_op(op: WriteOp) -> None:
            plan = self.layout.write_plan(list(op.elements), strategy=strategy)
            write_cells = [
                self.place(op.stripe, (disk, row))
                for disk, rows in plan.writes.items()
                for row in rows
            ]
            read_cells = [
                self.place(op.stripe, (disk, row))
                for disk, rows in plan.reads.items()
                for row in rows
            ]

            def op_done() -> None:
                self._apply_write_content(op, rng)
                if pending:
                    start_op(pending.pop(0))

            def do_writes() -> None:
                self.array.submit_elements(
                    write_cells, IOKind.WRITE, tag="write", on_complete=op_done
                )

            if read_cells:
                self.array.submit_elements(
                    read_cells, IOKind.READ, tag="rmw-read", on_complete=do_writes
                )
            else:
                do_writes()

        user_bytes = sum(op.n_elements for op in ops) * self.array.element_size
        seeded = 0
        while pending and seeded < window:
            start_op(pending.pop(0))
            seeded += 1
        self.array.run()
        makespan = self.array.now - start
        return WriteResult(
            n_ops=len(ops),
            makespan_s=makespan,
            user_bytes=user_bytes,
            write_throughput_mbps=(user_bytes / _MB / makespan) if makespan > 0 else 0.0,
            bytes_read=self.array.sim.total_bytes_read - read_before,
            bytes_written=self.array.sim.total_bytes_written - written_before,
        )

    def run_read_workload(
        self,
        reads: list[tuple[int, int, int]],
        window: int = 8,
        from_replica: bool = False,
    ) -> TraceStats:
        """Serve a batch of healthy single-element data reads.

        ``reads`` are ``(stripe, i, j)`` data coordinates.  By default
        the primary copy (data array) is read; ``from_replica`` reads
        the mirror copy instead.  Either way the arrangement leaves
        healthy-path performance untouched — the shifted method only
        rearranges the *mirror* array, so primary reads are identical
        and replica reads merely land on a different (equally loaded)
        disk.  The test suite pins that non-regression.
        """
        start = self.array.now
        pending = list(reads)

        def start_read(item: tuple[int, int, int]) -> None:
            stripe, i, j = item
            cell = (
                self.layout.replica_cells(i, j)[0]
                if from_replica
                else self.layout.data_cell(i, j)
            )
            pd, slot = self.place(stripe, cell)

            def done() -> None:
                if pending:
                    start_read(pending.pop(0))

            self.array.submit_elements(
                [(pd, slot)], IOKind.READ, tag="user-read", on_complete=done
            )

        seeded = 0
        while pending and seeded < window:
            start_read(pending.pop(0))
            seeded += 1
        self.array.run()
        stats = self.array.stats(tag="user-read")
        return stats

    def _apply_write_content(self, op: WriteOp, rng: np.random.Generator) -> None:
        """Install fresh payloads and refresh derived redundancy."""
        lay = self.layout
        touched_rows: set[int] = set()
        for i, j in op.elements:
            payload = self.film.fresh(rng)
            pd, slot = self.place(op.stripe, lay.data_cell(i, j))
            self.content[pd, slot] = payload
            for cell in lay.replica_cells(i, j):
                rpd, rslot = self.place(op.stripe, cell)
                self.content[rpd, rslot] = payload
            touched_rows.add(j)
        if isinstance(lay, (MirrorParityLayout, RAID5Layout)):
            for j in touched_rows:
                acc = np.zeros(self.payload_bytes, dtype=np.uint8)
                for i in range(lay.n):
                    acc ^= self.element_content(op.stripe, lay.data_cell(i, j))
                pd, slot = self.place(op.stripe, lay.parity_cell(j))
                self.content[pd, slot] = acc
        elif isinstance(lay, RAID6Layout):
            data = np.stack(
                [
                    np.stack(
                        [
                            self.element_content(op.stripe, lay.data_cell(i, j))
                            for i in range(lay.n)
                        ]
                    )
                    for j in range(lay.rows)
                ]
            )
            self._encode_raid6_stripe(op.stripe, data)
        elif isinstance(lay, XCodeLayout):
            data = np.stack(
                [
                    np.stack(
                        [
                            self.element_content(op.stripe, lay.data_cell(i, j))
                            for i in range(lay.n)
                        ]
                    )
                    for j in range(lay.data_rows)
                ]
            )
            self._encode_xcode_stripe(op.stripe, data)

    # ==================================================================
    # verification helpers (paper §VII-A post-check, plus invariants)
    # ==================================================================
    def verify_redundancy(self) -> bool:
        """Whether every replica/parity element matches its definition."""
        lay = self.layout
        for stripe in range(self.n_stripes):
            for disk in range(lay.n_disks):
                for row in range(lay.rows):
                    c = lay.content(disk, row)
                    got = self.element_content(stripe, (disk, row))
                    if c.kind == "replica":
                        want = self.element_content(stripe, lay.data_cell(c.i, c.j))
                    elif c.kind == "parity" and not isinstance(
                        lay, (RAID6Layout, XCodeLayout)
                    ):
                        want = np.zeros(self.payload_bytes, dtype=np.uint8)
                        for i in range(lay.n):
                            want = want ^ self.element_content(
                                stripe, lay.data_cell(i, c.j)
                            )
                    else:
                        continue
                    if not np.array_equal(got, want):
                        return False
            if isinstance(lay, RAID6Layout) and not self._verify_raid6_stripe(stripe):
                return False
            if isinstance(lay, XCodeLayout) and not self._verify_xcode_stripe(stripe):
                return False
        return True

    def _verify_xcode_stripe(self, stripe: int) -> bool:
        lay = self.layout
        data = np.stack(
            [
                np.stack(
                    [self.element_content(stripe, lay.data_cell(i, j)) for i in range(lay.n)]
                )
                for j in range(lay.data_rows)
            ]
        )
        diag, anti = lay.code.encode(data)
        for d in range(lay.n_disks):
            if not np.array_equal(diag[d], self.element_content(stripe, (d, lay.p - 2))):
                return False
            if not np.array_equal(anti[d], self.element_content(stripe, (d, lay.p - 1))):
                return False
        return True

    def _verify_raid6_stripe(self, stripe: int) -> bool:
        lay = self.layout
        code = self._raid6_code().code
        data = np.stack(
            [
                np.stack(
                    [self.element_content(stripe, lay.data_cell(i, j)) for i in range(lay.n)]
                )
                for j in range(lay.rows)
            ]
        )
        row_par, diag_par = code.encode(data)
        for r in range(lay.rows):
            if not np.array_equal(
                row_par[r], self.element_content(stripe, (lay.p_disk, r))
            ):
                return False
            if not np.array_equal(
                diag_par[r], self.element_content(stripe, (lay.q_disk, r))
            ):
                return False
        return True
