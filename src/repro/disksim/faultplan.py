"""Declarative, seeded fault-injection plans (the campaign engine's core).

The static :class:`~repro.disksim.faults.LatentSectorErrors` model covers
only one hazard class — permanently unreadable sectors.  Real arrays
additionally see *transient* media errors that succeed after a few
retries, *fail-slow* drives whose service times inflate long before
they die (Thomasian's mirrored-array survey, arXiv:1801.08873, treats
both as dominant), and whole-disk failures that strike at the worst
possible moment: in the middle of a rebuild.

A :class:`FaultPlan` declares all of these in one immutable, seeded
object:

* **latent sector errors** — explicit cells and/or a random burst;
* **transient read errors** — a per-read trigger probability plus a
  geometric success-after-k-retries distribution (capped, so bounded
  retry policies provably converge);
* **fail-slow disks** — a service-time multiplier, optionally limited
  to a time window;
* **scheduled whole-disk failures** — fire at a simulated timestamp,
  including while a reconstruction is in flight.

Plans are *specifications*: composable with the ``with_*`` builders and
reusable across runs.  :meth:`FaultPlan.activate` compiles a plan into
an :class:`ActiveFaults` engine hook whose randomness comes from a
fresh :class:`numpy.random.Generator` seeded by the plan — two
activations of the same plan replay the identical fault schedule, which
is what makes campaign results comparable across arrangements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from .faults import LatentSectorErrors
from .request import IOKind, IORequest

__all__ = [
    "TransientFaults",
    "FailSlow",
    "DiskFailure",
    "FaultPlan",
    "ActiveFaults",
    "InjectionCounters",
]


@dataclass(frozen=True)
class TransientFaults:
    """Retryable media errors.

    A fresh read triggers an error with probability ``rate``.  Once
    triggered, the total number of failing attempts is drawn from a
    geometric distribution with success parameter ``retry_success_rate``
    and capped at ``max_failures`` — so a retry policy allowing
    ``max_failures`` retries always reads the data eventually.
    """

    rate: float
    retry_success_rate: float = 0.7
    max_failures: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"transient rate must be in [0, 1], got {self.rate}")
        if not 0.0 < self.retry_success_rate <= 1.0:
            raise ValueError(
                f"retry success rate must be in (0, 1], got {self.retry_success_rate}"
            )
        if self.max_failures < 1:
            raise ValueError(f"max_failures must be >= 1, got {self.max_failures}")


@dataclass(frozen=True)
class FailSlow:
    """One drive serving every request ``multiplier`` times slower.

    The slowdown applies while the simulated clock is inside
    ``[start_s, end_s)`` — an unbounded window models a permanently
    degraded drive, a bounded one a recovering or intermittent fault.
    """

    disk: int
    multiplier: float
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if self.disk < 0:
            raise ValueError(f"disk must be >= 0, got {self.disk}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"fail-slow multiplier must be >= 1, got {self.multiplier}"
            )
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise ValueError(
                f"bad fail-slow window [{self.start_s}, {self.end_s})"
            )


@dataclass(frozen=True)
class DiskFailure:
    """A whole-disk failure at an absolute simulated time."""

    disk: int
    time_s: float

    def __post_init__(self) -> None:
        if self.disk < 0:
            raise ValueError(f"disk must be >= 0, got {self.disk}")
        if self.time_s < 0:
            raise ValueError(f"failure time must be >= 0, got {self.time_s}")


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible, composable fault scenario.

    Build incrementally with the ``with_*`` helpers::

        plan = (FaultPlan(seed=7)
                .with_lse_burst(4)
                .with_transients(rate=0.05)
                .with_fail_slow(disk=2, multiplier=4.0)
                .with_disk_failure(disk=3, time_s=1.5))
    """

    seed: int = 0
    transient: TransientFaults | None = None
    fail_slow: tuple[FailSlow, ...] = ()
    disk_failures: tuple[DiskFailure, ...] = ()
    lse_cells: tuple[tuple[int, int], ...] = ()
    n_random_lses: int = 0

    def __post_init__(self) -> None:
        if self.n_random_lses < 0:
            raise ValueError(
                f"n_random_lses must be >= 0, got {self.n_random_lses}"
            )
        seen = set()
        for df in self.disk_failures:
            if df.disk in seen:
                raise ValueError(f"disk {df.disk} scheduled to fail twice")
            seen.add(df.disk)

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    def with_transients(
        self,
        rate: float,
        retry_success_rate: float = 0.7,
        max_failures: int = 3,
    ) -> "FaultPlan":
        return replace(
            self, transient=TransientFaults(rate, retry_success_rate, max_failures)
        )

    def with_fail_slow(
        self,
        disk: int,
        multiplier: float,
        start_s: float = 0.0,
        end_s: float = math.inf,
    ) -> "FaultPlan":
        return replace(
            self,
            fail_slow=self.fail_slow + (FailSlow(disk, multiplier, start_s, end_s),),
        )

    def with_disk_failure(self, disk: int, time_s: float) -> "FaultPlan":
        return replace(
            self, disk_failures=self.disk_failures + (DiskFailure(disk, time_s),)
        )

    def with_lse(self, *cells: tuple[int, int]) -> "FaultPlan":
        return replace(self, lse_cells=self.lse_cells + tuple(cells))

    def with_lse_burst(self, n: int) -> "FaultPlan":
        return replace(self, n_random_lses=self.n_random_lses + n)

    # ------------------------------------------------------------------
    def activate(
        self, element_size: int, n_disks: int, slots_per_disk: int
    ) -> "ActiveFaults":
        """Compile the plan into a stateful engine hook for one run."""
        return ActiveFaults(self, element_size, n_disks, slots_per_disk)


@dataclass
class InjectionCounters:
    """What an :class:`ActiveFaults` instance actually injected."""

    transient_errors: int = 0
    lse_read_errors: int = 0
    dead_disk_errors: int = 0
    slowed_requests: int = 0


class ActiveFaults:
    """One run's live fault state, wired into the event engine.

    The :class:`~repro.disksim.events.Simulation` calls two hooks:

    * :meth:`service_factor` — multiplies a request's service time
      (fail-slow modelling);
    * :meth:`on_completion` — flags the request's ``error`` /
      ``error_kind`` for dead disks, latent sector errors and transient
      errors, and heals LSEs on overwrite (via the wrapped
      :class:`~repro.disksim.faults.LatentSectorErrors`).

    Transient bookkeeping is keyed by the request's geometry
    ``(disk, offset, size)`` and guarded by the request's *retry chain*
    (:attr:`~repro.disksim.request.IORequest.chain_id`): a retry only
    consumes a failure budget drawn for its own chain, so two
    independent in-flight reads of the same geometry can never steal
    each other's fault state.

    Beyond the frozen plan, the instance exposes *lifecycle hooks*
    (:meth:`fail_disk`, :meth:`revive_disk`, :meth:`add_fail_slow`,
    :meth:`add_transient_window`, :meth:`inject_lse_storm`) so a
    long-running orchestrator — :mod:`repro.nemesis` — can inject and
    retire faults while a simulation is live.  Dynamic faults share the
    plan-seeded RNG stream, so a schedule replayed in the same order
    reproduces bit-identical outcomes.
    """

    def __init__(
        self,
        plan: FaultPlan,
        element_size: int,
        n_disks: int,
        slots_per_disk: int,
    ) -> None:
        for disk, slot in plan.lse_cells:
            if not (0 <= disk < n_disks and 0 <= slot < slots_per_disk):
                raise ValueError(
                    f"LSE cell ({disk}, {slot}) outside the "
                    f"{n_disks} x {slots_per_disk} array"
                )
        for spec in plan.fail_slow:
            if spec.disk >= n_disks:
                raise ValueError(f"fail-slow disk {spec.disk} outside the array")
        for df in plan.disk_failures:
            if df.disk >= n_disks:
                raise ValueError(f"failing disk {df.disk} outside the array")
        self.plan = plan
        self.n_disks = n_disks
        self.slots_per_disk = slots_per_disk
        self.rng = np.random.default_rng(plan.seed)
        self.lse = LatentSectorErrors(element_size)
        for disk, slot in plan.lse_cells:
            self.lse.inject(disk, slot)
        if plan.n_random_lses:
            self.lse.inject_random(
                self.rng, plan.n_random_lses, n_disks, slots_per_disk
            )
        self.counters = InjectionCounters()
        self._failed_at = {df.disk: df.time_s for df in plan.disk_failures}
        #: ``(chain_id, remaining failures)`` per in-flight transient,
        #: keyed by geometry
        self._transient_pending: dict[tuple[int, int, int], tuple[int, int]] = {}
        #: fail-slow windows injected after activation (lifecycle hooks)
        self._dynamic_fail_slow: list[FailSlow] = []
        #: transient-burst windows: ``(start_s, end_s, spec)``
        self._transient_windows: list[tuple[float, float, TransientFaults]] = []

    # ------------------------------------------------------------------
    # lifecycle hooks (used by repro.nemesis; safe while a sim is live)
    # ------------------------------------------------------------------
    def fail_disk(self, disk: int, time_s: float) -> None:
        """Schedule (or backdate) a whole-disk failure at ``time_s``."""
        if not 0 <= disk < self.n_disks:
            raise ValueError(f"failing disk {disk} outside the array")
        if disk in self._failed_at:
            raise ValueError(f"disk {disk} already failed/scheduled; revive first")
        self._failed_at[disk] = time_s

    def revive_disk(self, disk: int) -> None:
        """Clear a disk's failed state (post-rebuild replacement)."""
        self._failed_at.pop(disk, None)

    def add_fail_slow(
        self,
        disk: int,
        multiplier: float,
        start_s: float = 0.0,
        end_s: float = math.inf,
    ) -> FailSlow:
        """Inject a fail-slow window after activation; returns the spec."""
        if disk >= self.n_disks:
            raise ValueError(f"fail-slow disk {disk} outside the array")
        spec = FailSlow(disk, multiplier, start_s, end_s)
        self._dynamic_fail_slow.append(spec)
        return spec

    def add_transient_window(
        self, start_s: float, end_s: float, spec: TransientFaults
    ) -> None:
        """Raise the transient trigger rate inside ``[start_s, end_s)``.

        While the window covers a read's completion time its spec
        competes with the plan's baseline (and any other open windows);
        the highest trigger rate wins.  Budgets drawn inside a window
        persist past its end — an in-flight burst still has to be
        retried through.
        """
        if end_s <= start_s:
            raise ValueError(f"bad transient window [{start_s}, {end_s})")
        self._transient_windows.append((start_s, end_s, spec))

    def inject_lse_storm(self, n: int) -> int:
        """Inject up to ``n`` random latent sector errors (plan RNG).

        Returns the number actually injected — a nearly-full array
        caps the storm instead of erroring.
        """
        free = self.n_disks * self.slots_per_disk - len(self.lse)
        n = min(n, free)
        if n > 0:
            self.lse.inject_random(self.rng, n, self.n_disks, self.slots_per_disk)
        return n

    # ------------------------------------------------------------------
    def service_factor(self, disk: int, now: float) -> float:
        """Service-time multiplier for ``disk`` at simulated time ``now``."""
        factor = 1.0
        for spec in self.plan.fail_slow:
            if spec.disk == disk and spec.start_s <= now < spec.end_s:
                factor *= spec.multiplier
        for spec in self._dynamic_fail_slow:
            if spec.disk == disk and spec.start_s <= now < spec.end_s:
                factor *= spec.multiplier
        if factor != 1.0:
            self.counters.slowed_requests += 1
        return factor

    def is_failed(self, disk: int, now: float) -> bool:
        """Whether ``disk`` has wholly failed by time ``now``."""
        t = self._failed_at.get(disk)
        return t is not None and now >= t

    def failed_disks(self, now: float) -> list[int]:
        return sorted(d for d, t in self._failed_at.items() if now >= t)

    def _transient_spec_at(self, now: float) -> TransientFaults | None:
        """The transient spec governing a fresh read completing at ``now``."""
        spec = self.plan.transient
        for start_s, end_s, window_spec in self._transient_windows:
            if start_s <= now < end_s:
                if spec is None or window_spec.rate > spec.rate:
                    spec = window_spec
        return spec

    # ------------------------------------------------------------------
    def on_completion(self, request: IORequest) -> None:
        """Engine hook: classify the completed request's outcome."""
        now = request.finish_time
        if self.is_failed(request.disk, now):
            request.error = True
            request.error_kind = "disk-failed"
            self.counters.dead_disk_errors += 1
            return
        self.lse.on_completion(request)
        if request.error:
            request.error_kind = "lse"
            self.counters.lse_read_errors += 1
            return
        if request.kind is not IOKind.READ:
            return
        key = (request.disk, request.offset, request.size)
        if request.attempt > 0:
            entry = self._transient_pending.get(key)
            if entry is None:
                return  # retry of something else (e.g. a timeout); serve it
            chain, remaining = entry
            if chain != request.chain_id:
                # the parked budget belongs to a *different* retry chain
                # of the same geometry — don't let this retry steal it
                return
            # a retry of a triggered transient: consume one failure
            remaining -= 1
            if remaining <= 0:
                del self._transient_pending[key]
                return  # this retry succeeded
            self._transient_pending[key] = (chain, remaining)
            request.error = True
            request.error_kind = "transient"
            self.counters.transient_errors += 1
            return
        spec = self._transient_spec_at(now)
        if spec is None:
            return
        # a fresh read (attempt == 0): any leftover pending entry is stale
        # — an earlier triggered transient that was never retried.  Drop
        # it so this independent read redraws instead of inheriting the
        # old failure budget (and being misclassified as a retry).
        self._transient_pending.pop(key, None)
        if float(self.rng.random()) < spec.rate:
            total_failures = min(
                int(self.rng.geometric(spec.retry_success_rate)), spec.max_failures
            )
            if total_failures > 1:
                self._transient_pending[key] = (request.chain_id, total_failures - 1)
            request.error = True
            request.error_kind = "transient"
            self.counters.transient_errors += 1
