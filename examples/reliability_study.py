#!/usr/bin/env python3
"""What faster reconstruction is worth in mean time to data loss.

The paper's introduction motivates the work with reliability: during
reconstruction the array has reduced redundancy, so the rebuild
duration is a vulnerability window. This study closes the loop:

1. measure rebuild throughput for the traditional and shifted
   arrangements on the simulated Savvio array (the Fig. 9 machinery);
2. translate throughput into the repair window for a 300 GB disk;
3. feed both into the standard Markov MTTDL models.

For the one-fault mirror method MTTDL scales with 1/repair, so the
availability gain carries over directly; for the two-fault mirror with
parity it scales with 1/repair^2 — the reliability gain is the
*square* of the Fig. 9(b) improvement.

Run::

    python examples/reliability_study.py
"""

from __future__ import annotations

from repro.core import (
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
    traditional_mirror_parity,
)
from repro.core.reliability import compare_architectures
from repro.raidsim import measure_case

MTTF_HOURS = 1.0e6
DISK_BYTES = 300e9  # the Savvio 10K.3's 300 GB


def study(n: int) -> None:
    print(f"n = {n} data disks, disk MTTF {MTTF_HOURS:.0e} h, 300 GB per disk\n")
    rows = [
        ("mirror (ft=1)", traditional_mirror(n), shifted_mirror(n), 1),
        (
            "mirror+parity (ft=2)",
            traditional_mirror_parity(n),
            shifted_mirror_parity(n),
            2,
        ),
    ]
    header = (
        f"{'architecture':<22}{'rebuild trad':>14}{'rebuild shift':>15}"
        f"{'repair trad':>13}{'repair shift':>14}{'MTTDL gain':>12}"
    )
    print(header)
    print("-" * len(header))
    for label, trad_layout, shift_layout, ft in rows:
        trad = measure_case(trad_layout, (0,), n_stripes=12)
        shif = measure_case(shift_layout, (0,), n_stripes=12)
        cmp_ = compare_architectures(
            n_disks=trad_layout.n_disks,
            traditional_mbps=trad.read_throughput_mbps,
            shifted_mbps=shif.read_throughput_mbps,
            fault_tolerance=ft,
            disk_capacity_bytes=DISK_BYTES,
            mttf_hours=MTTF_HOURS,
            name=label,
        )
        print(
            f"{label:<22}"
            f"{trad.read_throughput_mbps:>10.1f} MB/s"
            f"{shif.read_throughput_mbps:>11.1f} MB/s"
            f"{cmp_.repair_hours_traditional:>11.2f} h"
            f"{cmp_.repair_hours_shifted:>12.2f} h"
            f"{cmp_.improvement:>11.1f}x"
        )
    print(
        "\nThe one-fault gain equals the throughput ratio; the two-fault gain\n"
        "is its square — shrinking the window pays twice when two failures\n"
        "must overlap to lose data."
    )


if __name__ == "__main__":
    study(5)
