"""The EVENODD code (Blaum, Brady, Bruck, Menon 1995) — RAID 6 baseline.

EVENODD tolerates any two device failures using only XOR arithmetic.
A full stripe has ``p`` data columns (``p`` prime), one row-parity
column ``P`` and one diagonal-parity column ``Q``, each column holding
``p - 1`` elements.  A conceptual all-zero "imaginary" row ``p - 1``
completes the diagonals.

Row parity is the plain XOR of each row.  Diagonal parity is offset by
the *adjuster* ``S``, the XOR of the special diagonal ``p - 1``:

.. math::

    S = \\bigoplus_{j=1}^{p-1} a_{p-1-j,\\,j}, \\qquad
    Q_d = S \\oplus \\bigoplus_{j=0}^{p-1} a_{\\langle d-j \\rangle_p,\\,j}

The paper's Fig. 7 applies the "shorten" method [Jin et al., ICS'09]
to fit RAID 6 to ``n`` data disks: pick the smallest prime ``p >= n``
and treat the ``p - n`` absent columns as all-zero.  :class:`EvenOdd`
supports that directly via the ``n`` parameter, and
:func:`smallest_prime_at_least` chooses ``p``.

Stripes are ``(p-1, n, element_size)`` uint8 arrays; each
``stripe[row, col]`` is one element region.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EvenOdd", "is_prime", "smallest_prime_at_least"]


def is_prime(p: int) -> bool:
    """Deterministic primality test for small integers."""
    if p < 2:
        return False
    if p < 4:
        return True
    if p % 2 == 0:
        return False
    f = 3
    while f * f <= p:
        if p % f == 0:
            return False
        f += 2
    return True


def smallest_prime_at_least(n: int) -> int:
    """The smallest prime ``p >= n`` (the RAID 6 "shorten" parameter)."""
    p = max(n, 2)
    while not is_prime(p):
        p += 1
    return p


class EvenOdd:
    """EVENODD erasure code with optional shortening.

    Parameters
    ----------
    p:
        Prime controlling the geometry; the stripe has ``p - 1`` rows.
    n:
        Number of real data columns, ``1 <= n <= p``.  Columns
        ``n .. p-1`` are virtual all-zero columns (shortened code).
    """

    def __init__(self, p: int, n: int | None = None) -> None:
        if not is_prime(p) or p < 3:
            raise ValueError(f"p must be an odd prime, got {p}")
        n = p if n is None else n
        if not 1 <= n <= p:
            raise ValueError(f"need 1 <= n <= p, got n={n}, p={p}")
        self.p = p
        self.n = n
        self.rows = p - 1

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def _full(self, data: np.ndarray) -> np.ndarray:
        """Zero-pad an ``(p-1, n, size)`` stripe to the full ``p`` columns."""
        data = np.asarray(data, dtype=np.uint8)
        if data.shape[:2] != (self.rows, self.n):
            raise ValueError(
                f"stripe must have shape ({self.rows}, {self.n}, size), got {data.shape}"
            )
        if self.n == self.p:
            return data
        pad = np.zeros((self.rows, self.p - self.n, data.shape[2]), dtype=np.uint8)
        return np.concatenate([data, pad], axis=1)

    def _cell(self, full: np.ndarray, row: int, col: int) -> np.ndarray:
        """Cell accessor honouring the imaginary zero row ``p - 1``."""
        if row == self.p - 1:
            return np.zeros(full.shape[2], dtype=np.uint8)
        return full[row, col]

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def _extended(self, data: np.ndarray) -> np.ndarray:
        """``(p, p, size)`` cell grid including the imaginary zero row."""
        full = self._full(data)
        ext = np.zeros((self.p, self.p, full.shape[2]), dtype=np.uint8)
        ext[: self.rows] = full
        return ext

    def adjuster(self, data: np.ndarray) -> np.ndarray:
        """The adjuster ``S``: XOR of the special diagonal ``p - 1``."""
        ext = self._extended(data)
        cols = np.arange(self.p)
        rows = (self.p - 1 - cols) % self.p
        return np.bitwise_xor.reduce(ext[rows, cols], axis=0)

    def encode(self, data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Compute the ``P`` (row) and ``Q`` (diagonal) parity columns.

        Vectorised as one diagonal gather plus XOR reductions (the
        encode is the write-path hot spot).  Returns two
        ``(p-1, size)`` arrays.
        """
        full = self._full(data)
        row_parity = np.bitwise_xor.reduce(full, axis=1)
        ext = self._extended(data)
        s = self.adjuster(data)
        d_idx = np.arange(self.rows)[:, None]
        j_idx = np.arange(self.p)[None, :]
        gathered = ext[(d_idx - j_idx) % self.p, j_idx]  # (rows, p, size)
        diag_parity = np.bitwise_xor.reduce(gathered, axis=1) ^ s[None, :]
        return row_parity, diag_parity

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def decode(
        self,
        data: list[np.ndarray | None],
        row_parity: np.ndarray | None,
        diag_parity: np.ndarray | None,
        element_size: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Recover the stripe from at most two erased devices.

        Parameters
        ----------
        data:
            Length-``n`` list of ``(p-1, size)`` column arrays; erased
            columns are ``None``.
        row_parity, diag_parity:
            ``(p-1, size)`` arrays or ``None`` if erased.
        element_size:
            Required only when *every* surviving device is a parity
            column carrying no shape information... in practice inferred
            from any survivor.

        Returns
        -------
        (data, row_parity, diag_parity)
            The fully reconstructed stripe.
        """
        if len(data) != self.n:
            raise ValueError(f"expected {self.n} data columns, got {len(data)}")
        erased_data = [j for j, c in enumerate(data) if c is None]
        n_erased = len(erased_data) + (row_parity is None) + (diag_parity is None)
        if n_erased > 2:
            raise ValueError(f"{n_erased} erasures exceed EVENODD tolerance of 2")

        size = element_size
        for c in data:
            if c is not None:
                size = np.asarray(c).shape[1]
                break
        else:
            for par in (row_parity, diag_parity):
                if par is not None:
                    size = np.asarray(par).shape[1]
                    break
        if size is None:
            raise ValueError("cannot infer element size: every device erased or absent")

        cols = np.zeros((self.rows, self.n, size), dtype=np.uint8)
        for j, c in enumerate(data):
            if c is not None:
                cols[:, j, :] = np.asarray(c, dtype=np.uint8)

        if not erased_data:
            # Only parity columns (if anything) were lost: recompute.
            new_p, new_q = self.encode(cols)
            return cols, new_p, new_q

        if len(erased_data) == 1:
            j = erased_data[0]
            if row_parity is not None:
                self._recover_one_by_rows(cols, j, row_parity)
            else:
                self._recover_one_by_diagonals(cols, j, diag_parity)
        else:
            if row_parity is None or diag_parity is None:
                raise AssertionError("unreachable: >2 erasures were rejected above")
            self._recover_two(cols, erased_data[0], erased_data[1], row_parity, diag_parity)

        new_p, new_q = self.encode(cols)
        return cols, new_p, new_q

    # -- single data column, row parity available ----------------------
    def _recover_one_by_rows(self, cols: np.ndarray, j: int, row_parity: np.ndarray) -> None:
        full = self._full(cols)
        row_parity = np.asarray(row_parity, dtype=np.uint8)
        for t in range(self.rows):
            acc = row_parity[t].copy()
            for c in range(self.p):
                if c != j:
                    acc ^= self._cell(full, t, c)
            cols[t, j] = acc

    # -- single data column, only diagonal parity available ------------
    def _recover_one_by_diagonals(
        self, cols: np.ndarray, j: int, diag_parity: np.ndarray | None
    ) -> None:
        if diag_parity is None:
            raise ValueError("cannot recover a data column with both parities erased")
        diag_parity = np.asarray(diag_parity, dtype=np.uint8)
        full = self._full(cols)
        p = self.p
        # The diagonal that hits column j's imaginary cell determines S.
        d0 = (j - 1) % p
        if d0 != p - 1:
            s = diag_parity[d0].copy()
            for c in range(p):
                if c != j:
                    s ^= self._cell(full, (d0 - c) % p, c)
        else:
            # j == 0: the special diagonal itself misses only the
            # imaginary cell of column 0, so S is directly computable.
            s = np.zeros(full.shape[2], dtype=np.uint8)
            for c in range(1, p):
                s ^= self._cell(full, (p - 1 - c) % p, c)
        for d in range(self.rows):
            if d == d0:
                continue
            row = (d - j) % p
            if row == p - 1:
                continue
            acc = diag_parity[d] ^ s
            for c in range(p):
                if c != j:
                    acc ^= self._cell(full, (d - c) % p, c)
            cols[row, j] = acc
        # One cell of column j lies on the special diagonal p-1, which has
        # no stored parity — but its XOR is the adjuster S itself.
        row_s = (p - 1 - j) % p
        if row_s != p - 1:
            acc = s.copy()
            for c in range(p):
                if c != j:
                    acc ^= self._cell(full, (p - 1 - c) % p, c)
            cols[row_s, j] = acc

    # -- two data columns: the EVENODD zigzag ---------------------------
    def _recover_two(
        self,
        cols: np.ndarray,
        r: int,
        s_col: int,
        row_parity: np.ndarray,
        diag_parity: np.ndarray,
    ) -> None:
        p = self.p
        size = cols.shape[2]
        full = self._full(cols)
        row_parity = np.asarray(row_parity, dtype=np.uint8)
        diag_parity = np.asarray(diag_parity, dtype=np.uint8)

        # Adjuster from parity totals: XOR of all P rows is the XOR of
        # all data; XOR of all Q rows is that same total XOR S.
        s_adj = np.bitwise_xor.reduce(row_parity, axis=0) ^ np.bitwise_xor.reduce(
            diag_parity, axis=0
        )

        # Horizontal syndromes: XOR of the two missing cells per row.
        h_synd = np.empty((self.rows, size), dtype=np.uint8)
        for t in range(self.rows):
            acc = row_parity[t].copy()
            for c in range(p):
                if c not in (r, s_col):
                    acc ^= self._cell(full, t, c)
            h_synd[t] = acc

        # Diagonal syndromes for every diagonal 0..p-1; diagonal p-1 has
        # no stored parity but its XOR equals the adjuster S.
        d_synd = np.empty((p, size), dtype=np.uint8)
        for d in range(p):
            acc = (diag_parity[d] ^ s_adj) if d < p - 1 else s_adj.copy()
            for c in range(p):
                if c not in (r, s_col):
                    acc ^= self._cell(full, (d - c) % p, c)
            d_synd[d] = acc

        delta = (s_col - r) % p
        u = (delta - 1) % p
        zero = np.zeros(size, dtype=np.uint8)
        for _ in range(self.rows):
            d = (u + r) % p
            prev_row = (u - delta) % p
            prev_cell = cols[prev_row, s_col] if prev_row != p - 1 else zero
            cols[u, r] = d_synd[d] ^ prev_cell
            cols[u, s_col] = h_synd[u] ^ cols[u, r]
            u = (u + delta) % p

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EvenOdd(p={self.p}, n={self.n})"
