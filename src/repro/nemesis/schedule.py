"""Stochastic fault schedules: hazard classes composed over simulated weeks.

A :class:`NemesisSchedule` is the frozen output of :func:`build_schedule`:
a time-sorted tuple of :class:`ScheduledFault` intervals drawn from four
hazard classes —

* **disk deaths** — whole-disk failures followed by a repair window;
* **fail-slow windows** — one drive's service time inflated for a while;
* **transient bursts** — array-wide retryable-error storms;
* **LSE storms** — a batch of latent sector errors landing at once.

Each class draws its Poisson arrivals (and its magnitudes) from an
*independent* :class:`numpy.random.SeedSequence` stream spawned from the
campaign seed, so raising one class's rate never perturbs another
class's arrival times — the knobs are orthogonal by construction, and
the whole schedule is a pure function of its arguments.

A **safety budget** keeps the storm honest: disk deaths whose repair
windows would overlap more concurrent failures than the arrangement
tolerates are dropped (and counted), unless ``allow_excess`` explicitly
asks for data-loss territory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "HazardRates",
    "ScheduledFault",
    "NemesisSchedule",
    "build_schedule",
]

SECONDS_PER_DAY = 86_400.0

#: the hazard classes a schedule composes, in stream order
FAULT_KINDS = ("disk-death", "fail-slow", "transient-burst", "lse-storm")

#: bump when the ``to_dict`` wire format changes shape
SCHEDULE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class HazardRates:
    """Per-class arrival rates and magnitude ranges.

    Rates are Poisson arrivals per simulated day; ``(lo, hi)`` pairs
    are uniform magnitude ranges.  A rate of 0 disables its class.
    """

    disk_death_per_day: float = 0.5
    fail_slow_per_day: float = 1.0
    transient_burst_per_day: float = 2.0
    lse_storm_per_day: float = 1.0
    #: uniform service-time multiplier range for fail-slow windows
    fail_slow_multiplier: tuple[float, float] = (2.0, 8.0)
    fail_slow_duration_s: tuple[float, float] = (1800.0, 14_400.0)
    #: uniform transient trigger-rate range during a burst
    burst_rate: tuple[float, float] = (0.2, 0.8)
    burst_duration_s: tuple[float, float] = (600.0, 7200.0)
    #: uniform (inclusive) latent-sector-error count per storm
    lse_storm_size: tuple[int, int] = (1, 4)
    #: how long a storm's injected errors dominate read outcomes
    lse_effect_s: float = 1800.0
    #: how long a dead disk stays under repair (its failure interval)
    repair_s: float = 7200.0

    def __post_init__(self) -> None:
        for name in (
            "disk_death_per_day",
            "fail_slow_per_day",
            "transient_burst_per_day",
            "lse_storm_per_day",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        for name in (
            "fail_slow_multiplier",
            "fail_slow_duration_s",
            "burst_rate",
            "burst_duration_s",
            "lse_storm_size",
        ):
            lo, hi = getattr(self, name)
            if lo > hi or lo < 0:
                raise ValueError(f"bad {name} range ({lo}, {hi})")
        if self.fail_slow_multiplier[0] < 1.0:
            raise ValueError("fail-slow multipliers must be >= 1")
        if not 0.0 <= self.burst_rate[1] <= 1.0:
            raise ValueError("burst rates must be probabilities")
        if self.lse_storm_size[0] < 1:
            raise ValueError("lse_storm_size must be >= 1")
        if self.repair_s <= 0 or self.lse_effect_s <= 0:
            raise ValueError("repair_s and lse_effect_s must be positive")


@dataclass(frozen=True)
class ScheduledFault:
    """One fault interval inside a schedule.

    ``disk`` is ``-1`` for array-wide hazards (transient bursts, LSE
    storms).  ``magnitude`` is class-specific: the fail-slow
    multiplier, the burst's transient trigger rate, the storm's error
    count; disk deaths carry 1.0.
    """

    fault_id: int
    kind: str
    disk: int
    start_s: float
    end_s: float
    magnitude: float

    def overlaps(self, t0: float, t1: float, margin: float = 0.0) -> bool:
        """Whether the interval intersects ``[t0, t1)`` (padded)."""
        return self.start_s - margin < t1 and t0 < self.end_s + margin

    def active_at(self, t: float, margin: float = 0.0) -> bool:
        return self.start_s - margin <= t < self.end_s + margin

    def to_dict(self) -> dict:
        return {
            "fault_id": self.fault_id,
            "kind": self.kind,
            "disk": self.disk,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "magnitude": self.magnitude,
        }


@dataclass(frozen=True)
class NemesisSchedule:
    """A frozen, replayable fault schedule over one campaign horizon."""

    seed: int
    horizon_s: float
    n_disks: int
    safety_budget: int
    faults: tuple[ScheduledFault, ...]
    #: disk deaths suppressed by the safety budget
    dropped_deaths: int = 0
    rates: HazardRates = field(default_factory=HazardRates)

    def __len__(self) -> int:
        return len(self.faults)

    def active_at(self, t: float, margin: float = 0.0) -> tuple[ScheduledFault, ...]:
        return tuple(f for f in self.faults if f.active_at(t, margin))

    def of_kind(self, kind: str) -> tuple[ScheduledFault, ...]:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        return tuple(f for f in self.faults if f.kind == kind)

    def to_dict(self) -> dict:
        """Schema-versioned wire form (CLI ``--json``, checkpoints)."""
        return {
            "schema_version": SCHEDULE_SCHEMA_VERSION,
            "seed": self.seed,
            "horizon_s": self.horizon_s,
            "n_disks": self.n_disks,
            "safety_budget": self.safety_budget,
            "dropped_deaths": self.dropped_deaths,
            "faults": [f.to_dict() for f in self.faults],
        }


def _arrivals(
    rng: np.random.Generator, per_day: float, horizon_s: float
) -> list[float]:
    """Poisson arrival times over ``[0, horizon_s)``."""
    times: list[float] = []
    if per_day <= 0:
        return times
    mean_gap = SECONDS_PER_DAY / per_day
    t = float(rng.exponential(mean_gap))
    while t < horizon_s:
        times.append(t)
        t += float(rng.exponential(mean_gap))
    return times


def _uniform(rng: np.random.Generator, lo_hi: tuple[float, float]) -> float:
    lo, hi = lo_hi
    return float(rng.uniform(lo, hi)) if hi > lo else float(lo)


def build_schedule(
    n_disks: int,
    horizon_s: float,
    seed: int = 2012,
    rates: HazardRates | None = None,
    safety_budget: int = 1,
    allow_excess: bool = False,
) -> NemesisSchedule:
    """Draw a seeded stochastic schedule over ``[0, horizon_s)``.

    ``safety_budget`` caps *concurrent* disk deaths (a death occupies
    its repair window): a drawn death that would push the overlap count
    past the budget — or re-kill a disk still under repair — is dropped
    and tallied in :attr:`NemesisSchedule.dropped_deaths`.
    ``allow_excess`` disables the cap for deliberate data-loss storms.
    """
    if n_disks < 1:
        raise ValueError(f"n_disks must be >= 1, got {n_disks}")
    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be positive, got {horizon_s}")
    if safety_budget < 0:
        raise ValueError(f"safety_budget must be >= 0, got {safety_budget}")
    rates = rates or HazardRates()
    streams = {
        kind: np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(i,)))
        for i, kind in enumerate(FAULT_KINDS)
    }

    raw: list[tuple[float, float, str, int, float]] = []  # start, end, kind, disk, mag

    rng = streams["disk-death"]
    deaths: list[tuple[float, float, int]] = []
    dropped = 0
    for t in _arrivals(rng, rates.disk_death_per_day, horizon_s):
        disk = int(rng.integers(0, n_disks))
        end = t + rates.repair_s
        concurrent = [d for d in deaths if d[0] < end and t < d[1]]
        same_disk = any(d[2] == disk for d in concurrent)
        if not allow_excess and (same_disk or len(concurrent) >= safety_budget):
            dropped += 1
            continue
        if allow_excess and same_disk:
            dropped += 1  # a dead disk cannot die again, budget or not
            continue
        deaths.append((t, end, disk))
        raw.append((t, end, "disk-death", disk, 1.0))

    rng = streams["fail-slow"]
    for t in _arrivals(rng, rates.fail_slow_per_day, horizon_s):
        disk = int(rng.integers(0, n_disks))
        dur = _uniform(rng, rates.fail_slow_duration_s)
        mult = _uniform(rng, rates.fail_slow_multiplier)
        raw.append((t, t + dur, "fail-slow", disk, mult))

    rng = streams["transient-burst"]
    for t in _arrivals(rng, rates.transient_burst_per_day, horizon_s):
        dur = _uniform(rng, rates.burst_duration_s)
        rate = _uniform(rng, rates.burst_rate)
        raw.append((t, t + dur, "transient-burst", -1, rate))

    rng = streams["lse-storm"]
    lo, hi = rates.lse_storm_size
    for t in _arrivals(rng, rates.lse_storm_per_day, horizon_s):
        size = int(rng.integers(lo, hi + 1))
        raw.append((t, t + rates.lse_effect_s, "lse-storm", -1, float(size)))

    raw.sort(key=lambda r: (r[0], FAULT_KINDS.index(r[2]), r[3]))
    faults = tuple(
        ScheduledFault(
            fault_id=i,
            kind=kind,
            disk=disk,
            start_s=start,
            end_s=min(end, math.inf),
            magnitude=mag,
        )
        for i, (start, end, kind, disk, mag) in enumerate(raw)
    )
    return NemesisSchedule(
        seed=seed,
        horizon_s=horizon_s,
        n_disks=n_disks,
        safety_budget=safety_budget,
        faults=faults,
        dropped_deaths=dropped,
        rates=rates,
    )
