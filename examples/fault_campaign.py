#!/usr/bin/env python3
"""A rebuild under fire: fault-injection campaign over both arrangements.

The paper rebuilds under clean conditions; this walkthrough stress-tests
the same comparison under a seeded storm:

1. a burst of latent sector errors lurks on the surviving disks;
2. one drive serves everything 4x slower (fail-slow, not fail-stop);
3. transient media errors succeed only after a few retries, so the
   controller's exponential-backoff retry policy matters;
4. halfway through the rebuild a *second* disk dies outright.

The identical :class:`~repro.disksim.faultplan.FaultPlan` (same seed,
same schedule) runs against the traditional and the shifted
mirror-with-parity arrangement; reconstruction is byte-verified where
recoverable and counted as data loss where not, and the user-visible
availability delta is printed at the end.

Run::

    python examples/fault_campaign.py [n]
"""

from __future__ import annotations

import sys

from repro.core import shifted_mirror_parity, traditional_mirror_parity
from repro.raidsim import (
    RetryPolicy,
    clean_rebuild_makespan,
    compare_arrangements,
    default_fault_plan,
)


def main(n: int = 4) -> int:
    n_stripes = 8
    traditional = lambda: traditional_mirror_parity(n)  # noqa: E731
    shifted = lambda: shifted_mirror_parity(n)  # noqa: E731
    layout = traditional()

    # 1. size the storm off a clean rebuild of disk 0
    clean_s = clean_rebuild_makespan(layout, (0,), n_stripes=n_stripes)
    print(f"clean rebuild of disk 0 takes {clean_s:.3f} s — scheduling a "
          f"second failure at 50% of that")

    # 2. one declarative, seeded fault plan for both arrangements
    plan = default_fault_plan(
        layout.n_disks,
        seed=2012,
        lse_burst=4,
        fail_slow_disk=layout.n_disks - 1,
        fail_slow_multiplier=4.0,
        second_failure_disk=layout.n_disks - 2,
        second_failure_time_s=0.5 * clean_s,
        transient_rate=0.05,
    )
    policy = RetryPolicy(max_attempts=4, backoff_base_s=0.002)

    # 3. run the campaign: online rebuild + user reads, same storm twice
    cmp_ = compare_arrangements(
        traditional,
        shifted,
        plan,
        failed_disks=(0,),
        n_stripes=n_stripes,
        retry_policy=policy,
        user_read_rate_per_s=30.0,
    )

    for run in (cmp_.traditional, cmp_.shifted):
        s = run.fault_stats
        r = run.rebuild
        print(f"\n{run.layout_name}")
        print(f"  rebuild: {r.makespan_s:.3f} s, verified={r.verified}, "
              f"aborted={r.aborted}")
        print(f"  user reads: {run.online.n_user_reads} served, mean "
              f"{run.online.mean_user_latency_s * 1e3:.0f} ms, "
              f"{run.online.failed_user_reads} failed")
        print(f"  injected: {s.transient_errors} transients, "
              f"{len(s.mid_rebuild_failures)} mid-rebuild death(s)")
        print(f"  recovery: {s.retries} retries "
              f"({s.backoff_time_s * 1e3:.0f} ms backoff), "
              f"{s.rerouted_reads} rerouted, {s.data_loss_events} lost")
        print(f"  availability {run.availability:.4f}, "
              f"data survival {run.data_survival:.4f}")

    print(f"\navailability delta (shifted - traditional): "
          f"{cmp_.availability_delta:+.4f}")
    print(f"user latency speedup: {cmp_.latency_speedup:.2f}x, "
          f"rebuild speedup: {cmp_.makespan_speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 4))
