"""Element arrangements: the paper's formulas, bijectivity, iteration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arrangement import (
    IdentityArrangement,
    IteratedArrangement,
    PermutationArrangement,
    ShiftedArrangement,
    transform_once,
)


# ----------------------------------------------------------------------
# the paper's defining formulas (§IV-A)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
def test_shifted_forward_formula(n):
    """a[i, j] = b[<i+j>_n, i]."""
    arr = ShiftedArrangement(n)
    for i in range(n):
        for j in range(n):
            assert arr.mirror_location(i, j) == ((i + j) % n, i)


@pytest.mark.parametrize("n", [2, 3, 5, 7])
def test_shifted_inverse_formula(n):
    """b[i, j] = a[j, <i-j>_n]."""
    arr = ShiftedArrangement(n)
    for mi in range(n):
        for mj in range(n):
            assert arr.data_location(mi, mj) == (mj, (mi - mj) % n)


def test_shifted_matches_paper_fig3_example():
    """Fig. 3, n=3: data disk 0 holds elements 1, 4, 7 (rows 0, 1, 2);
    their replicas land on mirror disks 0, 1, 2 respectively."""
    arr = ShiftedArrangement(3)
    assert [arr.mirror_location(0, j)[0] for j in range(3)] == [0, 1, 2]
    # first row goes onto the main diagonal (paper Fig. 5)
    for i in range(3):
        disk, row = arr.mirror_location(i, 0)
        assert disk == i and row == i


def test_identity_is_plain_copy():
    arr = IdentityArrangement(4)
    for i in range(4):
        for j in range(4):
            assert arr.mirror_location(i, j) == (i, j)
            assert arr.data_location(i, j) == (i, j)


# ----------------------------------------------------------------------
# bijection and inverse consistency
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7, 10])
def test_shifted_is_bijective_roundtrip(n):
    arr = ShiftedArrangement(n)
    seen = set()
    for i in range(n):
        for j in range(n):
            m = arr.mirror_location(i, j)
            assert m not in seen
            seen.add(m)
            assert arr.data_location(*m) == (i, j)
    assert len(seen) == n * n


def test_out_of_range_indices_rejected():
    arr = ShiftedArrangement(3)
    with pytest.raises(IndexError):
        arr.mirror_location(3, 0)
    with pytest.raises(IndexError):
        arr.mirror_location(0, -1)


def test_invalid_n_rejected():
    with pytest.raises(ValueError):
        ShiftedArrangement(0)


def test_non_bijective_permutation_rejected():
    mapping = {(i, j): (0, 0) for i in range(2) for j in range(2)}
    with pytest.raises(ValueError, match="not a bijection"):
        PermutationArrangement(2, mapping)


def test_permutation_from_array_and_dict_agree():
    n = 3
    base = ShiftedArrangement(n)
    as_dict = {
        (i, j): base.mirror_location(i, j) for i in range(n) for j in range(n)
    }
    arr_mat = np.zeros((n, n, 2), dtype=np.int64)
    for (i, j), m in as_dict.items():
        arr_mat[i, j] = m
    assert PermutationArrangement(n, as_dict) == PermutationArrangement(n, arr_mat)


def test_permutation_bad_shape_rejected():
    with pytest.raises(ValueError, match="shape"):
        PermutationArrangement(3, np.zeros((2, 2, 2)))


# ----------------------------------------------------------------------
# equality / hashing
# ----------------------------------------------------------------------


def test_equality_is_by_mapping_not_type():
    n = 4
    shifted = ShiftedArrangement(n)
    clone = PermutationArrangement(
        n, {(i, j): shifted.mirror_location(i, j) for i in range(n) for j in range(n)}
    )
    assert shifted == clone
    assert hash(shifted) == hash(clone)
    assert shifted != IdentityArrangement(n)


def test_different_sizes_never_equal():
    assert ShiftedArrangement(3) != ShiftedArrangement(4)


# ----------------------------------------------------------------------
# derived views
# ----------------------------------------------------------------------


def test_as_matrices_consistent_with_mirror_location():
    arr = ShiftedArrangement(5)
    disk, row = arr.as_matrices()
    for i in range(5):
        for j in range(5):
            assert (disk[i, j], row[i, j]) == arr.mirror_location(i, j)


def test_mirror_layout_labels_inverse_view():
    arr = ShiftedArrangement(4)
    labels = arr.mirror_layout_labels()
    for mi in range(4):
        for mj in range(4):
            i, j = labels[mi, mj]
            assert arr.mirror_location(int(i), int(j)) == (mi, mj)


def test_replica_and_source_disk_views():
    arr = ShiftedArrangement(5)
    assert sorted(arr.replica_disks_of_data_disk(2)) == list(range(5))
    assert sorted(arr.source_disks_of_mirror_disk(3)) == list(range(5))
    assert sorted(arr.replica_disks_of_data_row(1)) == list(range(5))


# ----------------------------------------------------------------------
# the transformation function and its iterates (§VI-E)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [2, 3, 4, 5, 7])
def test_iterate_one_is_the_shifted_arrangement(n):
    assert IteratedArrangement(n, 1) == ShiftedArrangement(n)


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_iterate_zero_is_identity(n):
    assert IteratedArrangement(n, 0) == IdentityArrangement(n)


def test_transform_once_composes():
    n = 3
    one = transform_once(IdentityArrangement(n))
    two = transform_once(one)
    assert one == IteratedArrangement(n, 1)
    assert two == IteratedArrangement(n, 2)


def test_negative_iterations_rejected():
    with pytest.raises(ValueError):
        IteratedArrangement(3, -1)


def test_transform_has_finite_order():
    """Iterating T must eventually return to the identity (it permutes
    a finite set); for n=3 the order is small enough to find directly."""
    n = 3
    ident = IdentityArrangement(n)
    order = None
    for k in range(1, 50):
        if IteratedArrangement(n, k) == ident:
            order = k
            break
    assert order is not None
    # and iterates repeat with that period
    assert IteratedArrangement(n, order + 1) == IteratedArrangement(n, 1)


@given(n=st.integers(2, 6), k=st.integers(0, 8))
@settings(max_examples=30, deadline=None)
def test_iterates_are_always_bijections(n, k):
    arr = IteratedArrangement(n, k)
    cells = {arr.mirror_location(i, j) for i in range(n) for j in range(n)}
    assert len(cells) == n * n
