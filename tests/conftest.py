"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disksim.disk import DiskParameters


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests needing different streams reseed locally."""
    return np.random.default_rng(20120913)


@pytest.fixture
def savvio() -> DiskParameters:
    return DiskParameters.savvio_10k3()


@pytest.fixture
def ideal_disk() -> DiskParameters:
    return DiskParameters.ideal()


def slow_gf_multiply(a: int, b: int, poly: int, w: int) -> int:
    """Bitwise carry-less multiply mod the primitive polynomial.

    The independent reference the table-driven field is checked against.
    """
    r = 0
    while b:
        if b & 1:
            r ^= a
        b >>= 1
        a <<= 1
        if a & (1 << w):
            a ^= poly
    return r
