"""Typed event calendars for the discrete-event engine.

The engine's calendar holds *pending* events.  Historically each entry
was a ``(time, seq, action, args)`` tuple — a bound method plus an
argument tuple allocated per event.  The typed calendar replaces the
callable with an integer **opcode** indexing the engine's dispatch
table, and the argument tuple with one integer payload:

====== ============= ===========================================
opcode name          payload (``arg0``)
====== ============= ===========================================
``0``  ``OP_CALL``   unused — ``(action, args)`` lives in a side
                     table keyed by the event's ``seq``
``1``  ``OP_COMPLETE`` disk id whose in-flight request finishes
====== ============= ===========================================

``OP_COMPLETE`` is the hot path: one event per request completion,
carrying no Python objects at all (the request is recovered from the
disk server's ``current`` slot).  ``OP_CALL`` is the fully general
escape hatch behind :meth:`~repro.disksim.events.Simulation.schedule_call`.

Storage
-------
Pending events are kept in a binary heap of ``(time, seq, opcode,
arg0)`` scalar tuples.  The numpy structured form (:data:`EVENT_DTYPE`)
is the calendar's *bulk* representation: :meth:`TypedCalendar.records`
materialises the pending set as a sorted structured array, and
:meth:`TypedCalendar.drain_completions` hands the engine's vectorized
drain its seed arrays.  The pending set itself stays a scalar heap
deliberately — the calendar is shallow (one ``OP_COMPLETE`` per busy
disk plus a handful of deferred calls), and per-event numpy element
ops on a ~10-entry array measure ~80x slower than ``heappush`` /
``heappop``; the array form pays off only for whole-calendar batch
operations, which is exactly where the engine uses it (see
``docs/performance.md``).

Determinism: ``seq`` is globally unique and monotone, so heap
comparisons never reach the opcode and ties break exactly as the
legacy tuple calendar broke them.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable

import numpy as np

__all__ = ["EVENT_DTYPE", "OP_CALL", "OP_COMPLETE", "TypedCalendar"]

#: Wire/bulk layout of one calendar event.  ``time``/``seq`` order the
#: calendar, ``opcode`` selects the dispatch-table entry, ``arg0`` and
#: ``arg1`` are integer payload slots (``arg1`` is reserved).
EVENT_DTYPE = np.dtype(
    [
        ("time", "<f8"),
        ("seq", "<u8"),
        ("opcode", "u1"),
        ("arg0", "<i8"),
        ("arg1", "<i8"),
    ]
)

#: Slow-path opcode: dispatch ``action(*args)`` from the call table.
OP_CALL = 0
#: Hot-path opcode: complete disk ``arg0``'s in-flight request.
OP_COMPLETE = 1


class TypedCalendar:
    """Pending-event set with opcode dispatch and batch extraction.

    The public surface the engine relies on:

    * :meth:`push` / :meth:`push_call` — schedule one event;
    * :meth:`peek_time` — earliest pending time (``None`` when empty);
    * :meth:`pop_batch` — remove and return *every* event sharing the
      earliest timestamp, in ``seq`` order;
    * :meth:`call_count` — how many pending events are ``OP_CALL``
      (zero means the calendar holds only completions, the
      precondition for the engine's vectorized drain);
    * :meth:`drain_completions` — empty the calendar into numpy seed
      arrays (completions only);
    * :meth:`records` — the pending set as a sorted
      :data:`EVENT_DTYPE` structured array (diagnostics/tests).
    """

    __slots__ = ("_heap", "_calls", "_n_call")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, int]] = []
        self._calls: dict[int, tuple[Callable[..., None], tuple]] = {}
        self._n_call = 0

    # ------------------------------------------------------------------
    def push(self, time: float, seq: int, opcode: int, arg0: int = 0) -> None:
        """Schedule one typed event (hot path — no object payload)."""
        heappush(self._heap, (time, seq, opcode, arg0))

    def push_call(
        self, time: float, seq: int, action: Callable[..., None], args: tuple
    ) -> None:
        """Schedule an arbitrary callable (the ``OP_CALL`` escape hatch)."""
        self._calls[seq] = (action, args)
        self._n_call += 1
        heappush(self._heap, (time, seq, OP_CALL, 0))

    def take_call(self, seq: int) -> tuple[Callable[..., None], tuple]:
        """Claim (and forget) the callable behind an ``OP_CALL`` event."""
        self._n_call -= 1
        return self._calls.pop(seq)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._heap)

    @property
    def call_count(self) -> int:
        """Pending ``OP_CALL`` events (0 ⇒ completions only)."""
        return self._n_call

    def peek_time(self) -> float | None:
        """Earliest pending event time, or ``None`` when empty."""
        heap = self._heap
        return heap[0][0] if heap else None

    def pop_batch(self) -> list[tuple[float, int, int, int]]:
        """Remove and return the whole earliest-timestamp batch.

        Events sharing the minimum time come back in ``seq`` order —
        exactly the order the legacy calendar popped them one by one.
        """
        heap = self._heap
        if not heap:
            return []
        first = heappop(heap)
        t = first[0]
        batch = [first]
        while heap and heap[0][0] == t:
            batch.append(heappop(heap))
        return batch

    # ------------------------------------------------------------------
    def drain_completions(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Empty the calendar into ``(times, seqs, disks)`` seed arrays.

        Preconditions (the engine checks them): every pending event is
        ``OP_COMPLETE``.  The returned arrays are sorted by
        ``(time, seq)`` — the order the events would have popped in.
        """
        events = sorted(self._heap)
        self._heap.clear()
        n = len(events)
        times = np.empty(n, dtype=np.float64)
        seqs = np.empty(n, dtype=np.int64)
        disks = np.empty(n, dtype=np.int64)
        for i, (t, s, _op, a0) in enumerate(events):
            times[i] = t
            seqs[i] = s
            disks[i] = a0
        return times, seqs, disks

    def records(self) -> np.ndarray:
        """Pending events as a sorted :data:`EVENT_DTYPE` array (a copy)."""
        events = sorted(self._heap)
        out = np.zeros(len(events), dtype=EVENT_DTYPE)
        for i, (t, s, op, a0) in enumerate(events):
            out[i] = (t, s, op, a0, 0)
        return out
