"""Degraded-mode service: reads, writes, dirty tracking, resync."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import UnrecoverableFailureError
from repro.core.layouts import (
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
)
from repro.raidsim.controller import RaidController
from repro.raidsim.degraded import DegradedArray
from repro.workloads.generator import WriteOp, random_large_writes


def _ctrl(layout, **kw):
    kw.setdefault("n_stripes", 4)
    kw.setdefault("payload_bytes", 8)
    return RaidController(layout, **kw)


def test_too_many_failures_rejected():
    ctrl = _ctrl(shifted_mirror(3))
    with pytest.raises(UnrecoverableFailureError):
        DegradedArray(ctrl, [0, 1])


def test_failed_content_is_destroyed():
    ctrl = _ctrl(shifted_mirror(3))
    DegradedArray(ctrl, [0])
    assert np.all(ctrl.content[0] == 0xEE)


def test_read_of_intact_element_is_direct():
    ctrl = _ctrl(shifted_mirror(3))
    expected = ctrl.element_content(0, (1, 2)).copy()
    deg = DegradedArray(ctrl, [0])
    got = deg.read(0, 1, 2)
    assert np.array_equal(got, expected)
    assert deg.stats.degraded_reads == 0


def test_read_of_failed_element_served_from_replica():
    ctrl = _ctrl(shifted_mirror(3))
    expected = ctrl.element_content(1, (0, 2)).copy()
    deg = DegradedArray(ctrl, [0])
    got = deg.read(1, 0, 2)
    assert np.array_equal(got, expected)
    assert deg.stats.degraded_reads == 1
    assert deg.stats.mean_read_latency_s > 0


def test_read_via_parity_path_xors_correctly():
    n = 3
    ctrl = _ctrl(shifted_mirror_parity(n))
    i, j = 0, 2
    expected = ctrl.element_content(0, (i, j)).copy()
    (rep_disk, _) = ctrl.layout.replica_cells(i, j)[0]
    deg = DegradedArray(ctrl, [i, rep_disk])  # both copies gone
    got = deg.read(0, i, j)
    assert np.array_equal(got, expected)


def test_write_while_degraded_marks_dirty_and_skips_failed():
    ctrl = _ctrl(shifted_mirror(3))
    deg = DegradedArray(ctrl, [0])
    deg.write(WriteOp(1, ((0, 1),)))  # data element on the failed disk
    assert deg.stats.elements_skipped == 1
    assert (0, 1) in deg.dirty[1]
    # the surviving replica took the new value
    (rep_cell,) = ctrl.layout.replica_cells(0, 1)
    written = ctrl.element_content(1, rep_cell)
    assert not np.all(written == 0xEE)


def test_degraded_writes_keep_surviving_parity_correct():
    n = 3
    ctrl = _ctrl(shifted_mirror_parity(n))
    deg = DegradedArray(ctrl, [0])
    rng = np.random.default_rng(3)
    for op in random_large_writes(n, 4, n_ops=10, rng=rng):
        deg.write(op, rng=rng)
    # parity over the *data array* is stale where data disk 0 died, but
    # replica+parity consistency over survivors is what resync uses;
    # verify via a full resync round-trip instead:
    res = deg.resync()
    assert res.verified


@pytest.mark.parametrize("builder", [traditional_mirror, shifted_mirror])
def test_resync_restores_untouched_data_exactly(builder):
    ctrl = _ctrl(builder(3))
    before = {
        (s, i, j): ctrl.element_content(s, (i, j)).copy()
        for s in range(4)
        for i in range(3)
        for j in range(3)
    }
    deg = DegradedArray(ctrl, [1])
    res = deg.resync()
    assert res.verified
    for (s, i, j), want in before.items():
        assert np.array_equal(ctrl.element_content(s, (i, j)), want)


def test_full_degraded_lifecycle():
    """Fail, serve reads and writes, resync, verify everything."""
    n = 4
    ctrl = _ctrl(shifted_mirror_parity(n), n_stripes=5)
    deg = DegradedArray(ctrl, [2])
    rng = np.random.default_rng(11)
    written_values = {}
    for k, op in enumerate(random_large_writes(n, 5, n_ops=12, rng=rng)):
        deg.write(op, rng=rng)
        for i, j in op.elements:
            # capture the *logical* value: the data cell if its disk
            # survives, otherwise the surviving replica (the data cell's
            # store content stays destroyed while degraded, by design)
            cell = ctrl.layout.data_cell(i, j)
            if cell[0] == 2:
                (cell,) = ctrl.layout.replica_cells(i, j)
            written_values[(op.stripe, i, j)] = ctrl.element_content(
                op.stripe, cell
            ).copy()
    # reads during degradation return the written values
    for (stripe, i, j), want in list(written_values.items())[:5]:
        assert np.array_equal(deg.read(stripe, i, j), want)
    res = deg.resync()
    assert res.verified
    # and after resync the rebuilt disk serves them too
    for (stripe, i, j), want in written_values.items():
        assert np.array_equal(
            ctrl.element_content(stripe, ctrl.layout.data_cell(i, j)), want
        )
    assert ctrl.verify_redundancy()


def test_stats_accumulate():
    ctrl = _ctrl(shifted_mirror(3))
    deg = DegradedArray(ctrl, [0])
    deg.read(0, 0, 0)
    deg.read(0, 1, 0)
    deg.write(WriteOp(0, ((1, 1),)))
    assert deg.stats.reads_served == 2
    assert deg.stats.degraded_reads == 1
    assert deg.stats.writes_served == 1


def test_three_mirror_degraded_double_failure_lifecycle():
    """Triple replication serves through *two* failures and resyncs."""
    from repro.core.arrangement import PermutationArrangement, ShiftedArrangement
    from repro.core.layouts import ThreeMirrorLayout

    n = 3
    rev = PermutationArrangement(
        n, {(i, j): ((i - j) % n, i) for i in range(n) for j in range(n)}
    )
    ctrl = _ctrl(ThreeMirrorLayout(n, ShiftedArrangement(n), rev))
    deg = DegradedArray(ctrl, [0, 4])
    # reads of doubly-shadowed data still served from the third copy
    want = ctrl.element_content(0, ctrl.layout.mirror_cell(0, 1, 1)).copy()
    got = deg.read(0, 0, 1)
    assert np.array_equal(got, want)
    rng = np.random.default_rng(5)
    for op in random_large_writes(n, 4, n_ops=6, rng=rng):
        deg.write(op, rng=rng)
    res = deg.resync()
    assert res.verified
    assert ctrl.verify_redundancy()


def test_raid6_degraded_mode_not_supported():
    from repro.core.layouts import RAID6Layout

    ctrl = _ctrl(RAID6Layout(4, "rdp"))
    with pytest.raises(NotImplementedError, match="mirror family"):
        DegradedArray(ctrl, [0])


def test_degraded_stats_with_no_reads_are_nan():
    """Regression: an idle episode used to report 0.0 mean latency."""
    import math

    from repro.raidsim.degraded import DegradedStats

    stats = DegradedStats()
    assert math.isnan(stats.mean_read_latency_s)
    stats.read_latencies_s.append(0.25)
    assert stats.mean_read_latency_s == pytest.approx(0.25)
