"""Ablation: scrubbing cost vs the LSE-during-rebuild hazard.

Quantifies the operational trade the paper's §I reliability citations
imply: a scrub pass costs streaming-rate reads over every disk, and in
exchange removes the latent sector errors that would make a
single-fault rebuild unrecoverable.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.core.errors import UnrecoverableFailureError
from repro.core.layouts import shifted_mirror, traditional_mirror
from repro.disksim.faults import LatentSectorErrors
from repro.raidsim.controller import RaidController
from repro.raidsim.scrub import Scrubber

ELEM = 4 * 1024 * 1024
N = 5
STRIPES = 12


def _poisoned(builder, n_errors, seed):
    lse = LatentSectorErrors(ELEM)
    ctrl = RaidController(
        builder(N), n_stripes=STRIPES, element_size=ELEM, payload_bytes=8, lse=lse
    )
    rng = np.random.default_rng(seed)
    # LSEs only on mirror disks, where a data-disk rebuild must read
    lse.inject_random(rng, n_errors, builder(N).n_disks, STRIPES * N)
    return ctrl, lse


def test_bench_scrub_cost_and_payoff(benchmark):
    def sweep():
        losses_without_scrub = 0
        trials = 6
        for seed in range(trials):
            ctrl, _ = _poisoned(traditional_mirror, 6, seed)
            try:
                ctrl.rebuild([0])
            except UnrecoverableFailureError:
                losses_without_scrub += 1
        # with scrub first: never loses (unless both copies decayed,
        # which these trials do not produce)
        losses_with_scrub = 0
        scrub_time = 0.0
        for seed in range(trials):
            ctrl, _ = _poisoned(traditional_mirror, 6, seed)
            report = Scrubber(ctrl).run()
            if not report.fully_repaired:
                losses_with_scrub += 1
                continue
            try:
                ctrl.rebuild([0])
            except UnrecoverableFailureError:
                losses_with_scrub += 1
            scrub_time += report.makespan_s
        return losses_without_scrub, losses_with_scrub, scrub_time / trials

    lost_before, lost_after, mean_scrub_s = run_once(benchmark, sweep)
    assert lost_before > 0  # the hazard is real at this error density
    assert lost_after == 0  # and scrubbing removes it
    benchmark.extra_info["rebuild_losses_without_scrub"] = lost_before
    benchmark.extra_info["rebuild_losses_with_scrub"] = lost_after
    benchmark.extra_info["mean_scrub_seconds"] = mean_scrub_s


def test_bench_scrub_throughput(benchmark):
    def sweep():
        ctrl, _ = _poisoned(shifted_mirror, 0, 0)
        return Scrubber(ctrl).run().scan_throughput_mbps

    mbps = run_once(benchmark, sweep)
    # all 2n disks streaming concurrently
    assert mbps > 0.9 * 2 * N * 54.8
    benchmark.extra_info["scan_mbps"] = mbps
