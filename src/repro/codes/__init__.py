"""Erasure-coding substrate (the reproduction's Jerasure-1.2 stand-in).

Contents
--------
* :mod:`~repro.codes.galois` — table-driven GF(2^w) arithmetic.
* :mod:`~repro.codes.matrix` — coding matrices over GF (Vandermonde,
  Cauchy, Gauss-Jordan inversion).
* :mod:`~repro.codes.xor_code` — single XOR parity (RAID 5 / the parity
  disk of the mirror-with-parity methods).
* :mod:`~repro.codes.reed_solomon` — systematic Reed-Solomon matrix
  coding.
* :mod:`~repro.codes.evenodd` / :mod:`~repro.codes.rdp` — the two
  classic XOR-only RAID 6 codes the paper cites as baselines.
* :mod:`~repro.codes.decoder` — unified decode facade used by the RAID
  layer.
"""

from .bitmatrix import (
    BitMatrixCode,
    CauchyRSCode,
    gf_constant_to_bitmatrix,
    gf_matrix_to_bitmatrix,
)
from .decoder import (
    ErasureDecoder,
    EvenOddDecoder,
    RDPDecoder,
    RSDecoder,
    SingleParityDecoder,
)
from .evenodd import EvenOdd, is_prime, smallest_prime_at_least
from .galois import GF, PRIMITIVE_POLYNOMIALS, gf8, gf16
from .matrix import (
    cauchy_matrix,
    identity,
    invert,
    is_invertible,
    matmul,
    matvec_regions,
    rs_distribution_matrix,
    vandermonde,
)
from .rdp import RDP
from .reed_solomon import RSCode
from .schedule import (
    Schedule,
    XorOp,
    dumb_schedule,
    execute_schedule,
    smart_schedule,
)
from .xcode import XCode
from .xor_code import parity_region, recover_from_parity, verify_parity, xor_fold

__all__ = [
    "GF",
    "PRIMITIVE_POLYNOMIALS",
    "gf8",
    "gf16",
    "identity",
    "matmul",
    "matvec_regions",
    "invert",
    "is_invertible",
    "vandermonde",
    "rs_distribution_matrix",
    "cauchy_matrix",
    "xor_fold",
    "parity_region",
    "recover_from_parity",
    "verify_parity",
    "RSCode",
    "BitMatrixCode",
    "CauchyRSCode",
    "gf_constant_to_bitmatrix",
    "gf_matrix_to_bitmatrix",
    "Schedule",
    "XorOp",
    "dumb_schedule",
    "smart_schedule",
    "execute_schedule",
    "EvenOdd",
    "RDP",
    "XCode",
    "is_prime",
    "smallest_prime_at_least",
    "ErasureDecoder",
    "SingleParityDecoder",
    "RSDecoder",
    "EvenOddDecoder",
    "RDPDecoder",
]
