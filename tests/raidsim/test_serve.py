"""The open-loop serve tier: determinism, SLOs, throttle tradeoff."""

from __future__ import annotations

import math

import pytest

from repro.raidsim.serve import (
    ServeConfig,
    ServeResult,
    compare_serve,
    run_serve,
    serve_arrivals,
)
from repro.workloads.openloop import TenantSpec

CFG = ServeConfig(n=5, n_stripes=6, rate_per_s=30.0, seed=11)


@pytest.fixture(scope="module")
def baseline():
    return compare_serve(CFG)


def test_same_config_is_bit_identical(baseline):
    again = compare_serve(CFG)
    assert again == baseline
    assert again.traditional.slo == baseline.traditional.slo


def test_both_arrangements_face_the_same_arrivals(baseline):
    assert baseline.traditional.n_arrivals == baseline.shifted.n_arrivals
    assert baseline.traditional.slo.duration_s == baseline.shifted.slo.duration_s
    assert serve_arrivals(CFG) == serve_arrivals(CFG)


def test_slo_percentiles_are_finite_and_ordered(baseline):
    for r in (baseline.traditional, baseline.shifted):
        s = r.slo
        assert s.served > 0
        assert math.isfinite(s.p50_s) and math.isfinite(s.p999_s)
        assert s.p50_s <= s.p99_s <= s.p999_s <= s.max_s
        assert s.goodput_rps > 0
        assert r.rebuild_verified
        assert r.availability == 1.0


def test_shifted_serves_a_better_tail(baseline):
    """The paper's claim, restated for open-loop traffic."""
    assert baseline.p99_ratio > 1.0
    assert baseline.makespan_speedup > 1.0


def test_deadline_misses_feed_goodput():
    strict = compare_serve(
        ServeConfig(n=5, n_stripes=6, rate_per_s=30.0, seed=11, deadline_s=0.2)
    )
    for r in (strict.traditional, strict.shifted):
        assert r.slo.deadline_misses > 0
        expected = (r.slo.served - r.slo.deadline_misses) / r.slo.duration_s
        assert r.slo.goodput_rps == pytest.approx(expected)


def test_throttle_trades_rebuild_time_for_tail_latency(baseline):
    """The tentpole's reason to exist: a measurable p99-vs-makespan knob."""
    throttled = compare_serve(
        ServeConfig(n=5, n_stripes=6, rate_per_s=30.0, seed=11, throttle="token:5")
    )
    free, slow = baseline.traditional, throttled.traditional
    assert slow.rebuild_makespan_s > free.rebuild_makespan_s
    assert slow.slo.p99_s < free.slo.p99_s
    assert slow.slo.served == free.slo.served  # open loop: arrivals unchanged


def test_multi_tenant_mix_is_tagged_per_tenant():
    cfg = ServeConfig(
        n=5,
        n_stripes=6,
        seed=11,
        tenants=(TenantSpec("vod", 20.0, zipf_s=1.1), TenantSpec("batch", 8.0)),
    )
    r = run_serve("mirror", serve_arrivals(cfg), 3.0, cfg)
    counts = dict(r.slo.per_tenant_served)
    assert set(counts) == {"vod", "batch"}
    assert counts["vod"] > counts["batch"]


def test_config_rejects_bad_throttle_spec_eagerly():
    with pytest.raises(ValueError):
        ServeConfig(throttle="warp:9")
    with pytest.raises(ValueError):
        ServeConfig(duration_factor=0.0)


def test_empty_arrival_stream_reports_nan_not_zero():
    cfg = ServeConfig(n=5, n_stripes=6, seed=11)
    r = run_serve("mirror", [], 3.0, cfg)
    assert isinstance(r, ServeResult)
    assert r.slo.served == 0
    assert math.isnan(r.slo.p99_s)
    assert r.slo.to_dict()["p99_s"] is None


def _serve_worker(seed: int):
    """Module-level for pickling; the pool half of the bit-identity pin."""
    return compare_serve(ServeConfig(n=4, n_stripes=4, rate_per_s=20.0, seed=seed))


def test_compare_serve_is_bit_identical_across_the_worker_pool_boundary():
    from repro.parallel import WorkerPool

    serial = _serve_worker(77)
    with WorkerPool(jobs=2) as pool:
        remote = pool.map(_serve_worker, [77, 77])
    assert remote[0] == remote[1] == serial


def test_result_carries_timeseries_and_fault_overlays(baseline):
    """The flight recorder rides along: latency/depth/progress windows
    over the simulated clock plus the disk-death overlay band."""
    for r in (baseline.traditional, baseline.shifted):
        snap = r.timeseries
        names = {e["name"] for e in snap["series"].values()}
        assert {"serve.latency_s", "serve.queue_depth", "rebuild.progress"} <= names
        served = sum(
            w["count"]
            for e in snap["series"].values() if e["name"] == "serve.latency_s"
            for w in e["windows"]
        )
        assert served == r.slo.served
        progress = [
            w["max"]
            for e in snap["series"].values() if e["name"] == "rebuild.progress"
            for w in e["windows"]
        ]
        assert max(progress) == pytest.approx(1.0)  # the rebuild completed
        assert progress == sorted(progress)  # monotone over the clock
        assert len(r.overlays) == 1
        band = r.overlays[0]
        assert band["kind"] == "disk-death" and band["t0"] == 0.0
        assert band["t1"] == pytest.approx(r.rebuild_makespan_s)
        assert band["label"] == "disk-death (disk 0)"


def test_timeseries_is_empty_with_observability_off():
    from repro.obs import set_obs_enabled

    old = set_obs_enabled(False)
    try:
        r = run_serve("mirror", serve_arrivals(CFG), 3.0, CFG)
    finally:
        set_obs_enabled(old)
    assert r.timeseries == {}
    assert r.overlays  # overlay bands are plain data, recorder or not
