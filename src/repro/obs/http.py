"""Live metrics over HTTP: Prometheus text exposition, stdlib only.

Snapshots used to be end-of-run files; this module lets a long
``compare_sweep`` or ``faultcampaign`` be *watched* instead.  A
:class:`MetricsServer` runs a daemon-threaded
:class:`http.server.ThreadingHTTPServer` whose ``GET /metrics``
renders a point-in-time snapshot of the live registry in the
Prometheus text format (``text/plain; version=0.0.4``), so::

    curl localhost:9309/metrics

mid-run shows counters climbing as sweep points complete (the parent
merges each worker snapshot the moment it arrives — see
``repro.raidsim.campaign.compare_sweep``).

Every scrape calls the *provider* afresh — by default
:func:`repro.obs.metrics.default_registry` — so a command running
under ``scoped_registry()`` serves its scope, and a process with
observability disabled serves an empty (but valid) exposition.  The
server only ever snapshots; it cannot perturb the simulation, and it
costs nothing between scrapes.

No third-party client library is involved anywhere:
:func:`prometheus_text` is a direct rendering of
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` data.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .metrics import default_registry

__all__ = ["prometheus_text", "MetricsServer"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


class _Url(str):
    """The server's base URL; callable for API symmetry.

    Both spellings work: ``server.url`` (the historical property form,
    used by the CLI and existing tests) and ``server.url()``.
    """

    __slots__ = ()

    def __call__(self) -> str:
        return str(self)


#: the exposition-format version Prometheus scrapers negotiate
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _metric_name(name: str) -> str:
    """A registry name as a Prometheus metric name (dots -> underscores)."""
    name = _NAME_OK.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _escape_label(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_str(labels: dict, extra: str = "") -> str:
    parts = [
        f'{_metric_name(k)}="{_escape_label(v)}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    value = float(value)
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value != value:
        # zero-sample aggregates are NaN by contract; the exposition
        # token is case-sensitive ("NaN", not Python's repr "nan")
        return "NaN"
    return repr(value)


def prometheus_text(snapshot: dict) -> str:
    """A metrics snapshot as a Prometheus text exposition.

    Counters and gauges map one-to-one; histograms become the classic
    cumulative ``_bucket{le=...}`` series (our snapshot stores
    per-bucket counts, so the render accumulates them) plus ``_sum``
    and ``_count``.  An empty snapshot renders as an empty — still
    valid — exposition.
    """
    lines: list[str] = []

    def simple(kind: str, families: dict) -> None:
        for name, data in sorted(families.items()):
            pname = _metric_name(name)
            if data.get("help"):
                lines.append(f"# HELP {pname} {data['help']}")
            lines.append(f"# TYPE {pname} {kind}")
            for entry in data["values"]:
                lines.append(
                    f"{pname}{_label_str(entry['labels'])} {_fmt(entry['value'])}"
                )

    simple("counter", snapshot.get("counters", {}))
    simple("gauge", snapshot.get("gauges", {}))
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        pname = _metric_name(name)
        if data.get("help"):
            lines.append(f"# HELP {pname} {data['help']}")
        lines.append(f"# TYPE {pname} histogram")
        bounds = list(data["buckets"]) + [float("inf")]
        for entry in data["values"]:
            labels = entry["labels"]
            cumulative = 0
            for bound, count in zip(bounds, entry["counts"]):
                cumulative += count
                le = _label_str(labels, extra=f'le="{_fmt(bound)}"')
                lines.append(f"{pname}_bucket{le} {cumulative}")
            lines.append(
                f"{pname}_sum{_label_str(labels)} {_fmt(entry['sum'])}"
            )
            lines.append(
                f"{pname}_count{_label_str(labels)} {entry['count']}"
            )
    return "\n".join(lines) + "\n" if lines else ""


class _Handler(BaseHTTPRequestHandler):
    """``/metrics`` scrape endpoint plus a one-line index at ``/``."""

    # set by MetricsServer when the handler class is specialised
    registry_provider = staticmethod(default_registry)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = prometheus_text(
                type(self).registry_provider().snapshot()
            ).encode("utf-8")
            self._reply(200, body, CONTENT_TYPE)
        elif path in ("/", "/healthz"):
            self._reply(
                200,
                b"repro metrics exporter; scrape /metrics\n",
                "text/plain; charset=utf-8",
            )
        else:
            self._reply(404, b"not found\n", "text/plain; charset=utf-8")

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args) -> None:
        pass  # scrapes must not spam the simulation's stdout/stderr


class MetricsServer:
    """A live ``/metrics`` endpoint for one process.

    Parameters
    ----------
    port:
        TCP port to bind; ``0`` picks a free ephemeral port (read the
        chosen one back from :attr:`port` / :attr:`url`).
    host:
        Bind address, loopback by default — exposing a wider interface
        is an explicit caller decision.
    registry_provider:
        Zero-argument callable returning the registry to snapshot per
        scrape; defaults to :func:`repro.obs.metrics.default_registry`
        so scoped registries and the null sink both do the right
        thing.

    ``start`` spawns a daemon serving thread; ``close`` shuts it down
    and releases the socket, and is idempotent (it also runs on
    context-manager exit).
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry_provider=None,
    ) -> None:
        provider = registry_provider if registry_provider is not None else default_registry
        handler = type(
            "_BoundHandler", (_Handler,), {"registry_provider": staticmethod(provider)}
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self.closed = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> "_Url":
        """Base URL with the bound (possibly kernel-assigned) port."""
        return _Url(f"http://{self.host}:{self.port}")

    def start(self) -> "MetricsServer":
        """Begin serving on a daemon thread; returns ``self`` for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-metrics-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the port (idempotent)."""
        if self.closed:
            return
        self.closed = True
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
