"""CLI front end: every subcommand through its happy path and errors."""

from __future__ import annotations

import pytest

from repro.cli import LAYOUTS, build_layout, main


def run_cli(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


def test_layout_registry_builds_everything():
    # n=5 satisfies every family (xcode needs a prime >= 5)
    for name in LAYOUTS:
        layout = build_layout(name, 5)
        assert layout.n == 5


def test_unknown_layout_exits():
    with pytest.raises(SystemExit, match="unknown layout"):
        build_layout("raid42", 4)


def test_arrange_shifted(capsys):
    rc, out = run_cli(capsys, "arrange", "--n", "3")
    assert rc == 0
    assert "P1=True P2=True P3=True" in out
    assert "1   4   7" in out


def test_arrange_identity(capsys):
    rc, out = run_cli(capsys, "arrange", "--n", "3", "--identity")
    assert rc == 0
    assert "P1=False" in out


def test_arrange_iterate3_loses_p3(capsys):
    rc, out = run_cli(capsys, "arrange", "--n", "3", "--iterate", "3")
    assert "P3=False" in out


def test_table1(capsys):
    rc, out = run_cli(capsys, "table1", "--n", "5")
    assert rc == 0
    assert "Avg_Read = 20/11" in out


def test_plan_shifted_single_failure(capsys):
    rc, out = run_cli(capsys, "plan", "--layout", "shifted-mirror", "--n", "5",
                      "--failed", "0")
    assert rc == 0
    assert "parallel read accesses: 1" in out


def test_plan_verbose_lists_steps(capsys):
    rc, out = run_cli(capsys, "plan", "--layout", "mirror", "--n", "3",
                      "--failed", "1", "-v")
    assert "copy" in out
    assert "(1, 0) <-" in out


def test_write_plan_row(capsys):
    rc, out = run_cli(capsys, "write-plan", "--layout", "shifted-mirror-parity",
                      "--n", "4", "--row", "0")
    assert "write accesses: 1" in out
    assert "elements written: 9" in out


def test_write_plan_elements_reconstruct(capsys):
    rc, out = run_cli(capsys, "write-plan", "--layout", "mirror-parity",
                      "--n", "4", "--element", "0,0", "--strategy", "reconstruct")
    assert "(reconstruct)" in out
    assert "elements read: 3" in out


def test_simulate_rebuild(capsys):
    rc, out = run_cli(capsys, "simulate", "rebuild", "--layout", "shifted-mirror",
                      "--n", "3", "--failed", "0", "--stripes", "4")
    assert rc == 0
    assert "content verified:   True" in out


def test_simulate_writes(capsys):
    rc, out = run_cli(capsys, "simulate", "writes", "--layout", "mirror",
                      "--n", "3", "--stripes", "4", "--ops", "10")
    assert rc == 0
    assert "redundancy intact: True" in out


def test_experiments_only_table1(capsys):
    rc, out = run_cli(capsys, "experiments", "--quick", "--only", "table1")
    assert rc == 0
    assert "table1" in out
    assert "fig9a" not in out


def test_missing_subcommand_is_an_error(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_reliability_command(capsys):
    rc, out = run_cli(capsys, "reliability", "--layout", "shifted-mirror",
                      "--n", "3", "--stripes", "6")
    assert rc == 0
    assert "MTTDL:" in out and "x)" in out


def test_scrub_command(capsys):
    rc, out = run_cli(capsys, "scrub", "--layout", "shifted-mirror-parity",
                      "--n", "3", "--stripes", "4", "--errors", "3")
    assert rc == 0
    assert "latent sector errors found:    3" in out
    assert "fully repaired" in out


def test_svg_command(capsys, tmp_path):
    rc, out = run_cli(capsys, "svg", "--outdir", str(tmp_path), "--quick")
    assert rc == 0
    assert out.count("wrote ") == 5


def test_faultcampaign_command(capsys):
    rc, out = run_cli(capsys, "faultcampaign", "--family", "mirror-parity",
                      "--n", "3", "--stripes", "4")
    assert rc == 0
    assert "Fault campaign (seed 2012) on mirror-parity at n=3:" in out
    assert "mirror-parity:" in out and "shifted-mirror-parity:" in out
    assert "availability delta (shifted - traditional):" in out
    assert "mid-rebuild failures:" in out


def test_faultcampaign_without_second_failure(capsys):
    rc, out = run_cli(capsys, "faultcampaign", "--family", "mirror",
                      "--n", "3", "--stripes", "4", "--second-failure-at", "0")
    assert rc == 0
    assert "second failure" not in out
    assert "mid-rebuild failures" not in out


def test_faultcampaign_json_output(capsys, tmp_path):
    import json

    out_path = tmp_path / "campaign.json"
    rc, _ = run_cli(capsys, "faultcampaign", "--family", "mirror",
                    "--n", "3", "--stripes", "4", "--json", str(out_path))
    assert rc == 0
    doc = json.loads(out_path.read_text())
    assert doc["kind"] == "faultcampaign"
    assert doc["family"] == "mirror" and doc["n"] == 3
    for side in ("traditional", "shifted"):
        record = doc[side]
        assert 0.0 <= record["availability"] <= 1.0
        assert record["rebuild"]["makespan_s"] > 0
        assert {"retries", "timeouts"} <= set(record["fault_stats"])
    assert isinstance(doc["availability_delta"], float)
    assert "counters" in doc["metrics"]


def test_simulate_rebuild_trace_and_metrics_out(capsys, tmp_path):
    import json

    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    rc, _ = run_cli(capsys, "simulate", "rebuild", "--layout", "shifted-mirror",
                    "--n", "3", "--failed", "0", "--stripes", "4",
                    "--trace-out", str(trace_path),
                    "--metrics-out", str(metrics_path))
    assert rc == 0
    trace = json.loads(trace_path.read_text())
    spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
    assert spans and any(
        e.get("args", {}).get("tag") == "rebuild" for e in spans
    )
    named = [e for e in trace["traceEvents"]
             if e.get("ph") == "M" and e["name"] == "process_name"]
    assert any("disk" in e["args"]["name"] for e in named)
    metrics = json.loads(metrics_path.read_text())
    assert metrics["counters"]["sim.requests"]["values"]


def test_simulate_rebuild_streaming_trace_with_sampling(capsys, tmp_path):
    from repro.obs import load_streaming_trace

    trace_path = tmp_path / "trace.jsonl"
    rc, _ = run_cli(capsys, "simulate", "rebuild", "--layout", "shifted-mirror",
                    "--n", "3", "--failed", "0", "--stripes", "4",
                    "--trace-out", str(trace_path),
                    "--trace-sample", "0.0")
    assert rc == 0
    loaded = load_streaming_trace(trace_path)
    assert loaded.header["sample_rate"] == 0.0
    # per-request io spans are gone; the phase skeleton survives
    assert {ev.cat for ev in loaded.events} == {"rebuild"}
    assert any(ev.name == "rebuild.phase" for ev in loaded.events)


def test_obs_summary_reads_streaming_traces(capsys, tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    rc, _ = run_cli(capsys, "simulate", "rebuild", "--layout", "mirror",
                    "--n", "3", "--failed", "0", "--stripes", "4",
                    "--trace-out", str(trace_path),
                    "--trace-sample", "0.5")
    assert rc == 0
    rc, out = run_cli(capsys, "obs", "summary", "--trace", str(trace_path))
    assert rc == 0
    assert "busy time by track:" in out
    assert "sampled at rate 0.5" in out


def test_faultcampaign_with_live_metrics_port(capsys):
    import re
    import urllib.request

    # --metrics-port 0 picks a free port; the chosen one is announced
    # on stderr.  The endpoint outlives the command here only because
    # we scrape after dispatch in-process; mid-run scraping is covered
    # by the CI smoke job.
    import repro.cli as cli_mod

    captured_url = {}
    real_dispatch = cli_mod._dispatch

    def dispatch_and_scrape(args):
        rc = real_dispatch(args)
        err = capsys.readouterr().err
        m = re.search(r"serving live metrics on (\S+)/metrics", err)
        assert m, err
        body = urllib.request.urlopen(m.group(1) + "/metrics", timeout=5)
        captured_url["body"] = body.read().decode()
        return rc

    cli_mod._dispatch = dispatch_and_scrape
    try:
        rc = main(["faultcampaign", "--family", "mirror", "--n", "3",
                   "--stripes", "4", "--seeds", "2",
                   "--metrics-port", "0"])
    finally:
        cli_mod._dispatch = real_dispatch
    assert rc == 0
    body = captured_url["body"]
    assert "# TYPE sweep_points_completed counter" in body
    # the CLI serves the process-default registry, which other tests may
    # have touched — assert at least this run's two points landed
    completed = next(
        float(line.split()[-1]) for line in body.splitlines()
        if line.startswith("sweep_points_completed ")
    )
    assert completed >= 2.0


def test_obs_summary_command(capsys, tmp_path):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    rc, _ = run_cli(capsys, "simulate", "rebuild", "--layout", "mirror",
                    "--n", "3", "--failed", "0", "--stripes", "4",
                    "--trace-out", str(trace_path),
                    "--metrics-out", str(metrics_path))
    assert rc == 0
    rc, out = run_cli(capsys, "obs", "summary", "--metrics", str(metrics_path),
                      "--trace", str(trace_path))
    assert rc == 0
    assert "counters:" in out
    assert "busy time by track:" in out
    rc, out = run_cli(capsys, "obs", "summary")
    assert rc == 0
    assert "nothing to summarize" in out


def test_obs_report_renders_a_serve_dashboard(capsys, tmp_path):
    json_path = tmp_path / "serve.json"
    html_path = tmp_path / "dash.html"
    rc, _ = run_cli(capsys, "serve", "--n", "4", "--stripes", "4",
                    "--rate", "25", "--seed", "11", "--json", str(json_path))
    assert rc == 0
    rc, out = run_cli(capsys, "obs", "report", str(json_path),
                      "--out", str(html_path), "--title", "smoke")
    assert rc == 0
    assert str(html_path) in out
    html = html_path.read_text()
    assert "<svg" in html and "smoke" in html
    assert "<h2>mirror</h2>" in html and "<h2>shifted-mirror</h2>" in html
    assert "disk-death" in html  # the fault overlay band made it in


def test_obs_report_rejects_a_non_report_document(capsys, tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"kind": "mystery"}')
    rc = main(["obs", "report", str(bogus), "--out", str(tmp_path / "x.html")])
    captured = capsys.readouterr()
    assert rc == 2
    assert captured.err.startswith("error: ")
    # a missing input artifact is a domain error too, never a traceback
    rc = main(["obs", "report", str(tmp_path / "missing.json")])
    captured = capsys.readouterr()
    assert rc == 2
    assert captured.err.startswith("error: ")


def test_domain_error_is_reported_not_raised(capsys):
    # a LayoutError inside a subcommand must become exit code 2 with a
    # one-line message on stderr, never a traceback
    rc = main(["plan", "--layout", "mirror-parity", "--n", "1",
               "--failed", "0"])
    captured = capsys.readouterr()
    assert rc == 2
    assert captured.err.startswith("error: ")
    assert "needs n >= 2" in captured.err


def test_faultcampaign_rejects_bad_rate_gracefully(capsys):
    rc = main(["faultcampaign", "--family", "mirror", "--n", "3",
               "--stripes", "4", "--transient-rate", "1.5"])
    captured = capsys.readouterr()
    assert rc == 2
    assert captured.err.startswith("error: ")
    assert "transient rate" in captured.err


def test_serve_command(capsys):
    rc, out = run_cli(capsys, "serve", "--n", "4", "--stripes", "4",
                      "--rate", "25", "--seed", "11", "--deadline-ms", "200")
    assert rc == 0
    assert "Open-loop serve (seed 11) on mirror at n=4:" in out
    assert "mirror:" in out and "shifted-mirror:" in out
    assert "latency p50/p99/p999:" in out
    assert "goodput:" in out
    assert "deadline misses:" in out
    assert "p99 ratio (trad/shifted):" in out
    assert "rebuild speedup:" in out


def test_serve_json_output(capsys, tmp_path):
    import json
    import math

    out_path = tmp_path / "serve.json"
    rc, _ = run_cli(capsys, "serve", "--n", "4", "--stripes", "4",
                    "--rate", "25", "--seed", "11", "--throttle", "token:20",
                    "--json", str(out_path))
    assert rc == 0
    doc = json.loads(out_path.read_text())
    assert doc["kind"] == "serve"
    assert doc["throttle"] == "token:20"
    for side in ("traditional", "shifted"):
        slo = doc[side]["slo"]
        assert slo["served"] > 0
        for q in ("p50_s", "p99_s", "p999_s"):
            assert slo[q] is not None and math.isfinite(slo[q])
        assert doc[side]["rebuild_makespan_s"] > 0
    assert "counters" in doc["metrics"]


def test_serve_multi_tenant_and_bad_specs(capsys):
    rc, out = run_cli(capsys, "serve", "--n", "4", "--stripes", "4", "--seed", "3",
                      "--tenant", "vod:20:poisson:1.1", "--tenant", "batch:5:bursty")
    assert rc == 0
    assert "per tenant:" in out and "vod=" in out and "batch=" in out
    rc, _ = run_cli(capsys, "serve", "--n", "4", "--tenant", "broken")
    assert rc == 2
    rc, _ = run_cli(capsys, "serve", "--n", "4", "--throttle", "warp:9")
    assert rc == 2


def test_latency_speedup_inf_and_nan_contract(capsys, tmp_path, monkeypatch):
    """One contract, two renderings: text prints bare inf/nan, JSON nulls."""
    import dataclasses
    import json

    import repro.raidsim.campaign as campaign_mod

    real = campaign_mod.compare_arrangements

    def rig(mean):
        def rigged(*args, **kw):
            cmp_ = real(*args, **kw)
            online = dataclasses.replace(
                cmp_.shifted.online, mean_user_latency_s=mean
            )
            shifted = dataclasses.replace(cmp_.shifted, online=online)
            return dataclasses.replace(cmp_, shifted=shifted)
        return rigged

    for mean, text in ((0.0, "inf"), (float("nan"), "nan")):
        monkeypatch.setattr(campaign_mod, "compare_arrangements", rig(mean))
        out_path = tmp_path / f"c-{text}.json"
        rc, out = run_cli(capsys, "faultcampaign", "--family", "mirror",
                          "--n", "3", "--stripes", "4",
                          "--second-failure-at", "0", "--json", str(out_path))
        assert rc == 0
        assert f"user latency speedup:  {text}" in out
        assert json.loads(out_path.read_text())["latency_speedup"] is None


def test_faultcampaign_runs_competitor_family(capsys):
    """The registry-declared pair mechanism: a family whose variant is
    not named shifted-* runs everywhere a comparison runs."""
    rc, out = run_cli(capsys, "faultcampaign", "--family", "declustered",
                      "--n", "3", "--stripes", "4", "--second-failure-at", "0")
    assert rc == 0
    assert "declustered-mirror:" in out


def test_faultcampaign_sweep_competitor_family(capsys):
    rc, out = run_cli(capsys, "faultcampaign", "--family", "rebuild-optimal",
                      "--n", "3", "--stripes", "3", "--seeds", "2")
    assert rc == 0
    assert "Fault-campaign sweep on rebuild-optimal at n=3" in out


def test_unpaired_family_rejected_at_parse_time(capsys):
    """The fail-before guard: raid5 is a layout but not a family."""
    with pytest.raises(SystemExit):
        main(["faultcampaign", "--family", "raid5", "--n", "3"])
    err = capsys.readouterr().err
    assert "invalid choice: 'raid5'" in err
    assert "declustered" in err and "rebuild-optimal" in err


def test_leaderboard_command(capsys):
    rc, out = run_cli(capsys, "leaderboard", "--n", "3", "--stripes", "3",
                      "--seed", "7")
    assert rc == 0
    assert "Layout leaderboard (seed 7) at n=3:" in out
    for name in ("mirror", "shifted-mirror", "declustered-mirror",
                 "rebuild-optimal-rdp"):
        assert name in out
    assert "best: " in out


def test_leaderboard_json_schema_and_determinism(capsys, tmp_path):
    import json

    paths = [tmp_path / "a.json", tmp_path / "b.json"]
    for path, jobs in zip(paths, ("1", "2")):
        rc, _ = run_cli(capsys, "leaderboard", "--n", "3", "--stripes", "3",
                        "--seed", "7", "--jobs", jobs, "--json", str(path))
        assert rc == 0
    a, b = (json.loads(p.read_text()) for p in paths)
    assert a["kind"] == "leaderboard"
    assert len(a["ranking"]) >= 4
    assert a["ranking"] == [e["layout"] for e in a["entries"]]
    for e in a["entries"]:
        assert 0.0 <= e["availability"] <= 1.0
        assert e["rebuild_makespan_s"] > 0
        # the _finite contract: p99 is a float or null, never NaN
        assert e["degraded_p99_ms"] is None or isinstance(
            e["degraded_p99_ms"], float
        )
    # bit-reproducible across runs and jobs counts
    assert a["ranking"] == b["ranking"]
    assert a["entries"] == b["entries"]
    assert a["duration_s"] == b["duration_s"]


def test_leaderboard_html_dashboard(capsys, tmp_path):
    html_path = tmp_path / "lb.html"
    rc, _ = run_cli(capsys, "leaderboard", "--n", "3", "--stripes", "3",
                    "--layouts", "mirror", "shifted-mirror",
                    "declustered-mirror", "rebuild-optimal-rdp",
                    "--html", str(html_path))
    assert rc == 0
    html = html_path.read_text()
    assert "Layout leaderboard" in html
    assert "declustered-mirror" in html
    assert 'table class="scalars"' in html


def test_obs_report_renders_leaderboard_json(capsys, tmp_path):
    json_path = tmp_path / "lb.json"
    out_path = tmp_path / "lb.html"
    rc, _ = run_cli(capsys, "leaderboard", "--n", "3", "--stripes", "3",
                    "--layouts", "mirror", "declustered-mirror",
                    "--json", str(json_path))
    assert rc == 0
    rc, out = run_cli(capsys, "obs", "report", str(json_path),
                      "--out", str(out_path))
    assert rc == 0
    assert "wrote dashboard report" in out
    assert "declustered-mirror" in out_path.read_text()
