"""Extension experiment: latent sector errors vs rebuild survival.

The paper's §I motivates multi-fault tolerance with disk failures *and*
latent sector errors [3-6].  This experiment quantifies that
interaction on our substrate with a Monte-Carlo sweep: scatter ``k``
LSEs uniformly over the array, fail one disk, and ask whether the
rebuild survives —

* **mirror method**: an LSE on any element the rebuild needs is data
  loss (single-fault tolerance is already spent on the failed disk);
* **mirror method with parity**: the parity path absorbs single LSEs
  per row (loss needs an unlucky coincidence);
* **either + scrub first**: a scrub pass repairs the LSEs while
  redundancy exists, so the rebuild is safe.

Outputs, per error count: survival probability over ``trials`` seeds
for each policy.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import UnrecoverableFailureError
from ..core.layouts import shifted_mirror, shifted_mirror_parity
from ..disksim.faults import LatentSectorErrors
from ..raidsim.controller import RaidController
from ..raidsim.scrub import Scrubber
from .reporting import ExperimentResult, format_series

__all__ = ["survival_probability", "run"]

_ELEM = 4 * 1024 * 1024


def _controller(builder, n, n_stripes):
    lse = LatentSectorErrors(_ELEM)
    ctrl = RaidController(
        builder(n), n_stripes=n_stripes, element_size=_ELEM, payload_bytes=4, lse=lse
    )
    return ctrl, lse


def survival_probability(
    builder,
    n: int,
    n_errors: int,
    trials: int = 20,
    n_stripes: int = 8,
    scrub_first: bool = False,
    base_seed: int = 0,
) -> float:
    """Fraction of trials whose one-disk rebuild recovers everything."""
    survived = 0
    for t in range(trials):
        ctrl, lse = _controller(builder, n, n_stripes)
        rng = np.random.default_rng(base_seed + t)
        lse.inject_random(rng, n_errors, ctrl.layout.n_disks, n_stripes * ctrl.layout.rows)
        failed = int(rng.integers(0, ctrl.layout.n_disks))
        try:
            if scrub_first:
                report = Scrubber(ctrl).run()
                if not report.fully_repaired:
                    continue
            result = ctrl.rebuild([failed])
            if result.verified:
                survived += 1
        except UnrecoverableFailureError:
            pass
    return survived / trials


def run(
    n: int = 5,
    error_counts=(0, 2, 4, 8, 16),
    trials: int = 20,
    n_stripes: int = 8,
) -> ExperimentResult:
    """Survival probability per error count, for every policy."""
    policies = {
        "mirror": (shifted_mirror, False),
        "mirror + scrub": (shifted_mirror, True),
        "mirror+parity": (shifted_mirror_parity, False),
        "mirror+parity + scrub": (shifted_mirror_parity, True),
    }
    series: dict[str, list[float]] = {name: [] for name in policies}
    for k in error_counts:
        for name, (builder, scrub) in policies.items():
            series[name].append(
                survival_probability(
                    builder, n, k, trials=trials, n_stripes=n_stripes, scrub_first=scrub
                )
            )
    text = format_series("LSEs", list(error_counts), series, precision=2)
    text += (
        "\nSurvival probability of a one-disk rebuild under scattered latent "
        "sector errors\n(Monte Carlo, "
        f"{trials} trials per point, n={n}, {n_stripes} stripes)."
    )
    return ExperimentResult(
        experiment_id="ext-lse",
        description="LSE-induced data loss during reconstruction, by architecture and scrub policy",
        text=text,
        data={"error_counts": list(error_counts), **series},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
